// Experiment X1 — the false-negative / false-positive trade-off the paper's
// Conclusions single out as the next step.
//
// The machine's operating threshold is swept; for each setting the bench
// reports machine-level and *system*-level FN/FP rates, sensitivity,
// specificity, recall rate and PPV at a realistic prevalence (0.7%, the
// paper notes "less than 1%"). Two human responses are compared: an
// automation-biased reader (prompts pull recalls on healthy cases) and a
// prompt-neutral reader — showing that the system's trade-off curve is NOT
// the machine's.
#include <cmath>
#include <iostream>

#include "bench_profile.hpp"
#include "core/tradeoff.hpp"
#include "report/format.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace hmdiv;
  using namespace hmdiv::core;
  using report::fixed;
  const benchutil::ProfileGuard profile(argc, argv);

  BinormalMachine machine;
  machine.cancer_class_means = {2.0, 0.8};
  machine.normal_class_means = {-2.0, -0.5};
  const DemandProfile cancers({"easy", "difficult"}, {0.9, 0.1});
  const DemandProfile normals({"typical", "complex"}, {0.85, 0.15});
  std::vector<HumanFnResponse> fn(2);
  fn[0] = {0.14, 0.18};  // prompted, silent — the paper's easy class
  fn[1] = {0.4, 0.9};    // difficult class
  std::vector<HumanFpResponse> fp_biased(2);
  fp_biased[0] = {0.10, 0.02};
  fp_biased[1] = {0.35, 0.12};
  std::vector<HumanFpResponse> fp_neutral(2);
  fp_neutral[0] = {0.02, 0.02};
  fp_neutral[1] = {0.12, 0.12};
  constexpr double kPrevalence = 0.007;

  const TradeoffAnalyzer biased(machine, cancers, fn, normals, fp_biased,
                                kPrevalence);
  const TradeoffAnalyzer neutral(machine, cancers, fn, normals, fp_neutral,
                                 kPrevalence);

  std::vector<double> thresholds;
  for (double t = -2.0; t <= 2.0 + 1e-9; t += 0.5) thresholds.push_back(t);

  std::cout << "== X1: machine threshold sweep, automation-biased reader ==\n";
  report::Table sweep({"thr", "mach FN", "mach FP", "sys FN", "sys FP",
                       "sens", "spec", "recall", "PPV"});
  for (const auto& point : biased.sweep(thresholds)) {
    sweep.row({fixed(point.threshold, 1), fixed(point.machine_fn, 3),
               fixed(point.machine_fp, 3), fixed(point.system_fn, 3),
               fixed(point.system_fp, 3), fixed(point.sensitivity, 3),
               fixed(point.specificity, 3),
               report::percent(point.recall_rate, 2),
               fixed(point.ppv, 3)});
  }
  std::cout << sweep << '\n';

  std::cout << "== X1: same machine, prompt-neutral reader (no FP bias) ==\n";
  report::Table neutral_sweep({"thr", "sys FN", "sys FP", "recall", "PPV"});
  for (const auto& point : neutral.sweep(thresholds)) {
    neutral_sweep.row({fixed(point.threshold, 1), fixed(point.system_fn, 3),
                       fixed(point.system_fp, 3),
                       report::percent(point.recall_rate, 2),
                       fixed(point.ppv, 3)});
  }
  std::cout << neutral_sweep << '\n';

  // Cost-optimal operating points for two cost regimes.
  const auto miss_averse = biased.minimise_cost(500.0, 1.0, -3.0, 3.0, 121);
  const auto recall_averse = biased.minimise_cost(50.0, 5.0, -3.0, 3.0, 121);
  std::cout << "Cost-optimal thresholds: miss-averse (500:1) -> "
            << fixed(miss_averse.threshold, 2) << ", recall-averse (10:1) -> "
            << fixed(recall_averse.threshold, 2) << "\n\n";

  // Shape checks: monotone trade-off; biased reader pays more FP for the
  // same machine; eager machine floors the system FN at E[PHf|Ms].
  const auto eager = biased.evaluate(-2.0);
  const auto strict = biased.evaluate(2.0);
  const bool monotone = eager.system_fn < strict.system_fn &&
                        eager.system_fp > strict.system_fp;
  bool biased_pays_fp = true;
  for (const double t : thresholds) {
    biased_pays_fp = biased_pays_fp && biased.evaluate(t).system_fp >=
                                           neutral.evaluate(t).system_fp - 1e-12;
  }
  const double fn_floor = 0.9 * 0.14 + 0.1 * 0.4;
  const bool floored = eager.system_fn > fn_floor - 1e-9;
  const bool cost_order = miss_averse.threshold < recall_averse.threshold;
  std::cout << "System FN/FP move oppositely with the threshold: "
            << (monotone ? "PASS" : "FAIL") << '\n'
            << "Automation bias costs specificity at every threshold: "
            << (biased_pays_fp ? "PASS" : "FAIL") << '\n'
            << "System FN floored at E[PHf|Ms] even with an eager machine: "
            << (floored ? "PASS" : "FAIL") << '\n'
            << "Cost ratio moves the optimal threshold the right way: "
            << (cost_order ? "PASS" : "FAIL") << "\n\n";
  return monotone && biased_pays_fp && floored && cost_order ? 0 : 1;
}
