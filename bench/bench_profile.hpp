// Shared --profile handling for the bench binaries.
//
// Usage: declare `hmdiv::benchutil::ProfileGuard profile(argc, argv);` at
// the top of main. If the command line contains --profile, the obs
// registry is runtime-enabled for the rest of the run and the snapshot is
// printed as a table when the guard leaves scope; --profile-csv FILE also
// writes the snapshot as CSV. Unrelated arguments are left untouched.
#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "obs/obs.hpp"
#include "report/profile.hpp"

namespace hmdiv::benchutil {

class ProfileGuard {
 public:
  ProfileGuard(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--profile") {
        enabled_ = true;
      } else if (arg == "--profile-csv" && i + 1 < argc) {
        enabled_ = true;
        csv_path_ = argv[++i];
      }
    }
    if (enabled_) obs::set_enabled(true);
  }

  ProfileGuard(const ProfileGuard&) = delete;
  ProfileGuard& operator=(const ProfileGuard&) = delete;

  ~ProfileGuard() {
    if (!enabled_) return;
    const obs::Snapshot snapshot = obs::registry_snapshot();
    std::cout << "\n== Profile (obs registry) ==\n\n"
              << report::profile_table(snapshot);
    if (!csv_path_.empty()) {
      std::ofstream out(csv_path_);
      if (out) {
        report::write_profile_csv(out, snapshot);
      } else {
        std::cerr << "profile: cannot write '" << csv_path_ << "'\n";
      }
    }
  }

 private:
  bool enabled_ = false;
  std::string csv_path_;
};

}  // namespace hmdiv::benchutil
