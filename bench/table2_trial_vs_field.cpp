// Experiment T2 — the paper's second Section-5 table: probability of system
// failure per class and over all cases, under the Trial (0.8/0.2) and Field
// (0.9/0.1) demand profiles.
//
// Reproduced two ways: closed-form Eq. (8), and Monte-Carlo simulation of
// the composed system under each profile. Reproduction check: closed form
// matches the paper to 3 decimals; simulation matches the closed form to
// Monte-Carlo error.
#include <cmath>
#include <iostream>

#include "bench_profile.hpp"
#include "core/paper_example.hpp"
#include "report/format.hpp"
#include "report/table.hpp"
#include "sim/tabular_world.hpp"
#include "sim/trial.hpp"

int main(int argc, char** argv) {
  using namespace hmdiv;
  using report::fixed;
  const benchutil::ProfileGuard profile_guard(argc, argv);

  const auto model = core::paper::example_model();
  const auto trial = core::paper::trial_profile();
  const auto field = core::paper::field_profile();
  const auto reported = core::paper::reported_values();

  auto simulate = [&](const core::DemandProfile& profile,
                      std::uint64_t seed) {
    sim::TabularWorld world(model, profile);
    sim::TrialRunner runner(world, 400000);
    // The deterministic engine entry point: bit-identical at any thread
    // count, and instrumented — so --profile sees the simulation phases.
    return runner.run(seed).observed_failure_rate();
  };
  const double simulated_trial = simulate(trial, 1);
  const double simulated_field = simulate(field, 2);

  std::cout << "== T2: probability of system failure ==\n";
  report::Table table({"row", "paper", "Eq. (8)", "simulated"});
  table.row({"easy cases", fixed(reported.failure_easy, 3),
             fixed(model.system_failure_given_class(core::paper::kEasy), 3),
             "-"});
  table.row(
      {"difficult cases", fixed(reported.failure_difficult, 3),
       fixed(model.system_failure_given_class(core::paper::kDifficult), 3),
       "-"});
  table.row({"all cases (Trial)", fixed(reported.failure_trial, 3),
             fixed(model.system_failure_probability(trial), 3),
             fixed(simulated_trial, 3)});
  table.row({"all cases (Field)", fixed(reported.failure_field, 3),
             fixed(model.system_failure_probability(field), 3),
             fixed(simulated_field, 3)});
  std::cout << table << '\n';

  const bool closed_form_ok =
      std::fabs(model.system_failure_given_class(0) - reported.failure_easy) <
          5e-4 &&
      std::fabs(model.system_failure_given_class(1) -
                reported.failure_difficult) < 5e-4 &&
      std::fabs(model.system_failure_probability(trial) -
                reported.failure_trial) < 5e-4 &&
      std::fabs(model.system_failure_probability(field) -
                reported.failure_field) < 5e-4;
  const bool simulation_ok =
      std::fabs(simulated_trial - model.system_failure_probability(trial)) <
          0.005 &&
      std::fabs(simulated_field - model.system_failure_probability(field)) <
          0.005;
  std::cout << "Closed form matches paper to 3 decimals: "
            << (closed_form_ok ? "PASS" : "FAIL") << '\n'
            << "400k-case simulation matches Eq. (8): "
            << (simulation_ok ? "PASS" : "FAIL") << "\n\n";
  return closed_form_ok && simulation_ok ? 0 : 1;
}
