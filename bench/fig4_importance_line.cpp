// Experiment F4 — Figure 4: system failure probability as a function of
// machine failure probability for a class of cases, at fixed human response.
//
// The figure is a straight line with intercept PHf|Ms(x) (the floor) and
// slope t(x). We print the series for both classes of the paper example,
// verify linearity analytically, and validate three points per class by
// Monte-Carlo simulation of a world whose PMf(x) is set to the swept value.
#include <cmath>
#include <iostream>

#include "core/paper_example.hpp"
#include "report/format.hpp"
#include "report/table.hpp"
#include "sim/tabular_world.hpp"
#include "sim/trial.hpp"

int main() {
  using namespace hmdiv;
  using report::fixed;

  const auto model = core::paper::example_model();

  std::cout << "== F4: PHf(x) vs PMf(x) at fixed human response ==\n";
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    const auto line = model.importance_line(x);
    std::cout << "class '" << model.class_names()[x]
              << "': intercept PHf|Ms = " << fixed(line.intercept, 3)
              << ", slope t(x) = " << fixed(line.slope, 3) << '\n';
  }
  std::cout << '\n';

  report::Table series({"PMf", "PHf easy (line)", "PHf difficult (line)"});
  series.caption("Figure 4 series (plot these columns)");
  for (double pmf = 0.0; pmf <= 1.0 + 1e-9; pmf += 0.1) {
    series.row({fixed(pmf, 1),
                fixed(model.importance_line(0).at(pmf), 3),
                fixed(model.importance_line(1).at(pmf), 3)});
  }
  std::cout << series << '\n';

  // Monte-Carlo validation: build single-class worlds at swept PMf values.
  bool simulation_ok = true;
  report::Table validation(
      {"class", "PMf", "line PHf", "simulated PHf", "|error|"});
  validation.caption("Simulation check (200k cases per point)");
  std::uint64_t seed = 100;
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    for (const double pmf : {0.1, 0.5, 0.9}) {
      core::ClassConditional c = model.parameters(x);
      c.p_machine_fails = pmf;
      const core::SequentialModel swept({"only"}, {c});
      const core::DemandProfile degenerate({"only"}, {1.0});
      sim::TabularWorld world(swept, degenerate);
      sim::TrialRunner runner(world, 200000);
      stats::Rng rng(seed++);
      const double simulated = runner.run(rng).observed_failure_rate();
      const double predicted = model.importance_line(x).at(pmf);
      validation.row({model.class_names()[x], fixed(pmf, 1),
                      fixed(predicted, 4), fixed(simulated, 4),
                      fixed(std::fabs(simulated - predicted), 4)});
      simulation_ok =
          simulation_ok && std::fabs(simulated - predicted) < 0.005;
    }
  }
  std::cout << validation << '\n';

  // Structural checks: linearity and the floor.
  bool structure_ok = true;
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    const auto line = model.importance_line(x);
    const auto& p = model.parameters(x);
    structure_ok = structure_ok &&
                   std::fabs(line.at(0.0) -
                             p.p_human_fails_given_machine_succeeds) < 1e-12 &&
                   std::fabs(line.at(1.0) -
                             p.p_human_fails_given_machine_fails) < 1e-12;
    // Linearity: midpoint equals average of endpoints.
    structure_ok = structure_ok &&
                   std::fabs(line.at(0.5) -
                             0.5 * (line.at(0.0) + line.at(1.0))) < 1e-12;
  }
  std::cout << "Line passes through (0, PHf|Ms) and (1, PHf|Mf), exactly "
               "linear: "
            << (structure_ok ? "PASS" : "FAIL") << '\n'
            << "Simulated points land on the line: "
            << (simulation_ok ? "PASS" : "FAIL") << "\n\n";
  return structure_ok && simulation_ok ? 0 : 1;
}
