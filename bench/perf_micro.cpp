// Experiment P1 — engineering microbenchmarks (google-benchmark): cost of
// model evaluation, decomposition, RBD evaluation (formula vs enumeration),
// and simulation throughput. These bound the cost of the parameter sweeps
// and Monte-Carlo analyses the other benches run.
#include <benchmark/benchmark.h>

#include "core/design_advisor.hpp"
#include "core/paper_example.hpp"
#include "rbd/structure.hpp"
#include "sim/estimation.hpp"
#include "sim/feature_world.hpp"
#include "sim/tabular_world.hpp"
#include "sim/trial.hpp"

namespace {

using namespace hmdiv;

void BM_SequentialModelEq8(benchmark::State& state) {
  const auto model = core::paper::example_model();
  const auto profile = core::paper::field_profile();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.system_failure_probability(profile));
  }
}
BENCHMARK(BM_SequentialModelEq8);

void BM_SequentialModelDecompose(benchmark::State& state) {
  const auto model = core::paper::example_model();
  const auto profile = core::paper::field_profile();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.decompose(profile));
  }
}
BENCHMARK(BM_SequentialModelDecompose);

void BM_DesignAdvisorDiagnose(benchmark::State& state) {
  const core::DesignAdvisor advisor(core::paper::example_model(),
                                    core::paper::field_profile());
  for (auto _ : state) {
    benchmark::DoNotOptimize(advisor.diagnose());
  }
}
BENCHMARK(BM_DesignAdvisorDiagnose);

rbd::Structure chain_of_parallel_pairs(std::size_t pairs) {
  std::vector<rbd::Structure> blocks;
  for (std::size_t i = 0; i < pairs; ++i) {
    blocks.push_back(rbd::Structure::any_of(
        {rbd::Structure::component(2 * i),
         rbd::Structure::component(2 * i + 1)}));
  }
  return rbd::Structure::series(std::move(blocks));
}

void BM_RbdFormula(benchmark::State& state) {
  const auto pairs = static_cast<std::size_t>(state.range(0));
  const auto structure = chain_of_parallel_pairs(pairs);
  const std::vector<double> success(2 * pairs, 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(structure.success_probability(success));
  }
}
BENCHMARK(BM_RbdFormula)->Arg(2)->Arg(5)->Arg(10);

void BM_RbdEnumeration(benchmark::State& state) {
  const auto pairs = static_cast<std::size_t>(state.range(0));
  const auto structure = chain_of_parallel_pairs(pairs);
  const std::vector<double> success(2 * pairs, 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(structure.success_by_enumeration(success));
  }
}
BENCHMARK(BM_RbdEnumeration)->Arg(2)->Arg(5)->Arg(10);

void BM_TabularWorldCase(benchmark::State& state) {
  sim::TabularWorld world(core::paper::example_model(),
                          core::paper::trial_profile());
  stats::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.simulate_case(rng));
  }
}
BENCHMARK(BM_TabularWorldCase);

void BM_FeatureWorldCase(benchmark::State& state) {
  auto world = sim::reference_feature_world();
  world.set_adaptation_enabled(false);
  stats::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.simulate_case(rng));
  }
}
BENCHMARK(BM_FeatureWorldCase);

void BM_EstimateFromTrial(benchmark::State& state) {
  const auto cases = static_cast<std::uint64_t>(state.range(0));
  sim::TabularWorld world(core::paper::example_model(),
                          core::paper::trial_profile());
  sim::TrialRunner runner(world, cases);
  stats::Rng rng(3);
  const auto data = runner.run(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::estimate_sequential_model(data));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cases));
}
BENCHMARK(BM_EstimateFromTrial)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace
