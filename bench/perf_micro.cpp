// Experiment P1 — engineering microbenchmarks (google-benchmark): cost of
// model evaluation, decomposition, RBD evaluation (formula vs enumeration),
// simulation throughput, and the thread-scaling of the exec engine's
// Monte-Carlo hot paths (bootstrap, posterior propagation, trial
// simulation, threshold sweeps) at 1/2/4/8 threads. The scaling benches
// use UseRealTime so wall-clock speedup — the quantity the engine buys —
// is what the trajectory tracks; on an N-core machine the >=4-thread
// numbers should show close to min(4, N)x throughput.
#include <benchmark/benchmark.h>

#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "bench_profile.hpp"

#include "core/design_advisor.hpp"
#include "core/paper_example.hpp"
#include "core/tradeoff.hpp"
#include "core/tradeoff_shard.hpp"
#include "core/uncertainty.hpp"
#include "core/uncertainty_shard.hpp"
#include "exec/parallel.hpp"
#include "exec/shard.hpp"
#include "rbd/structure.hpp"
#include "sim/estimation.hpp"
#include "sim/feature_world.hpp"
#include "sim/parallel_world.hpp"
#include "sim/tabular_world.hpp"
#include "sim/trial.hpp"
#include "sim/trial_shard.hpp"
#include "stats/bootstrap.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hmdiv;

void BM_SequentialModelEq8(benchmark::State& state) {
  const auto model = core::paper::example_model();
  const auto profile = core::paper::field_profile();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.system_failure_probability(profile));
  }
}
BENCHMARK(BM_SequentialModelEq8);

void BM_SequentialModelDecompose(benchmark::State& state) {
  const auto model = core::paper::example_model();
  const auto profile = core::paper::field_profile();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.decompose(profile));
  }
}
BENCHMARK(BM_SequentialModelDecompose);

void BM_DesignAdvisorDiagnose(benchmark::State& state) {
  const core::DesignAdvisor advisor(core::paper::example_model(),
                                    core::paper::field_profile());
  for (auto _ : state) {
    benchmark::DoNotOptimize(advisor.diagnose());
  }
}
BENCHMARK(BM_DesignAdvisorDiagnose);

rbd::Structure chain_of_parallel_pairs(std::size_t pairs) {
  std::vector<rbd::Structure> blocks;
  for (std::size_t i = 0; i < pairs; ++i) {
    blocks.push_back(rbd::Structure::any_of(
        {rbd::Structure::component(2 * i),
         rbd::Structure::component(2 * i + 1)}));
  }
  return rbd::Structure::series(std::move(blocks));
}

void BM_RbdFormula(benchmark::State& state) {
  const auto pairs = static_cast<std::size_t>(state.range(0));
  const auto structure = chain_of_parallel_pairs(pairs);
  const std::vector<double> success(2 * pairs, 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(structure.success_probability(success));
  }
}
BENCHMARK(BM_RbdFormula)->Arg(2)->Arg(5)->Arg(10);

void BM_RbdEnumeration(benchmark::State& state) {
  const auto pairs = static_cast<std::size_t>(state.range(0));
  const auto structure = chain_of_parallel_pairs(pairs);
  const std::vector<double> success(2 * pairs, 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(structure.success_by_enumeration(success));
  }
}
BENCHMARK(BM_RbdEnumeration)->Arg(2)->Arg(5)->Arg(10);

void BM_TabularWorldCase(benchmark::State& state) {
  sim::TabularWorld world(core::paper::example_model(),
                          core::paper::trial_profile());
  stats::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.simulate_case(rng));
  }
}
BENCHMARK(BM_TabularWorldCase);

void BM_FeatureWorldCase(benchmark::State& state) {
  auto world = sim::reference_feature_world();
  world.set_adaptation_enabled(false);
  stats::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.simulate_case(rng));
  }
}
BENCHMARK(BM_FeatureWorldCase);

// --- Scalar vs batched kernels -------------------------------------------
// BM_TabularWorldCase above is the scalar per-case reference;
// BM_TabularWorldBatchKernel is the SoA kernel (bulk RNG + alias class
// sampling + hoisted tables) on the same world. The per-case ratio is the
// single-thread win of the batched path.

void BM_TabularWorldBatchKernel(benchmark::State& state) {
  sim::TabularWorld world(core::paper::example_model(),
                          core::paper::trial_profile());
  std::vector<sim::CaseRecord> records(sim::TrialRunner::kBatchSize);
  stats::Rng rng(1);
  for (auto _ : state) {
    world.simulate_batch(records, rng);
    benchmark::DoNotOptimize(records.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_TabularWorldBatchKernel);

void BM_ParallelWorldBatchKernel(benchmark::State& state) {
  auto base = sim::reference_feature_world();
  sim::ParallelProcedureWorld world(base.generator(), base.cadt(),
                                    base.reader());
  std::vector<sim::ParallelProcedureRecord> records(
      sim::TrialRunner::kBatchSize);
  stats::Rng rng(5);
  for (auto _ : state) {
    world.simulate_batch(records, rng);
    benchmark::DoNotOptimize(records.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_ParallelWorldBatchKernel);

// Whole-trial comparison: the scalar reference run (per-case virtual
// dispatch, one shared stream) against the batched engine run at one
// thread (same world, same case count). Their items/sec ratio is the
// throughput win the batched path buys before any parallelism.
void BM_TrialRunScalarReference(benchmark::State& state) {
  constexpr std::uint64_t kCases = 200'000;
  sim::TabularWorld world(core::paper::example_model(),
                          core::paper::trial_profile());
  sim::TrialRunner runner(world, kCases);
  for (auto _ : state) {
    stats::Rng rng(1234);
    benchmark::DoNotOptimize(runner.run(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kCases));
}
BENCHMARK(BM_TrialRunScalarReference)->Unit(benchmark::kMillisecond);

void BM_EstimateFromTrial(benchmark::State& state) {
  const auto cases = static_cast<std::uint64_t>(state.range(0));
  sim::TabularWorld world(core::paper::example_model(),
                          core::paper::trial_profile());
  sim::TrialRunner runner(world, cases);
  stats::Rng rng(3);
  const auto data = runner.run(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::estimate_sequential_model(data));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cases));
}
BENCHMARK(BM_EstimateFromTrial)->Arg(1000)->Arg(10000)->Arg(100000);

// --- Analytical sweep engine: scalar vs batched --------------------------
// BM_SweepScalarReference walks a 10k-point threshold grid through the
// documented scalar evaluate(); BM_SweepBatchKernel streams the same grid
// through the SoA evaluate_batch() at one thread. Both produce bit-identical
// operating points (enforced by SweepEngine tests), so the per-point ratio
// is the pure single-thread win of the batched kernel — the PR target is
// >= 3x. BM_SweepZeroAllocation adds the arena-backed sweep_into() path
// whose steady state performs no heap allocation.

core::TradeoffAnalyzer reference_sweep_analyzer() {
  core::BinormalMachine machine;
  machine.cancer_class_means = {2.2, 1.4, 3.0};
  machine.normal_class_means = {-0.3, 0.4};
  return core::TradeoffAnalyzer(
      machine,
      core::DemandProfile::from_weights({"obvious", "subtle", "textbook"},
                                        {0.55, 0.35, 0.10}),
      {{0.08, 0.45}, {0.25, 0.65}, {0.02, 0.30}},
      core::DemandProfile::from_weights({"clear", "confusing"}, {0.85, 0.15}),
      {{0.05, 0.01}, {0.28, 0.09}}, 0.008);
}

std::vector<double> sweep_grid(std::size_t points) {
  std::vector<double> thresholds(points);
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    thresholds[i] = -4.0 + 8.0 * static_cast<double>(i) /
                               static_cast<double>(thresholds.size() - 1);
  }
  return thresholds;
}

void BM_SweepScalarReference(benchmark::State& state) {
  const auto analyzer = reference_sweep_analyzer();
  const auto thresholds = sweep_grid(10'000);
  std::vector<core::SystemOperatingPoint> out(thresholds.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
      out[i] = analyzer.evaluate(thresholds[i]);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(thresholds.size()));
}
BENCHMARK(BM_SweepScalarReference);

void BM_SweepBatchKernel(benchmark::State& state) {
  const auto analyzer = reference_sweep_analyzer();
  const auto thresholds = sweep_grid(10'000);
  std::vector<core::SystemOperatingPoint> out(thresholds.size());
  for (auto _ : state) {
    analyzer.evaluate_batch(thresholds, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(thresholds.size()));
}
BENCHMARK(BM_SweepBatchKernel);

void BM_SweepZeroAllocation(benchmark::State& state) {
  const exec::Config config{static_cast<unsigned>(state.range(0))};
  const auto analyzer = reference_sweep_analyzer();
  const auto thresholds = sweep_grid(10'000);
  std::vector<core::SystemOperatingPoint> out(thresholds.size());
  for (auto _ : state) {
    analyzer.sweep_into(thresholds, out, config);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(thresholds.size()));
}
BENCHMARK(BM_SweepZeroAllocation)->Arg(1)->Arg(4)->UseRealTime();

void BM_MinimiseCostGrid(benchmark::State& state) {
  const exec::Config config{static_cast<unsigned>(state.range(0))};
  const auto analyzer = reference_sweep_analyzer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.minimise_cost(
        /*cost_fn=*/500.0, /*cost_fp=*/20.0, -4.0, 4.0, /*steps=*/20'000,
        config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          20'000);
}
BENCHMARK(BM_MinimiseCostGrid)->Arg(1)->Arg(4)->UseRealTime();

// --- Thread-scaling benchmarks -------------------------------------------
// Every BM_*Scaling bench runs the same deterministic workload with a
// thread budget of state.range(0); the outputs are bit-identical across
// rows, so any throughput delta is pure scheduling.

void BM_BootstrapScaling(benchmark::State& state) {
  const exec::Config config{static_cast<unsigned>(state.range(0))};
  std::vector<double> sample(400);
  stats::Rng fill(7);
  for (double& v : sample) v = fill.normal(1.0, 2.0);
  const auto trimmed_mean = [](std::span<const double> s) {
    // A statistic with some real per-replicate cost: 10% trimmed mean.
    std::vector<double> sorted(s.begin(), s.end());
    std::sort(sorted.begin(), sorted.end());
    const std::size_t trim = sorted.size() / 10;
    double total = 0.0;
    for (std::size_t i = trim; i < sorted.size() - trim; ++i) {
      total += sorted[i];
    }
    return total / static_cast<double>(sorted.size() - 2 * trim);
  };
  for (auto _ : state) {
    stats::Rng rng(42);
    benchmark::DoNotOptimize(
        stats::bootstrap_percentile(sample, trimmed_mean, rng, 2000, 0.95,
                                    config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2000);
}
BENCHMARK(BM_BootstrapScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_UncertaintyScaling(benchmark::State& state) {
  const exec::Config config{static_cast<unsigned>(state.range(0))};
  const core::PosteriorModelSampler sampler(
      {"easy", "difficult"},
      {core::ClassCounts{800, 56, 28, 40}, core::ClassCounts{200, 82, 74, 30}});
  const auto profile = core::paper::field_profile();
  for (auto _ : state) {
    stats::Rng rng(3);
    benchmark::DoNotOptimize(
        sampler.predict(profile, rng, 20'000, 0.95, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          20'000);
}
BENCHMARK(BM_UncertaintyScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Scalar per-draw reference path (predict_reference) vs the batched
// engine above: BM_UncertaintyScaling/1 ÷ BM_UncertaintyScalarReference/1
// is the PR 5 speedup figure recorded in BENCH_pr5_uq_engine.json. Both
// run the identical 20k-draw posterior-predictive workload.
void BM_UncertaintyScalarReference(benchmark::State& state) {
  const exec::Config config{static_cast<unsigned>(state.range(0))};
  const core::PosteriorModelSampler sampler(
      {"easy", "difficult"},
      {core::ClassCounts{800, 56, 28, 40}, core::ClassCounts{200, 82, 74, 30}});
  const auto profile = core::paper::field_profile();
  for (auto _ : state) {
    stats::Rng rng(3);
    benchmark::DoNotOptimize(
        sampler.predict_reference(profile, rng, 20'000, 0.95, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          20'000);
}
BENCHMARK(BM_UncertaintyScalarReference)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_TrialScaling(benchmark::State& state) {
  const exec::Config config{static_cast<unsigned>(state.range(0))};
  constexpr std::uint64_t kCases = 200'000;
  sim::TabularWorld world(core::paper::example_model(),
                          core::paper::trial_profile());
  sim::TrialRunner runner(world, kCases);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(1234, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kCases));
}
BENCHMARK(BM_TrialScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_TradeoffSweepScaling(benchmark::State& state) {
  const exec::Config config{static_cast<unsigned>(state.range(0))};
  core::BinormalMachine machine;
  machine.cancer_class_means = {2.0, 0.5};
  machine.normal_class_means = {-1.5, -0.5};
  const auto analyzer = core::TradeoffAnalyzer(
      machine,
      core::DemandProfile::from_weights({"easy-cancer", "hard-cancer"},
                                        {0.9, 0.1}),
      {{0.1, 0.5}, {0.3, 0.7}},
      core::DemandProfile::from_weights({"clear-normal", "odd-normal"},
                                        {0.8, 0.2}),
      {{0.1, 0.02}, {0.3, 0.1}}, 0.01);
  std::vector<double> thresholds(50'000);
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    thresholds[i] = -4.0 + 8.0 * static_cast<double>(i) /
                               static_cast<double>(thresholds.size() - 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.sweep(thresholds, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(thresholds.size()));
}
BENCHMARK(BM_TradeoffSweepScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- Process-sharding benches (PR 6) --------------------------------------
// Same fixed workloads as the BM_*Scaling benches above, fanned out over
// 1/2/4/8 worker *processes* (one thread each) through exec::ShardRunner.
// Output is bit-identical at every shard count, so the only quantity these
// track is wall-clock: on an N-core box the 4-shard rows should approach
// min(4, N)x; on a 1-core CI runner they stay flat and only the fan-out
// overhead (BM_ShardMergeOverhead) moves. The 1-shard rows run in-process
// — they are the no-spawn baseline the speedup is measured against.

exec::ShardOptions shard_options(unsigned shards, unsigned threads = 1) {
  exec::ShardOptions options;
  options.shards = shards;
  options.threads = threads;
  return options;
}

void BM_ShardTrialScaling(benchmark::State& state) {
  const auto options = shard_options(static_cast<unsigned>(state.range(0)));
  constexpr std::uint64_t kCases = 200'000;
  sim::TabularWorld world(core::paper::example_model(),
                          core::paper::trial_profile());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::run_trial_sharded(world, kCases, 1234, options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kCases));
}
BENCHMARK(BM_ShardTrialScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Processes x threads composition: a fixed budget of 4 lanes, split
// between the two levels of the hierarchy. All three rows compute the
// same bits; the spread is pure engine overhead.
void BM_ShardTrialComposition(benchmark::State& state) {
  const auto options =
      shard_options(static_cast<unsigned>(state.range(0)),
                    static_cast<unsigned>(state.range(1)));
  constexpr std::uint64_t kCases = 200'000;
  sim::TabularWorld world(core::paper::example_model(),
                          core::paper::trial_profile());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::run_trial_sharded(world, kCases, 1234, options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kCases));
}
BENCHMARK(BM_ShardTrialComposition)
    ->Args({1, 4})
    ->Args({2, 2})
    ->Args({4, 1})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ShardSweepScaling(benchmark::State& state) {
  const auto options = shard_options(static_cast<unsigned>(state.range(0)));
  core::BinormalMachine machine;
  machine.cancer_class_means = {2.0, 0.5};
  machine.normal_class_means = {-1.5, -0.5};
  const auto analyzer = core::TradeoffAnalyzer(
      machine,
      core::DemandProfile::from_weights({"easy-cancer", "hard-cancer"},
                                        {0.9, 0.1}),
      {{0.1, 0.5}, {0.3, 0.7}},
      core::DemandProfile::from_weights({"clear-normal", "odd-normal"},
                                        {0.8, 0.2}),
      {{0.1, 0.02}, {0.3, 0.1}}, 0.01);
  std::vector<double> thresholds(200'000);
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    thresholds[i] = -4.0 + 8.0 * static_cast<double>(i) /
                               static_cast<double>(thresholds.size() - 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::sweep_sharded(analyzer, thresholds, options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(thresholds.size()));
}
BENCHMARK(BM_ShardSweepScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ShardPosteriorScaling(benchmark::State& state) {
  const auto options = shard_options(static_cast<unsigned>(state.range(0)));
  core::ClassCounts easy;
  easy.cases = 800;
  easy.machine_failures = 56;
  easy.human_failures_given_machine_failed = 28;
  easy.human_failures_given_machine_succeeded = 40;
  core::ClassCounts difficult;
  difficult.cases = 200;
  difficult.machine_failures = 82;
  difficult.human_failures_given_machine_failed = 74;
  difficult.human_failures_given_machine_succeeded = 30;
  const core::PosteriorModelSampler sampler({"easy", "difficult"},
                                            {easy, difficult});
  const core::DemandProfile profile = core::paper::field_profile();
  constexpr std::size_t kDraws = 100'000;
  std::vector<double> draws(kDraws);
  for (auto _ : state) {
    stats::Rng rng(99);
    core::sample_failure_probabilities_sharded(sampler, profile, rng, draws,
                                               options);
    benchmark::DoNotOptimize(draws.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kDraws));
}
BENCHMARK(BM_ShardPosteriorScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Fan-out floor: a near-empty sweep, so the measurement is almost entirely
// pipe setup + fork/exec + frame round trip + merge + reap, per shard
// count. This is the fixed cost a workload must amortise to win from
// sharding.
void BM_ShardMergeOverhead(benchmark::State& state) {
  const auto options = shard_options(static_cast<unsigned>(state.range(0)));
  core::BinormalMachine machine;
  machine.cancer_class_means = {2.0, 0.5};
  machine.normal_class_means = {-1.5, -0.5};
  const auto analyzer = core::TradeoffAnalyzer(
      machine,
      core::DemandProfile::from_weights({"easy-cancer", "hard-cancer"},
                                        {0.9, 0.1}),
      {{0.1, 0.5}, {0.3, 0.7}},
      core::DemandProfile::from_weights({"clear-normal", "odd-normal"},
                                        {0.8, 0.2}),
      {{0.1, 0.02}, {0.3, 0.1}}, 0.01);
  std::vector<double> thresholds(64);
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    thresholds[i] = -4.0 + 8.0 * static_cast<double>(i) / 63.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::sweep_sharded(analyzer, thresholds, options));
  }
}
BENCHMARK(BM_ShardMergeOverhead)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: google-benchmark rejects unknown flags, so the shared
// --profile/--profile-csv arguments are consumed by the ProfileGuard and
// stripped from argv before benchmark::Initialize sees them.
int main(int argc, char** argv) {
  // The shard benches re-exec this binary as their worker image.
  if (hmdiv::exec::shard_worker_requested(argc, argv)) {
    return hmdiv::exec::shard_worker_main();
  }
  const hmdiv::benchutil::ProfileGuard profile(argc, argv);
  std::vector<char*> kept;
  kept.reserve(static_cast<std::size_t>(argc));
  kept.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profile") continue;
    if (arg == "--profile-csv" && i + 1 < argc) {
      ++i;
      continue;
    }
    kept.push_back(argv[i]);
  }
  int kept_argc = static_cast<int>(kept.size());
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
