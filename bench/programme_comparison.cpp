// Experiment X2 — the more complex programmes of the paper's Conclusions:
// two readers + CADT, less-qualified readers + CADT, UK-style double
// reading, with and without arbitration — compared on one simulated
// screened population (field mix, 0.7% prevalence) for sensitivity,
// specificity, recall rate, PPV, workload and cost.
//
// Also cross-checks the closed-form TwoReadersWithCadtModel against the
// simulation, including the error of assuming the two readers fail
// independently despite sharing one machine.
#include <cmath>
#include <iostream>

#include "bench_profile.hpp"
#include "core/multi_reader.hpp"
#include "sim/two_reader_world.hpp"
#include "report/format.hpp"
#include "report/table.hpp"
#include "screening/policies.hpp"
#include "screening/population.hpp"
#include "screening/programme.hpp"
#include "sim/feature_world.hpp"
#include "sim/ground_truth.hpp"

int main(int argc, char** argv) {
  using namespace hmdiv;
  using report::fixed;
  const benchutil::ProfileGuard profile(argc, argv);

  const auto world = sim::reference_feature_world();
  auto population = screening::PopulationGenerator::reference(0.007);
  const screening::CostModel costs;

  auto policies = screening::standard_policies(world.reader(), world.cadt());
  stats::Rng rng(777);
  const auto results = screening::compare_policies(population, policies,
                                                   300000, costs, rng);

  std::cout << "== X2: programme comparison (300k screened, prevalence 0.7%) "
               "==\n";
  report::Table table({"policy", "sens", "spec", "recall", "PPV", "CDR/1000",
                       "reads/case", "cost/case"});
  for (const auto& r : results) {
    table.row({r.policy_name, fixed(r.metrics.sensitivity, 3),
               fixed(r.metrics.specificity, 3),
               report::percent(r.metrics.recall_rate, 2),
               fixed(r.metrics.ppv, 3),
               fixed(r.metrics.cancer_detection_rate_per_1000, 2),
               fixed(r.metrics.readings_per_case, 2),
               fixed(r.cost_per_case, 2)});
  }
  std::cout << table << '\n';

  // Closed-form check: two readers sharing a CADT, from the ground-truth
  // parameters of the mechanistic world.
  auto frozen = sim::reference_feature_world();
  frozen.set_adaptation_enabled(false);
  stats::Rng truth_rng(778);
  const auto truth = sim::ground_truth_model(frozen, truth_rng, 200000);
  std::vector<double> p_mf(2);
  std::vector<core::ReaderConditional> reader(2);
  for (std::size_t x = 0; x < 2; ++x) {
    p_mf[x] = truth.parameters(x).p_machine_fails;
    reader[x].p_fail_given_machine_fails =
        truth.parameters(x).p_human_fails_given_machine_fails;
    reader[x].p_fail_given_machine_succeeds =
        truth.parameters(x).p_human_fails_given_machine_succeeds;
  }
  const core::TwoReadersWithCadtModel pair({"easy", "difficult"}, p_mf,
                                           reader, reader);
  const core::DemandProfile trial_mix({"easy", "difficult"}, {0.8, 0.2});
  const double exact = pair.system_failure_probability(trial_mix);
  const double naive =
      pair.system_failure_assuming_reader_independence(trial_mix);
  const double single =
      pair.reader_a_alone().system_failure_probability(trial_mix);
  // The joint failure with the shared *within-class* residual difficulty
  // included — stricter than the conditional-independence closed form.
  sim::TwoReaderWorld pair_world(frozen.generator(), frozen.cadt(),
                                 frozen.reader(), frozen.reader());
  stats::Rng joint_rng(779);
  const double joint =
      pair_world.exact_system_failure(trial_mix, joint_rng, 200000);
  report::Table closed({"quantity", "P(false negative)"});
  closed.caption("Closed-form two-readers-with-CADT (cancer cases)");
  closed.row({"single reader + CADT", fixed(single, 4)});
  closed.row({"two readers + CADT, fully naive independence", fixed(naive, 4)});
  closed.row({"two readers + CADT, independent given class+machine",
              fixed(exact, 4)});
  closed.row({"two readers + CADT, exact joint (shared difficulty)",
              fixed(joint, 4)});
  closed.row({"optimism of full independence",
              report::percent((joint - naive) / joint, 1)});
  closed.row({"optimism left even conditioning on class+machine",
              report::percent((joint - exact) / joint, 1)});
  std::cout << closed << '\n';

  // Shape checks on the simulation: orderings the screening literature (and
  // the paper's discussion) expect.
  auto find = [&](const std::string& name) -> const screening::ProgrammeResult& {
    for (const auto& r : results) {
      if (r.policy_name == name) return r;
    }
    throw std::logic_error("missing policy " + name);
  };
  const auto& single_reader = find("single reader");
  const auto& with_cadt = find("reader + CADT");
  const auto& double_reading = find("double reading");
  const auto& two_with_cadt = find("two readers + CADT");
  const auto& junior_cadt = find("less-qualified reader + CADT");

  const bool cadt_helps_sensitivity =
      with_cadt.metrics.sensitivity > single_reader.metrics.sensitivity;
  const bool double_beats_single =
      double_reading.metrics.sensitivity > single_reader.metrics.sensitivity;
  const bool pair_best =
      two_with_cadt.metrics.sensitivity >= with_cadt.metrics.sensitivity &&
      two_with_cadt.metrics.sensitivity >=
          double_reading.metrics.sensitivity - 0.02;
  const bool junior_below_senior =
      junior_cadt.metrics.sensitivity < with_cadt.metrics.sensitivity;
  const bool closed_form_ok = exact > naive && exact < single &&
                              joint > exact;

  std::cout << "CADT raises single-reader sensitivity: "
            << (cadt_helps_sensitivity ? "PASS" : "FAIL") << '\n'
            << "Double reading beats single reading on sensitivity: "
            << (double_beats_single ? "PASS" : "FAIL") << '\n'
            << "Two readers + CADT is the most sensitive configuration: "
            << (pair_best ? "PASS" : "FAIL") << '\n'
            << "Less-qualified reader + CADT < qualified reader + CADT: "
            << (junior_below_senior ? "PASS" : "FAIL") << '\n'
            << "Shared machine makes reader-independence optimistic: "
            << (closed_form_ok ? "PASS" : "FAIL") << "\n\n";
  return cadt_helps_sensitivity && double_beats_single && pair_best &&
                 junior_below_senior && closed_form_ok
             ? 0
             : 1;
}
