// Experiment X7 — the Conclusions' proposed study, in the paper's own
// formalism: "how alternative settings (compromises between false negative
// and false positive rates) of the CADT would affect the whole system's
// false negative and false positive rates."
//
// Unlike X1 (which sweeps a mechanistic binormal machine), this bench works
// purely at the model level: the FP side is a second SequentialModel with
// the identical equations (machine failure = false prompt, human failure =
// false recall), combined with the FN side at screening prevalence. Machine
// re-tunings scale the two machine failure probabilities in opposite
// directions; reader drift and environment changes propagate to both modes.
#include <cmath>
#include <iostream>

#include "core/analysis_report.hpp"
#include "core/dual_model.hpp"
#include "report/format.hpp"
#include "report/table.hpp"

int main() {
  using namespace hmdiv;
  using namespace hmdiv::core;
  using report::fixed;

  const DualModel dual = example_dual_model(0.007);

  std::cout << "== X7: both failure modes from the sequential formalism ==\n";
  const auto base = dual.performance();
  report::Table table({"scenario", "FN rate", "FP rate", "sens", "spec",
                       "recall", "PPV", "cost/case"});
  const OutcomeCosts costs;
  struct Row {
    const char* label;
    DualModel model;
  };
  const Row rows[] = {
      {"as configured", dual},
      {"machine eager (FN x0.5, FP x2)", dual.with_machine_retuned(0.5, 2.0)},
      {"machine strict (FN x2, FP x0.5)", dual.with_machine_retuned(2.0, 0.5)},
      {"readers 20% worse, both modes", dual.with_reader_drift(1.2, 1.2)},
      {"trial-like case mixes",
       dual.with_environment(
           DemandProfile({"easy", "difficult"}, {0.8, 0.2}),
           DemandProfile({"typical", "complex"}, {0.6, 0.4}), 0.007)},
  };
  for (const Row& r : rows) {
    const auto p = r.model.performance();
    table.row({r.label, fixed(p.false_negative_rate, 3),
               fixed(p.false_positive_rate, 3), fixed(p.sensitivity, 3),
               fixed(p.specificity, 3), report::percent(p.recall_rate, 2),
               fixed(p.ppv, 3),
               fixed(r.model.expected_cost_per_case(costs), 3)});
  }
  std::cout << table << '\n';

  std::cout << dual_analysis_report(dual, costs, /*markdown=*/false) << '\n';

  const auto eager = dual.with_machine_retuned(0.5, 2.0).performance();
  const auto strict = dual.with_machine_retuned(2.0, 0.5).performance();
  const bool tradeoff_ok = eager.sensitivity > base.sensitivity &&
                           eager.specificity < base.specificity &&
                           strict.sensitivity < base.sensitivity &&
                           strict.specificity > base.specificity;
  // The FN side still floors at E[PHf|Ms]: even "free" eagerness can't push
  // FN below the human response floor.
  const double fn_floor =
      dual.fn_model().failure_floor(dual.fn_profile());
  const double fn_at_perfect_machine =
      dual.with_machine_retuned(0.0, 1.0).performance().false_negative_rate;
  const bool floored = std::fabs(fn_at_perfect_machine - fn_floor) < 1e-12;
  const bool drift_hurts_both =
      rows[3].model.performance().sensitivity < base.sensitivity &&
      rows[3].model.performance().specificity < base.specificity;
  std::cout << "Re-tuning trades the two system failure modes: "
            << (tradeoff_ok ? "PASS" : "FAIL") << '\n'
            << "FN rate floors at E[PHf|Ms] = " << fixed(fn_floor, 3)
            << " under a perfect machine: " << (floored ? "PASS" : "FAIL")
            << '\n'
            << "Reader drift degrades both modes at once: "
            << (drift_hurts_both ? "PASS" : "FAIL") << "\n\n";
  return tradeoff_ok && floored && drift_hurts_both ? 0 : 1;
}
