// Experiment E10 — Section 6.2 / Eq. (10): the covariance between PMf(x)
// and t(x) over the demand profile separates the true system failure
// probability from the mean-field ("averages only") estimate.
//
// Part 1: the decomposition on the paper example.
// Part 2: a controlled sweep — families of two-class models engineered to
// share E[PMf] and E[t] exactly, differing only in how PMf aligns with t.
// The mean-field estimate is constant across the family; the true failure
// probability moves with the covariance, from "diversity wins" (negative)
// to "correlated weakness" (positive).
#include <cmath>
#include <iostream>

#include "core/paper_example.hpp"
#include "report/format.hpp"
#include "report/table.hpp"

int main() {
  using namespace hmdiv;
  using report::fixed;

  std::cout << "== E10 part 1: Eq. (10) on the paper example ==\n";
  const auto model = core::paper::example_model();
  report::Table part1({"profile", "floor E[PHf|Ms]", "E[PMf]*E[t]",
                       "cov(PMf,t)", "total", "Eq. (8)"});
  bool identity_ok = true;
  for (const auto& [name, profile] :
       {std::pair{"Trial", core::paper::trial_profile()},
        std::pair{"Field", core::paper::field_profile()}}) {
    const auto d = model.decompose(profile);
    const double eq8 = model.system_failure_probability(profile);
    part1.row({name, fixed(d.floor, 4), fixed(d.mean_field, 4),
               fixed(d.covariance, 4), fixed(d.total(), 4), fixed(eq8, 4)});
    identity_ok = identity_ok && std::fabs(d.total() - eq8) < 1e-12;
  }
  std::cout << part1 << '\n';

  std::cout << "== E10 part 2: same averages, different alignment ==\n"
            << "Two classes, p = (0.5, 0.5); PMf in {lo, hi} and t in\n"
            << "{0.1, 0.7} — assigning high PMf to the high-t class flips\n"
            << "the covariance sign while E[PMf] and E[t] stay fixed.\n\n";
  report::Table part2({"alignment", "E[PMf]", "E[t]", "cov(PMf,t)",
                       "mean-field PHf", "true PHf"});
  const core::DemandProfile half({"a", "b"}, {0.5, 0.5});
  const double floor_term = 0.2;  // PHf|Ms on both classes
  auto build = [&](double pmf_a, double pmf_b, double t_a, double t_b) {
    core::ClassConditional a, b;
    a.p_machine_fails = pmf_a;
    a.p_human_fails_given_machine_succeeds = floor_term;
    a.p_human_fails_given_machine_fails = floor_term + t_a;
    b.p_machine_fails = pmf_b;
    b.p_human_fails_given_machine_succeeds = floor_term;
    b.p_human_fails_given_machine_fails = floor_term + t_b;
    return core::SequentialModel({"a", "b"}, {a, b});
  };
  struct Variant {
    const char* label;
    double pmf_a, pmf_b;
  };
  const Variant variants[] = {
      {"diverse (high PMf on low-t class)", 0.45, 0.05},
      {"uncorrelated (equal PMf)", 0.25, 0.25},
      {"correlated (high PMf on high-t class)", 0.05, 0.45},
  };
  bool sweep_ok = true;
  double previous_true = -1.0;
  for (const Variant& v : variants) {
    const core::SequentialModel m = build(v.pmf_a, v.pmf_b, 0.1, 0.7);
    const auto d = m.decompose(half);
    const double mean_field = d.floor + d.mean_field;
    const double truth = m.system_failure_probability(half);
    part2.row({v.label, fixed(m.machine_failure_probability(half), 3),
               fixed(m.mean_importance_index(half), 3),
               fixed(d.covariance, 4), fixed(mean_field, 4), fixed(truth, 4)});
    // Monotone in the covariance; mean-field constant across the family.
    sweep_ok = sweep_ok && truth > previous_true - 1e-12 &&
               std::fabs(mean_field - (floor_term + 0.25 * 0.4)) < 1e-9;
    previous_true = truth;
  }
  std::cout << part2 << '\n';

  std::cout << "Eq. (10) total == Eq. (8), both profiles: "
            << (identity_ok ? "PASS" : "FAIL") << '\n'
            << "True PHf rises with cov(PMf,t) at fixed averages; mean-field "
               "estimate blind to it: "
            << (sweep_ok ? "PASS" : "FAIL") << "\n\n";
  return identity_ok && sweep_ok ? 0 : 1;
}
