// cluster_pipeline — latency-hiding bench for the pipelined cluster
// scheduler (DESIGN.md §16, PR 10).
//
// The PR 9 scaling bench (cluster_load) measures fan-out on a zero-RTT
// loopback, where a lockstep request/reply loop looks fine because the
// network round trip is ~free. This bench makes the round trip *expensive*
// on purpose — every worker runs with HMDIV_SHARD_FAULT="delay:*:<ms>",
// so each shard reply ships `ms` late, emulating a WAN link — and then
// sweeps the task-window depth. At window=1 the coordinator pays the full
// RTT between consecutive tasks on each connection; at window=4 up to four
// tasks are in flight per worker and the RTT hides behind compute.
//
// Matrix: window ∈ {1, 2, 4} × injected delay ∈ {0, 2 ms}, 4 loopback
// workers, shards=0 (adaptive micro-tasking picks the task grain). Every
// cell's sweep output is compared bit-for-bit against the in-process
// single-thread baseline — the exit code is non-zero only on a mismatch
// or a transport failure, never on a missed speedup. The headline figure,
// `pipeline_speedup_at_delay` (window=4 throughput ÷ window=1 throughput
// at the injected RTT), lands in BENCH_pr10_cluster_pipeline.json; the
// PR 10 target is >= 2x on any box, single-core included, because the
// win comes from overlapping *sleeps*, not from extra cores.
//
//   cluster_pipeline [--grid-steps N] [--delay-ms N] [--serve-bin PATH]
//                    [--out FILE]
//
// The daemon binary resolves from --serve-bin, then $HMDIV_SERVE_BIN,
// then ../src/cli/hmdiv_serve next to this binary (the build layout).
#include <sys/wait.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/paper_example.hpp"
#include "core/tradeoff.hpp"
#include "core/tradeoff_shard.hpp"
#include "exec/cluster.hpp"
#include "exec/config.hpp"

namespace {

using namespace hmdiv;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// One spawned `hmdiv_serve --example` worker on an ephemeral port. The
/// child inherits the parent's environment, so setting HMDIV_SHARD_FAULT
/// around spawn() injects the delay fault into every worker of a fleet.
struct Daemon {
  pid_t pid = -1;
  int port = 0;

  [[nodiscard]] bool spawn(const std::string& binary) {
    int out_pipe[2];
    if (::pipe(out_pipe) != 0) return false;
    pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      ::dup2(out_pipe[1], STDOUT_FILENO);
      ::close(out_pipe[0]);
      ::close(out_pipe[1]);
      ::execl(binary.c_str(), binary.c_str(), "--example", "--port", "0",
              "--threads", "1", "--no-obs", static_cast<char*>(nullptr));
      ::_exit(127);
    }
    ::close(out_pipe[1]);
    std::string banner;
    char chunk[256];
    while (banner.find('\n') == std::string::npos) {
      const ssize_t got = ::read(out_pipe[0], chunk, sizeof chunk);
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) break;
      banner.append(chunk, static_cast<std::size_t>(got));
    }
    ::close(out_pipe[0]);
    const std::size_t newline = banner.find('\n');
    const std::size_t colon =
        newline == std::string::npos ? std::string::npos
                                     : banner.rfind(':', newline);
    if (colon != std::string::npos) port = std::atoi(banner.c_str() + colon + 1);
    return port > 0;
  }

  void stop() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }
};

std::string default_serve_binary(const char* argv0) {
  if (const char* env = std::getenv("HMDIV_SERVE_BIN");
      env != nullptr && *env != '\0') {
    return env;
  }
  std::string self(argv0);
  char resolved[4096];
  const ssize_t n = ::readlink("/proc/self/exe", resolved, sizeof resolved - 1);
  if (n > 0) {
    resolved[n] = '\0';
    self = resolved;
  }
  const std::size_t slash = self.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/../src/cli/hmdiv_serve";
}

core::TradeoffAnalyzer reference_analyzer() {
  core::BinormalMachine machine;
  machine.cancer_class_means = {2.0, 0.8};
  machine.normal_class_means = {-2.0, -0.5};
  core::DemandProfile cancers({"easy", "difficult"}, {0.9, 0.1});
  std::vector<core::HumanFnResponse> fn(2);
  fn[0] = {0.14, 0.18};
  fn[1] = {0.4, 0.9};
  core::DemandProfile normals({"typical", "complex"}, {0.85, 0.15});
  std::vector<core::HumanFpResponse> fp(2);
  fp[0] = {0.10, 0.02};
  fp[1] = {0.35, 0.12};
  return core::TradeoffAnalyzer(std::move(machine), std::move(cancers),
                                std::move(fn), std::move(normals),
                                std::move(fp), 0.01);
}

bool points_equal(const std::vector<core::SystemOperatingPoint>& a,
                  const std::vector<core::SystemOperatingPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i].system_fn) !=
            std::bit_cast<std::uint64_t>(b[i].system_fn) ||
        std::bit_cast<std::uint64_t>(a[i].system_fp) !=
            std::bit_cast<std::uint64_t>(b[i].system_fp) ||
        std::bit_cast<std::uint64_t>(a[i].ppv) !=
            std::bit_cast<std::uint64_t>(b[i].ppv)) {
      return false;
    }
  }
  return true;
}

struct CellResult {
  unsigned window = 0;
  unsigned delay_ms = 0;
  double sweep_ms = 0;
  bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  constexpr unsigned kWorkers = 4;
  // Small enough that serialization overhead doesn't drown the injected
  // RTT (the quantity under test); cluster_load covers compute scaling.
  std::size_t grid_steps = 10'000;
  unsigned delay_ms = 2;
  std::string out_path = "BENCH_pr10_cluster_pipeline.json";
  std::string serve_bin;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "cluster_pipeline: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--grid-steps") {
      grid_steps = static_cast<std::size_t>(std::stoull(next()));
    } else if (arg == "--delay-ms") {
      delay_ms = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--serve-bin") {
      serve_bin = next();
    } else {
      std::cerr << "cluster_pipeline: unknown flag '" << arg << "'\n";
      return 2;
    }
  }
  if (serve_bin.empty()) serve_bin = default_serve_binary(argv[0]);

  const core::TradeoffAnalyzer analyzer = reference_analyzer();
  std::vector<double> thresholds(grid_steps);
  for (std::size_t i = 0; i < grid_steps; ++i) {
    thresholds[i] = -4.0 + 8.0 * static_cast<double>(i) /
                               static_cast<double>(grid_steps - 1);
  }

  const auto baseline_start = Clock::now();
  const auto sweep_reference = analyzer.sweep(thresholds, exec::Config{1});
  const double baseline_ms = ms_since(baseline_start);

  std::vector<CellResult> cells;
  bool all_identical = true;
  bool transport_ok = true;
  for (const unsigned delay : {0u, delay_ms}) {
    // One 4-worker fleet per delay setting; the fault rides in on the
    // inherited environment and is scrubbed again before the parent does
    // anything else.
    const std::string fault = "delay:*:" + std::to_string(delay);
    if (delay > 0) ::setenv("HMDIV_SHARD_FAULT", fault.c_str(), 1);
    std::vector<Daemon> daemons(kWorkers);
    std::vector<std::string> addresses;
    bool spawned = true;
    for (Daemon& daemon : daemons) {
      if (!daemon.spawn(serve_bin)) {
        spawned = false;
        break;
      }
      addresses.push_back("127.0.0.1:" + std::to_string(daemon.port));
    }
    ::unsetenv("HMDIV_SHARD_FAULT");
    if (!spawned) {
      std::cerr << "cluster_pipeline: failed to spawn '" << serve_bin << "'\n";
      for (Daemon& daemon : daemons) daemon.stop();
      return 1;
    }

    for (const unsigned window : {1u, 2u, 4u}) {
      CellResult cell;
      cell.window = window;
      cell.delay_ms = delay;
      try {
        exec::ClusterOptions options;
        options.workers = addresses;
        options.shards = 0;  // adaptive micro-tasking picks the grain
        options.threads = 1;
        options.window = window;
        exec::ClusterRunner cluster(std::move(options));
        const auto cell_start = Clock::now();
        const auto swept =
            core::sweep_clustered(analyzer, thresholds, cluster);
        cell.sweep_ms = ms_since(cell_start);
        cell.identical = points_equal(swept, sweep_reference);
      } catch (const std::exception& e) {
        std::cerr << "cluster_pipeline: window " << window << " delay "
                  << delay << "ms: " << e.what() << "\n";
        transport_ok = false;
      }
      if (!cell.identical) all_identical = false;
      cells.push_back(cell);
      if (!transport_ok) break;
    }
    for (Daemon& daemon : daemons) daemon.stop();
    if (!transport_ok) break;
  }

  // Headline: throughput ratio of window=4 over window=1 at the injected
  // RTT — the latency actually hidden by pipelining.
  double w1_delay_ms = 0;
  double w4_delay_ms = 0;
  for (const CellResult& cell : cells) {
    if (cell.delay_ms != delay_ms) continue;
    if (cell.window == 1) w1_delay_ms = cell.sweep_ms;
    if (cell.window == 4) w4_delay_ms = cell.sweep_ms;
  }
  const double pipeline_speedup =
      w4_delay_ms > 0 ? w1_delay_ms / w4_delay_ms : 0.0;

  std::string json = "{\"bench\":\"pr10_cluster_pipeline\",";
  json += "\"grid_steps\":" + std::to_string(grid_steps) + ",";
  json += "\"workers\":" + std::to_string(kWorkers) + ",";
  json += "\"delay_ms\":" + std::to_string(delay_ms) + ",";
  json += "\"hardware_threads\":" +
          std::to_string(std::thread::hardware_concurrency()) + ",";
  json += "\"inprocess_sweep_ms\":" + std::to_string(baseline_ms) + ",";
  json += "\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    if (i != 0) json += ',';
    json += "{\"window\":" + std::to_string(cell.window) +
            ",\"delay_ms\":" + std::to_string(cell.delay_ms) +
            ",\"sweep_ms\":" + std::to_string(cell.sweep_ms) +
            ",\"bitwise_identical\":" + (cell.identical ? "true" : "false") +
            "}";
  }
  json += "],\"pipeline_speedup_at_delay\":" +
          std::to_string(pipeline_speedup) + ",";
  json += "\"all_bitwise_identical\":";
  json += all_identical ? "true" : "false";
  json += "}";

  std::cout << json << "\n";
  std::ofstream out(out_path);
  if (out) out << json << "\n";

  if (!transport_ok || !all_identical) {
    std::cerr << "cluster_pipeline: FAILED (transport_ok=" << transport_ok
              << ", all_bitwise_identical=" << all_identical << ")\n";
    return 1;
  }
  std::cout << "cluster_pipeline: OK — every window x delay cell "
               "bit-identical; window=4 vs window=1 at " << delay_ms
            << "ms RTT: " << pipeline_speedup << "x\n";
  return 0;
}
