// Experiment X4 — the paper's §6.2 caveat and footnote 1, made executable.
//
// Part 1 (spurious coherence): two subclasses on which the reader is
// completely machine-blind (t = 0 within each) aggregate into one class
// with a strictly positive "importance index" — because conditioning on
// machine success selects the easier sub-cases. As the paper says: regard
// t(x) as a *coherence* index unless the classes are homogeneous.
//
// Part 2 (extrapolation bias): coarse-class parameters measured in a trial
// extrapolate *exactly* when the within-class mixture is the same in the
// field, and are biased when it shifts — footnote 1's soundness condition.
// Fine-class extrapolation is exact in both cases.
#include <cmath>
#include <iostream>

#include "core/aggregation.hpp"
#include "report/format.hpp"
#include "report/table.hpp"

int main() {
  using namespace hmdiv;
  using namespace hmdiv::core;
  using report::fixed;

  std::cout << "== X4 part 1: a mixture fakes coherence ==\n";
  const auto demo = spurious_coherence_demo();
  const auto coarse = coarsen(demo.fine_model, demo.fine_profile,
                              demo.partition);
  report::Table part1({"view", "PMf", "PHf|Mf", "PHf|Ms", "t"});
  for (std::size_t x = 0; x < demo.fine_model.class_count(); ++x) {
    const auto& c = demo.fine_model.parameters(x);
    part1.row({"fine: " + demo.fine_model.class_names()[x],
               fixed(c.p_machine_fails, 3),
               fixed(c.p_human_fails_given_machine_fails, 3),
               fixed(c.p_human_fails_given_machine_succeeds, 3),
               fixed(demo.fine_model.importance_index(x), 3)});
  }
  const auto& cc = coarse.model.parameters(0);
  part1.row({"coarse: " + coarse.model.class_names()[0],
             fixed(cc.p_machine_fails, 3),
             fixed(cc.p_human_fails_given_machine_fails, 3),
             fixed(cc.p_human_fails_given_machine_succeeds, 3),
             fixed(coarse.model.importance_index(0), 3)});
  std::cout << part1 << '\n';
  const double spurious_t = coarse.model.importance_index(0);
  std::cout << "Within both subclasses t = 0 (reader ignores the machine),\n"
            << "yet the aggregated class shows t = " << fixed(spurious_t, 3)
            << " — pure selection effect. A designer chasing this 't' would\n"
            << "waste the machine-improvement budget: PHf here is immune to\n"
            << "PMf by construction.\n\n";

  // Check: the coarse view is still *predictively* exact under the same
  // fine mixture (it is the infinite-data coarse estimate).
  const double fine_failure =
      demo.fine_model.system_failure_probability(demo.fine_profile);
  const double coarse_failure =
      coarse.model.system_failure_probability(coarse.profile);
  const bool coarse_exact_in_place =
      std::fabs(fine_failure - coarse_failure) < 1e-12;

  std::cout << "== X4 part 2: extrapolation bias from a hidden mix shift ==\n";
  // Four fine classes; the analyst only sees two coarse ones ("low", "high"
  // suspicion). Trial and field share the coarse mix but differ in the
  // hidden within-class composition.
  ClassConditional low_easy{0.03, 0.12, 0.10};
  ClassConditional low_hard{0.20, 0.45, 0.25};
  ClassConditional high_easy{0.25, 0.60, 0.30};
  ClassConditional high_hard{0.55, 0.92, 0.45};
  const SequentialModel fine(
      {"low-easy", "low-hard", "high-easy", "high-hard"},
      {low_easy, low_hard, high_easy, high_hard});
  ClassPartition partition;
  partition.coarse_names = {"low", "high"};
  partition.group_of = {0, 0, 1, 1};

  // Trial: within "low", 75% easy; within "high", 60% easy.
  const DemandProfile trial(fine.class_names(), {0.60, 0.20, 0.12, 0.08});
  // Field A: identical within-class mixture (coarse mix also identical).
  const DemandProfile field_same(fine.class_names(), {0.60, 0.20, 0.12, 0.08});
  // Field B: same coarse mix (0.8 low / 0.2 high) but the hidden
  // composition shifted: "low" now 50/50, "high" now 25/75.
  const DemandProfile field_shifted(fine.class_names(),
                                    {0.40, 0.40, 0.05, 0.15});

  report::Table part2({"field scenario", "true PHf", "coarse prediction",
                       "bias"});
  const auto same = aggregation_bias(fine, trial, field_same, partition);
  const auto shifted = aggregation_bias(fine, trial, field_shifted, partition);
  part2.row({"same hidden mixture", fixed(same.fine_field_failure, 4),
             fixed(same.coarse_field_prediction, 4), fixed(same.bias(), 4)});
  part2.row({"shifted hidden mixture", fixed(shifted.fine_field_failure, 4),
             fixed(shifted.coarse_field_prediction, 4),
             fixed(shifted.bias(), 4)});
  std::cout << part2 << '\n';
  std::cout << "Both field scenarios present the SAME coarse demand profile\n"
            << "(0.8 low / 0.2 high): the coarse analyst cannot tell them\n"
            << "apart, yet the true failure probabilities differ by "
            << fixed(std::fabs(shifted.fine_field_failure -
                               same.fine_field_failure), 4)
            << ".\nThis is footnote 1's condition: class parameters travel\n"
            << "between environments only if classes are homogeneous enough\n"
            << "that their hidden composition cannot shift.\n\n";

  const bool part1_ok = spurious_t > 0.05 && coarse_exact_in_place;
  const bool part2_ok = std::fabs(same.bias()) < 1e-12 &&
                        std::fabs(shifted.bias()) > 0.005;
  std::cout << "Aggregating machine-blind subclasses fakes t > 0, while "
               "in-place prediction stays exact: "
            << (part1_ok ? "PASS" : "FAIL") << '\n'
            << "Coarse extrapolation exact without mix shift, biased with "
               "it: "
            << (part2_ok ? "PASS" : "FAIL") << "\n\n";
  return part1_ok && part2_ok ? 0 : 1;
}
