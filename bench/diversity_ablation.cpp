// Experiment X6 — ablation of the diversity knob (Section 2.2): "An
// algorithm which were especially good at detecting those cancers that are
// most difficult for readers to detect could be very useful, even if it
// were much less good on most other cancers."
//
// The mechanistic world's per-class human/machine difficulty correlation is
// swept from strongly anti-correlated (machine strong exactly where the
// human is weak: engineered diversity) to strongly correlated (shared
// weakness). The machine's *marginal* failure probability is nearly
// constant across the sweep — only the alignment changes — yet the system
// failure probability falls monotonically as diversity increases.
#include <iostream>

#include "report/format.hpp"
#include "report/table.hpp"
#include "sim/feature_world.hpp"
#include "sim/ground_truth.hpp"

int main() {
  using namespace hmdiv;
  using report::fixed;

  const auto base = sim::reference_feature_world();
  const core::DemandProfile profile({"easy", "difficult"}, {0.8, 0.2});

  std::cout << "== X6: human-machine difficulty correlation sweep ==\n";
  report::Table table({"correlation", "PMf (marginal)", "PHf|Mf(diff)",
                       "PHf|Ms(diff)", "t(diff)", "system PHf"});
  std::vector<double> failures;
  std::vector<double> machine_failures;
  for (const double rho : {-0.9, -0.6, -0.3, 0.0, 0.3, 0.6, 0.9}) {
    // Same marginal difficulty distributions; only the alignment changes.
    auto generator = base.generator();
    std::vector<sim::CaseClassSpec> specs;
    for (std::size_t x = 0; x < generator.class_count(); ++x) {
      sim::CaseClassSpec spec = generator.spec(x);
      spec.difficulty_correlation = rho;
      specs.push_back(spec);
    }
    sim::FeatureWorld world(sim::CaseGenerator(specs, profile), base.cadt(),
                            base.reader());
    world.set_adaptation_enabled(false);
    stats::Rng rng(24680);  // same difficulty stream for every rho
    const auto truth = sim::ground_truth_model(world, rng, 200000);
    const double system_failure = truth.system_failure_probability(profile);
    const double machine_failure =
        truth.machine_failure_probability(profile);
    table.row({fixed(rho, 1), fixed(machine_failure, 4),
               fixed(truth.parameters(1).p_human_fails_given_machine_fails, 3),
               fixed(truth.parameters(1).p_human_fails_given_machine_succeeds,
                     3),
               fixed(truth.importance_index(1), 3),
               fixed(system_failure, 4)});
    failures.push_back(system_failure);
    machine_failures.push_back(machine_failure);
  }
  std::cout << table << '\n';

  std::cout
      << "Reading: with anti-correlated difficulties the machine prompts\n"
         "exactly the cases the reader would miss, so machine failures\n"
         "cluster on cases the reader handles anyway (low PHf|Mf) — cheap\n"
         "failures. With correlated difficulties the same *number* of\n"
         "machine failures lands on the reader's blind spots — expensive\n"
         "failures. Diversity is worth buying even at zero change in the\n"
         "machine's own failure rate.\n\n";

  bool monotone = true;
  for (std::size_t i = 1; i < failures.size(); ++i) {
    monotone = monotone && failures[i] > failures[i - 1];
  }
  // The machine's marginal failure probability is essentially flat: the
  // sweep changes alignment, not competence.
  double machine_min = machine_failures.front(), machine_max = machine_min;
  for (const double m : machine_failures) {
    machine_min = std::min(machine_min, m);
    machine_max = std::max(machine_max, m);
  }
  const bool machine_flat = machine_max - machine_min < 0.01;
  const double swing = failures.back() - failures.front();
  std::cout << "System failure rises monotonically with shared difficulty: "
            << (monotone ? "PASS" : "FAIL") << '\n'
            << "Machine marginal failure flat across the sweep (delta "
            << fixed(machine_max - machine_min, 4)
            << "): " << (machine_flat ? "PASS" : "FAIL") << '\n'
            << "Total system-failure swing attributable to alignment alone: "
            << fixed(swing, 4) << "\n\n";
  return monotone && machine_flat && swing > 0.005 ? 0 : 1;
}
