// Experiment X3 — the paper's "indirect effects" (Section 5, items 3–4):
// improving the machine changes the *reader*, so the model parameters
// PHf|Mf / PHf|Ms drift and the Fig. 4 line bends.
//
// An adapting reader works through 40k cases with a mediocre CADT, then the
// CADT is replaced with a much better one and the reader works through
// another 40k cases. After each phase the bench snapshots the reader's
// reliance and the *analytic* ground-truth parameters at that reliance
// (Rao-Blackwellised, so the drift is not masked by estimation noise); a
// windowed empirical estimate is shown alongside.
#include <cmath>
#include <iostream>

#include "report/format.hpp"
#include "report/table.hpp"
#include "sim/estimation.hpp"
#include "sim/feature_world.hpp"
#include "sim/ground_truth.hpp"
#include "sim/trial.hpp"

int main() {
  using namespace hmdiv;
  using report::fixed;

  // Reference world, but with a mediocre CADT and an adapting reader.
  const auto base = sim::reference_feature_world();
  sim::ReaderModel::Config config = base.reader().config();
  config.adaptation_rate = 0.01;
  config.initial_reliance = 0.15;
  config.reliance_floor = 0.05;
  config.reliance_gain = 0.6;
  sim::CadtModel::Config mediocre = base.cadt().config();
  mediocre.capability = 0.4;
  sim::FeatureWorld world(base.generator(), sim::CadtModel(mediocre),
                          sim::ReaderModel(config));

  constexpr std::uint64_t kPhaseCases = 40000;
  stats::Rng rng(888);

  struct Snapshot {
    const char* phase;
    double reliance;
    double p_mf_difficult;
    double p_hf_mf_difficult;   // analytic, at the snapshot reliance
    double p_hf_ms_difficult;
    double t_difficult;
    double estimated_t;         // windowed empirical estimate
  };
  auto snapshot = [&](const char* phase, double estimated_t) {
    stats::Rng gt_rng = rng.split(0xF00D);
    const auto truth = sim::ground_truth_model(world, gt_rng, 150000);
    return Snapshot{phase,
                    world.reader().reliance(),
                    truth.parameters(1).p_machine_fails,
                    truth.parameters(1).p_human_fails_given_machine_fails,
                    truth.parameters(1).p_human_fails_given_machine_succeeds,
                    truth.importance_index(1),
                    estimated_t};
  };
  auto run_phase = [&]() {
    sim::TrialRunner runner(world, kPhaseCases);
    const auto data = runner.run(rng);
    return sim::estimate_sequential_model(data).classes[1].importance_index();
  };

  std::cout << "== X3: reader adaptation to machine reliability ==\n";
  const double estimated_before = run_phase();
  const Snapshot before = snapshot("mediocre CADT", estimated_before);
  world.replace_cadt(world.cadt().with_capability_factor(6.0));
  const double estimated_after = run_phase();
  const Snapshot after = snapshot("improved CADT", estimated_after);

  report::Table table({"phase", "reliance", "PMf(diff)", "PHf|Mf(diff)",
                       "PHf|Ms(diff)", "t(diff) analytic", "t(diff) est."});
  for (const Snapshot& s : {before, after}) {
    table.row({s.phase, fixed(s.reliance, 3), fixed(s.p_mf_difficult, 3),
               fixed(s.p_hf_mf_difficult, 3), fixed(s.p_hf_ms_difficult, 3),
               fixed(s.t_difficult, 3), fixed(s.estimated_t, 3)});
  }
  std::cout << table << '\n';

  // Isolate the reliance contribution from the conditioning-set shift (a
  // better CADT also prompts harder cases, which moves both conditionals):
  // same improved CADT, reader pinned at the pre-improvement reliance.
  sim::FeatureWorld counterfactual(
      world.generator(), world.cadt(),
      world.reader().with_reliance(before.reliance));
  stats::Rng cf_rng(4242);
  const auto pinned = sim::ground_truth_model(counterfactual, cf_rng, 150000);
  stats::Rng cur_rng(4242);
  const auto adapted = sim::ground_truth_model(world, cur_rng, 150000);
  report::Table isolate({"reader state", "PHf|Mf(diff)", "PHf|Ms(diff)",
                         "t(diff)"});
  isolate.caption(
      "Reliance effect isolated (improved CADT, same case mix)");
  isolate.row({"pinned at old reliance",
               fixed(pinned.parameters(1).p_human_fails_given_machine_fails, 3),
               fixed(pinned.parameters(1).p_human_fails_given_machine_succeeds,
                     3),
               fixed(pinned.importance_index(1), 3)});
  isolate.row(
      {"adapted reliance",
       fixed(adapted.parameters(1).p_human_fails_given_machine_fails, 3),
       fixed(adapted.parameters(1).p_human_fails_given_machine_succeeds, 3),
       fixed(adapted.importance_index(1), 3)});
  std::cout << isolate << '\n';

  std::cout
      << "Interpretation: the better machine is visibly more reliable, so\n"
         "the reader's reliance climbs; unaided vigilance on machine-silent\n"
         "cases drops, inflating PHf|Mf while the prompted response PHf|Ms\n"
         "is untouched by reliance. The Fig. 4 line's slope t(x) is NOT\n"
         "invariant under machine improvement — exactly the paper's caveat\n"
         "about extrapolating large design changes.\n\n";

  const bool reliance_grows = after.reliance > before.reliance + 0.05;
  const bool t_grows = after.t_difficult > before.t_difficult + 0.01;
  const bool reliance_inflates_mf =
      adapted.parameters(1).p_human_fails_given_machine_fails >
      pinned.parameters(1).p_human_fails_given_machine_fails + 0.005;
  const bool prompted_response_unaffected =
      std::fabs(adapted.parameters(1).p_human_fails_given_machine_succeeds -
                pinned.parameters(1).p_human_fails_given_machine_succeeds) <
      0.005;
  std::cout << "Improved machine increases reader reliance: "
            << (reliance_grows ? "PASS" : "FAIL") << '\n'
            << "Net effect inflates t(x): " << (t_grows ? "PASS" : "FAIL")
            << '\n'
            << "Isolated reliance effect inflates PHf|Mf: "
            << (reliance_inflates_mf ? "PASS" : "FAIL") << '\n'
            << "Reliance leaves the prompted response PHf|Ms unchanged: "
            << (prompted_response_unaffected ? "PASS" : "FAIL") << "\n\n";
  return reliance_grows && t_grows && reliance_inflates_mf &&
                 prompted_response_unaffected
             ? 0
             : 1;
}
