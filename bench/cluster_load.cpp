// cluster_load — scaling bench for the multi-host cluster engine
// (DESIGN.md §15, PR 9).
//
// Spawns 1/2/4 loopback `hmdiv_serve --example` daemons, then runs the
// two grid-heavy clustered workloads — a core.sweep threshold sweep and a
// core.uq.sample posterior draw — through exec::ClusterRunner at
// shards == workers, one compute thread per worker, against a
// single-thread in-process baseline. Every clustered result is compared
// bit-for-bit against the baseline (the correctness gate: the exit code
// is non-zero only on a mismatch or a transport failure, never on a
// missed speedup target). Wall times and speedups land in
// BENCH_pr9_cluster.json (or --out).
//
// On a multi-core box the daemons genuinely run in parallel and 4 workers
// should clear ~2x over in-process single-thread; on a one-core CI box
// the same run records honest sub-1x numbers (coordinator and workers
// time-slice one CPU, plus serialization overhead) — the JSON carries
// hardware_threads so readers can tell the two apart.
//
//   cluster_load [--grid-steps N] [--draws N] [--serve-bin PATH]
//                [--out FILE]
//
// The daemon binary resolves from --serve-bin, then $HMDIV_SERVE_BIN,
// then ../src/cli/hmdiv_serve next to this binary (the build layout).
#include <sys/wait.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/paper_example.hpp"
#include "core/tradeoff.hpp"
#include "core/tradeoff_shard.hpp"
#include "core/uncertainty.hpp"
#include "core/uncertainty_shard.hpp"
#include "exec/cluster.hpp"
#include "exec/config.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hmdiv;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// One spawned `hmdiv_serve --example` worker on an ephemeral port.
struct Daemon {
  pid_t pid = -1;
  int port = 0;

  [[nodiscard]] bool spawn(const std::string& binary) {
    int out_pipe[2];
    if (::pipe(out_pipe) != 0) return false;
    pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      ::dup2(out_pipe[1], STDOUT_FILENO);
      ::close(out_pipe[0]);
      ::close(out_pipe[1]);
      ::execl(binary.c_str(), binary.c_str(), "--example", "--port", "0",
              "--threads", "1", "--no-obs", static_cast<char*>(nullptr));
      ::_exit(127);
    }
    ::close(out_pipe[1]);
    std::string banner;
    char chunk[256];
    while (banner.find('\n') == std::string::npos) {
      const ssize_t got = ::read(out_pipe[0], chunk, sizeof chunk);
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) break;
      banner.append(chunk, static_cast<std::size_t>(got));
    }
    ::close(out_pipe[0]);
    const std::size_t newline = banner.find('\n');
    const std::size_t colon =
        newline == std::string::npos ? std::string::npos
                                     : banner.rfind(':', newline);
    if (colon != std::string::npos) port = std::atoi(banner.c_str() + colon + 1);
    return port > 0;
  }

  void stop() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }
};

std::string default_serve_binary(const char* argv0) {
  if (const char* env = std::getenv("HMDIV_SERVE_BIN");
      env != nullptr && *env != '\0') {
    return env;
  }
  // Build layout: this binary is bench/cluster_load, the daemon is
  // src/cli/hmdiv_serve under the same build root.
  std::string self(argv0);
  char resolved[4096];
  const ssize_t n = ::readlink("/proc/self/exe", resolved, sizeof resolved - 1);
  if (n > 0) {
    resolved[n] = '\0';
    self = resolved;
  }
  const std::size_t slash = self.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/../src/cli/hmdiv_serve";
}

core::TradeoffAnalyzer reference_analyzer() {
  core::BinormalMachine machine;
  machine.cancer_class_means = {2.0, 0.8};
  machine.normal_class_means = {-2.0, -0.5};
  core::DemandProfile cancers({"easy", "difficult"}, {0.9, 0.1});
  std::vector<core::HumanFnResponse> fn(2);
  fn[0] = {0.14, 0.18};
  fn[1] = {0.4, 0.9};
  core::DemandProfile normals({"typical", "complex"}, {0.85, 0.15});
  std::vector<core::HumanFpResponse> fp(2);
  fp[0] = {0.10, 0.02};
  fp[1] = {0.35, 0.12};
  return core::TradeoffAnalyzer(std::move(machine), std::move(cancers),
                                std::move(fn), std::move(normals),
                                std::move(fp), 0.01);
}

core::PosteriorModelSampler reference_sampler() {
  core::ClassCounts easy;
  easy.cases = 800;
  easy.machine_failures = 56;
  easy.human_failures_given_machine_failed = 28;
  easy.human_failures_given_machine_succeeded = 40;
  core::ClassCounts difficult;
  difficult.cases = 200;
  difficult.machine_failures = 82;
  difficult.human_failures_given_machine_failed = 74;
  difficult.human_failures_given_machine_succeeded = 30;
  return core::PosteriorModelSampler({"easy", "difficult"},
                                     {easy, difficult});
}

bool points_equal(const std::vector<core::SystemOperatingPoint>& a,
                  const std::vector<core::SystemOperatingPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i].system_fn) !=
            std::bit_cast<std::uint64_t>(b[i].system_fn) ||
        std::bit_cast<std::uint64_t>(a[i].system_fp) !=
            std::bit_cast<std::uint64_t>(b[i].system_fp) ||
        std::bit_cast<std::uint64_t>(a[i].ppv) !=
            std::bit_cast<std::uint64_t>(b[i].ppv)) {
      return false;
    }
  }
  return true;
}

bool doubles_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i])) {
      return false;
    }
  }
  return true;
}

struct CellResult {
  unsigned workers = 0;
  double sweep_ms = 0;
  double uq_ms = 0;
  bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t grid_steps = 120'000;
  std::size_t draws = 40'000;
  std::string out_path = "BENCH_pr9_cluster.json";
  std::string serve_bin;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "cluster_load: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--grid-steps") {
      grid_steps = static_cast<std::size_t>(std::stoull(next()));
    } else if (arg == "--draws") {
      draws = static_cast<std::size_t>(std::stoull(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--serve-bin") {
      serve_bin = next();
    } else {
      std::cerr << "cluster_load: unknown flag '" << arg << "'\n";
      return 2;
    }
  }
  if (serve_bin.empty()) serve_bin = default_serve_binary(argv[0]);

  const core::TradeoffAnalyzer analyzer = reference_analyzer();
  const core::PosteriorModelSampler sampler = reference_sampler();
  const core::DemandProfile field = core::paper::field_profile();
  std::vector<double> thresholds(grid_steps);
  for (std::size_t i = 0; i < grid_steps; ++i) {
    thresholds[i] = -4.0 + 8.0 * static_cast<double>(i) /
                               static_cast<double>(grid_steps - 1);
  }

  // In-process single-thread baseline (the denominator of every speedup).
  const auto sweep_start = Clock::now();
  const auto sweep_reference = analyzer.sweep(thresholds, exec::Config{1});
  const double sweep_baseline_ms = ms_since(sweep_start);
  std::vector<double> uq_reference(draws);
  stats::Rng baseline_rng(2003);
  const auto uq_start = Clock::now();
  sampler.sample_failure_probabilities(field, baseline_rng, uq_reference,
                                       exec::Config{1});
  const double uq_baseline_ms = ms_since(uq_start);

  std::vector<CellResult> cells;
  bool all_identical = true;
  bool transport_ok = true;
  for (const unsigned workers : {1u, 2u, 4u}) {
    std::vector<Daemon> daemons(workers);
    std::vector<std::string> addresses;
    bool spawned = true;
    for (Daemon& daemon : daemons) {
      if (!daemon.spawn(serve_bin)) {
        spawned = false;
        break;
      }
      addresses.push_back("127.0.0.1:" + std::to_string(daemon.port));
    }
    if (!spawned) {
      std::cerr << "cluster_load: failed to spawn '" << serve_bin << "'\n";
      for (Daemon& daemon : daemons) daemon.stop();
      return 1;
    }

    CellResult cell;
    cell.workers = workers;
    try {
      exec::ClusterOptions options;
      options.workers = addresses;
      options.shards = workers;
      options.threads = 1;
      exec::ClusterRunner cluster(std::move(options));

      const auto cell_sweep_start = Clock::now();
      const auto swept = core::sweep_clustered(analyzer, thresholds, cluster);
      cell.sweep_ms = ms_since(cell_sweep_start);

      std::vector<double> uq(draws);
      stats::Rng rng(2003);
      const auto cell_uq_start = Clock::now();
      core::sample_failure_probabilities_clustered(sampler, field, rng, uq,
                                                   cluster);
      cell.uq_ms = ms_since(cell_uq_start);

      cell.identical =
          points_equal(swept, sweep_reference) && doubles_equal(uq, uq_reference);
    } catch (const std::exception& e) {
      std::cerr << "cluster_load: " << workers << " workers: " << e.what()
                << "\n";
      transport_ok = false;
    }
    for (Daemon& daemon : daemons) daemon.stop();
    if (!cell.identical) all_identical = false;
    cells.push_back(cell);
    if (!transport_ok) break;
  }

  const double baseline_total = sweep_baseline_ms + uq_baseline_ms;
  std::string json = "{\"bench\":\"pr9_cluster\",";
  json += "\"grid_steps\":" + std::to_string(grid_steps) + ",";
  json += "\"draws\":" + std::to_string(draws) + ",";
  json += "\"hardware_threads\":" +
          std::to_string(std::thread::hardware_concurrency()) + ",";
  json += "\"inprocess\":{\"sweep_ms\":" + std::to_string(sweep_baseline_ms) +
          ",\"uq_ms\":" + std::to_string(uq_baseline_ms) + "},";
  json += "\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    const double total = cell.sweep_ms + cell.uq_ms;
    if (i != 0) json += ',';
    json += "{\"workers\":" + std::to_string(cell.workers) +
            ",\"shards\":" + std::to_string(cell.workers) +
            ",\"sweep_ms\":" + std::to_string(cell.sweep_ms) +
            ",\"uq_ms\":" + std::to_string(cell.uq_ms) +
            ",\"speedup_vs_inprocess\":" +
            std::to_string(total > 0 ? baseline_total / total : 0.0) +
            ",\"bitwise_identical\":" + (cell.identical ? "true" : "false") +
            "}";
  }
  json += "],\"all_bitwise_identical\":";
  json += all_identical ? "true" : "false";
  json += "}";

  std::cout << json << "\n";
  std::ofstream out(out_path);
  if (out) out << json << "\n";

  if (!transport_ok || !all_identical) {
    std::cerr << "cluster_load: FAILED (transport_ok=" << transport_ok
              << ", all_bitwise_identical=" << all_identical << ")\n";
    return 1;
  }
  std::cout << "cluster_load: OK — distributed results bit-identical to "
               "in-process across 1/2/4 workers\n";
  return 0;
}
