// Experiment X9 — designing the controlled trial (Section 1's enrichment,
// quantified). Two different objectives give two different answers, and
// both are computed in closed form:
//
//  A. Precision of the *field failure prediction* (Eq. 8). The delta-
//     method variance is sum_x c_x/n_x, Neyman-optimal n_x ∝ sqrt(c_x).
//     Counter-intuitively, this wants only mild enrichment of the
//     difficult class: the easy class's 0.9 field weight (squared) and its
//     PHf|Ms floor term dominate the prediction variance.
//
//  B. Precision of the *importance index t(difficult)* — what the design
//     decisions of Section 6 actually need. t(x) is estimated from the
//     machine-failure / machine-success splits *within* the class, so its
//     variance scales with 1/n_difficult only: a proportional (90/10)
//     trial wastes 90% of the budget, and enrichment buys an almost 10x
//     smaller trial for the same precision — the paper's "necessary to
//     make the trial reasonably short".
//
// Both closed forms are validated by Monte-Carlo over simulated trials.
#include <cmath>
#include <iostream>

#include "core/paper_example.hpp"
#include "core/trial_design.hpp"
#include "report/format.hpp"
#include "report/table.hpp"
#include "sim/estimation.hpp"
#include "sim/tabular_world.hpp"
#include "sim/trial.hpp"
#include "stats/summary.hpp"

namespace {

using namespace hmdiv;

struct MonteCarlo {
  double prediction_se = 0.0;
  double t_difficult_se = 0.0;
};

MonteCarlo monte_carlo(const core::TrialDesign& design,
                       const core::SequentialModel& truth,
                       const core::DemandProfile& field, std::uint64_t seed) {
  stats::OnlineStats predictions, t_estimates;
  stats::Rng rng(seed);
  const auto total = static_cast<std::uint64_t>(
      std::llround(design.cases[0] + design.cases[1]));
  for (int replicate = 0; replicate < 200; ++replicate) {
    sim::TabularWorld world(truth, design.trial_profile);
    sim::TrialRunner runner(world, total);
    stats::Rng run_rng = rng.split(static_cast<std::uint64_t>(replicate));
    const auto estimate = sim::estimate_sequential_model(runner.run(run_rng));
    predictions.add(
        estimate.fitted_model().system_failure_probability(field));
    t_estimates.add(estimate.classes[core::paper::kDifficult]
                        .importance_index());
  }
  return MonteCarlo{predictions.stddev(), t_estimates.stddev()};
}

}  // namespace

int main() {
  using report::fixed;

  const auto model = core::paper::example_model();
  const auto field = core::paper::field_profile();
  constexpr double kBudget = 1000.0;

  const auto proportional =
      core::allocation_for_profile(model, field, field, kBudget);
  const auto paper_8020 = core::allocation_for_profile(
      model, field, core::paper::trial_profile(), kBudget);
  const auto optimal = core::optimal_allocation(model, field, kBudget);

  std::cout << "== X9 objective A: precision of the field prediction ==\n";
  report::Table table({"allocation", "easy", "difficult", "predicted SE",
                       "MC SE (pred.)", "MC SE of t(diff)"});
  struct Row {
    const char* label;
    const core::TrialDesign& design;
    std::uint64_t seed;
  };
  const Row rows[] = {
      {"proportional to field (90/10)", proportional, 1},
      {"paper's enriched trial (80/20)", paper_8020, 2},
      {"Neyman-optimal for prediction", optimal, 3},
  };
  std::vector<MonteCarlo> mc;
  for (const Row& row : rows) {
    mc.push_back(monte_carlo(row.design, model, field, row.seed));
    table.row({row.label, fixed(row.design.cases[0], 0),
               fixed(row.design.cases[1], 0),
               fixed(row.design.predicted_standard_error, 4),
               fixed(mc.back().prediction_se, 4),
               fixed(mc.back().t_difficult_se, 3)});
  }
  std::cout << table << '\n';

  std::cout
      << "For objective A the optimum enriches the difficult class only to "
      << report::percent(optimal.trial_profile[1], 0)
      << "\n(1.4x its field share): the prediction variance is dominated by\n"
         "the easy class's PHf|Ms floor, weighted by 0.9^2. Note the third\n"
         "column, though: the enriched 80/20 trial measures t(difficult)\n"
         "substantially better at the same budget.\n\n";

  std::cout << "== X9 objective B: pinning down t(difficult) to +/-0.05 ==\n";
  const auto needed_difficult = core::cases_for_importance_halfwidth(
      model.parameters(core::paper::kDifficult), 0.05);
  const double enriched_total =
      static_cast<double>(needed_difficult) / 0.2;   // 80/20 trial
  const double proportional_total =
      static_cast<double>(needed_difficult) / 0.1;   // 90/10 trial
  report::Table design_b({"design", "difficult cases needed", "total trial"});
  design_b.row({"any design (class-level requirement)",
                std::to_string(needed_difficult), "-"});
  design_b.row({"paper-style enriched (20% difficult)",
                std::to_string(needed_difficult),
                fixed(enriched_total, 0)});
  design_b.row({"proportional to field (10% difficult)",
                std::to_string(needed_difficult),
                fixed(proportional_total, 0)});
  std::cout << design_b << '\n';
  std::cout << "Enrichment halves the total trial for this objective; for\n"
               "the easy class's tiny t = 0.04 (needing "
            << core::cases_for_importance_halfwidth(
                   model.parameters(core::paper::kEasy), 0.05)
            << " cases because machine\nfailures there are rare) the "
               "leverage is even larger.\n\n";

  std::cout << "== X9 planning curve: precision vs trial size ==\n";
  std::vector<double> budgets;
  for (double b = 250.0; b <= 8000.0; b *= 2.0) budgets.push_back(b);
  const auto curve = core::design_curve(model, field, budgets);
  report::Table curve_table({"total cases", "easy", "difficult",
                             "predicted SE"});
  bool curve_monotone = true;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    curve_table.row({fixed(budgets[i], 0), fixed(curve[i].cases[0], 0),
                     fixed(curve[i].cases[1], 0),
                     fixed(curve[i].predicted_standard_error, 4)});
    if (i > 0 && curve[i].predicted_standard_error >
                     curve[i - 1].predicted_standard_error + 1e-12) {
      curve_monotone = false;
    }
  }
  std::cout << curve_table << '\n'
            << "Doubling the budget shrinks the predicted SE by ~sqrt(2):\n"
               "the planning curve quantifies when a longer trial stops\n"
               "paying for itself.\n\n";

  const bool optimal_best =
      optimal.predicted_standard_error <=
          proportional.predicted_standard_error + 1e-12 &&
      optimal.predicted_standard_error <=
          paper_8020.predicted_standard_error + 1e-12;
  const bool formula_ok =
      std::fabs(mc[2].prediction_se - optimal.predicted_standard_error) <
      0.35 * optimal.predicted_standard_error;
  const bool enrichment_helps_t =
      mc[1].t_difficult_se < mc[0].t_difficult_se;
  std::cout << "Neyman allocation minimises the predicted SE: "
            << (optimal_best ? "PASS" : "FAIL") << '\n'
            << "Planning curve SE decreases with budget: "
            << (curve_monotone ? "PASS" : "FAIL") << '\n'
            << "Delta-method SE matches Monte-Carlo: "
            << (formula_ok ? "PASS" : "FAIL") << '\n'
            << "Enrichment improves t(difficult) at fixed budget: "
            << (enrichment_helps_t ? "PASS" : "FAIL") << "\n\n";
  return optimal_best && curve_monotone && formula_ok && enrichment_helps_t
             ? 0
             : 1;
}
