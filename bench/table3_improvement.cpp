// Experiment T3 — the paper's third Section-5 table: the effect of reducing
// the CADT's false-negative probability by 10x on the easy vs the difficult
// cases, under both demand profiles — plus the DesignAdvisor's ranking,
// which must single out the difficult (rarer!) cases as the better target.
#include <cmath>
#include <iostream>

#include "core/design_advisor.hpp"
#include "core/paper_example.hpp"
#include "report/format.hpp"
#include "report/table.hpp"

int main() {
  using namespace hmdiv;
  using report::fixed;

  const auto model = core::paper::example_model();
  const auto trial = core::paper::trial_profile();
  const auto field = core::paper::field_profile();
  const auto reported = core::paper::reported_values();

  const auto improved_easy =
      model.with_machine_improvement(core::paper::kEasy, 0.1);
  const auto improved_difficult =
      model.with_machine_improvement(core::paper::kDifficult, 0.1);

  std::cout << "== T3: CADT improved 10x on one class of cases ==\n";
  report::Table table(
      {"row", "paper (easy impr.)", "ours", "paper (diff. impr.)", "ours"});
  table.row({"easy cases", fixed(reported.improved_easy_class_failure, 3),
             fixed(improved_easy.system_failure_given_class(0), 3),
             fixed(reported.failure_easy, 3),
             fixed(improved_difficult.system_failure_given_class(0), 3)});
  table.row({"difficult cases", fixed(reported.failure_difficult, 3),
             fixed(improved_easy.system_failure_given_class(1), 3),
             fixed(reported.improved_difficult_class_failure, 3),
             fixed(improved_difficult.system_failure_given_class(1), 3)});
  table.row({"all cases (Trial)", fixed(reported.improved_easy_trial, 3),
             fixed(improved_easy.system_failure_probability(trial), 3),
             fixed(reported.improved_difficult_trial, 3),
             fixed(improved_difficult.system_failure_probability(trial), 3)});
  table.row({"all cases (Field)", fixed(reported.improved_easy_field, 3),
             fixed(improved_easy.system_failure_probability(field), 3),
             fixed(reported.improved_difficult_field, 3),
             fixed(improved_difficult.system_failure_probability(field), 3)});
  std::cout << table << '\n';

  // The design-advice view of the same experiment.
  core::DesignAdvisor advisor(model, field);
  const auto ranked = advisor.rank(
      {core::ImprovementCandidate{"improve easy x10", core::paper::kEasy, 0.1},
       core::ImprovementCandidate{"improve difficult x10",
                                  core::paper::kDifficult, 0.1},
       core::ImprovementCandidate{"improve all x10",
                                  core::ImprovementCandidate::kAllClasses,
                                  0.1}});
  report::Table advice({"candidate", "PHf before", "PHf after", "abs. gain",
                        "rel. gain"});
  advice.caption("DesignAdvisor ranking (Field profile)");
  for (const auto& e : ranked) {
    advice.row({e.name, fixed(e.baseline_failure, 3),
                fixed(e.improved_failure, 3), fixed(e.absolute_gain(), 4),
                report::percent(e.relative_gain(), 1)});
  }
  std::cout << advice << '\n';

  const auto diagnosis = advisor.diagnose();
  std::cout << "Failure floor E[PHf|Ms] (unbeatable by machine improvement): "
            << fixed(diagnosis.floor, 3) << '\n'
            << "Fraction of system failures machine improvement can address: "
            << report::percent(diagnosis.machine_addressable_fraction, 1)
            << '\n'
            << "cov_x(PMf, t): " << fixed(diagnosis.covariance, 4)
            << "  (positive = correlated weakness)\n";

  const bool values_ok =
      std::fabs(improved_easy.system_failure_probability(trial) -
                reported.improved_easy_trial) < 5e-4 &&
      std::fabs(improved_easy.system_failure_probability(field) -
                reported.improved_easy_field) < 5e-4 &&
      std::fabs(improved_difficult.system_failure_probability(trial) -
                reported.improved_difficult_trial) < 5e-4 &&
      std::fabs(improved_difficult.system_failure_probability(field) -
                reported.improved_difficult_field) < 5e-4;
  const bool ranking_ok = ranked[0].name != "improve easy x10" &&
                          advisor.best_target_class() ==
                              core::paper::kDifficult;
  std::cout << "\nTable matches paper to 3 decimals: "
            << (values_ok ? "PASS" : "FAIL") << '\n'
            << "Advisor targets the difficult (rarer) class, as the paper "
               "concludes: "
            << (ranking_ok ? "PASS" : "FAIL") << "\n\n";
  return values_ok && ranking_ok ? 0 : 1;
}
