// serve_load — load generator for the hmdiv_serve service layer.
//
// Spins up an in-process serve::Server on an ephemeral loopback port,
// then drives it with pipelined requests over raw TCP sockets: each
// client connection keeps a window of in-flight requests and refills it
// as responses drain, rotating through a fixed set of distinct parameter
// vectors.
//
// Two modes:
//  * Default (PR 7 shape): warm-cache `whatif` workload, reports QPS and
//    p50/p99 latency, writes BENCH_pr7_serve_qps.json (or --out).
//    --endpoint uq|mixed and --cold-cache change the workload;
//    --batch-max/--batch-wait-us/--compute-threads turn on request
//    coalescing (DESIGN.md §14).
//  * --matrix (PR 8): cold-cache mixed whatif+uq workload measured with
//    batching off and on at 2/8/16 connections (fresh Service per cell),
//    writes BENCH_pr8_batch_serve.json. On a one-core CI box coalescing
//    buys little wall-clock, so the gate is an overhead bound — batching
//    on must stay within 10% of batching off in aggregate — rather than
//    a speedup target; the cell numbers are recorded for boxes where the
//    kernels can actually run side by side.
//
// Exit is non-zero only on a correctness failure (server error response,
// short read, connect failure) or, under --matrix, the overhead gate.
//
//   serve_load [--seconds S] [--connections N] [--pipeline W]
//              [--distinct K] [--endpoint whatif|uq|mixed] [--mix PCT]
//              [--cold-cache] [--batch-max N] [--batch-wait-us N]
//              [--compute-threads N] [--matrix] [--out FILE]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/paper_example.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct ClientStats {
  std::uint64_t responses = 0;
  std::uint64_t errors = 0;
  bool transport_ok = true;
  std::vector<std::uint64_t> latencies_ns;
};

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable);
  return fd;
}

bool send_fully(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t rc = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
    } else if (rc < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

/// One client connection: keeps `window` requests in flight, cycling
/// through `requests` (pre-rendered lines). Latency per slot is
/// send-time to the arrival of the matching (FIFO-ordered) response.
void client_loop(std::uint16_t port, const std::vector<std::string>& requests,
                 std::size_t window, Clock::time_point stop_at,
                 ClientStats& stats) {
  const int fd = connect_loopback(port);
  if (fd < 0) {
    stats.transport_ok = false;
    return;
  }

  std::vector<Clock::time_point> in_flight;  // FIFO of send timestamps
  std::size_t head = 0;                      // index of oldest in-flight
  std::size_t next_request = 0;
  std::string batch;
  std::string residue;
  char buffer[64 * 1024];
  bool stopping = false;

  const auto send_batch = [&](std::size_t count) -> bool {
    batch.clear();
    const auto now = Clock::now();
    for (std::size_t i = 0; i < count; ++i) {
      batch += requests[next_request];
      next_request = (next_request + 1) % requests.size();
      in_flight.push_back(now);
    }
    return send_fully(fd, batch.data(), batch.size());
  };

  if (!send_batch(window)) {
    stats.transport_ok = false;
    ::close(fd);
    return;
  }

  while (head < in_flight.size()) {
    const ssize_t got = ::read(fd, buffer, sizeof buffer);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      stats.transport_ok = false;
      break;
    }
    residue.append(buffer, static_cast<std::size_t>(got));

    std::size_t completed = 0;
    std::size_t from = 0;
    for (;;) {
      const std::size_t nl = residue.find('\n', from);
      if (nl == std::string::npos) break;
      const std::string_view line(residue.data() + from, nl - from);
      if (line.find("\"ok\":true") == std::string_view::npos) ++stats.errors;
      from = nl + 1;
      ++completed;
    }
    residue.erase(0, from);

    if (completed == 0) continue;
    const auto now = Clock::now();
    for (std::size_t i = 0; i < completed; ++i) {
      stats.latencies_ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - in_flight[head + i])
              .count()));
    }
    head += completed;
    stats.responses += completed;
    // Periodically compact the FIFO so it stays bounded.
    if (head > 4096) {
      in_flight.erase(in_flight.begin(),
                      in_flight.begin() + static_cast<std::ptrdiff_t>(head));
      head = 0;
    }

    if (!stopping && now >= stop_at) stopping = true;
    if (!stopping && !send_batch(completed)) {
      stats.transport_ok = false;
      break;
    }
  }
  ::close(fd);
}

std::uint64_t quantile_ns(std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(pos + 0.5)];
}

struct RunConfig {
  double seconds = 1.5;
  std::size_t connections = 2;
  std::size_t window = 64;
  std::size_t distinct = 64;
  std::string endpoint = "whatif";  // whatif | uq | mixed
  std::size_t mix_pct = 10;         // % of uq lines under "mixed"
  bool cold_cache = false;
  std::size_t batch_max = 1;
  std::uint64_t batch_wait_us = 100;
  unsigned compute_threads = 1;
};

struct RunResult {
  double elapsed = 0.0;
  double qps = 0.0;
  std::uint64_t responses = 0;
  std::uint64_t errors = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  bool transport_ok = true;
};

std::vector<std::string> make_requests(const RunConfig& config) {
  std::vector<std::string> requests;
  requests.reserve(config.distinct);
  for (std::size_t k = 0; k < config.distinct; ++k) {
    const bool uq_line =
        config.endpoint == "uq" ||
        (config.endpoint == "mixed" && (k % 100) < config.mix_pct);
    std::string line;
    if (uq_line) {
      // Small draw count: the point is coalescing pressure, not posterior
      // resolution, and matrix cells must finish quickly on one core.
      line = "{\"op\":\"uq\",\"id\":";
      line += std::to_string(k);
      line += ",\"params\":{\"draws\":128,\"seed\":";
      line += std::to_string(k);
      line += ",\"credibility\":0.9}}\n";
    } else {
      const double reader = 0.5 + 0.03 * static_cast<double>(k);
      const double machine = 0.8 + 0.01 * static_cast<double>(k % 16);
      line = "{\"op\":\"whatif\",\"id\":";
      line += std::to_string(k);
      line += ",\"params\":{\"reader_factor\":";
      line += std::to_string(reader);
      line += ",\"machine_factor\":";
      line += std::to_string(machine);
      line += "}}\n";
    }
    requests.push_back(std::move(line));
  }
  return requests;
}

/// Builds a fresh Service+Server for `config`, warms it with one pass
/// over the distinct requests, runs the timed window, and aggregates.
RunResult run_once(const RunConfig& config) {
  using namespace hmdiv;
  RunResult result;

  serve::ServiceOptions service_options;
  service_options.max_concurrent = config.connections;
  // Admission and batch queues must hold a full pipeline burst from every
  // connection, and queue wait must not eat the request deadline.
  service_options.max_queue = config.connections * config.window + 64;
  service_options.default_deadline_ms = 60'000;
  service_options.batch_max = config.batch_max;
  service_options.batch_wait_us = config.batch_wait_us;
  service_options.batch_workers = config.compute_threads;
  if (config.cold_cache) {
    service_options.whatif_cache_capacity = 0;
    service_options.sweep_cache_capacity = 0;
    service_options.minimise_cache_capacity = 0;
    service_options.uq_cache_capacity = 0;
  }
  serve::Service service(core::paper::example_model(),
                         core::paper::trial_profile(),
                         core::paper::field_profile(), service_options);
  serve::ServerOptions server_options;
  server_options.port = 0;
  server_options.max_connections = config.connections + 4;
  serve::Server server(service, server_options);
  server.start();

  const std::vector<std::string> requests = make_requests(config);

  // Warm-up: one pass over every distinct request. With caches on this
  // fills them so the timed window measures the hit path; with
  // --cold-cache it still warms the workspace arenas.
  {
    ClientStats warm;
    client_loop(server.port(), requests, requests.size(),
                Clock::now() - std::chrono::seconds(1), warm);
    if (!warm.transport_ok || warm.errors != 0 ||
        warm.responses != requests.size()) {
      std::cerr << "serve_load: warm-up failed (responses=" << warm.responses
                << " errors=" << warm.errors << ")\n";
      server.shutdown();
      result.transport_ok = false;
      result.errors = warm.errors != 0 ? warm.errors : 1;
      return result;
    }
  }

  const auto t0 = Clock::now();
  const auto stop_at =
      t0 + std::chrono::microseconds(static_cast<long>(config.seconds * 1e6));
  std::vector<ClientStats> stats(config.connections);
  std::vector<std::thread> clients;
  clients.reserve(config.connections);
  for (std::size_t c = 0; c < config.connections; ++c) {
    clients.emplace_back(client_loop, server.port(), std::cref(requests),
                         config.window, stop_at, std::ref(stats[c]));
  }
  for (auto& t : clients) t.join();
  result.elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  server.shutdown();

  std::vector<std::uint64_t> latencies;
  for (auto& s : stats) {
    result.responses += s.responses;
    result.errors += s.errors;
    result.transport_ok = result.transport_ok && s.transport_ok;
    latencies.insert(latencies.end(), s.latencies_ns.begin(),
                     s.latencies_ns.end());
  }
  std::sort(latencies.begin(), latencies.end());
  result.qps = result.elapsed > 0.0
                   ? static_cast<double>(result.responses) / result.elapsed
                   : 0.0;
  result.p50_ns = quantile_ns(latencies, 0.50);
  result.p99_ns = quantile_ns(latencies, 0.99);
  return result;
}

int run_matrix(RunConfig base, const std::string& out_path) {
  // Cold-cache mixed workload: the batched whatif kernel and the
  // per-request uq compute both run every time, which is the regime
  // coalescing targets.
  base.endpoint = "mixed";
  base.cold_cache = true;

  const std::size_t kBatchSettings[] = {1, 8};
  const std::size_t kConnections[] = {2, 8, 16};

  std::string rows;
  double qps_off_total = 0.0;
  double qps_on_total = 0.0;
  bool all_ok = true;
  for (const std::size_t batch_max : kBatchSettings) {
    for (const std::size_t connections : kConnections) {
      RunConfig cell = base;
      cell.batch_max = batch_max;
      cell.connections = connections;
      const RunResult r = run_once(cell);
      all_ok = all_ok && r.transport_ok && r.errors == 0 && r.responses > 0;
      if (batch_max <= 1) {
        qps_off_total += r.qps;
      } else {
        qps_on_total += r.qps;
      }
      char row[512];
      std::snprintf(
          row, sizeof row,
          "%s{\"batch_max\":%zu,\"connections\":%zu,\"qps\":%.0f,"
          "\"responses\":%llu,\"errors\":%llu,\"p50_ns\":%llu,"
          "\"p99_ns\":%llu}",
          rows.empty() ? "" : ",", batch_max, connections, r.qps,
          static_cast<unsigned long long>(r.responses),
          static_cast<unsigned long long>(r.errors),
          static_cast<unsigned long long>(r.p50_ns),
          static_cast<unsigned long long>(r.p99_ns));
      rows += row;
      std::printf(
          "serve_load: batch_max=%zu conns=%zu: %.0f QPS "
          "(%llu responses, %llu errors, p50 %.1fus, p99 %.1fus)\n",
          batch_max, connections, r.qps,
          static_cast<unsigned long long>(r.responses),
          static_cast<unsigned long long>(r.errors),
          static_cast<double>(r.p50_ns) / 1e3,
          static_cast<double>(r.p99_ns) / 1e3);
    }
  }

  const bool overhead_ok = qps_on_total >= 0.9 * qps_off_total;
  char json[4096];
  std::snprintf(
      json, sizeof json,
      "{\"bench\":\"pr8_batch_serve\",\"endpoint\":\"mixed\","
      "\"mix_pct\":%zu,\"pipeline\":%zu,\"distinct\":%zu,"
      "\"seconds_per_cell\":%.3f,\"cold_cache\":true,"
      "\"rows\":[%s],"
      "\"qps_off_total\":%.0f,\"qps_on_total\":%.0f,"
      "\"overhead_gate\":0.9,\"overhead_ok\":%s}",
      base.mix_pct, base.window, base.distinct, base.seconds, rows.c_str(),
      qps_off_total, qps_on_total, overhead_ok ? "true" : "false");
  std::cout << json << "\n";
  {
    std::ofstream out(out_path);
    out << json << "\n";
  }

  if (!all_ok) {
    std::cerr << "serve_load: FAILED (matrix cell error)\n";
    return 1;
  }
  if (!overhead_ok) {
    std::cerr << "serve_load: FAILED (batching on lost more than 10% "
                 "aggregate QPS: "
              << qps_on_total << " vs " << qps_off_total << ")\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  RunConfig config;
  bool matrix = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "serve_load: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seconds") {
      config.seconds = std::stod(value());
    } else if (arg == "--connections") {
      config.connections = std::stoul(value());
    } else if (arg == "--pipeline") {
      config.window = std::stoul(value());
    } else if (arg == "--distinct") {
      config.distinct = std::stoul(value());
    } else if (arg == "--endpoint") {
      config.endpoint = value();
      if (config.endpoint != "whatif" && config.endpoint != "uq" &&
          config.endpoint != "mixed") {
        std::cerr << "serve_load: --endpoint must be whatif, uq or mixed\n";
        return 2;
      }
    } else if (arg == "--mix") {
      config.mix_pct = std::min<std::size_t>(100, std::stoul(value()));
    } else if (arg == "--cold-cache") {
      config.cold_cache = true;
    } else if (arg == "--batch-max") {
      config.batch_max = std::max<std::size_t>(1, std::stoul(value()));
    } else if (arg == "--batch-wait-us") {
      config.batch_wait_us = std::stoul(value());
    } else if (arg == "--compute-threads") {
      config.compute_threads =
          static_cast<unsigned>(std::max<unsigned long>(1, std::stoul(value())));
    } else if (arg == "--matrix") {
      matrix = true;
    } else if (arg == "--out") {
      out_path = value();
    } else {
      std::cerr << "serve_load: unknown flag '" << arg << "'\n";
      return 2;
    }
  }
  config.connections = std::max<std::size_t>(1, config.connections);
  config.window = std::max<std::size_t>(1, config.window);
  config.distinct = std::max<std::size_t>(1, config.distinct);

  hmdiv::obs::set_enabled(true);

  if (matrix) {
    if (out_path.empty()) out_path = "BENCH_pr8_batch_serve.json";
    // Matrix cells pipeline a moderate window so the largest cell
    // (16 conns) keeps its backlog well under the admission queue bound.
    config.window = 32;
    return run_matrix(config, out_path);
  }
  if (out_path.empty()) out_path = "BENCH_pr7_serve_qps.json";

  const RunResult r = run_once(config);

  char json[1024];
  std::snprintf(json, sizeof json,
                "{\"bench\":\"pr7_serve_qps\",\"endpoint\":\"%s\","
                "\"connections\":%zu,\"pipeline\":%zu,\"distinct\":%zu,"
                "\"cold_cache\":%s,\"batch_max\":%zu,"
                "\"seconds\":%.3f,\"responses\":%llu,\"errors\":%llu,"
                "\"qps\":%.0f,\"p50_ns\":%llu,\"p99_ns\":%llu,"
                "\"target_qps\":50000,\"met_target\":%s}",
                config.endpoint.c_str(), config.connections, config.window,
                config.distinct, config.cold_cache ? "true" : "false",
                config.batch_max, r.elapsed,
                static_cast<unsigned long long>(r.responses),
                static_cast<unsigned long long>(r.errors), r.qps,
                static_cast<unsigned long long>(r.p50_ns),
                static_cast<unsigned long long>(r.p99_ns),
                r.qps >= 50000.0 ? "true" : "false");
  std::cout << json << "\n";
  {
    std::ofstream out(out_path);
    out << json << "\n";
  }

  std::printf("serve_load: %llu responses in %.2fs over %zu conns "
              "(pipeline %zu): %.0f QPS, p50 %.1fus, p99 %.1fus\n",
              static_cast<unsigned long long>(r.responses), r.elapsed,
              config.connections, config.window, r.qps,
              static_cast<double>(r.p50_ns) / 1e3,
              static_cast<double>(r.p99_ns) / 1e3);

  if (!r.transport_ok || r.errors != 0 || r.responses == 0) {
    std::cerr << "serve_load: FAILED (transport_ok=" << r.transport_ok
              << " errors=" << r.errors << ")\n";
    return 1;
  }
  return 0;
}
