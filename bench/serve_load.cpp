// serve_load — load generator for the hmdiv_serve service layer (PR 7).
//
// Spins up an in-process serve::Server on an ephemeral loopback port,
// then drives it with pipelined `whatif` requests over raw TCP sockets:
// each client connection keeps a window of in-flight requests and
// refills it as responses drain, rotating through a fixed set of
// distinct parameter vectors so the steady state exercises the shared
// EvalCache hit path (the zero-allocation fast path the service is
// specified against).
//
// Reports throughput (QPS) and per-request latency quantiles (p50/p99,
// measured send-to-receive per pipelined slot), and writes
// BENCH_pr7_serve_qps.json next to the working directory (or to --out).
// Exit is non-zero only on a correctness failure (server error response,
// short read, connect failure) — throughput on a shared CI box is
// recorded, not gated.
//
//   serve_load [--seconds S] [--connections N] [--pipeline W]
//              [--distinct K] [--out FILE]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/paper_example.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct ClientStats {
  std::uint64_t responses = 0;
  std::uint64_t errors = 0;
  bool transport_ok = true;
  std::vector<std::uint64_t> latencies_ns;
};

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable);
  return fd;
}

bool send_fully(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t rc = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
    } else if (rc < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

/// One client connection: keeps `window` whatif requests in flight,
/// cycling through `requests` (pre-rendered lines). Latency per slot is
/// send-time to the arrival of the matching (FIFO-ordered) response.
void client_loop(std::uint16_t port, const std::vector<std::string>& requests,
                 std::size_t window, Clock::time_point stop_at,
                 ClientStats& stats) {
  const int fd = connect_loopback(port);
  if (fd < 0) {
    stats.transport_ok = false;
    return;
  }

  std::vector<Clock::time_point> in_flight;  // FIFO of send timestamps
  std::size_t head = 0;                      // index of oldest in-flight
  std::size_t next_request = 0;
  std::string batch;
  std::string residue;
  char buffer[64 * 1024];
  bool stopping = false;

  const auto send_batch = [&](std::size_t count) -> bool {
    batch.clear();
    const auto now = Clock::now();
    for (std::size_t i = 0; i < count; ++i) {
      batch += requests[next_request];
      next_request = (next_request + 1) % requests.size();
      in_flight.push_back(now);
    }
    return send_fully(fd, batch.data(), batch.size());
  };

  if (!send_batch(window)) {
    stats.transport_ok = false;
    ::close(fd);
    return;
  }

  while (head < in_flight.size()) {
    const ssize_t got = ::read(fd, buffer, sizeof buffer);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      stats.transport_ok = false;
      break;
    }
    residue.append(buffer, static_cast<std::size_t>(got));

    std::size_t completed = 0;
    std::size_t from = 0;
    for (;;) {
      const std::size_t nl = residue.find('\n', from);
      if (nl == std::string::npos) break;
      const std::string_view line(residue.data() + from, nl - from);
      if (line.find("\"ok\":true") == std::string_view::npos) ++stats.errors;
      from = nl + 1;
      ++completed;
    }
    residue.erase(0, from);

    if (completed == 0) continue;
    const auto now = Clock::now();
    for (std::size_t i = 0; i < completed; ++i) {
      stats.latencies_ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - in_flight[head + i])
              .count()));
    }
    head += completed;
    stats.responses += completed;
    // Periodically compact the FIFO so it stays bounded.
    if (head > 4096) {
      in_flight.erase(in_flight.begin(),
                      in_flight.begin() + static_cast<std::ptrdiff_t>(head));
      head = 0;
    }

    if (!stopping && now >= stop_at) stopping = true;
    if (!stopping && !send_batch(completed)) {
      stats.transport_ok = false;
      break;
    }
  }
  ::close(fd);
}

std::uint64_t quantile_ns(std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(pos + 0.5)];
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 1.5;
  std::size_t connections = 2;
  std::size_t window = 64;
  std::size_t distinct = 64;
  std::string out_path = "BENCH_pr7_serve_qps.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "serve_load: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seconds") {
      seconds = std::stod(value());
    } else if (arg == "--connections") {
      connections = std::stoul(value());
    } else if (arg == "--pipeline") {
      window = std::stoul(value());
    } else if (arg == "--distinct") {
      distinct = std::stoul(value());
    } else if (arg == "--out") {
      out_path = value();
    } else {
      std::cerr << "serve_load: unknown flag '" << arg << "'\n";
      return 2;
    }
  }
  connections = std::max<std::size_t>(1, connections);
  window = std::max<std::size_t>(1, window);
  distinct = std::max<std::size_t>(1, distinct);

  using namespace hmdiv;
  obs::set_enabled(true);

  serve::ServiceOptions service_options;
  service_options.max_concurrent = connections;
  serve::Service service(core::paper::example_model(),
                         core::paper::trial_profile(),
                         core::paper::field_profile(), service_options);
  serve::ServerOptions server_options;
  server_options.port = 0;
  server_options.max_connections = connections + 4;
  serve::Server server(service, server_options);
  server.start();

  // Pre-render the distinct whatif parameter vectors. Factors stay in a
  // benign range; after one rotation every request is an EvalCache hit.
  std::vector<std::string> requests;
  requests.reserve(distinct);
  for (std::size_t k = 0; k < distinct; ++k) {
    const double reader = 0.5 + 0.03 * static_cast<double>(k);
    const double machine = 0.8 + 0.01 * static_cast<double>(k % 16);
    std::string line = "{\"op\":\"whatif\",\"id\":";
    line += std::to_string(k);
    line += ",\"params\":{\"reader_factor\":";
    line += std::to_string(reader);
    line += ",\"machine_factor\":";
    line += std::to_string(machine);
    line += "}}\n";
    requests.push_back(std::move(line));
  }

  // Warm-up: one pass over every distinct request fills the cache, so the
  // timed window measures the steady-state hit path.
  {
    ClientStats warm;
    client_loop(server.port(), requests, requests.size(),
                Clock::now() - std::chrono::seconds(1), warm);
    if (!warm.transport_ok || warm.errors != 0 ||
        warm.responses != requests.size()) {
      std::cerr << "serve_load: warm-up failed (responses=" << warm.responses
                << " errors=" << warm.errors << ")\n";
      server.shutdown();
      return 1;
    }
  }

  const auto t0 = Clock::now();
  const auto stop_at =
      t0 + std::chrono::microseconds(static_cast<long>(seconds * 1e6));
  std::vector<ClientStats> stats(connections);
  std::vector<std::thread> clients;
  clients.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    clients.emplace_back(client_loop, server.port(), std::cref(requests),
                         window, stop_at, std::ref(stats[c]));
  }
  for (auto& t : clients) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  server.shutdown();

  std::uint64_t responses = 0;
  std::uint64_t errors = 0;
  bool transport_ok = true;
  std::vector<std::uint64_t> latencies;
  for (auto& s : stats) {
    responses += s.responses;
    errors += s.errors;
    transport_ok = transport_ok && s.transport_ok;
    latencies.insert(latencies.end(), s.latencies_ns.begin(),
                     s.latencies_ns.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double qps =
      elapsed > 0.0 ? static_cast<double>(responses) / elapsed : 0.0;
  const std::uint64_t p50 = quantile_ns(latencies, 0.50);
  const std::uint64_t p99 = quantile_ns(latencies, 0.99);

  char json[1024];
  std::snprintf(json, sizeof json,
                "{\"bench\":\"pr7_serve_qps\",\"endpoint\":\"whatif\","
                "\"connections\":%zu,\"pipeline\":%zu,\"distinct\":%zu,"
                "\"seconds\":%.3f,\"responses\":%llu,\"errors\":%llu,"
                "\"qps\":%.0f,\"p50_ns\":%llu,\"p99_ns\":%llu,"
                "\"target_qps\":50000,\"met_target\":%s}",
                connections, window, distinct, elapsed,
                static_cast<unsigned long long>(responses),
                static_cast<unsigned long long>(errors), qps,
                static_cast<unsigned long long>(p50),
                static_cast<unsigned long long>(p99),
                qps >= 50000.0 ? "true" : "false");
  std::cout << json << "\n";
  {
    std::ofstream out(out_path);
    out << json << "\n";
  }

  std::printf("serve_load: %llu responses in %.2fs over %zu conns "
              "(pipeline %zu): %.0f QPS, p50 %.1fus, p99 %.1fus\n",
              static_cast<unsigned long long>(responses), elapsed, connections,
              window, qps, static_cast<double>(p50) / 1e3,
              static_cast<double>(p99) / 1e3);

  if (!transport_ok || errors != 0 || responses == 0) {
    std::cerr << "serve_load: FAILED (transport_ok=" << transport_ok
              << " errors=" << errors << ")\n";
    return 1;
  }
  return 0;
}
