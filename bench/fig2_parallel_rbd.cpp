// Experiment F2s — structural validation of Figure 2, the "parallel
// detection" reliability block diagram, and of Eqs. (1)–(3).
//
// Three independent evaluations must agree exactly: the parallel model's
// Eq. (1), the RBD evaluated per class (recursive formula AND exhaustive
// state enumeration), and the embedding into the sequential model. The
// bench also quantifies the error of the naive Eq. (2), which ignores the
// covariance term of Eq. (3).
#include <cmath>
#include <iostream>

#include "core/parallel_model.hpp"
#include "rbd/conditional.hpp"
#include "rbd/importance.hpp"
#include "report/format.hpp"
#include "report/table.hpp"

int main() {
  using namespace hmdiv;
  using report::fixed;

  core::ParallelClassConditional easy;
  easy.p_machine_misses = 0.07;
  easy.p_human_misses = 0.12;
  easy.p_human_misclassifies = 0.1;
  core::ParallelClassConditional difficult;
  difficult.p_machine_misses = 0.41;
  difficult.p_human_misses = 0.55;
  difficult.p_human_misclassifies = 0.25;
  const core::ParallelDetectionModel model({"easy", "difficult"},
                                           {easy, difficult});
  const core::DemandProfile profile({"easy", "difficult"}, {0.8, 0.2});

  const auto structure = core::ParallelDetectionModel::structure();
  std::cout << "== F2s: Fig. 2 RBD = " << structure.to_string() << " ==\n\n";

  const rbd::DemandConditionalRbd diagram(
      structure,
      {{1 - easy.p_machine_misses, 1 - easy.p_human_misses,
        1 - easy.p_human_misclassifies},
       {1 - difficult.p_machine_misses, 1 - difficult.p_human_misses,
        1 - difficult.p_human_misclassifies}},
      stats::DiscreteDistribution({0.8, 0.2}));

  const double eq1 = model.system_failure_probability(profile);
  const double via_rbd = diagram.failure_probability();
  const double via_sequential =
      model.to_sequential().system_failure_probability(profile);
  double via_enumeration = 0.0;
  for (std::size_t x = 0; x < 2; ++x) {
    const auto& c = model.parameters(x);
    const std::vector<double> success{1 - c.p_machine_misses,
                                      1 - c.p_human_misses,
                                      1 - c.p_human_misclassifies};
    via_enumeration +=
        profile[x] * (1.0 - structure.success_by_enumeration(success));
  }

  report::Table agreement({"evaluation", "P(system false negative)"});
  agreement.row({"Eq. (1), closed form", fixed(eq1, 6)});
  agreement.row({"Fig. 2 RBD, recursive formula", fixed(via_rbd, 6)});
  agreement.row({"Fig. 2 RBD, state enumeration", fixed(via_enumeration, 6)});
  agreement.row({"sequential-model embedding (Eq. 8)",
                 fixed(via_sequential, 6)});
  std::cout << agreement << '\n';

  // Eq. (3) vs Eq. (2): covariance of the detection difficulty functions.
  const double covariance = model.detection_covariance(profile);
  const double exact_detection = model.detection_failure_probability(profile);
  const double naive_system = model.system_failure_assuming_independence(profile);
  report::Table covariance_table(
      {"quantity", "value"});
  covariance_table.caption("Eq. (3) covariance analysis");
  covariance_table.row({"P(detection failure), exact", fixed(exact_detection, 6)});
  covariance_table.row(
      {"PMf * PHmiss (independence part)",
       fixed(exact_detection - covariance, 6)});
  covariance_table.row({"cov_x(pMf, pHmiss)", fixed(covariance, 6)});
  covariance_table.row({"system failure, naive Eq. (2)", fixed(naive_system, 6)});
  covariance_table.row({"system failure, exact Eq. (1)", fixed(eq1, 6)});
  covariance_table.row(
      {"relative error of Eq. (2)",
       report::percent((naive_system - eq1) / eq1, 1)});
  std::cout << covariance_table << '\n';

  // Birnbaum importances of the three blocks (marginal probabilities).
  std::vector<double> marginal_success(3);
  for (std::size_t i = 0; i < 3; ++i) {
    marginal_success[i] = 1.0 - diagram.component_failure_probability(i);
  }
  const auto importances =
      rbd::birnbaum_importances(structure, marginal_success);
  report::Table birnbaum({"block", "Birnbaum importance"});
  birnbaum.caption("Component importances (paper ref. [1])");
  const char* names[] = {"machine detects", "human detects",
                         "human classifies"};
  for (std::size_t i = 0; i < 3; ++i) {
    birnbaum.row({names[i], fixed(importances[i], 4)});
  }
  std::cout << birnbaum << '\n';

  const bool agree = std::fabs(eq1 - via_rbd) < 1e-12 &&
                     std::fabs(eq1 - via_enumeration) < 1e-12 &&
                     std::fabs(eq1 - via_sequential) < 1e-12;
  const bool covariance_positive = covariance > 0.0 && naive_system < eq1;
  std::cout << "All four evaluations agree exactly: "
            << (agree ? "PASS" : "FAIL") << '\n'
            << "Positive difficulty covariance makes Eq. (2) optimistic: "
            << (covariance_positive ? "PASS" : "FAIL") << "\n\n";
  return agree && covariance_positive ? 0 : 1;
}
