// Experiment X5 — Section 5 item 2: "the readers have varying levels of
// ability ... The trial data can indicate the range of these abilities".
//
// Panels of 12 readers are sampled at increasing skill spread; each panel
// reads a 36k-case trial (cases assigned uniformly). The analysis fits a
// beta-binomial to the per-reader failure counts: the over-dispersion
// index rho must be ~0 for a homogeneous panel (all variation is binomial
// sampling noise) and must rise monotonically with the true skill spread —
// i.e. the trial data *can* indicate the range of abilities, and the
// analysis correctly refuses to see heterogeneity that is not there.
#include <iostream>

#include "report/format.hpp"
#include "report/table.hpp"
#include "sim/feature_world.hpp"
#include "sim/reader_panel.hpp"

int main() {
  using namespace hmdiv;
  using report::fixed;

  const auto base_world = sim::reference_feature_world();
  const sim::ReaderModel::Config base_config = base_world.reader().config();

  std::cout << "== X5: panel heterogeneity vs fitted over-dispersion ==\n";
  report::Table table({"skill sigma", "rate range (min..max)", "mean rate",
                       "beta-binomial rho"});
  std::vector<double> rhos;
  stats::Rng rng(13579);
  for (const double sigma : {0.0, 0.15, 0.3, 0.6}) {
    stats::Rng panel_rng = rng.split(static_cast<std::uint64_t>(sigma * 100));
    const auto panel =
        sim::ReaderPanel::sample(base_config, 12, sigma, panel_rng);
    stats::Rng trial_rng = rng.split(1000 + static_cast<std::uint64_t>(
                                                sigma * 100));
    const auto records = sim::run_panel_trial(
        base_world.generator(), base_world.cadt(), panel, 36000, trial_rng);
    const auto analysis = sim::analyse_panel(records, panel.size());
    table.row({fixed(sigma, 2),
               fixed(analysis.lowest_rate, 3) + " .. " +
                   fixed(analysis.highest_rate, 3),
               fixed(analysis.fit.mean(), 3),
               report::sig(analysis.fit.rho(), 3)});
    rhos.push_back(analysis.fit.rho());
  }
  std::cout << table << '\n';

  const bool homogeneous_flat = rhos.front() < 0.003;
  bool monotone = true;
  for (std::size_t i = 1; i < rhos.size(); ++i) {
    monotone = monotone && rhos[i] > rhos[i - 1];
  }
  std::cout << "Homogeneous panel shows no over-dispersion (rho ~ 0): "
            << (homogeneous_flat ? "PASS" : "FAIL") << '\n'
            << "Fitted rho rises with the true skill spread: "
            << (monotone ? "PASS" : "FAIL") << "\n\n";
  return homogeneous_flat && monotone ? 0 : 1;
}
