// Experiment T1 — the paper's Section-5 parameter table.
//
// The paper's parameters are taken as the ground truth of a TabularWorld; a
// simulated controlled trial (enriched 80/20 case mix, as in the paper)
// re-estimates {PMf, PHf|Mf, PHf|Ms} per class with Wilson 95% intervals.
// Reproduction check: every interval covers the generating value.
#include <cstdio>
#include <iostream>

#include "core/paper_example.hpp"
#include "report/format.hpp"
#include "report/table.hpp"
#include "sim/estimation.hpp"
#include "sim/tabular_world.hpp"
#include "sim/trial.hpp"

int main() {
  using namespace hmdiv;
  using report::fixed;

  const auto model = core::paper::example_model();
  const auto trial_profile = core::paper::trial_profile();
  const auto field_profile = core::paper::field_profile();

  std::cout << "== T1: Section 5 parameter table (paper values) ==\n";
  report::Table paper_table({"classes of cases", "Trial p(x)", "Field p(x)",
                             "PMf", "PMs", "PHf|Mf", "PHf|Ms"});
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    const auto& c = model.parameters(x);
    paper_table.row({model.class_names()[x], fixed(trial_profile[x], 2),
                     fixed(field_profile[x], 2), fixed(c.p_machine_fails, 2),
                     fixed(c.p_machine_succeeds(), 2),
                     fixed(c.p_human_fails_given_machine_fails, 2),
                     fixed(c.p_human_fails_given_machine_succeeds, 2)});
  }
  std::cout << paper_table << '\n';

  // Simulated trial: 5000 cancer cases under the enriched trial mix.
  constexpr std::uint64_t kTrialCases = 5000;
  sim::TabularWorld world(model, trial_profile);
  sim::TrialRunner runner(world, kTrialCases);
  stats::Rng rng(20030623);  // DSN'03 dates
  const auto data = runner.run(rng);
  const auto estimate = sim::estimate_sequential_model(data);

  std::cout << "== T1 reproduced: parameters re-estimated from a simulated "
            << kTrialCases << "-case trial (Wilson 95% CI) ==\n";
  report::Table estimated({"classes of cases", "n", "PMf [CI]", "PHf|Mf [CI]",
                           "PHf|Ms [CI]", "t(x)"});
  bool all_covered = true;
  for (std::size_t x = 0; x < estimate.classes.size(); ++x) {
    const auto& e = estimate.classes[x];
    const auto& truth = model.parameters(x);
    estimated.row(
        {estimate.class_names[x], std::to_string(e.counts.cases),
         report::with_interval(e.p_machine_fails, e.machine_interval.lower,
                               e.machine_interval.upper),
         report::with_interval(e.p_human_fails_given_machine_fails,
                               e.human_given_failure_interval.lower,
                               e.human_given_failure_interval.upper),
         report::with_interval(e.p_human_fails_given_machine_succeeds,
                               e.human_given_success_interval.lower,
                               e.human_given_success_interval.upper),
         fixed(e.importance_index(), 3)});
    all_covered = all_covered &&
                  e.machine_interval.contains(truth.p_machine_fails) &&
                  e.human_given_failure_interval.contains(
                      truth.p_human_fails_given_machine_fails) &&
                  e.human_given_success_interval.contains(
                      truth.p_human_fails_given_machine_succeeds);
  }
  std::cout << estimated << '\n';

  std::cout << "Coverage check (every 95% interval covers the generating "
               "parameter): "
            << (all_covered ? "PASS" : "FAIL") << "\n\n";
  return all_covered ? 0 : 1;
}
