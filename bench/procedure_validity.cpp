// Experiment X8 — Section 3's question: when is the "parallel detection"
// model (Fig. 2 / Eqs. 1–3) actually valid?
//
// An instrumented Procedure-1 trial (reader's unaided findings recorded
// before prompts are shown) is simulated and the parallel model is fitted.
// Three regimes:
//
//   1. Design ideal (every prompt examined, homogeneous classes): the
//      fitted Eq. (1) reproduces the simulated system failure exactly.
//   2. Prompt attention < 1 (readers skim prompts): Eq. (1) as idealised —
//      "any feature ... is actually examined, provided that either the
//      reader or the CADT notices it" — under-predicts system failure,
//      increasingly with inattention.
//   3. Heterogeneous classes (within-class difficulty spread): the class-
//      granular Eq. (1) is optimistic even under perfect procedure,
//      because human and machine detection stay correlated *inside* each
//      class (the Eq. 3 covariance at sub-class scale).
#include <cmath>
#include <iostream>

#include "report/format.hpp"
#include "report/table.hpp"
#include "sim/feature_world.hpp"
#include "sim/parallel_world.hpp"

namespace {

using namespace hmdiv;

/// Eq. (1) applied to fitted per-class parameters.
double eq1_prediction(const sim::ParallelEstimate& estimate,
                      const core::DemandProfile& profile) {
  return estimate.fitted_model().system_failure_probability(profile);
}

}  // namespace

int main() {
  using report::fixed;

  const auto base = sim::reference_feature_world();
  const core::DemandProfile profile({"easy", "difficult"}, {0.8, 0.2});
  constexpr std::uint64_t kCases = 300000;

  std::cout << "== X8: validity of the parallel-detection model (Eq. 1) ==\n";
  report::Table table({"regime", "Eq. (1) on fitted params",
                       "simulated P(FN)", "gap"});
  struct Regime {
    const char* label;
    double attention;
    double scale;
  };
  const Regime regimes[] = {
      {"ideal procedure, homogeneous classes", 1.0, 0.0},
      {"ideal procedure, heterogeneous classes", 1.0, 1.0},
      {"80% prompt attention, homogeneous", 0.8, 0.0},
      {"60% prompt attention, homogeneous", 0.6, 0.0},
      {"60% attention, heterogeneous", 0.6, 1.0},
  };
  std::vector<double> gaps;
  std::uint64_t seed = 4000;
  for (const Regime& regime : regimes) {
    sim::ParallelProcedureWorld world(base.generator().with_profile(profile),
                                      base.cadt(), base.reader(),
                                      regime.attention, regime.scale);
    stats::Rng rng(seed++);
    const auto records = world.run(kCases, rng);
    const auto estimate =
        sim::estimate_parallel_model(records, profile.class_names());
    const double predicted = eq1_prediction(estimate, profile);
    const double simulated = estimate.observed_system_failure;
    table.row({regime.label, fixed(predicted, 4), fixed(simulated, 4),
               fixed(simulated - predicted, 4)});
    gaps.push_back(simulated - predicted);
  }
  std::cout << table << '\n';

  std::cout
      << "Reading: under the design-ideal procedure with homogeneous\n"
         "classes, the instrumented trial identifies all three parameters\n"
         "and Eq. (1) is exact. Skimmed prompts break the '1-out-of-2\n"
         "detection' assumption; within-class difficulty spread leaves\n"
         "residual human-machine correlation that the class-granular\n"
         "independence misses. Both biases are optimistic — the dangerous\n"
         "direction — which is why Section 3 rejects this model unless the\n"
         "procedure (and the classing) can be audited.\n\n";

  // Checks: regime 1 gap ~ 0 (sampling noise only); inattention gaps grow
  // and are positive; heterogeneity gap positive.
  const double noise = 0.003;
  const bool ideal_exact = std::fabs(gaps[0]) < noise;
  const bool heterogeneity_optimistic = gaps[1] > noise / 3.0;
  const bool attention_monotone =
      gaps[2] > noise / 3.0 && gaps[3] > gaps[2];
  const bool combined_worst = gaps[4] >= gaps[3] - noise;
  std::cout << "Ideal regime: Eq. (1) exact up to sampling noise: "
            << (ideal_exact ? "PASS" : "FAIL") << '\n'
            << "Within-class heterogeneity makes Eq. (1) optimistic: "
            << (heterogeneity_optimistic ? "PASS" : "FAIL") << '\n'
            << "Prompt inattention bias grows as attention drops: "
            << (attention_monotone ? "PASS" : "FAIL") << '\n'
            << "Combined regime at least as biased as inattention alone: "
            << (combined_worst ? "PASS" : "FAIL") << "\n\n";
  return ideal_exact && heterogeneity_optimistic && attention_monotone &&
                 combined_worst
             ? 0
             : 1;
}
