// Experiment F3s — structural validation of Figure 3, the sequential
// pipeline (machine pre-processes, reader decides on case + prompts).
//
// The mechanistic FeatureWorld implements exactly that information flow.
// Ground-truth class-conditional parameters {PMf, PHf|Mf, PHf|Ms} are
// extracted by Rao-Blackwellised integration; Eq. (7)/(8) evaluated on them
// must predict the end-to-end simulated failure rate of the pipeline —
// under the trial profile AND re-weighted to the field profile.
#include <cmath>
#include <iostream>

#include "report/format.hpp"
#include "report/table.hpp"
#include "sim/estimation.hpp"
#include "sim/feature_world.hpp"
#include "sim/ground_truth.hpp"
#include "sim/trial.hpp"

int main() {
  using namespace hmdiv;
  using report::fixed;

  auto world = sim::reference_feature_world();
  world.set_adaptation_enabled(false);
  stats::Rng truth_rng(61);
  const auto truth = sim::ground_truth_model(world, truth_rng, 400000);

  std::cout << "== F3s: emergent parameters of the mechanistic pipeline ==\n";
  report::Table params({"class", "PMf", "PHf|Mf", "PHf|Ms", "t(x)"});
  for (std::size_t x = 0; x < truth.class_count(); ++x) {
    const auto& c = truth.parameters(x);
    params.row({truth.class_names()[x], fixed(c.p_machine_fails, 4),
                fixed(c.p_human_fails_given_machine_fails, 4),
                fixed(c.p_human_fails_given_machine_succeeds, 4),
                fixed(truth.importance_index(x), 4)});
  }
  std::cout << params << '\n';

  // End-to-end simulation under trial and field mixes.
  auto simulate = [&](const core::DemandProfile& profile, std::uint64_t seed) {
    auto w = sim::reference_feature_world(profile);
    w.set_adaptation_enabled(false);
    sim::TrialRunner runner(w, 300000);
    stats::Rng rng(seed);
    return runner.run(rng);
  };
  const core::DemandProfile trial({"easy", "difficult"}, {0.8, 0.2});
  const core::DemandProfile field({"easy", "difficult"}, {0.9, 0.1});
  const auto trial_data = simulate(trial, 62);
  const auto field_data = simulate(field, 63);

  report::Table check({"profile", "Eq. (8) prediction", "simulated pipeline",
                       "|error|"});
  const double predicted_trial = truth.system_failure_probability(trial);
  const double predicted_field = truth.system_failure_probability(field);
  const double simulated_trial = trial_data.observed_failure_rate();
  const double simulated_field = field_data.observed_failure_rate();
  check.row({"Trial (0.8/0.2)", fixed(predicted_trial, 4),
             fixed(simulated_trial, 4),
             fixed(std::fabs(predicted_trial - simulated_trial), 4)});
  check.row({"Field (0.9/0.1)", fixed(predicted_field, 4),
             fixed(simulated_field, 4),
             fixed(std::fabs(predicted_field - simulated_field), 4)});
  std::cout << check << '\n';

  // The conditional structure is real: human failures must associate with
  // machine failures within classes (prompts matter).
  const auto association = sim::association_by_class(trial_data);
  report::Table assoc({"class", "chi-square (1 dof)", "p-value"});
  assoc.caption("Human-machine failure association within classes");
  for (std::size_t x = 0; x < association.size(); ++x) {
    assoc.row({trial_data.class_names[x], fixed(association[x].statistic, 1),
               report::sig(association[x].p_value, 2)});
  }
  std::cout << assoc << '\n';

  const bool prediction_ok =
      std::fabs(predicted_trial - simulated_trial) < 0.005 &&
      std::fabs(predicted_field - simulated_field) < 0.005;
  bool association_ok = true;
  for (const auto& t : association) association_ok &= t.p_value < 0.01;
  const bool shape_ok = truth.importance_index(0) > 0.0 &&
                        truth.importance_index(1) > 0.0 &&
                        truth.parameters(1).p_machine_fails >
                            truth.parameters(0).p_machine_fails;
  std::cout << "Eq. (8) predicts the simulated pipeline on both profiles: "
            << (prediction_ok ? "PASS" : "FAIL") << '\n'
            << "Prompts demonstrably change reader failure rates (t > 0, "
               "association significant): "
            << (association_ok && shape_ok ? "PASS" : "FAIL") << "\n\n";
  return prediction_ok && association_ok && shape_ok ? 0 : 1;
}
