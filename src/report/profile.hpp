// Rendering of obs registry snapshots: an aligned text table for humans
// (the CLI's and benches' --profile output) and CSV rows for machines
// (phase-level timing series in BENCH_*.json pipelines).
#pragma once

#include <iosfwd>
#include <string>

#include "obs/obs.hpp"

namespace hmdiv::report {

/// Renders the snapshot as two aligned text tables — counters, then
/// histograms (count, total ms, mean µs, p50/p90/p99/p99.9 µs, max µs).
/// Returns a note instead of tables when the snapshot is empty.
[[nodiscard]] std::string profile_table(const obs::Snapshot& snapshot);

/// Writes the snapshot as CSV with the header
///   kind,name,count,sum_ns,min_ns,max_ns,p50_ns,p90_ns,p99_ns,p999_ns
/// Counter rows carry the value in `count` and leave the ns fields empty.
void write_profile_csv(std::ostream& os, const obs::Snapshot& snapshot);

}  // namespace hmdiv::report
