#include "report/csv.hpp"

#include <cmath>
#include <ostream>

#include "report/format.hpp"

namespace hmdiv::report {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char ch : field) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) os_ << ',';
    os_ << csv_escape(fields[i]);
  }
  os_ << '\n';
}

void CsvWriter::numeric_row(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (const double v : values) {
    // printf-style "nan"/"inf" cells are not portable CSV; normalise to
    // the common conventions (empty cell for missing, signed inf).
    if (std::isnan(v)) {
      fields.emplace_back();
    } else if (std::isinf(v)) {
      fields.emplace_back(v > 0.0 ? "inf" : "-inf");
    } else {
      fields.push_back(sig(v, 17));
    }
  }
  row(fields);
}

}  // namespace hmdiv::report
