// Numeric formatting helpers shared by benches, examples and table rendering.
//
// All functions are pure and locale-independent: they always use '.' as the
// decimal separator so that generated tables and CSV files are stable across
// environments.
#pragma once

#include <string>

namespace hmdiv::report {

/// Formats `value` with exactly `decimals` digits after the decimal point
/// (round-half-away-from-zero, as std::snprintf does). `fixed(0.1887, 3)`
/// yields `"0.189"` — the paper's tables use three decimals throughout.
[[nodiscard]] std::string fixed(double value, int decimals);

/// Formats `value` with `digits` significant digits using the shortest of
/// fixed/scientific notation (printf %g semantics).
[[nodiscard]] std::string sig(double value, int digits);

/// Formats a probability in [0,1] as a percentage string, e.g. `"18.9%"`.
/// Values outside [0,1] are formatted anyway (useful for differences).
[[nodiscard]] std::string percent(double probability, int decimals = 1);

/// Formats an integer with thousands separators: 12860 -> "12,860".
[[nodiscard]] std::string with_thousands(long long value);

/// Left/right-pads `text` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_left(const std::string& text, std::size_t width);
[[nodiscard]] std::string pad_right(const std::string& text, std::size_t width);

/// Formats a 95% interval as "0.123 [0.100, 0.150]".
[[nodiscard]] std::string with_interval(double point, double lo, double hi,
                                        int decimals = 3);

}  // namespace hmdiv::report
