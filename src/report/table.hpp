// Minimal table model + renderers (plain text and GitHub markdown).
//
// Benches use this to print the paper's tables side by side with reproduced
// values; the renderer guarantees stable, aligned output so runs can be
// diffed across revisions.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace hmdiv::report {

enum class Align { kLeft, kRight };

/// A rectangular table of strings with a header row.
///
/// Invariant: every appended row has exactly as many cells as the header.
class Table {
 public:
  /// Creates a table whose columns are named by `header` (must be non-empty).
  explicit Table(std::vector<std::string> header);

  /// Optional caption printed above the table.
  Table& caption(std::string text);

  /// Sets the alignment of column `index` (default: first column left,
  /// all other columns right — the common layout for numeric tables).
  Table& align(std::size_t index, Align alignment);

  /// Appends a row; throws std::invalid_argument on cell-count mismatch.
  Table& row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t column_count() const { return header_.size(); }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  /// Renders with box-drawing-free ASCII, columns padded to content width.
  [[nodiscard]] std::string to_text() const;

  /// Renders as a GitHub-flavoured markdown table.
  [[nodiscard]] std::string to_markdown() const;

 private:
  [[nodiscard]] std::vector<std::size_t> column_widths() const;

  std::string caption_;
  std::vector<std::string> header_;
  std::vector<Align> alignments_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience: renders to_text() to `os`.
std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace hmdiv::report
