// RFC-4180-style CSV writing, used by benches to dump plot series (e.g. the
// Figure 4 line sweeps) for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hmdiv::report {

/// Escapes a single CSV field: quotes it iff it contains a comma, a quote or
/// a newline; embedded quotes are doubled.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Streams rows of fields as CSV lines ("\n" line endings).
class CsvWriter {
 public:
  /// Writes to `os`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row. Each field is escaped independently.
  void row(const std::vector<std::string>& fields);

  /// Convenience for numeric rows: formats each value with 17 significant
  /// digits (round-trippable doubles). Non-finite values are normalised
  /// for portability: NaN becomes an empty field, infinities become the
  /// literals "inf" / "-inf".
  void numeric_row(const std::vector<double>& values);

 private:
  std::ostream& os_;
};

}  // namespace hmdiv::report
