#include "report/format.hpp"

#include <cstdio>
#include <stdexcept>

namespace hmdiv::report {

namespace {

std::string printf_format(const char* spec, int precision, double value) {
  char buffer[64];
  const int written = std::snprintf(buffer, sizeof buffer, spec, precision, value);
  if (written < 0 || static_cast<std::size_t>(written) >= sizeof buffer) {
    throw std::runtime_error("report::format: value does not fit buffer");
  }
  return std::string(buffer);
}

}  // namespace

std::string fixed(double value, int decimals) {
  if (decimals < 0 || decimals > 17) {
    throw std::invalid_argument("report::fixed: decimals out of range [0,17]");
  }
  return printf_format("%.*f", decimals, value);
}

std::string sig(double value, int digits) {
  if (digits < 1 || digits > 17) {
    throw std::invalid_argument("report::sig: digits out of range [1,17]");
  }
  return printf_format("%.*g", digits, value);
}

std::string percent(double probability, int decimals) {
  return fixed(probability * 100.0, decimals) + "%";
}

std::string with_thousands(long long value) {
  const bool negative = value < 0;
  // Build the digit string; insert ',' every three digits from the right.
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return negative ? "-" + out : out;
}

std::string pad_left(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text;
  return std::string(width - text.size(), ' ') + text;
}

std::string pad_right(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text;
  return text + std::string(width - text.size(), ' ');
}

std::string with_interval(double point, double lo, double hi, int decimals) {
  return fixed(point, decimals) + " [" + fixed(lo, decimals) + ", " +
         fixed(hi, decimals) + "]";
}

}  // namespace hmdiv::report
