#include "report/profile.hpp"

#include <sstream>

#include "report/csv.hpp"
#include "report/format.hpp"
#include "report/table.hpp"

namespace hmdiv::report {

namespace {

/// Nanoseconds to a fixed-point microsecond string.
std::string us(std::uint64_t ns) {
  return fixed(static_cast<double>(ns) / 1e3, 1);
}

std::string count_string(std::uint64_t n) {
  return with_thousands(static_cast<long long>(n));
}

}  // namespace

std::string profile_table(const obs::Snapshot& snapshot) {
  if (snapshot.empty()) {
    return "profile: registry is empty (was profiling enabled?)\n";
  }
  std::ostringstream out;
  if (!snapshot.counters.empty()) {
    Table counters({"counter", "value"});
    counters.caption("Registry counters");
    for (const auto& c : snapshot.counters) {
      counters.row({c.name, count_string(c.value)});
    }
    out << counters << '\n';
  }
  if (!snapshot.histograms.empty()) {
    Table timers({"timer", "count", "total ms", "mean us", "p50 us",
                  "p90 us", "p99 us", "p99.9 us", "max us"});
    timers.caption("Registry histograms (timings)");
    for (const auto& h : snapshot.histograms) {
      const double mean_ns =
          h.count == 0 ? 0.0
                       : static_cast<double>(h.sum) /
                             static_cast<double>(h.count);
      timers.row({h.name, count_string(h.count),
                  fixed(static_cast<double>(h.sum) / 1e6, 2),
                  fixed(mean_ns / 1e3, 1), us(h.p50), us(h.p90), us(h.p99),
                  us(obs::snapshot_quantile(h, 0.999)), us(h.max)});
    }
    out << timers << '\n';
  }
  return out.str();
}

void write_profile_csv(std::ostream& os, const obs::Snapshot& snapshot) {
  CsvWriter csv(os);
  csv.row({"kind", "name", "count", "sum_ns", "min_ns", "max_ns", "p50_ns",
           "p90_ns", "p99_ns", "p999_ns"});
  for (const auto& c : snapshot.counters) {
    csv.row({"counter", c.name, std::to_string(c.value), "", "", "", "", "",
             "", ""});
  }
  for (const auto& h : snapshot.histograms) {
    // p99.9 is derived from the raw buckets the snapshot carries, same as
    // the serve metrics endpoint.
    csv.row({"histogram", h.name, std::to_string(h.count),
             std::to_string(h.sum), std::to_string(h.min),
             std::to_string(h.max), std::to_string(h.p50),
             std::to_string(h.p90), std::to_string(h.p99),
             std::to_string(obs::snapshot_quantile(h, 0.999))});
  }
}

}  // namespace hmdiv::report
