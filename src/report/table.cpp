#include "report/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "report/format.hpp"

namespace hmdiv::report {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table: header must be non-empty");
  }
  alignments_.assign(header_.size(), Align::kRight);
  alignments_.front() = Align::kLeft;
}

Table& Table::caption(std::string text) {
  caption_ = std::move(text);
  return *this;
}

Table& Table::align(std::size_t index, Align alignment) {
  if (index >= alignments_.size()) {
    throw std::invalid_argument("Table::align: column index out of range");
  }
  alignments_[index] = alignment;
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table::row: cell count does not match header");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::vector<std::size_t> Table::column_widths() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  return widths;
}

std::string Table::to_text() const {
  const auto widths = column_widths();
  std::ostringstream out;
  if (!caption_.empty()) out << caption_ << '\n';

  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << "  ";
      out << (alignments_[c] == Align::kLeft ? pad_right(cells[c], widths[c])
                                             : pad_left(cells[c], widths[c]));
    }
    out << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
  return out.str();
}

std::string Table::to_markdown() const {
  std::ostringstream out;
  if (!caption_.empty()) out << "**" << caption_ << "**\n\n";

  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (const auto& cell : cells) out << ' ' << cell << " |";
    out << '\n';
  };

  emit_row(header_);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << (alignments_[c] == Align::kLeft ? ":---" : "---:") << '|';
  }
  out << '\n';
  for (const auto& r : rows_) emit_row(r);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.to_text();
}

}  // namespace hmdiv::report
