// Demand-conditional RBD evaluation: the Littlewood–Popov–Strigini
// "difficulty function" view that the paper builds on [its refs 4, 5].
//
// Components are *conditionally independent given the demand class*: each
// class x carries its own vector of component success probabilities.
// Marginally the components are correlated, with the covariance term of the
// paper's Eq. (3):
//
//   P(A and B fail) = PA·PB + cov_x(pA(x), pB(x)).
//
// `DemandConditionalRbd` evaluates a structure per class and mixes over the
// demand profile, and exposes the pairwise covariance/correlation
// diagnostics that quantify human-machine diversity.
#pragma once

#include <cstddef>
#include <vector>

#include "rbd/structure.hpp"
#include "stats/distributions.hpp"

namespace hmdiv::rbd {

/// A structure + per-demand-class component success probabilities + demand
/// profile.
class DemandConditionalRbd {
 public:
  /// `success_by_class[x][i]` is the success probability of component i on
  /// class x. Every row must have at least structure.component_count()
  /// entries, and there must be one row per profile category.
  DemandConditionalRbd(Structure structure,
                       std::vector<std::vector<double>> success_by_class,
                       stats::DiscreteDistribution demand_profile);

  [[nodiscard]] const Structure& structure() const { return structure_; }
  [[nodiscard]] std::size_t class_count() const {
    return success_by_class_.size();
  }
  [[nodiscard]] const stats::DiscreteDistribution& demand_profile() const {
    return demand_profile_;
  }

  /// P(system works on class x), conditional independence within the class.
  [[nodiscard]] double success_given_class(std::size_t x) const;

  /// P(system works) = sum_x p(x) · success_given_class(x).
  [[nodiscard]] double success_probability() const;
  [[nodiscard]] double failure_probability() const {
    return 1.0 - success_probability();
  }

  /// Marginal failure probability of component i: E_x[1 - p_i(x)].
  [[nodiscard]] double component_failure_probability(std::size_t i) const;

  /// cov_x(q_i(x), q_j(x)) where q = per-class failure probabilities —
  /// the Eq. (3) covariance. Positive => common difficulty (bad);
  /// negative => diversity (good).
  [[nodiscard]] double failure_covariance(std::size_t i, std::size_t j) const;

  /// P(components i and j both fail) = q_i·q_j + cov_x(q_i(x), q_j(x)).
  [[nodiscard]] double joint_failure_probability(std::size_t i,
                                                 std::size_t j) const;

  /// Weighted Pearson correlation of the two difficulty functions.
  [[nodiscard]] double failure_correlation(std::size_t i, std::size_t j) const;

  /// System failure probability pretending components fail independently
  /// with their *marginal* probabilities — the naive estimate the paper
  /// warns against. Compare with failure_probability() to expose the error
  /// introduced by ignoring demand-conditional variation.
  [[nodiscard]] double failure_probability_assuming_independence() const;

  /// Evaluates under a different demand profile (same classes): the
  /// trial-to-field re-weighting of Section 5.
  [[nodiscard]] double failure_probability_under(
      const stats::DiscreteDistribution& profile) const;

 private:
  void check_component(std::size_t i) const;
  [[nodiscard]] std::vector<double> failure_column(std::size_t i) const;

  Structure structure_;
  std::vector<std::vector<double>> success_by_class_;
  stats::DiscreteDistribution demand_profile_;
};

}  // namespace hmdiv::rbd
