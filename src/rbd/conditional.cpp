#include "rbd/conditional.hpp"

#include <stdexcept>

#include "stats/summary.hpp"

namespace hmdiv::rbd {

DemandConditionalRbd::DemandConditionalRbd(
    Structure structure, std::vector<std::vector<double>> success_by_class,
    stats::DiscreteDistribution demand_profile)
    : structure_(std::move(structure)),
      success_by_class_(std::move(success_by_class)),
      demand_profile_(std::move(demand_profile)) {
  if (success_by_class_.size() != demand_profile_.size()) {
    throw std::invalid_argument(
        "DemandConditionalRbd: one probability row per demand class required");
  }
  for (const auto& row : success_by_class_) {
    if (row.size() < structure_.component_count()) {
      throw std::invalid_argument(
          "DemandConditionalRbd: row shorter than component count");
    }
    for (const double p : row) {
      if (!(p >= 0.0 && p <= 1.0)) {
        throw std::invalid_argument(
            "DemandConditionalRbd: probabilities must lie in [0,1]");
      }
    }
  }
}

double DemandConditionalRbd::success_given_class(std::size_t x) const {
  if (x >= success_by_class_.size()) {
    throw std::invalid_argument("DemandConditionalRbd: class out of range");
  }
  const auto& row = success_by_class_[x];
  return structure_.has_shared_components()
             ? structure_.success_by_enumeration(row)
             : structure_.success_probability(row);
}

double DemandConditionalRbd::success_probability() const {
  double total = 0.0;
  for (std::size_t x = 0; x < success_by_class_.size(); ++x) {
    total += demand_profile_[x] * success_given_class(x);
  }
  return total;
}

void DemandConditionalRbd::check_component(std::size_t i) const {
  if (i >= structure_.component_count()) {
    throw std::invalid_argument("DemandConditionalRbd: component out of range");
  }
}

std::vector<double> DemandConditionalRbd::failure_column(std::size_t i) const {
  std::vector<double> out;
  out.reserve(success_by_class_.size());
  for (const auto& row : success_by_class_) out.push_back(1.0 - row[i]);
  return out;
}

double DemandConditionalRbd::component_failure_probability(
    std::size_t i) const {
  check_component(i);
  const auto failures = failure_column(i);
  return demand_profile_.expectation(failures);
}

double DemandConditionalRbd::failure_covariance(std::size_t i,
                                                std::size_t j) const {
  check_component(i);
  check_component(j);
  const auto fi = failure_column(i);
  const auto fj = failure_column(j);
  return stats::weighted_covariance(fi, fj, demand_profile_.probabilities());
}

double DemandConditionalRbd::joint_failure_probability(std::size_t i,
                                                       std::size_t j) const {
  check_component(i);
  check_component(j);
  const auto fi = failure_column(i);
  const auto fj = failure_column(j);
  double joint = 0.0;
  for (std::size_t x = 0; x < fi.size(); ++x) {
    joint += demand_profile_[x] * fi[x] * fj[x];
  }
  return joint;
}

double DemandConditionalRbd::failure_correlation(std::size_t i,
                                                 std::size_t j) const {
  check_component(i);
  check_component(j);
  const auto fi = failure_column(i);
  const auto fj = failure_column(j);
  return stats::weighted_correlation(fi, fj, demand_profile_.probabilities());
}

double DemandConditionalRbd::failure_probability_assuming_independence()
    const {
  std::vector<double> marginal_success;
  marginal_success.reserve(structure_.component_count());
  for (std::size_t i = 0; i < structure_.component_count(); ++i) {
    marginal_success.push_back(1.0 - component_failure_probability(i));
  }
  const double success =
      structure_.has_shared_components()
          ? structure_.success_by_enumeration(marginal_success)
          : structure_.success_probability(marginal_success);
  return 1.0 - success;
}

double DemandConditionalRbd::failure_probability_under(
    const stats::DiscreteDistribution& profile) const {
  if (profile.size() != success_by_class_.size()) {
    throw std::invalid_argument(
        "DemandConditionalRbd: profile class count mismatch");
  }
  double total = 0.0;
  for (std::size_t x = 0; x < success_by_class_.size(); ++x) {
    total += profile[x] * (1.0 - success_given_class(x));
  }
  return total;
}

}  // namespace hmdiv::rbd
