#include "rbd/structure.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace hmdiv::rbd {

Structure Structure::component(std::size_t index) {
  Structure s;
  Node node;
  node.kind = Kind::kComponent;
  node.component = index;
  s.nodes_.push_back(node);
  s.component_count_ = index + 1;
  return s;
}

Structure Structure::combine(Kind kind, std::size_t k,
                             std::vector<Structure> children) {
  if (children.empty()) {
    throw std::invalid_argument("Structure: combinator needs children");
  }
  Structure s;
  Node root;
  root.kind = kind;
  root.k = k;
  for (auto& child : children) {
    // Splice the child's nodes in, offsetting its internal indices.
    const std::size_t offset = s.nodes_.size();
    for (auto node : child.nodes_) {
      for (auto& c : node.children) c += offset;
      s.nodes_.push_back(std::move(node));
    }
    root.children.push_back(s.nodes_.size() - 1);  // child's root
    s.component_count_ = std::max(s.component_count_, child.component_count_);
  }
  s.nodes_.push_back(std::move(root));
  return s;
}

Structure Structure::series(std::vector<Structure> children) {
  return combine(Kind::kSeries, 0, std::move(children));
}

Structure Structure::any_of(std::vector<Structure> children) {
  return combine(Kind::kAnyOf, 0, std::move(children));
}

Structure Structure::k_out_of_n(std::size_t k,
                                std::vector<Structure> children) {
  if (k == 0 || k > children.size()) {
    throw std::invalid_argument("Structure::k_out_of_n: k outside [1, n]");
  }
  return combine(Kind::kKOutOfN, k, std::move(children));
}

bool Structure::evaluate(std::span<const bool> states) const {
  if (states.size() < component_count_) {
    throw std::invalid_argument("Structure::evaluate: too few states");
  }
  return evaluate_node(nodes_.size() - 1, states);
}

bool Structure::evaluate_node(std::size_t node,
                              std::span<const bool> states) const {
  const Node& n = nodes_[node];
  switch (n.kind) {
    case Kind::kComponent:
      return states[n.component];
    case Kind::kSeries:
      for (const std::size_t c : n.children) {
        if (!evaluate_node(c, states)) return false;
      }
      return true;
    case Kind::kAnyOf:
      for (const std::size_t c : n.children) {
        if (evaluate_node(c, states)) return true;
      }
      return false;
    case Kind::kKOutOfN: {
      std::size_t working = 0;
      for (const std::size_t c : n.children) {
        if (evaluate_node(c, states)) ++working;
      }
      return working >= n.k;
    }
  }
  return false;  // Unreachable.
}

namespace {

void check_probabilities(std::span<const double> probabilities,
                         std::size_t needed) {
  if (probabilities.size() < needed) {
    throw std::invalid_argument("Structure: too few component probabilities");
  }
  for (const double p : probabilities) {
    if (!(p >= 0.0 && p <= 1.0)) {
      throw std::invalid_argument(
          "Structure: component probabilities must lie in [0,1]");
    }
  }
}

}  // namespace

double Structure::success_probability(
    std::span<const double> component_success) const {
  check_probabilities(component_success, component_count_);
  return success_node(nodes_.size() - 1, component_success);
}

double Structure::success_node(
    std::size_t node, std::span<const double> component_success) const {
  const Node& n = nodes_[node];
  switch (n.kind) {
    case Kind::kComponent:
      return component_success[n.component];
    case Kind::kSeries: {
      double p = 1.0;
      for (const std::size_t c : n.children) {
        p *= success_node(c, component_success);
      }
      return p;
    }
    case Kind::kAnyOf: {
      double all_fail = 1.0;
      for (const std::size_t c : n.children) {
        all_fail *= 1.0 - success_node(c, component_success);
      }
      return 1.0 - all_fail;
    }
    case Kind::kKOutOfN: {
      // Poisson-binomial DP: dp[j] = P(exactly j children work so far).
      std::vector<double> dp(n.children.size() + 1, 0.0);
      dp[0] = 1.0;
      std::size_t seen = 0;
      for (const std::size_t c : n.children) {
        const double p = success_node(c, component_success);
        for (std::size_t j = seen + 1; j-- > 0;) {
          dp[j + 1] += dp[j] * p;
          dp[j] *= 1.0 - p;
        }
        ++seen;
      }
      double at_least_k = 0.0;
      for (std::size_t j = n.k; j <= n.children.size(); ++j) at_least_k += dp[j];
      return at_least_k;
    }
  }
  return 0.0;  // Unreachable.
}

double Structure::success_by_enumeration(
    std::span<const double> component_success) const {
  check_probabilities(component_success, component_count_);
  if (component_count_ > 24) {
    throw std::invalid_argument(
        "Structure::success_by_enumeration: too many components (>24)");
  }
  const std::size_t n = component_count_;
  std::array<bool, 24> states{};  // std::vector<bool> cannot back a span.
  double total = 0.0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    double weight = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool works = ((mask >> i) & 1U) != 0;
      states[i] = works;
      weight *= works ? component_success[i] : 1.0 - component_success[i];
    }
    if (weight > 0.0 && evaluate(std::span<const bool>(states.data(), n))) {
      total += weight;
    }
  }
  return total;
}

bool Structure::has_shared_components() const {
  std::vector<int> uses(component_count_, 0);
  for (const Node& n : nodes_) {
    if (n.kind == Kind::kComponent) ++uses[n.component];
  }
  return std::any_of(uses.begin(), uses.end(), [](int u) { return u > 1; });
}

void Structure::to_string_node(std::size_t node, std::string& out) const {
  const Node& n = nodes_[node];
  switch (n.kind) {
    case Kind::kComponent:
      // Appended in two steps: the temporary from `"c" + to_string(...)`
      // trips GCC 12's bogus -Wrestrict at -O3 (PR 105329) under -Werror.
      out += 'c';
      out += std::to_string(n.component);
      return;
    case Kind::kSeries:
      out += "series(";
      break;
    case Kind::kAnyOf:
      out += "any_of(";
      break;
    case Kind::kKOutOfN:
      out += std::to_string(n.k) + "_of_" + std::to_string(n.children.size()) +
             "(";
      break;
  }
  for (std::size_t i = 0; i < n.children.size(); ++i) {
    if (i != 0) out += ", ";
    to_string_node(n.children[i], out);
  }
  out += ")";
}

std::string Structure::to_string() const {
  std::string out;
  to_string_node(nodes_.size() - 1, out);
  return out;
}

}  // namespace hmdiv::rbd
