// Reliability block diagram (RBD) substrate.
//
// A `Structure` is a coherent structure function over named components,
// built from series / parallel (1-out-of-N) / k-out-of-N combinators. The
// paper's Fig. 2 — machine detection in parallel with human detection, in
// series with human classification — is three components:
//
//   auto s = Structure::series({
//       Structure::any_of({Structure::component(kMachineDetects),
//                          Structure::component(kHumanDetects)}),
//       Structure::component(kHumanClassifies)});
//
// Evaluation assumes component failures independent *given the supplied
// probabilities*; correlation induced by case difficulty is handled one
// level up by `DemandConditionalRbd` (see conditional.hpp), which evaluates
// the structure separately per class of demands and mixes — exactly the
// paper's "conditional independence given the case" argument.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace hmdiv::rbd {

/// A coherent structure function over components 0..component_count()-1.
///
/// Immutable after construction; cheap to copy (small node vector).
class Structure {
 public:
  /// Leaf: the system path through component `index`.
  [[nodiscard]] static Structure component(std::size_t index);

  /// All children must work (series / AND of successes).
  [[nodiscard]] static Structure series(std::vector<Structure> children);

  /// At least one child must work (parallel / 1-out-of-N).
  [[nodiscard]] static Structure any_of(std::vector<Structure> children);

  /// At least `k` of the children must work. k in [1, children.size()].
  [[nodiscard]] static Structure k_out_of_n(std::size_t k,
                                            std::vector<Structure> children);

  /// Number of distinct component indices referenced (max index + 1).
  [[nodiscard]] std::size_t component_count() const { return component_count_; }

  /// Evaluates the structure function on a boolean component-state vector
  /// (true = component works). `states.size()` must be >= component_count().
  [[nodiscard]] bool evaluate(std::span<const bool> states) const;

  /// P(system works) given independent per-component success probabilities
  /// (each in [0,1]; size >= component_count()). Computed recursively:
  /// series multiplies, parallel multiplies complements, k-of-n uses a
  /// Poisson-binomial DP. Exact when the same component index is not
  /// repeated across sibling subtrees; use success_by_enumeration() when
  /// components are shared.
  [[nodiscard]] double success_probability(
      std::span<const double> component_success) const;

  /// P(system works) by exhaustive enumeration over all 2^n component
  /// states — exact even with shared components. Throws if
  /// component_count() > 24.
  [[nodiscard]] double success_by_enumeration(
      std::span<const double> component_success) const;

  /// True if the same component index appears in more than one leaf, in
  /// which case success_probability() may be inexact.
  [[nodiscard]] bool has_shared_components() const;

  /// Human-readable rendering, e.g. "series(any_of(c0, c1), c2)".
  [[nodiscard]] std::string to_string() const;

 private:
  enum class Kind { kComponent, kSeries, kAnyOf, kKOutOfN };

  struct Node {
    Kind kind = Kind::kComponent;
    std::size_t component = 0;          // kComponent
    std::size_t k = 0;                  // kKOutOfN
    std::vector<std::size_t> children;  // indices into nodes_
  };

  Structure() = default;
  [[nodiscard]] static Structure combine(Kind kind, std::size_t k,
                                         std::vector<Structure> children);

  [[nodiscard]] bool evaluate_node(std::size_t node,
                                   std::span<const bool> states) const;
  [[nodiscard]] double success_node(
      std::size_t node, std::span<const double> component_success) const;
  void to_string_node(std::size_t node, std::string& out) const;

  std::vector<Node> nodes_;   // nodes_.back() is the root
  std::size_t component_count_ = 0;
};

}  // namespace hmdiv::rbd
