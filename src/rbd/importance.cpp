#include "rbd/importance.hpp"

#include <stdexcept>

namespace hmdiv::rbd {

namespace {

double evaluate(const Structure& structure, std::span<const double> success) {
  return structure.has_shared_components()
             ? structure.success_by_enumeration(success)
             : structure.success_probability(success);
}

std::vector<double> with_component(std::span<const double> success,
                                   std::size_t index, double value) {
  std::vector<double> modified(success.begin(), success.end());
  modified.at(index) = value;
  return modified;
}

}  // namespace

double birnbaum_importance(const Structure& structure,
                           std::span<const double> success,
                           std::size_t index) {
  if (index >= structure.component_count()) {
    throw std::invalid_argument("birnbaum_importance: index out of range");
  }
  const double up = evaluate(structure, with_component(success, index, 1.0));
  const double down = evaluate(structure, with_component(success, index, 0.0));
  return up - down;
}

std::vector<double> birnbaum_importances(const Structure& structure,
                                         std::span<const double> success) {
  std::vector<double> out;
  out.reserve(structure.component_count());
  for (std::size_t i = 0; i < structure.component_count(); ++i) {
    out.push_back(birnbaum_importance(structure, success, i));
  }
  return out;
}

double improvement_potential(const Structure& structure,
                             std::span<const double> success,
                             std::size_t index) {
  if (index >= structure.component_count()) {
    throw std::invalid_argument("improvement_potential: index out of range");
  }
  const double up = evaluate(structure, with_component(success, index, 1.0));
  return up - evaluate(structure, success);
}

double criticality_importance(const Structure& structure,
                              std::span<const double> success,
                              std::size_t index) {
  if (index >= structure.component_count()) {
    throw std::invalid_argument("criticality_importance: index out of range");
  }
  const double system_failure = 1.0 - evaluate(structure, success);
  if (system_failure <= 0.0) return 0.0;
  const double component_failure = 1.0 - success[index];
  return birnbaum_importance(structure, success, index) * component_failure /
         system_failure;
}

}  // namespace hmdiv::rbd
