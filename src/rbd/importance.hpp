// Component importance measures for coherent structures.
//
// Birnbaum's importance measure [Birnbaum 1969] — the paper's reference [1]
// and the ancestor of its "importance index" t(x) — is the partial
// derivative of system success probability with respect to a component's
// success probability:
//
//   I_B(i) = P(system works | component i works)
//          - P(system works | component i fails)
//
// For the sequential model of Section 6.1, t(x) plays exactly this role for
// the machine "component", except that the human's conditional behaviour
// replaces structural independence.
#pragma once

#include <span>
#include <vector>

#include "rbd/structure.hpp"

namespace hmdiv::rbd {

/// Birnbaum importance of component `index`:
/// success(p with p_i := 1) − success(p with p_i := 0).
/// Uses enumeration when the structure shares components (exactness).
[[nodiscard]] double birnbaum_importance(const Structure& structure,
                                         std::span<const double> success,
                                         std::size_t index);

/// Birnbaum importance of every component.
[[nodiscard]] std::vector<double> birnbaum_importances(
    const Structure& structure, std::span<const double> success);

/// Improvement potential: how much system success would gain if component
/// `index` became perfect: success(p with p_i := 1) − success(p).
[[nodiscard]] double improvement_potential(const Structure& structure,
                                           std::span<const double> success,
                                           std::size_t index);

/// Criticality importance: Birnbaum importance scaled by the component's
/// failure probability relative to system failure probability. Ranks
/// components by their contribution to observed system failures.
/// Returns 0 when the system never fails.
[[nodiscard]] double criticality_importance(const Structure& structure,
                                            std::span<const double> success,
                                            std::size_t index);

}  // namespace hmdiv::rbd
