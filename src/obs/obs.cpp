#include "obs/obs.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string_view>

namespace hmdiv::obs {

namespace {

std::atomic<bool> g_enabled{false};

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    if (cumulative >= target && cumulative > 0) {
      // Upper bound of bucket b: values in [2^(b-1), 2^b).
      if (b == 0) return 0;
      if (b >= 64) return ~std::uint64_t{0};
      return (std::uint64_t{1} << b) - 1;
    }
  }
  return max();
}

std::uint64_t snapshot_quantile(const HistogramSnapshot& h,
                                double q) noexcept {
  if (h.count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(h.count)));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < h.buckets.size(); ++b) {
    cumulative += h.buckets[b];
    if (cumulative >= target && cumulative > 0) {
      // Upper bound of bucket b: values in [2^(b-1), 2^b).
      if (b == 0) return 0;
      if (b >= 64) return ~std::uint64_t{0};
      return (std::uint64_t{1} << b) - 1;
    }
  }
  return h.max;
}

void Histogram::merge(const HistogramSnapshot& other) noexcept {
  if (other.count == 0) return;
  count_.fetch_add(other.count, std::memory_order_relaxed);
  sum_.fetch_add(other.sum, std::memory_order_relaxed);
  const std::size_t buckets = std::min(other.buckets.size(), kBuckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    if (other.buckets[b] != 0) {
      buckets_[b].fetch_add(other.buckets[b], std::memory_order_relaxed);
    }
  }
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (other.min < seen &&
         !min_.compare_exchange_weak(seen, other.min,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (other.max > seen &&
         !max_.compare_exchange_weak(seen, other.max,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(const char* name) {
  if (!enabled()) return;
  hist_ = &Registry::global().histogram(name);
  start_ = Clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (hist_ == nullptr) return;
  const auto elapsed = Clock::now() - start_;
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  hist_->record(ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name)))
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.push_back(CounterSnapshot{name, counter->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = hist->count();
    h.sum = hist->sum();
    h.min = hist->min();
    h.max = hist->max();
    h.p50 = hist->quantile(0.50);
    h.p90 = hist->quantile(0.90);
    h.p99 = hist->quantile(0.99);
    h.buckets.resize(Histogram::kBuckets);
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      h.buckets[b] = hist->bucket(b);
    }
    out.histograms.push_back(std::move(h));
  }
  return out;
}

void Registry::merge(const Snapshot& other) {
  for (const CounterSnapshot& c : other.counters) {
    if (c.value != 0) counter(c.name).add(c.value);
  }
  for (const HistogramSnapshot& h : other.histograms) {
    histogram(h.name).merge(h);
  }
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, hist] : histograms_) hist->reset();
}

Snapshot registry_snapshot() { return Registry::global().snapshot(); }

Snapshot snapshot_delta(const Snapshot& before, const Snapshot& after) {
  Snapshot out;
  std::map<std::string_view, std::uint64_t> prev_counters;
  for (const CounterSnapshot& c : before.counters) {
    prev_counters[c.name] = c.value;
  }
  for (const CounterSnapshot& c : after.counters) {
    const auto it = prev_counters.find(c.name);
    const std::uint64_t base = it == prev_counters.end() ? 0 : it->second;
    // Counters are monotone per metric, but concurrent writers can make a
    // racy `before` read overshoot; saturate rather than wrap.
    const std::uint64_t delta = c.value >= base ? c.value - base : 0;
    if (delta != 0) out.counters.push_back(CounterSnapshot{c.name, delta});
  }
  std::map<std::string_view, const HistogramSnapshot*> prev_histograms;
  for (const HistogramSnapshot& h : before.histograms) {
    prev_histograms[h.name] = &h;
  }
  for (const HistogramSnapshot& h : after.histograms) {
    const auto it = prev_histograms.find(h.name);
    if (it == prev_histograms.end()) {
      if (h.count != 0) out.histograms.push_back(h);
      continue;
    }
    const HistogramSnapshot& base = *it->second;
    HistogramSnapshot delta;
    delta.name = h.name;
    delta.count = h.count >= base.count ? h.count - base.count : 0;
    if (delta.count == 0) continue;
    delta.sum = h.sum >= base.sum ? h.sum - base.sum : 0;
    // min/max are cumulative (see header): they cannot be subtracted.
    delta.min = h.min;
    delta.max = h.max;
    delta.buckets.resize(h.buckets.size());
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      const std::uint64_t prior =
          b < base.buckets.size() ? base.buckets[b] : 0;
      delta.buckets[b] =
          h.buckets[b] >= prior ? h.buckets[b] - prior : 0;
    }
    delta.p50 = snapshot_quantile(delta, 0.50);
    delta.p90 = snapshot_quantile(delta, 0.90);
    delta.p99 = snapshot_quantile(delta, 0.99);
    out.histograms.push_back(std::move(delta));
  }
  return out;
}

// --- Snapshot wire format -------------------------------------------------
// obs sits below exec in the layer order, so the encoding is implemented
// here with minimal local helpers rather than exec's wire::Writer/Reader.
// Layout (all little-endian):
//   u32 version | u64 n_counters | n × (str name, u64 value)
//               | u64 n_histograms | n × (str name, u64 count, sum, min,
//                 max, p50, p90, p99, u64 n_buckets, n_buckets × u64)
// Strings are u64 length + raw bytes.

namespace {

constexpr std::uint32_t kSnapshotVersion = 1;

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

struct Cursor {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  std::span<const std::uint8_t> take(std::uint64_t n) {
    if (n > bytes.size() - pos) {
      throw std::runtime_error("obs snapshot: truncated payload");
    }
    const auto out = bytes.subspan(pos, static_cast<std::size_t>(n));
    pos += static_cast<std::size_t>(n);
    return out;
  }
  std::uint64_t u64() {
    const auto raw = take(8);
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v |= std::uint64_t{raw[b]} << (8 * b);
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    const auto raw = take(n);
    return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
  }
};

}  // namespace

std::vector<std::uint8_t> serialize_snapshot(const Snapshot& s) {
  std::vector<std::uint8_t> out;
  put_u64(out, kSnapshotVersion);
  put_u64(out, s.counters.size());
  for (const CounterSnapshot& c : s.counters) {
    put_str(out, c.name);
    put_u64(out, c.value);
  }
  put_u64(out, s.histograms.size());
  for (const HistogramSnapshot& h : s.histograms) {
    put_str(out, h.name);
    put_u64(out, h.count);
    put_u64(out, h.sum);
    put_u64(out, h.min);
    put_u64(out, h.max);
    put_u64(out, h.p50);
    put_u64(out, h.p90);
    put_u64(out, h.p99);
    put_u64(out, h.buckets.size());
    for (const std::uint64_t b : h.buckets) put_u64(out, b);
  }
  return out;
}

Snapshot parse_snapshot(std::span<const std::uint8_t> bytes) {
  Cursor in{bytes};
  const std::uint64_t version = in.u64();
  if (version != kSnapshotVersion) {
    throw std::runtime_error("obs snapshot: unsupported version " +
                             std::to_string(version));
  }
  Snapshot out;
  const std::uint64_t counters = in.u64();
  out.counters.reserve(static_cast<std::size_t>(counters));
  for (std::uint64_t i = 0; i < counters; ++i) {
    CounterSnapshot c;
    c.name = in.str();
    c.value = in.u64();
    out.counters.push_back(std::move(c));
  }
  const std::uint64_t histograms = in.u64();
  out.histograms.reserve(static_cast<std::size_t>(histograms));
  for (std::uint64_t i = 0; i < histograms; ++i) {
    HistogramSnapshot h;
    h.name = in.str();
    h.count = in.u64();
    h.sum = in.u64();
    h.min = in.u64();
    h.max = in.u64();
    h.p50 = in.u64();
    h.p90 = in.u64();
    h.p99 = in.u64();
    const std::uint64_t buckets = in.u64();
    if (buckets > Histogram::kBuckets) {
      throw std::runtime_error("obs snapshot: bucket count out of range");
    }
    h.buckets.reserve(static_cast<std::size_t>(buckets));
    for (std::uint64_t b = 0; b < buckets; ++b) {
      h.buckets.push_back(in.u64());
    }
    out.histograms.push_back(std::move(h));
  }
  if (in.pos != bytes.size()) {
    throw std::runtime_error("obs snapshot: trailing bytes");
  }
  return out;
}

}  // namespace hmdiv::obs
