#include "obs/obs.hpp"

#include <algorithm>
#include <cmath>

namespace hmdiv::obs {

namespace {

std::atomic<bool> g_enabled{false};

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    if (cumulative >= target && cumulative > 0) {
      // Upper bound of bucket b: values in [2^(b-1), 2^b).
      if (b == 0) return 0;
      if (b >= 64) return ~std::uint64_t{0};
      return (std::uint64_t{1} << b) - 1;
    }
  }
  return max();
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(const char* name) {
  if (!enabled()) return;
  hist_ = &Registry::global().histogram(name);
  start_ = Clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (hist_ == nullptr) return;
  const auto elapsed = Clock::now() - start_;
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  hist_->record(ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name)))
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.push_back(CounterSnapshot{name, counter->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = hist->count();
    h.sum = hist->sum();
    h.min = hist->min();
    h.max = hist->max();
    h.p50 = hist->quantile(0.50);
    h.p90 = hist->quantile(0.90);
    h.p99 = hist->quantile(0.99);
    out.histograms.push_back(std::move(h));
  }
  return out;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, hist] : histograms_) hist->reset();
}

Snapshot registry_snapshot() { return Registry::global().snapshot(); }

}  // namespace hmdiv::obs
