// Observability: cheap thread-safe counters, histograms, scoped timers and
// a process-wide registry for the parallel engine and its clients.
//
// Two gates keep the cost at zero when nobody is looking:
//
//  * Compile time: the HMDIV_OBS macro (CMake option of the same name,
//    default ON). When 0, the HMDIV_OBS_* instrumentation macros expand to
//    nothing and no instrumentation code is emitted. The obs types remain
//    available for direct use (tests, tools).
//  * Run time: obs::set_enabled(true) — off by default. The instrumentation
//    macros check obs::enabled() (one relaxed atomic load and a branch)
//    before touching the registry, so an instrumented binary that never
//    enables profiling pays only that check per *region* (never per case or
//    per replicate — instrumentation points sit at batch/chunk granularity).
//
// Registration is lazy: a metric first appears in the registry when its
// instrumentation point runs while profiling is enabled. References
// returned by the registry are stable for the life of the process, so call
// sites cache them in function-local statics.
//
// All mutation uses relaxed atomics: metrics are monotone tallies whose
// readers (snapshot/report) tolerate torn cross-metric views. A snapshot is
// therefore not an atomic cut across metrics — it is exact only once the
// instrumented work has quiesced (the only way the CLI and benches use it).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#ifndef HMDIV_OBS
#define HMDIV_OBS 1
#endif

namespace hmdiv::obs {

/// True while profiling is runtime-enabled (relaxed load; off by default).
[[nodiscard]] bool enabled() noexcept;

/// Turns runtime profiling on or off process-wide.
void set_enabled(bool on) noexcept;

/// A named monotone counter. add() is wait-free (one relaxed fetch_add).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// A named histogram of non-negative integer values (conventionally
/// nanoseconds). Lock-free: exact count/sum/min/max plus power-of-two
/// magnitude buckets, from which quantiles are answered to within a factor
/// of two (bucket upper bound) — plenty for "where does wall-clock go".
class Histogram {
 public:
  /// Bucket b holds values whose bit width is b, i.e. [2^(b-1), 2^b).
  /// Bucket 0 holds exact zeros.
  static constexpr std::size_t kBuckets = 65;

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// 0 when the histogram is empty.
  [[nodiscard]] std::uint64_t min() const noexcept {
    const std::uint64_t m = min_.load(std::memory_order_relaxed);
    return m == ~std::uint64_t{0} ? 0 : m;
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  /// Upper bound of the bucket containing the q-quantile (q in [0,1]);
  /// exact to within a factor of 2. 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  /// Raw count of bucket `b` (0 for b >= kBuckets) — snapshots carry these
  /// so histograms merge exactly instead of re-binning derived quantiles.
  [[nodiscard]] std::uint64_t bucket(std::size_t b) const noexcept {
    return b < kBuckets ? buckets_[b].load(std::memory_order_relaxed) : 0;
  }

  void reset() noexcept;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Folds a snapshot of another histogram (e.g. from a shard worker) into
  /// this one by summing the per-bucket counts directly — never by
  /// re-binning the snapshot's derived quantiles, which would smear every
  /// merged value into one bucket. count/sum add, min/max fold, and the
  /// merged quantiles are exactly those of the union of the recordings.
  void merge(const struct HistogramSnapshot& other) noexcept;

 private:
  std::string name_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// RAII timer recording elapsed nanoseconds into a Histogram on scope exit.
class ScopedTimer {
 public:
  using Clock = std::chrono::steady_clock;

  /// Always records into `hist` (no enabled() gate) — for direct API use.
  explicit ScopedTimer(Histogram& hist)
      : hist_(&hist), start_(Clock::now()) {}

  /// Records into the global registry's histogram `name` iff profiling is
  /// runtime-enabled at construction; otherwise inert (no clock read).
  explicit ScopedTimer(const char* name);

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer();

 private:
  Histogram* hist_ = nullptr;
  Clock::time_point start_{};
};

/// Point-in-time view of one counter.
struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

/// Point-in-time view of one histogram (ns-valued by convention).
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  /// Raw per-bucket counts (length Histogram::kBuckets when produced by
  /// snapshot()). Carrying them makes snapshots *mergeable*: bucket counts
  /// sum exactly, whereas the derived p50/p90/p99 above cannot be combined.
  std::vector<std::uint64_t> buckets;
};

/// Report-side quantile over a snapshot's raw bucket counts, using the
/// same bucket-upper-bound convention as Histogram::quantile. This is how
/// derived quantiles the snapshot does not pre-compute (e.g. p99.9) are
/// rendered without widening HistogramSnapshot. Falls back to `max` when
/// the buckets vector is absent or the target lies past it.
[[nodiscard]] std::uint64_t snapshot_quantile(const HistogramSnapshot& h,
                                              double q) noexcept;

/// Everything the registry knows, sorted by metric name.
struct Snapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<HistogramSnapshot> histograms;
  [[nodiscard]] bool empty() const {
    return counters.empty() && histograms.empty();
  }
};

/// Process-wide home of all named metrics. Lookup takes a mutex (call
/// sites cache the returned reference); metric mutation never does.
class Registry {
 public:
  [[nodiscard]] static Registry& global();

  /// Returns the counter / histogram named `name`, creating it on first
  /// use. References stay valid for the registry's lifetime.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  [[nodiscard]] Snapshot snapshot() const;

  /// Folds `other` into this registry: counters add, histograms merge
  /// per-bucket (Histogram::merge), and metrics not yet registered here are
  /// created. This is how the shard runner accumulates worker registries
  /// into the parent's profile; merging N worker snapshots plus the
  /// parent's own tallies yields exactly the counts a single-process run
  /// would have recorded.
  void merge(const Snapshot& other);

  /// Zeroes every metric; registrations (and cached references) survive.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Snapshot of the global registry — the API tests and report dumpers use.
[[nodiscard]] Snapshot registry_snapshot();

/// The activity recorded between two snapshots of the *same* registry:
/// per metric, `after − before`. Counters and histogram count/sum/buckets
/// subtract exactly (so merging the delta elsewhere adds precisely the
/// period's recordings); a histogram's min/max cannot be un-merged, so the
/// delta carries the cumulative values — an approximation that only
/// widens the envelope, never the counts. Metrics absent from `before`
/// pass through whole; zero-valued deltas are dropped. This is how a
/// long-running serve worker ships per-task obs to a cluster coordinator
/// without re-counting its whole uptime on every task.
[[nodiscard]] Snapshot snapshot_delta(const Snapshot& before,
                                      const Snapshot& after);

/// Stable binary serialization of a snapshot (little-endian, length-
/// prefixed strings) — the payload of the shard protocol's obs frames.
/// parse_snapshot(serialize_snapshot(s)) reproduces `s` field-for-field;
/// malformed bytes throw std::runtime_error.
[[nodiscard]] std::vector<std::uint8_t> serialize_snapshot(const Snapshot& s);
[[nodiscard]] Snapshot parse_snapshot(
    std::span<const std::uint8_t> bytes);

}  // namespace hmdiv::obs

// Instrumentation macros — the only way production code should emit
// metrics. They compile to nothing when HMDIV_OBS is 0 and cost one
// relaxed load + branch when profiling is runtime-disabled.
#if HMDIV_OBS

/// Adds `n` to the global counter `name` (a string literal).
#define HMDIV_OBS_COUNT(name, n)                                      \
  do {                                                                \
    if (::hmdiv::obs::enabled()) {                                    \
      static ::hmdiv::obs::Counter& hmdiv_obs_counter_ =              \
          ::hmdiv::obs::Registry::global().counter(name);             \
      hmdiv_obs_counter_.add(static_cast<std::uint64_t>(n));          \
    }                                                                 \
  } while (0)

#define HMDIV_OBS_CONCAT_IMPL(a, b) a##b
#define HMDIV_OBS_CONCAT(a, b) HMDIV_OBS_CONCAT_IMPL(a, b)

/// Times the enclosing scope into the global histogram `name` (ns).
#define HMDIV_OBS_SCOPED_TIMER(name)              \
  ::hmdiv::obs::ScopedTimer HMDIV_OBS_CONCAT(     \
      hmdiv_obs_timer_, __COUNTER__) { name }

#else  // !HMDIV_OBS

#define HMDIV_OBS_COUNT(name, n) static_cast<void>(0)
#define HMDIV_OBS_SCOPED_TIMER(name) static_cast<void>(0)

#endif  // HMDIV_OBS
