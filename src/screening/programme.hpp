// Screening programme simulation: population × policy → metrics & cost.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "screening/metrics.hpp"
#include "screening/policies.hpp"
#include "screening/population.hpp"
#include "stats/rng.hpp"

namespace hmdiv::screening {

/// Result of simulating one policy over a population.
struct ProgrammeResult {
  std::string policy_name;
  ConfusionCounts counts;
  ProgrammeMetrics metrics;
  double cost_per_case = 0.0;
};

/// Runs one policy over `case_count` screened cases.
[[nodiscard]] ProgrammeResult run_programme(PopulationGenerator population,
                                            ReadingPolicy& policy,
                                            std::uint64_t case_count,
                                            const CostModel& costs,
                                            stats::Rng& rng);

/// Runs every policy over the same number of cases (each with its own
/// deterministic RNG stream split from `rng`, so results are comparable
/// and reproducible).
[[nodiscard]] std::vector<ProgrammeResult> compare_policies(
    const PopulationGenerator& population,
    const std::vector<std::unique_ptr<ReadingPolicy>>& policies,
    std::uint64_t case_count, const CostModel& costs, stats::Rng& rng);

}  // namespace hmdiv::screening
