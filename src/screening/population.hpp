// Mixed screened population: rare cancer cases plus healthy cases.
//
// The paper notes the screened population has a cancer prevalence "less
// than 1%" while trials are enriched. This generator samples a case's
// ground truth from the prevalence, then its class and latent scores from
// the corresponding per-class generator. For healthy cases the latent
// scores are reinterpreted: `human_difficulty` is how *suspicious* the case
// looks to a reader (higher = more likely false recall), and
// `machine_difficulty` is how resistant it is to false prompts (higher =
// fewer machine false positives).
#pragma once

#include "core/demand_profile.hpp"
#include "sim/case_generator.hpp"
#include "stats/rng.hpp"

namespace hmdiv::screening {

/// Samples a screened population with the given cancer prevalence.
class PopulationGenerator {
 public:
  /// `cancer_cases` / `healthy_cases` generate class + latent scores for
  /// the two subpopulations; `prevalence` = P(cancer) in (0,1).
  PopulationGenerator(sim::CaseGenerator cancer_cases,
                      sim::CaseGenerator healthy_cases, double prevalence);

  [[nodiscard]] double prevalence() const { return prevalence_; }
  [[nodiscard]] const sim::CaseGenerator& cancer_generator() const {
    return cancer_cases_;
  }
  [[nodiscard]] const sim::CaseGenerator& healthy_generator() const {
    return healthy_cases_;
  }

  /// Draws one screened case (has_cancer set from the prevalence).
  [[nodiscard]] sim::Case generate(stats::Rng& rng);

  /// A reference population: the two cancer classes of
  /// sim::reference_feature_world under the field mix, plus two healthy
  /// classes ("typical", "complex") with low suspiciousness, at `prevalence`
  /// (default 0.7%, matching the paper's "less than 1%").
  [[nodiscard]] static PopulationGenerator reference(double prevalence = 0.007);

 private:
  sim::CaseGenerator cancer_cases_;
  sim::CaseGenerator healthy_cases_;
  double prevalence_;
};

}  // namespace hmdiv::screening
