// Programme-level metrics and a simple cost model.
//
// A screening programme is judged on both failure modes at once (the
// trade-off the paper's Conclusions call "a very common problem"):
// sensitivity (1 − FN rate), specificity (1 − FP rate), the recall rate it
// imposes on the screened population, and the workload/cost of achieving
// them. These are the quantities the programme-comparison bench reports
// for each policy (single reader, reader+CADT, double reading, ...).
#pragma once

#include <cstdint>

namespace hmdiv::screening {

/// Raw confusion counts accumulated over a simulated programme run.
struct ConfusionCounts {
  std::uint64_t true_positives = 0;   ///< cancer, recalled
  std::uint64_t false_negatives = 0;  ///< cancer, not recalled
  std::uint64_t false_positives = 0;  ///< healthy, recalled
  std::uint64_t true_negatives = 0;   ///< healthy, not recalled

  [[nodiscard]] std::uint64_t cancers() const {
    return true_positives + false_negatives;
  }
  [[nodiscard]] std::uint64_t healthy() const {
    return false_positives + true_negatives;
  }
  [[nodiscard]] std::uint64_t total() const { return cancers() + healthy(); }
  [[nodiscard]] std::uint64_t recalls() const {
    return true_positives + false_positives;
  }
};

/// Derived programme metrics. from_counts yields NaN for every rate whose
/// denominator is 0 (no cancers seen, nothing recalled, ...): such ratios
/// are undefined and a 0 default would read as a real — and alarming —
/// measurement. CsvWriter::numeric_row renders the NaN as an empty cell.
struct ProgrammeMetrics {
  double sensitivity = 0.0;  ///< TP / cancers
  double specificity = 0.0;  ///< TN / healthy
  double recall_rate = 0.0;  ///< recalls / total
  double ppv = 0.0;          ///< TP / recalls
  /// Cancers detected per 1000 screened (the screening literature's CDR).
  double cancer_detection_rate_per_1000 = 0.0;
  /// Average readings (human film interpretations) per case — workload.
  double readings_per_case = 0.0;

  [[nodiscard]] static ProgrammeMetrics from_counts(
      const ConfusionCounts& counts, double readings_per_case);
};

/// Linear cost model per screened case.
struct CostModel {
  double cost_per_reading = 1.0;        ///< one human interpretation
  double cost_per_recall = 20.0;        ///< assessment clinic visit
  double cost_per_missed_cancer = 500.0;///< downstream harm proxy
  double cost_per_case_cadt = 0.1;      ///< machine processing

  /// Expected cost per screened case for a programme with the given
  /// metrics, at the given cancer prevalence; `uses_cadt` adds the machine
  /// processing cost.
  [[nodiscard]] double cost_per_case(const ProgrammeMetrics& metrics,
                                     double prevalence, bool uses_cadt) const;
};

}  // namespace hmdiv::screening
