#include "screening/policies.hpp"

namespace hmdiv::screening {

namespace detail {

bool reader_votes_recall(const sim::ReaderModel& reader, const sim::Case& c,
                         bool prompted, stats::Rng& rng) {
  if (c.has_cancer) {
    // Recall iff the reader does not (false-negative) fail.
    return !rng.bernoulli(
        reader.failure_probability(c.human_difficulty, prompted));
  }
  // Healthy case: recall is the failure (false positive).
  return rng.bernoulli(
      reader.false_recall_probability(c.human_difficulty, prompted));
}

}  // namespace detail

SingleReaderPolicy::SingleReaderPolicy(sim::ReaderModel reader,
                                       std::string name)
    : reader_(std::move(reader)), name_(std::move(name)) {}

bool SingleReaderPolicy::decide_recall(const sim::Case& c, stats::Rng& rng) {
  // No CADT in the loop: the reader behaves as if never prompted and with
  // no reliance penalty, so use a zero-reliance copy's unprompted response.
  const sim::ReaderModel unaided = reader_.with_reliance(0.0);
  return detail::reader_votes_recall(unaided, c, /*prompted=*/false, rng);
}

ReaderWithCadtPolicy::ReaderWithCadtPolicy(sim::ReaderModel reader,
                                           sim::CadtModel cadt,
                                           std::string name)
    : reader_(std::move(reader)), cadt_(std::move(cadt)),
      name_(std::move(name)) {}

bool ReaderWithCadtPolicy::decide_recall(const sim::Case& c,
                                         stats::Rng& rng) {
  const bool prompted = cadt_.prompts(c, rng);
  return detail::reader_votes_recall(reader_, c, prompted, rng);
}

DoubleReadingPolicy::DoubleReadingPolicy(sim::ReaderModel reader_a,
                                         sim::ReaderModel reader_b,
                                         std::optional<sim::ReaderModel> arbiter,
                                         std::string name)
    : reader_a_(std::move(reader_a)),
      reader_b_(std::move(reader_b)),
      arbiter_(std::move(arbiter)),
      name_(std::move(name)) {}

double DoubleReadingPolicy::readings_per_case() const {
  if (!arbiter_.has_value()) return 2.0;
  if (cases_seen_ == 0) return 2.0;
  return 2.0 + static_cast<double>(arbitrations_) /
                   static_cast<double>(cases_seen_);
}

bool DoubleReadingPolicy::decide_recall(const sim::Case& c, stats::Rng& rng) {
  ++cases_seen_;
  const sim::ReaderModel a = reader_a_.with_reliance(0.0);
  const sim::ReaderModel b = reader_b_.with_reliance(0.0);
  const bool recall_a = detail::reader_votes_recall(a, c, false, rng);
  const bool recall_b = detail::reader_votes_recall(b, c, false, rng);
  if (recall_a == recall_b) return recall_a;
  if (!arbiter_.has_value()) return true;  // recall if either recalls
  ++arbitrations_;
  const sim::ReaderModel arb = arbiter_->with_reliance(0.0);
  return detail::reader_votes_recall(arb, c, false, rng);
}

TwoReadersWithCadtPolicy::TwoReadersWithCadtPolicy(sim::ReaderModel reader_a,
                                                   sim::ReaderModel reader_b,
                                                   sim::CadtModel cadt,
                                                   std::string name)
    : reader_a_(std::move(reader_a)),
      reader_b_(std::move(reader_b)),
      cadt_(std::move(cadt)),
      name_(std::move(name)) {}

bool TwoReadersWithCadtPolicy::decide_recall(const sim::Case& c,
                                             stats::Rng& rng) {
  // One machine pass; both readers see the same prompts (the correlation
  // this induces is exactly what multi_reader.hpp models in closed form).
  const bool prompted = cadt_.prompts(c, rng);
  const bool recall_a =
      detail::reader_votes_recall(reader_a_, c, prompted, rng);
  const bool recall_b =
      detail::reader_votes_recall(reader_b_, c, prompted, rng);
  return recall_a || recall_b;
}

std::vector<std::unique_ptr<ReadingPolicy>> standard_policies(
    const sim::ReaderModel& reader, const sim::CadtModel& cadt,
    double low_skill_factor) {
  std::vector<std::unique_ptr<ReadingPolicy>> out;
  out.push_back(std::make_unique<SingleReaderPolicy>(reader));
  out.push_back(std::make_unique<ReaderWithCadtPolicy>(reader, cadt));
  out.push_back(std::make_unique<DoubleReadingPolicy>(reader, reader));
  out.push_back(std::make_unique<DoubleReadingPolicy>(
      reader, reader, reader, "double reading + arbitration"));
  out.push_back(
      std::make_unique<TwoReadersWithCadtPolicy>(reader, reader, cadt));
  const sim::ReaderModel junior = reader.with_skill_factor(low_skill_factor);
  out.push_back(std::make_unique<ReaderWithCadtPolicy>(
      junior, cadt, "less-qualified reader + CADT"));
  out.push_back(std::make_unique<TwoReadersWithCadtPolicy>(
      junior, junior, cadt, "two less-qualified readers + CADT"));
  return out;
}

}  // namespace hmdiv::screening
