#include "screening/population.hpp"

#include <stdexcept>

namespace hmdiv::screening {

PopulationGenerator::PopulationGenerator(sim::CaseGenerator cancer_cases,
                                         sim::CaseGenerator healthy_cases,
                                         double prevalence)
    : cancer_cases_(std::move(cancer_cases)),
      healthy_cases_(std::move(healthy_cases)),
      prevalence_(prevalence) {
  if (!(prevalence_ > 0.0 && prevalence_ < 1.0)) {
    throw std::invalid_argument(
        "PopulationGenerator: prevalence must lie in (0,1)");
  }
}

sim::Case PopulationGenerator::generate(stats::Rng& rng) {
  const bool has_cancer = rng.bernoulli(prevalence_);
  sim::Case c =
      has_cancer ? cancer_cases_.generate(rng) : healthy_cases_.generate(rng);
  c.has_cancer = has_cancer;
  return c;
}

PopulationGenerator PopulationGenerator::reference(double prevalence) {
  std::vector<sim::CaseClassSpec> cancer_specs(2);
  cancer_specs[0].name = "easy";
  cancer_specs[0].human_difficulty_mean = -0.6;
  cancer_specs[0].human_difficulty_sigma = 0.8;
  cancer_specs[0].machine_difficulty_mean = -0.9;
  cancer_specs[0].machine_difficulty_sigma = 0.8;
  cancer_specs[0].difficulty_correlation = 0.3;
  cancer_specs[1].name = "difficult";
  cancer_specs[1].human_difficulty_mean = 1.4;
  cancer_specs[1].human_difficulty_sigma = 0.9;
  cancer_specs[1].machine_difficulty_mean = 1.1;
  cancer_specs[1].machine_difficulty_sigma = 1.0;
  cancer_specs[1].difficulty_correlation = 0.55;
  sim::CaseGenerator cancers(
      std::move(cancer_specs),
      core::DemandProfile({"easy", "difficult"}, {0.9, 0.1}));

  // Healthy cases: "human_difficulty" = suspiciousness (mostly negative =
  // obviously benign), "machine_difficulty" = resistance to false prompts
  // (high = the CADT rarely prompts them).
  std::vector<sim::CaseClassSpec> healthy_specs(2);
  healthy_specs[0].name = "typical";
  healthy_specs[0].human_difficulty_mean = -1.5;
  healthy_specs[0].human_difficulty_sigma = 0.7;
  healthy_specs[0].machine_difficulty_mean = 3.0;
  healthy_specs[0].machine_difficulty_sigma = 0.8;
  healthy_specs[0].difficulty_correlation = -0.4;
  healthy_specs[1].name = "complex";
  healthy_specs[1].human_difficulty_mean = 0.2;
  healthy_specs[1].human_difficulty_sigma = 0.8;
  healthy_specs[1].machine_difficulty_mean = 1.8;
  healthy_specs[1].machine_difficulty_sigma = 0.9;
  healthy_specs[1].difficulty_correlation = -0.5;
  sim::CaseGenerator healthy(
      std::move(healthy_specs),
      core::DemandProfile({"typical", "complex"}, {0.85, 0.15}));

  return PopulationGenerator(std::move(cancers), std::move(healthy),
                             prevalence);
}

}  // namespace hmdiv::screening
