#include "screening/metrics.hpp"

#include <limits>
#include <stdexcept>

namespace hmdiv::screening {

ProgrammeMetrics ProgrammeMetrics::from_counts(const ConfusionCounts& counts,
                                               double readings_per_case) {
  constexpr double kUndefined = std::numeric_limits<double>::quiet_NaN();
  ProgrammeMetrics m;
  const double cancers = static_cast<double>(counts.cancers());
  const double healthy = static_cast<double>(counts.healthy());
  const double total = static_cast<double>(counts.total());
  const double recalls = static_cast<double>(counts.recalls());
  // A ratio with a zero-count denominator is *undefined*, not zero: a
  // programme that saw no cancers has unknown sensitivity, and reporting
  // the struct default would silently masquerade as a perfect miss rate.
  m.sensitivity =
      cancers > 0.0 ? static_cast<double>(counts.true_positives) / cancers
                    : kUndefined;
  m.specificity =
      healthy > 0.0 ? static_cast<double>(counts.true_negatives) / healthy
                    : kUndefined;
  m.recall_rate = total > 0.0 ? recalls / total : kUndefined;
  m.cancer_detection_rate_per_1000 =
      total > 0.0
          ? 1000.0 * static_cast<double>(counts.true_positives) / total
          : kUndefined;
  m.ppv = recalls > 0.0
              ? static_cast<double>(counts.true_positives) / recalls
              : kUndefined;
  m.readings_per_case = readings_per_case;
  return m;
}

double CostModel::cost_per_case(const ProgrammeMetrics& metrics,
                                double prevalence, bool uses_cadt) const {
  if (!(prevalence >= 0.0 && prevalence <= 1.0)) {
    throw std::invalid_argument("CostModel: prevalence outside [0,1]");
  }
  const double miss_rate = prevalence * (1.0 - metrics.sensitivity);
  return metrics.readings_per_case * cost_per_reading +
         metrics.recall_rate * cost_per_recall +
         miss_rate * cost_per_missed_cancer +
         (uses_cadt ? cost_per_case_cadt : 0.0);
}

}  // namespace hmdiv::screening
