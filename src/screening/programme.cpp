#include "screening/programme.hpp"

#include <stdexcept>

namespace hmdiv::screening {

ProgrammeResult run_programme(PopulationGenerator population,
                              ReadingPolicy& policy, std::uint64_t case_count,
                              const CostModel& costs, stats::Rng& rng) {
  if (case_count == 0) {
    throw std::invalid_argument("run_programme: case_count == 0");
  }
  ProgrammeResult out;
  out.policy_name = policy.name();
  for (std::uint64_t i = 0; i < case_count; ++i) {
    const sim::Case c = population.generate(rng);
    const bool recalled = policy.decide_recall(c, rng);
    if (c.has_cancer) {
      (recalled ? out.counts.true_positives : out.counts.false_negatives) += 1;
    } else {
      (recalled ? out.counts.false_positives : out.counts.true_negatives) += 1;
    }
  }
  out.metrics = ProgrammeMetrics::from_counts(out.counts,
                                              policy.readings_per_case());
  out.cost_per_case = costs.cost_per_case(out.metrics, population.prevalence(),
                                          policy.uses_cadt());
  return out;
}

std::vector<ProgrammeResult> compare_policies(
    const PopulationGenerator& population,
    const std::vector<std::unique_ptr<ReadingPolicy>>& policies,
    std::uint64_t case_count, const CostModel& costs, stats::Rng& rng) {
  std::vector<ProgrammeResult> out;
  out.reserve(policies.size());
  for (std::size_t i = 0; i < policies.size(); ++i) {
    stats::Rng stream = rng.split(i + 1);
    out.push_back(run_programme(population, *policies[i], case_count, costs,
                                stream));
  }
  return out;
}

}  // namespace hmdiv::screening
