// Reading policies: how humans (and optionally a CADT) are organised to
// produce the recall decision for one screened case.
//
// These are the programme alternatives of the paper's Conclusions: single
// reading, single reading with CADT, UK-style double reading (recall if
// either reader recalls), double reading with arbitration, two readers with
// a shared CADT, and less-qualified readers with a CADT. Each policy works
// on both cancer and healthy cases, so programme-level sensitivity *and*
// specificity come out of the same simulation.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/cadt.hpp"
#include "sim/case.hpp"
#include "sim/reader.hpp"
#include "stats/rng.hpp"

namespace hmdiv::screening {

/// Interface: decide recall for one case.
class ReadingPolicy {
 public:
  virtual ~ReadingPolicy() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;
  /// True if this policy runs the case through a CADT (for costing).
  [[nodiscard]] virtual bool uses_cadt() const = 0;
  /// Average number of human readings per case (arbitration policies
  /// report their expected value including the arbiter's share).
  [[nodiscard]] virtual double readings_per_case() const = 0;
  /// The recall decision.
  [[nodiscard]] virtual bool decide_recall(const sim::Case& c,
                                           stats::Rng& rng) = 0;
};

namespace detail {
/// One reader's recall vote on a case, optionally knowing the CADT prompt.
[[nodiscard]] bool reader_votes_recall(const sim::ReaderModel& reader,
                                       const sim::Case& c, bool prompted,
                                       stats::Rng& rng);
}  // namespace detail

/// A single reader, no CADT.
class SingleReaderPolicy final : public ReadingPolicy {
 public:
  explicit SingleReaderPolicy(sim::ReaderModel reader,
                              std::string name = "single reader");
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] bool uses_cadt() const override { return false; }
  [[nodiscard]] double readings_per_case() const override { return 1.0; }
  [[nodiscard]] bool decide_recall(const sim::Case& c,
                                   stats::Rng& rng) override;

 private:
  sim::ReaderModel reader_;
  std::string name_;
};

/// A single reader assisted by a CADT (the paper's case study).
class ReaderWithCadtPolicy final : public ReadingPolicy {
 public:
  ReaderWithCadtPolicy(sim::ReaderModel reader, sim::CadtModel cadt,
                       std::string name = "reader + CADT");
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] bool uses_cadt() const override { return true; }
  [[nodiscard]] double readings_per_case() const override { return 1.0; }
  [[nodiscard]] bool decide_recall(const sim::Case& c,
                                   stats::Rng& rng) override;

 private:
  sim::ReaderModel reader_;
  sim::CadtModel cadt_;
  std::string name_;
};

/// Two readers; recall iff either recalls. Optional arbiter: when the two
/// disagree, the arbiter's own reading decides instead.
class DoubleReadingPolicy final : public ReadingPolicy {
 public:
  DoubleReadingPolicy(sim::ReaderModel reader_a, sim::ReaderModel reader_b,
                      std::optional<sim::ReaderModel> arbiter = std::nullopt,
                      std::string name = "double reading");
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] bool uses_cadt() const override { return false; }
  [[nodiscard]] double readings_per_case() const override;
  [[nodiscard]] bool decide_recall(const sim::Case& c,
                                   stats::Rng& rng) override;

 private:
  sim::ReaderModel reader_a_;
  sim::ReaderModel reader_b_;
  std::optional<sim::ReaderModel> arbiter_;
  std::string name_;
  std::uint64_t cases_seen_ = 0;
  std::uint64_t arbitrations_ = 0;
};

/// Two readers, both seeing the same CADT prompts; recall iff either
/// recalls.
class TwoReadersWithCadtPolicy final : public ReadingPolicy {
 public:
  TwoReadersWithCadtPolicy(sim::ReaderModel reader_a,
                           sim::ReaderModel reader_b, sim::CadtModel cadt,
                           std::string name = "two readers + CADT");
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] bool uses_cadt() const override { return true; }
  [[nodiscard]] double readings_per_case() const override { return 2.0; }
  [[nodiscard]] bool decide_recall(const sim::Case& c,
                                   stats::Rng& rng) override;

 private:
  sim::ReaderModel reader_a_;
  sim::ReaderModel reader_b_;
  sim::CadtModel cadt_;
  std::string name_;
};

/// The standard policy suite compared by the programme bench: built around
/// a baseline reader/CADT; the "less qualified" variants use
/// `low_skill_factor` (< 1) on the reader's skill.
[[nodiscard]] std::vector<std::unique_ptr<ReadingPolicy>> standard_policies(
    const sim::ReaderModel& reader, const sim::CadtModel& cadt,
    double low_skill_factor = 0.6);

}  // namespace hmdiv::screening
