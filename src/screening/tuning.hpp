// Programme-level CADT tuning.
//
// Screening programmes run against recall-rate budgets (assessment-clinic
// capacity): "different tuning of the detection algorithms ... may be
// decided as a consequence of measuring their performance" (paper §5 item
// 4). This module computes the analytic (Rao-Blackwellised) recall rate of
// a reader+CADT policy over a population as a function of the CADT's
// threshold shift, and solves for the shift that meets a target recall
// rate.
#pragma once

#include "screening/population.hpp"
#include "sim/cadt.hpp"
#include "sim/reader.hpp"
#include "stats/rng.hpp"

namespace hmdiv::screening {

/// Analytic recall rate of a single reader + `cadt` over `population`
/// (cancer and healthy cases both contribute), estimated by integrating
/// the per-case recall probability over `samples` sampled cases — no
/// Bernoulli noise, so the value is smooth in the threshold shift.
[[nodiscard]] double analytic_recall_rate(const PopulationGenerator& population,
                                          const sim::ReaderModel& reader,
                                          const sim::CadtModel& cadt,
                                          stats::Rng& rng,
                                          std::size_t samples = 100000);

/// Result of tuning.
struct TuningResult {
  double threshold_shift = 0.0;   ///< additive shift applied to the CADT
  double achieved_recall_rate = 0.0;
  sim::CadtModel tuned_cadt;      ///< the CADT at the solved shift
};

/// Finds the threshold shift in [lo_shift, hi_shift] whose analytic recall
/// rate is closest to `target_recall_rate` (bisection on the monotone
/// recall-vs-shift curve, common random numbers across evaluations).
/// Throws if the target is outside the achievable range on the bracket.
[[nodiscard]] TuningResult tune_threshold_for_recall_rate(
    const PopulationGenerator& population, const sim::ReaderModel& reader,
    const sim::CadtModel& cadt, double target_recall_rate, double lo_shift,
    double hi_shift, stats::Rng& rng, std::size_t samples = 60000,
    int iterations = 40);

}  // namespace hmdiv::screening
