#include "screening/tuning.hpp"

#include <stdexcept>

#include "stats/summary.hpp"

namespace hmdiv::screening {

namespace {

/// Recall probability of one case under reader+CADT, integrated over the
/// prompt outcome analytically.
double recall_probability(const sim::Case& c, const sim::ReaderModel& reader,
                          const sim::CadtModel& cadt) {
  const double p_prompt = cadt.prompt_probability(c.machine_difficulty);
  if (c.has_cancer) {
    const double recall_prompted =
        1.0 - reader.failure_probability(c.human_difficulty, true);
    const double recall_silent =
        1.0 - reader.failure_probability(c.human_difficulty, false);
    return p_prompt * recall_prompted + (1.0 - p_prompt) * recall_silent;
  }
  return p_prompt * reader.false_recall_probability(c.human_difficulty, true) +
         (1.0 - p_prompt) *
             reader.false_recall_probability(c.human_difficulty, false);
}

}  // namespace

double analytic_recall_rate(const PopulationGenerator& population,
                            const sim::ReaderModel& reader,
                            const sim::CadtModel& cadt, stats::Rng& rng,
                            std::size_t samples) {
  if (samples == 0) {
    throw std::invalid_argument("analytic_recall_rate: samples == 0");
  }
  PopulationGenerator generator = population;  // local sampling state
  stats::KahanAccumulator acc;
  for (std::size_t i = 0; i < samples; ++i) {
    const sim::Case c = generator.generate(rng);
    acc.add(recall_probability(c, reader, cadt));
  }
  return acc.total() / static_cast<double>(samples);
}

TuningResult tune_threshold_for_recall_rate(
    const PopulationGenerator& population, const sim::ReaderModel& reader,
    const sim::CadtModel& cadt, double target_recall_rate, double lo_shift,
    double hi_shift, stats::Rng& rng, std::size_t samples, int iterations) {
  if (!(target_recall_rate > 0.0 && target_recall_rate < 1.0)) {
    throw std::invalid_argument(
        "tune_threshold_for_recall_rate: target outside (0,1)");
  }
  if (!(lo_shift < hi_shift)) {
    throw std::invalid_argument(
        "tune_threshold_for_recall_rate: need lo_shift < hi_shift");
  }
  if (iterations < 1) {
    throw std::invalid_argument(
        "tune_threshold_for_recall_rate: iterations < 1");
  }
  // Common random numbers: every evaluation uses the same case stream, so
  // the recall-vs-shift curve is exactly monotone (recall probability is
  // pointwise monotone in the prompt probability, which is monotone in the
  // shift) and bisection is sound.
  const std::uint64_t stream_seed = rng.next_u64();
  auto recall_at = [&](double shift) {
    stats::Rng stream(stream_seed);
    return analytic_recall_rate(population, reader,
                                cadt.with_threshold_shift(shift), stream,
                                samples);
  };
  // Lower shift = more eager machine = more prompts = more recalls.
  double recall_lo = recall_at(lo_shift);   // highest recall
  double recall_hi = recall_at(hi_shift);   // lowest recall
  if (target_recall_rate > recall_lo || target_recall_rate < recall_hi) {
    throw std::invalid_argument(
        "tune_threshold_for_recall_rate: target outside the achievable "
        "range on the given bracket");
  }
  double lo = lo_shift, hi = hi_shift;
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (recall_at(mid) >= target_recall_rate) {
      lo = mid;  // still too many recalls: move stricter
    } else {
      hi = mid;
    }
  }
  TuningResult out{0.5 * (lo + hi), 0.0,
                   cadt.with_threshold_shift(0.5 * (lo + hi))};
  out.achieved_recall_rate = recall_at(out.threshold_shift);
  return out;
}

}  // namespace hmdiv::screening
