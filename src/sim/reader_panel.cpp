#include "sim/reader_panel.hpp"

#include <algorithm>
#include <stdexcept>

namespace hmdiv::sim {

ReaderPanel::ReaderPanel(std::vector<ReaderModel> readers)
    : readers_(std::move(readers)) {
  if (readers_.empty()) {
    throw std::invalid_argument("ReaderPanel: empty panel");
  }
}

ReaderPanel ReaderPanel::sample(const ReaderModel::Config& base,
                                std::size_t count, double skill_sigma,
                                stats::Rng& rng) {
  if (count == 0) throw std::invalid_argument("ReaderPanel: count == 0");
  if (skill_sigma < 0.0) {
    throw std::invalid_argument("ReaderPanel: skill_sigma < 0");
  }
  std::vector<ReaderModel> readers;
  readers.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ReaderModel::Config config = base;
    config.skill = std::max(0.05, rng.normal(base.skill, skill_sigma));
    readers.emplace_back(config);
  }
  return ReaderPanel(std::move(readers));
}

const ReaderModel& ReaderPanel::reader(std::size_t i) const {
  if (i >= readers_.size()) {
    throw std::invalid_argument("ReaderPanel: reader index out of range");
  }
  return readers_[i];
}

std::vector<PanelRecord> run_panel_trial(CaseGenerator generator,
                                         const CadtModel& cadt,
                                         const ReaderPanel& panel,
                                         std::uint64_t cases,
                                         stats::Rng& rng) {
  if (cases == 0) throw std::invalid_argument("run_panel_trial: cases == 0");
  std::vector<PanelRecord> out;
  out.reserve(cases);
  for (std::uint64_t i = 0; i < cases; ++i) {
    const Case demand = generator.generate(rng);
    const bool prompted = cadt.prompts(demand, rng);
    const std::size_t reader_index =
        static_cast<std::size_t>(rng.uniform_index(panel.size()));
    const bool failed = rng.bernoulli(panel.reader(reader_index)
                                          .failure_probability(
                                              demand.human_difficulty,
                                              prompted));
    out.push_back(PanelRecord{demand.class_index, reader_index, !prompted,
                              failed});
  }
  return out;
}

PanelAnalysis analyse_panel(const std::vector<PanelRecord>& records,
                            std::size_t panel_size) {
  if (panel_size == 0) {
    throw std::invalid_argument("analyse_panel: panel_size == 0");
  }
  PanelAnalysis out;
  out.per_reader.assign(panel_size, {});
  for (const auto& r : records) {
    if (r.reader_index >= panel_size) {
      throw std::invalid_argument("analyse_panel: reader index out of range");
    }
    ++out.per_reader[r.reader_index].trials;
    out.per_reader[r.reader_index].failures += r.human_failed ? 1 : 0;
  }
  out.failure_rates.reserve(panel_size);
  for (const auto& o : out.per_reader) {
    if (o.trials == 0) {
      throw std::invalid_argument(
          "analyse_panel: a panel member saw no cases — enlarge the trial");
    }
    out.failure_rates.push_back(static_cast<double>(o.failures) /
                                static_cast<double>(o.trials));
  }
  out.fit = stats::fit_beta_binomial_mle(out.per_reader);
  const auto [lo, hi] =
      std::minmax_element(out.failure_rates.begin(), out.failure_rates.end());
  out.lowest_rate = *lo;
  out.highest_rate = *hi;
  return out;
}

}  // namespace hmdiv::sim
