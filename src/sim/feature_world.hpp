// The mechanistic world: latent-difficulty cases + simulated CADT +
// simulated reader, composed in the paper's *sequential* mode of operation
// (Fig. 3): the machine processes the case first, the reader sees the case
// together with the machine's prompts.
//
// Unlike TabularWorld, per-case difficulty varies continuously *within*
// each class, the human/machine difficulty correlation is explicit, and the
// reader's reliance can adapt over the course of a run. Ground-truth
// class-conditional parameters {PMf(x), PHf|Mf(x), PHf|Ms(x)} are not
// inputs but emergent; ground_truth.hpp computes them by Rao-Blackwellised
// integration so the core model's predictions can be checked against
// end-to-end simulation.
#pragma once

#include <optional>

#include "sim/cadt.hpp"
#include "sim/case_generator.hpp"
#include "sim/reader.hpp"
#include "sim/trial.hpp"

namespace hmdiv::sim {

/// Fully mechanistic composite system.
class FeatureWorld final : public World {
 public:
  FeatureWorld(CaseGenerator generator, CadtModel cadt, ReaderModel reader);

  [[nodiscard]] CaseRecord simulate_case(stats::Rng& rng) override;
  /// Devirtualised tight loop over the scalar kernel. Draw order per case
  /// is identical to simulate_case (this world is bound by logistic/exp
  /// evaluations and mechanistic sampling, not dispatch), so scalar and
  /// batched paths share one stream.
  void simulate_batch(std::span<CaseRecord> out, stats::Rng& rng) override;
  [[nodiscard]] std::size_t class_count() const override;
  [[nodiscard]] const std::vector<std::string>& class_names() const override;
  /// Copies the full current state, including the reader's adaptation
  /// level: in a parallel trial every batch restarts adaptation from this
  /// world's state (freeze it with set_adaptation_enabled(false) for
  /// controlled measurements).
  [[nodiscard]] std::unique_ptr<World> clone() const override {
    return std::make_unique<FeatureWorld>(*this);
  }
  [[nodiscard]] bool cloneable() const override { return true; }
  /// Stateless (clone-reusable) iff the reader cannot adapt: adaptation
  /// frozen, or a zero adaptation rate (observe() is then a no-op). Case
  /// ids advance per simulated case but never reach a CaseRecord.
  [[nodiscard]] bool stateless() const override {
    return !adaptation_enabled_ || reader_.config().adaptation_rate <= 0.0;
  }

  [[nodiscard]] const CaseGenerator& generator() const { return generator_; }
  [[nodiscard]] const CadtModel& cadt() const { return cadt_; }
  [[nodiscard]] const ReaderModel& reader() const { return reader_; }

  /// Replaces the CADT (e.g. an improved or re-tuned machine) keeping the
  /// reader's current state.
  void replace_cadt(CadtModel cadt) { cadt_ = std::move(cadt); }

  /// Freezes/unfreezes reader adaptation for controlled measurements.
  void set_adaptation_enabled(bool enabled) { adaptation_enabled_ = enabled; }

  /// Simulates one case keeping full detail (for diagnostics/examples).
  struct DetailedOutcome {
    Case demand;
    bool machine_prompted = false;
    bool reader_detected = false;
    bool recalled = false;
  };
  [[nodiscard]] DetailedOutcome simulate_detailed(stats::Rng& rng);

 private:
  CaseGenerator generator_;
  CadtModel cadt_;
  ReaderModel reader_;
  bool adaptation_enabled_ = true;
};

/// A reference configuration loosely calibrated so that its emergent
/// parameters have the same orders of magnitude as the paper's Section-5
/// example ("easy" and "difficult" classes, PMf ~ few % / tens of %,
/// PHf ~ 0.1–0.6). Used by benches and examples.
[[nodiscard]] FeatureWorld reference_feature_world(
    std::optional<core::DemandProfile> profile = std::nullopt);

}  // namespace hmdiv::sim
