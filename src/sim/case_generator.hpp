// Class-conditional generation of synthetic cases.
//
// Each class of cases has its own bivariate-normal distribution of (human,
// machine) difficulty, with a per-class correlation. A `CaseGenerator`
// samples a class from a demand profile, then the difficulties from that
// class's distribution. Substitutes the paper's screened population / trial
// case sets (see DESIGN.md substitution table).
#pragma once

#include <string>
#include <vector>

#include "core/demand_profile.hpp"
#include "sim/case.hpp"
#include "stats/rng.hpp"

namespace hmdiv::sim {

/// Difficulty distribution of one class of cases.
struct CaseClassSpec {
  std::string name;
  double human_difficulty_mean = 0.0;
  double human_difficulty_sigma = 1.0;
  double machine_difficulty_mean = 0.0;
  double machine_difficulty_sigma = 1.0;
  /// Correlation between the two difficulties within the class, in [-1,1].
  /// Positive: cases hard for the reader tend to be hard for the CADT too.
  double difficulty_correlation = 0.0;
};

/// Samples cases class-by-class according to a demand profile.
class CaseGenerator {
 public:
  /// Spec names must match the profile's class names (same order).
  CaseGenerator(std::vector<CaseClassSpec> specs,
                core::DemandProfile profile);

  [[nodiscard]] std::size_t class_count() const { return specs_.size(); }
  [[nodiscard]] const core::DemandProfile& profile() const { return profile_; }
  [[nodiscard]] const CaseClassSpec& spec(std::size_t x) const;

  /// Draws the difficulties for a given class (used by ground-truth
  /// integration as well as by generate()).
  [[nodiscard]] std::pair<double, double> sample_difficulties(
      std::size_t class_index, stats::Rng& rng) const;

  /// Draws one case: class from the profile, difficulties from the class.
  [[nodiscard]] Case generate(stats::Rng& rng);

  /// A generator identical to this one but sampling classes from `profile`
  /// (e.g. switch from the trial mix to the field mix).
  [[nodiscard]] CaseGenerator with_profile(core::DemandProfile profile) const;

 private:
  std::vector<CaseClassSpec> specs_;
  core::DemandProfile profile_;
  std::uint64_t next_id_ = 0;
};

}  // namespace hmdiv::sim
