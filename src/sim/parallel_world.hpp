// The paper's *intended* procedure of use (Section 3, procedure 1): the
// reader examines the films alone first, then reviews the CADT's prompts
// "with the same attention and skill as the features that they noticed
// themselves", then classifies whatever was detected by either.
//
// This world simulates that procedure with an *instrumented* trial design
// (the reader's unaided findings are recorded before the prompts are shown
// — the before/after design real CADT studies use), so all three
// parallel-model parameters {pMf, pHmiss, pHmisclass} are observable and
// the validity of Eqs. (1)–(3) can be tested rather than assumed:
//
//  * `prompt_attention` = 1 reproduces the design ideal: a prompted feature
//    is always examined, detection is exactly 1-out-of-2 (Fig. 2).
//  * `prompt_attention` < 1 models readers skimming prompts — the paper's
//    worry that "there are not necessarily constraints or 'affordances' ...
//    to ensure" the procedure is followed; Eq. (1) then under-predicts
//    system failure.
//  * `within_class_scale` shrinks the within-class difficulty spread:
//    at 0 every class is homogeneous and the class-granular parallel model
//    is exact; at 1 the residual within-class difficulty correlates human
//    and machine detection inside each class, and the class-granular
//    Eq. (1) is optimistic (the same lesson as footnote 1, on the
//    detection side).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/parallel_model.hpp"
#include "sim/cadt.hpp"
#include "sim/case_generator.hpp"
#include "sim/reader.hpp"
#include "stats/rng.hpp"

namespace hmdiv::sim {

/// Instrumented record of one case under procedure 1.
struct ParallelProcedureRecord {
  std::size_t class_index = 0;
  bool machine_failed = false;    ///< CADT did not prompt the features
  bool human_missed = false;      ///< unaided examination missed them
  bool detected = false;          ///< detected by either path in the end
  bool misclassified = false;     ///< detected but judged "no recall"
  bool system_failed = false;     ///< final false negative
};

/// Procedure-1 world.
class ParallelProcedureWorld {
 public:
  /// `prompt_attention` in [0,1]: probability a prompt on a missed feature
  /// actually gets the reader to examine it (1 = design ideal).
  /// `within_class_scale` in [0,1]: multiplies the difficulty sigmas
  /// (0 = homogeneous classes).
  ParallelProcedureWorld(CaseGenerator generator, CadtModel cadt,
                         ReaderModel reader, double prompt_attention = 1.0,
                         double within_class_scale = 1.0);

  [[nodiscard]] std::size_t class_count() const {
    return generator_.class_count();
  }
  [[nodiscard]] const std::vector<std::string>& class_names() const {
    return generator_.profile().class_names();
  }

  [[nodiscard]] ParallelProcedureRecord simulate_case(stats::Rng& rng);

  /// Batch kernel: the shrink-scaled per-class difficulty parameters
  /// (mean, scale·sigma, correlation) are hoisted into flat arrays once
  /// per batch, class indices come from the profile's alias table over one
  /// bulk uniform fill, and difficulties from one bulk normal fill (two
  /// deviates per case). Decision draws stay per-case (their count is
  /// path-dependent). Consumes randomness in a different order than
  /// simulate_case; run() goes through this kernel, making it the
  /// canonical stream (simulate_case stays the distributional reference).
  void simulate_batch(std::span<ParallelProcedureRecord> out,
                      stats::Rng& rng) const;

  /// Simulates `cases` demands through the batch kernel.
  [[nodiscard]] std::vector<ParallelProcedureRecord> run(std::uint64_t cases,
                                                         stats::Rng& rng);

  /// The class-granular parallel model of this world, by Rao-Blackwellised
  /// integration. With within_class_scale = 0 and prompt_attention = 1 it
  /// is exact; otherwise it is what an infinitely large instrumented trial
  /// would estimate.
  [[nodiscard]] core::ParallelDetectionModel ground_truth(
      stats::Rng& rng, std::size_t samples_per_class = 200000) const;

  /// Exact system false-negative probability under the generator's
  /// profile, by joint integration (no class-granularity or procedure
  /// idealisation).
  [[nodiscard]] double exact_system_failure(stats::Rng& rng,
                                            std::size_t samples_per_class =
                                                200000) const;

 private:
  [[nodiscard]] std::pair<double, double> sample_scaled_difficulties(
      std::size_t class_index, stats::Rng& rng) const;

  CaseGenerator generator_;
  CadtModel cadt_;
  ReaderModel reader_;
  double prompt_attention_;
  double within_class_scale_;
};

/// Per-class parallel-model estimates from instrumented records.
struct ParallelEstimate {
  std::vector<std::string> class_names;
  std::vector<core::ParallelClassConditional> classes;
  double observed_system_failure = 0.0;

  [[nodiscard]] core::ParallelDetectionModel fitted_model() const {
    return core::ParallelDetectionModel(class_names, classes);
  }
};

/// Maximum-likelihood proportions; throws if a class has no cases or no
/// detected cases (pHmisclass would be undefined).
[[nodiscard]] ParallelEstimate estimate_parallel_model(
    const std::vector<ParallelProcedureRecord>& records,
    const std::vector<std::string>& class_names);

}  // namespace hmdiv::sim
