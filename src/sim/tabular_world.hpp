// A world that *is* a sequential model: demands are drawn from a profile,
// the machine fails with PMf(x), and the human fails with the appropriate
// conditional probability. Its ground truth is the model itself, exactly —
// so it validates Eq. (8) by Monte Carlo, and gives the trial estimator a
// known target (the Table-1 bench re-estimates the paper's parameters from
// a simulated trial on this world).
#pragma once

#include "core/demand_profile.hpp"
#include "core/sequential_model.hpp"
#include "sim/trial.hpp"
#include "stats/alias_table.hpp"

namespace hmdiv::sim {

class TabularWorld final : public World {
 public:
  /// `model` supplies the conditional probabilities; `profile` the demand
  /// mix. Classes must match.
  TabularWorld(core::SequentialModel model, core::DemandProfile profile);

  [[nodiscard]] CaseRecord simulate_case(stats::Rng& rng) override;
  /// Batch kernel: the whole per-case outcome — class, machine failure,
  /// human failure — is one draw from a precomputed Walker alias table
  /// over the *joint* distribution p(x)·p(machine, human | x), hoisted at
  /// construction. Each case consumes exactly 1 uniform (bulk-filled per
  /// fixed-size L1-resident tile) and decodes the joint index with two bit
  /// ops — no virtual call, spec lookup, CDF scan, or conditional draw.
  /// The scalar path draws class / machine / human sequentially (up to 3
  /// uniforms), so the streams differ; this kernel is the canonical
  /// stream for batched trials, equivalent in distribution (the joint
  /// factorisation is exact).
  void simulate_batch(std::span<CaseRecord> out, stats::Rng& rng) override;
  [[nodiscard]] std::size_t class_count() const override;
  [[nodiscard]] const std::vector<std::string>& class_names() const override;
  [[nodiscard]] std::unique_ptr<World> clone() const override {
    return std::make_unique<TabularWorld>(*this);
  }
  [[nodiscard]] bool cloneable() const override { return true; }
  /// Model and profile are immutable: simulation leaves no state behind,
  /// so trial runs may reuse one clone across batches.
  [[nodiscard]] bool stateless() const override { return true; }

  [[nodiscard]] const core::SequentialModel& model() const { return model_; }
  [[nodiscard]] const core::DemandProfile& profile() const { return profile_; }

 private:
  core::SequentialModel model_;
  core::DemandProfile profile_;
  /// Alias table over the joint outcome distribution, entry
  /// 4·x + 2·machine_failed + human_failed with probability
  /// p(x)·p(machine|x)·p(human|machine,x); hoisted from model_ and
  /// profile_ once so the batch kernel is one table draw per case.
  stats::AliasTable joint_alias_;
  /// joint_records_[j] is the decoded CaseRecord for joint index j, so
  /// the kernel's decode is a single 16-byte table copy.
  std::vector<CaseRecord> joint_records_;
};

}  // namespace hmdiv::sim
