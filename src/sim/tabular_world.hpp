// A world that *is* a sequential model: demands are drawn from a profile,
// the machine fails with PMf(x), and the human fails with the appropriate
// conditional probability. Its ground truth is the model itself, exactly —
// so it validates Eq. (8) by Monte Carlo, and gives the trial estimator a
// known target (the Table-1 bench re-estimates the paper's parameters from
// a simulated trial on this world).
#pragma once

#include "core/demand_profile.hpp"
#include "core/sequential_model.hpp"
#include "sim/trial.hpp"

namespace hmdiv::sim {

class TabularWorld final : public World {
 public:
  /// `model` supplies the conditional probabilities; `profile` the demand
  /// mix. Classes must match.
  TabularWorld(core::SequentialModel model, core::DemandProfile profile);

  [[nodiscard]] CaseRecord simulate_case(stats::Rng& rng) override;
  [[nodiscard]] std::size_t class_count() const override;
  [[nodiscard]] const std::vector<std::string>& class_names() const override;
  [[nodiscard]] std::unique_ptr<World> clone() const override {
    return std::make_unique<TabularWorld>(*this);
  }

  [[nodiscard]] const core::SequentialModel& model() const { return model_; }
  [[nodiscard]] const core::DemandProfile& profile() const { return profile_; }

 private:
  core::SequentialModel model_;
  core::DemandProfile profile_;
};

}  // namespace hmdiv::sim
