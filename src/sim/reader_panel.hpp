// Panels of readers with varying ability (Section 5, item 2).
//
// Real trials use several readers whose skills differ; the paper notes the
// trial data "can indicate the range of these abilities, show whether there
// are strong discrepancies between humans, and if these affect different
// categories of demands differently". This module simulates a panel trial
// (each case read by one randomly assigned panel member, as in typical
// multi-reader studies) and provides the analysis: per-reader failure
// counts, a beta-binomial over-dispersion fit (rho > 0 means true
// reader-to-reader variation beyond sampling noise), and per-class
// per-reader breakdowns.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cadt.hpp"
#include "sim/case_generator.hpp"
#include "sim/reader.hpp"
#include "stats/beta_binomial.hpp"
#include "stats/rng.hpp"

namespace hmdiv::sim {

/// A fixed panel of readers.
class ReaderPanel {
 public:
  explicit ReaderPanel(std::vector<ReaderModel> readers);

  /// Samples `count` readers around `base`: each gets
  /// skill ~ Normal(base.skill, skill_sigma), clamped above 0.05.
  [[nodiscard]] static ReaderPanel sample(const ReaderModel::Config& base,
                                          std::size_t count,
                                          double skill_sigma, stats::Rng& rng);

  [[nodiscard]] std::size_t size() const { return readers_.size(); }
  [[nodiscard]] const ReaderModel& reader(std::size_t i) const;

 private:
  std::vector<ReaderModel> readers_;
};

/// One panel-trial observation.
struct PanelRecord {
  std::size_t class_index = 0;
  std::size_t reader_index = 0;
  bool machine_failed = false;
  bool human_failed = false;
};

/// Runs a panel trial: for each case, a reader is drawn uniformly from the
/// panel, the CADT processes the case, the reader decides.
[[nodiscard]] std::vector<PanelRecord> run_panel_trial(
    CaseGenerator generator, const CadtModel& cadt, const ReaderPanel& panel,
    std::uint64_t cases, stats::Rng& rng);

/// Panel variability analysis.
struct PanelAnalysis {
  /// failures/cases per reader (all classes pooled).
  std::vector<stats::CountObservation> per_reader;
  /// Observed per-reader failure rates, same order.
  std::vector<double> failure_rates;
  /// Beta-binomial MLE over per_reader: rho() is the heterogeneity index.
  stats::BetaBinomialFit fit;
  /// min/max observed per-reader failure rate (the paper's "range of
  /// abilities").
  double lowest_rate = 0.0;
  double highest_rate = 0.0;
};

/// Computes the analysis; throws if any reader saw no cases.
[[nodiscard]] PanelAnalysis analyse_panel(
    const std::vector<PanelRecord>& records, std::size_t panel_size);

}  // namespace hmdiv::sim
