#include "sim/tabular_world.hpp"

#include <algorithm>
#include <stdexcept>

namespace hmdiv::sim {

namespace {

/// The joint outcome distribution p(x)·p(machine|x)·p(human|machine,x),
/// flattened as entry 4·x + 2·machine_failed + human_failed. Each class's
/// four entries sum to p(x), so the whole vector sums to 1 and feeds an
/// alias table directly.
std::vector<double> joint_probabilities(const core::SequentialModel& model,
                                        const core::DemandProfile& profile) {
  if (!model.compatible_with(profile)) {
    throw std::invalid_argument(
        "TabularWorld: profile classes do not match model classes");
  }
  const std::size_t k = model.class_count();
  std::vector<double> joint(4 * k);
  for (std::size_t x = 0; x < k; ++x) {
    const core::ClassConditional& c = model.parameters(x);
    const double p_ms = profile.probability(x) * (1.0 - c.p_machine_fails);
    const double p_mf = profile.probability(x) * c.p_machine_fails;
    joint[4 * x + 0] = p_ms * (1.0 - c.p_human_fails_given_machine_succeeds);
    joint[4 * x + 1] = p_ms * c.p_human_fails_given_machine_succeeds;
    joint[4 * x + 2] = p_mf * (1.0 - c.p_human_fails_given_machine_fails);
    joint[4 * x + 3] = p_mf * c.p_human_fails_given_machine_fails;
  }
  return joint;
}

}  // namespace

TabularWorld::TabularWorld(core::SequentialModel model,
                           core::DemandProfile profile)
    : model_(std::move(model)),
      profile_(std::move(profile)),
      joint_alias_(joint_probabilities(model_, profile_)) {
  joint_records_.resize(joint_alias_.size());
  for (std::size_t j = 0; j < joint_records_.size(); ++j) {
    joint_records_[j].class_index = j >> 2;
    joint_records_[j].machine_failed = (j & 2) != 0;
    joint_records_[j].human_failed = (j & 1) != 0;
  }
}

CaseRecord TabularWorld::simulate_case(stats::Rng& rng) {
  CaseRecord r;
  r.class_index = profile_.sample(rng);
  const core::ClassConditional& c = model_.parameters(r.class_index);
  r.machine_failed = rng.bernoulli(c.p_machine_fails);
  r.human_failed = rng.bernoulli(
      r.machine_failed ? c.p_human_fails_given_machine_fails
                       : c.p_human_fails_given_machine_succeeds);
  return r;
}

void TabularWorld::simulate_batch(std::span<CaseRecord> out,
                                  stats::Rng& rng) {
  // One uniform per case, bulk-filled per fixed-size tile so the scratch
  // buffer (8 KiB) stays L1-resident. The tile size is a constant — never
  // derived from the batch or thread count — so the draw layout (and
  // hence the canonical stream) is a function of the case index alone.
  // The filled tile breaks the RNG's serial dependency chain out of the
  // decode loop: alias lookups and record stores pipeline across cases.
  constexpr std::size_t kTile = 1024;
  // thread_local so a trial run reuses one scratch buffer per worker
  // thread instead of allocating per batch.
  thread_local std::vector<double> u(kTile);
  while (!out.empty()) {
    const std::size_t n = std::min(out.size(), kTile);
    rng.fill_uniform(std::span<double>(u.data(), n));
    const CaseRecord* records = joint_records_.data();
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = records[joint_alias_.sample_from_uniform(u[i])];
    }
    out = out.subspan(n);
  }
}

std::size_t TabularWorld::class_count() const { return model_.class_count(); }

const std::vector<std::string>& TabularWorld::class_names() const {
  return model_.class_names();
}

}  // namespace hmdiv::sim
