#include "sim/tabular_world.hpp"

#include <stdexcept>

namespace hmdiv::sim {

TabularWorld::TabularWorld(core::SequentialModel model,
                           core::DemandProfile profile)
    : model_(std::move(model)), profile_(std::move(profile)) {
  if (!model_.compatible_with(profile_)) {
    throw std::invalid_argument(
        "TabularWorld: profile classes do not match model classes");
  }
}

CaseRecord TabularWorld::simulate_case(stats::Rng& rng) {
  CaseRecord r;
  r.class_index = profile_.sample(rng);
  const core::ClassConditional& c = model_.parameters(r.class_index);
  r.machine_failed = rng.bernoulli(c.p_machine_fails);
  r.human_failed = rng.bernoulli(
      r.machine_failed ? c.p_human_fails_given_machine_fails
                       : c.p_human_fails_given_machine_succeeds);
  return r;
}

std::size_t TabularWorld::class_count() const { return model_.class_count(); }

const std::vector<std::string>& TabularWorld::class_names() const {
  return model_.class_names();
}

}  // namespace hmdiv::sim
