#include "sim/trial.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "exec/parallel.hpp"
#include "obs/obs.hpp"

namespace hmdiv::sim {

namespace {

/// A per-run pool of world clones for stateless worlds: a batch borrows a
/// clone, simulates on it, and returns it, so a run allocates at most one
/// clone per *concurrent* batch instead of one per batch. Safe only when
/// World::stateless() holds (a reused clone behaves like a fresh one).
class ClonePool {
 public:
  explicit ClonePool(const World& prototype) : prototype_(prototype) {}

  [[nodiscard]] std::unique_ptr<World> acquire() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!idle_.empty()) {
        std::unique_ptr<World> world = std::move(idle_.back());
        idle_.pop_back();
        HMDIV_OBS_COUNT("sim.trial.clone_reuse", 1);
        return world;
      }
    }
    HMDIV_OBS_COUNT("sim.trial.world_clones", 1);
    return prototype_.clone();
  }

  void release(std::unique_ptr<World> world) {
    const std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(world));
  }

 private:
  const World& prototype_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<World>> idle_;
};

}  // namespace

void World::simulate_batch(std::span<CaseRecord> out, stats::Rng& rng) {
  for (CaseRecord& record : out) record = simulate_case(rng);
}

double TrialData::observed_failure_rate() const {
  if (records.empty()) return 0.0;
  std::size_t failures = 0;
  for (const auto& r : records) failures += r.human_failed ? 1 : 0;
  return static_cast<double>(failures) / static_cast<double>(records.size());
}

double TrialData::observed_machine_failure_rate() const {
  if (records.empty()) return 0.0;
  std::size_t failures = 0;
  for (const auto& r : records) failures += r.machine_failed ? 1 : 0;
  return static_cast<double>(failures) / static_cast<double>(records.size());
}

std::vector<std::uint64_t> TrialData::class_histogram() const {
  std::vector<std::uint64_t> counts(class_names.size(), 0);
  for (const auto& r : records) {
    if (r.class_index >= counts.size()) {
      throw std::logic_error("TrialData: record class out of range");
    }
    ++counts[r.class_index];
  }
  return counts;
}

TrialRunner::TrialRunner(World& world, std::uint64_t case_count)
    : world_(world), case_count_(case_count) {
  if (case_count_ == 0) {
    throw std::invalid_argument("TrialRunner: case_count == 0");
  }
}

TrialData TrialRunner::run(stats::Rng& rng) {
  TrialData data;
  data.class_names = world_.class_names();
  data.records.reserve(case_count_);
  for (std::uint64_t i = 0; i < case_count_; ++i) {
    data.records.push_back(world_.simulate_case(rng));
  }
  return data;
}

TrialData TrialRunner::run(std::uint64_t seed, const exec::Config& config) {
  HMDIV_OBS_SCOPED_TIMER("sim.trial.run_ns");
  HMDIV_OBS_COUNT("sim.trial.runs", 1);
  TrialData data;
  data.class_names = world_.class_names();
  data.records = run_batches(seed, 0, batch_count(), config);
  return data;
}

std::uint64_t TrialRunner::batch_count() const {
  return (case_count_ + kBatchSize - 1) / kBatchSize;
}

std::vector<CaseRecord> TrialRunner::run_batches(std::uint64_t seed,
                                                 std::uint64_t first_batch,
                                                 std::uint64_t last_batch,
                                                 const exec::Config& config) {
  const std::uint64_t batches = batch_count();
  if (first_batch > last_batch || last_batch > batches) {
    throw std::invalid_argument("TrialRunner: batch range out of bounds");
  }
  const std::uint64_t case_begin = first_batch * kBatchSize;
  const std::uint64_t case_end =
      std::min(last_batch * kBatchSize, case_count_);
  std::vector<CaseRecord> records(
      static_cast<std::size_t>(case_end - case_begin));
  if (records.empty()) return records;
  HMDIV_OBS_COUNT("sim.trial.cases", records.size());
  const auto total = records.size();
  // Chunk c of this sub-range is global batch first_batch + c (case_begin
  // is a multiple of kBatchSize, so chunk boundaries coincide with the
  // full run's batch boundaries) — same substream, same records.
  auto run_batch = [&](World& world, std::size_t begin, std::size_t end,
                       std::size_t batch) {
    HMDIV_OBS_SCOPED_TIMER("sim.trial.batch_ns");
    stats::Rng batch_rng(seed, first_batch + batch);
    world.simulate_batch(
        std::span<CaseRecord>(records).subspan(begin, end - begin),
        batch_rng);
  };
  if (!world_.cloneable()) {
    // No clone: same batch/substream layout, executed serially on the
    // shared world (stateful worlds keep evolving across batches).
    HMDIV_OBS_COUNT("sim.trial.serial_fallbacks", 1);
    exec::parallel_for_chunks(
        total, kBatchSize,
        [&](std::size_t begin, std::size_t end, std::size_t batch) {
          run_batch(world_, begin, end, batch);
        },
        exec::Config::serial());
    return records;
  }
  if (world_.stateless()) {
    // Stateless worlds: borrow clones from a pool and reuse them across
    // batches — at most one allocation per concurrent batch per run.
    ClonePool pool(world_);
    exec::parallel_for_chunks(
        total, kBatchSize,
        [&](std::size_t begin, std::size_t end, std::size_t batch) {
          std::unique_ptr<World> local = pool.acquire();
          run_batch(*local, begin, end, batch);
          pool.release(std::move(local));
        },
        config);
    return records;
  }
  exec::parallel_for_chunks(
      total, kBatchSize,
      [&](std::size_t begin, std::size_t end, std::size_t batch) {
        HMDIV_OBS_COUNT("sim.trial.world_clones", 1);
        const std::unique_ptr<World> local = world_.clone();
        run_batch(*local, begin, end, batch);
      },
      config);
  return records;
}

}  // namespace hmdiv::sim
