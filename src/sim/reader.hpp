// Simulated human reader, with automation bias and complacency dynamics.
//
// Substitutes the radiologists of the paper's trials. The reader's task has
// the paper's two (not necessarily consciously separate) components:
//
//   detection      — noticing the relevant features. Unaided success is a
//                    logistic psychometric function of (skill − difficulty).
//                    A prompt raises it (the design intent of the CADT); an
//                    *absent* prompt lowers it below the unaided level when
//                    the reader relies on the machine (automation bias /
//                    "complacency", the paper's Section 5 item 3 and its
//                    Skitka et al. reference [7]).
//   classification — deciding that detected features mean "recall". Failure
//                    probability rises with difficulty.
//
// Reliance is dynamic: the reader keeps an exponentially weighted estimate
// of the machine's usefulness (how often prompts mark features the reader
// verified) and drifts towards a reliance level that grows with perceived
// machine reliability. Improving the machine therefore *indirectly* worsens
// PHf|Mf over time — the paper's key caution about extrapolating after
// design changes.
#pragma once

#include "sim/case.hpp"
#include "stats/rng.hpp"

namespace hmdiv::sim {

/// The reader's decision on one case, with intermediate flags for analysis.
struct ReaderDecision {
  bool detected = false;     ///< relevant features noticed
  bool recalled = false;     ///< final decision; system FN iff !recalled
};

/// Simulated reader. Copyable value type; mutable only in its reliance
/// state (updated by observe()).
class ReaderModel {
 public:
  struct Config {
    /// Reading skill on the difficulty scale (higher = better).
    double skill = 1.0;
    /// Steepness of the detection psychometric curve (> 0).
    double detection_slope = 1.3;
    /// How much a prompt helps: residual miss probability is multiplied by
    /// (1 − prompt_effectiveness). In [0,1].
    double prompt_effectiveness = 0.75;
    /// Initial reliance on the machine, in [0,1). When the machine is
    /// silent, unaided detection probability is multiplied by
    /// (1 − reliance): attention not spent where the machine said nothing.
    double initial_reliance = 0.2;
    /// Classification: P(misclassify | detected) =
    /// clamp(base + slope·difficulty, 0, max). All >= 0.
    double misclassification_base = 0.05;
    double misclassification_slope = 0.08;
    double misclassification_max = 0.6;
    /// False-positive side (normal cases): P(recall | healthy case) =
    /// clamp(base + slope·suspiciousness, 0, max), and a machine prompt on
    /// a healthy case biases the reader towards recall by multiplying the
    /// residual no-recall probability by (1 − prompt_recall_bias).
    double false_recall_base = 0.04;
    double false_recall_slope = 0.10;
    double false_recall_max = 0.9;
    double prompt_recall_bias = 0.35;
    /// Complacency dynamics: reliance drifts towards
    /// target = reliance_floor + reliance_gain·perceived_reliability with
    /// learning rate `adaptation_rate` per observed case. Set
    /// adaptation_rate = 0 for a static reader.
    double adaptation_rate = 0.0;
    double reliance_floor = 0.05;
    double reliance_gain = 0.6;
  };

  explicit ReaderModel(Config config);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] double reliance() const { return reliance_; }

  /// Raw psychometric detection probability, before any prompt boost or
  /// reliance penalty: logistic(detection_slope · (skill − difficulty)).
  [[nodiscard]] double unaided_detection_probability(
      double human_difficulty) const;

  /// P(detect | difficulty, prompted?) — analytic; pure in the reader's
  /// current reliance state.
  [[nodiscard]] double detection_probability(double human_difficulty,
                                             bool prompted) const;

  /// P(misclassify | detected, difficulty) — analytic.
  [[nodiscard]] double misclassification_probability(
      double human_difficulty) const;

  /// P(reader fails, i.e. no recall of a cancer | difficulty, prompted?).
  [[nodiscard]] double failure_probability(double human_difficulty,
                                           bool prompted) const;

  /// P(reader wrongly recalls a *healthy* patient | suspiciousness,
  /// prompted?) — the false-positive side.
  [[nodiscard]] double false_recall_probability(double suspiciousness,
                                                bool prompted) const;

  /// Simulates the full decision on one cancer case.
  [[nodiscard]] ReaderDecision decide(const Case& c, bool prompted,
                                      stats::Rng& rng) const;

  /// Updates the reliance state after a case: `machine_prompted` is what
  /// the reader saw; `reader_detected_unaided` is whether the reader found
  /// the features regardless of the prompt (their only window onto machine
  /// misses). No effect when adaptation_rate == 0.
  void observe(bool machine_prompted, bool reader_detected_unaided);

  /// A copy with skill multiplied by `factor` (> 0): reader training /
  /// less-qualified readers (factor < 1).
  [[nodiscard]] ReaderModel with_skill_factor(double factor) const;

  /// A copy with a different fixed reliance (state override).
  [[nodiscard]] ReaderModel with_reliance(double reliance) const;

 private:
  Config config_;
  double reliance_;
  /// EWMA of observed machine usefulness, in [0,1].
  double perceived_reliability_ = 0.5;
};

}  // namespace hmdiv::sim
