#include "sim/parallel_world.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/summary.hpp"

namespace hmdiv::sim {

ParallelProcedureWorld::ParallelProcedureWorld(CaseGenerator generator,
                                               CadtModel cadt,
                                               ReaderModel reader,
                                               double prompt_attention,
                                               double within_class_scale)
    : generator_(std::move(generator)),
      cadt_(std::move(cadt)),
      reader_(std::move(reader)),
      prompt_attention_(prompt_attention),
      within_class_scale_(within_class_scale) {
  if (!(prompt_attention_ >= 0.0 && prompt_attention_ <= 1.0)) {
    throw std::invalid_argument(
        "ParallelProcedureWorld: prompt_attention outside [0,1]");
  }
  if (!(within_class_scale_ >= 0.0 && within_class_scale_ <= 1.0)) {
    throw std::invalid_argument(
        "ParallelProcedureWorld: within_class_scale outside [0,1]");
  }
}

std::pair<double, double> ParallelProcedureWorld::sample_scaled_difficulties(
    std::size_t class_index, stats::Rng& rng) const {
  const CaseClassSpec& spec = generator_.spec(class_index);
  const auto [human, machine] =
      generator_.sample_difficulties(class_index, rng);
  // Shrink the deviation from the class means by the scale factor.
  return {spec.human_difficulty_mean +
              within_class_scale_ * (human - spec.human_difficulty_mean),
          spec.machine_difficulty_mean +
              within_class_scale_ * (machine - spec.machine_difficulty_mean)};
}

ParallelProcedureRecord ParallelProcedureWorld::simulate_case(
    stats::Rng& rng) {
  ParallelProcedureRecord r;
  r.class_index = generator_.profile().sample(rng);
  const auto [human_difficulty, machine_difficulty] =
      sample_scaled_difficulties(r.class_index, rng);

  // Step 1: unaided examination, full attention (no machine output yet).
  const bool detected_unaided = rng.bernoulli(
      reader_.unaided_detection_probability(human_difficulty));
  r.human_missed = !detected_unaided;

  // Step 2: CADT output reviewed.
  const bool prompted = rng.bernoulli(
      cadt_.prompt_probability(machine_difficulty));
  r.machine_failed = !prompted;
  const bool recovered_by_prompt =
      !detected_unaided && prompted && rng.bernoulli(prompt_attention_);
  r.detected = detected_unaided || recovered_by_prompt;

  // Step 3: classification of whatever was detected.
  r.misclassified =
      r.detected && rng.bernoulli(reader_.misclassification_probability(
                        human_difficulty));
  r.system_failed = !r.detected || r.misclassified;
  return r;
}

void ParallelProcedureWorld::simulate_batch(
    std::span<ParallelProcedureRecord> out, stats::Rng& rng) const {
  const std::size_t n = out.size();
  if (n == 0) return;
  // Hoist the shrink-scaled class parameters: scaled difficulty =
  // mean + within_class_scale · sigma · z, with the class correlation
  // applied to the machine deviate (same algebra as
  // sample_scaled_difficulties, constants folded).
  const std::size_t k = class_count();
  std::vector<double> h_mean(k), h_scale(k), m_mean(k), m_scale(k), rho(k),
      rho_residual(k);
  for (std::size_t x = 0; x < k; ++x) {
    const CaseClassSpec& spec = generator_.spec(x);
    h_mean[x] = spec.human_difficulty_mean;
    h_scale[x] = within_class_scale_ * spec.human_difficulty_sigma;
    m_mean[x] = spec.machine_difficulty_mean;
    m_scale[x] = within_class_scale_ * spec.machine_difficulty_sigma;
    rho[x] = spec.difficulty_correlation;
    rho_residual[x] = std::sqrt(1.0 - rho[x] * rho[x]);
  }
  // SoA draws: one bulk uniform per case for the class, two bulk normals
  // per case for the difficulties; decision draws below stay per-case.
  thread_local std::vector<double> u_class;
  thread_local std::vector<double> z;
  u_class.resize(n);
  z.resize(2 * n);
  rng.fill_uniform(u_class);
  rng.fill_normal(z);
  const stats::AliasTable& alias = generator_.profile().alias();
  for (std::size_t i = 0; i < n; ++i) {
    ParallelProcedureRecord& r = out[i];
    r = ParallelProcedureRecord{};
    r.class_index = alias.sample_from_uniform(u_class[i]);
    const std::size_t x = r.class_index;
    const double z1 = z[2 * i];
    const double z2 = z[2 * i + 1];
    const double human_difficulty = h_mean[x] + h_scale[x] * z1;
    const double machine_difficulty =
        m_mean[x] + m_scale[x] * (rho[x] * z1 + rho_residual[x] * z2);

    const bool detected_unaided = rng.bernoulli(
        reader_.unaided_detection_probability(human_difficulty));
    r.human_missed = !detected_unaided;
    const bool prompted = rng.bernoulli(
        cadt_.prompt_probability(machine_difficulty));
    r.machine_failed = !prompted;
    const bool recovered_by_prompt =
        !detected_unaided && prompted && rng.bernoulli(prompt_attention_);
    r.detected = detected_unaided || recovered_by_prompt;
    r.misclassified =
        r.detected && rng.bernoulli(reader_.misclassification_probability(
                          human_difficulty));
    r.system_failed = !r.detected || r.misclassified;
  }
}

std::vector<ParallelProcedureRecord> ParallelProcedureWorld::run(
    std::uint64_t cases, stats::Rng& rng) {
  if (cases == 0) {
    throw std::invalid_argument("ParallelProcedureWorld: cases == 0");
  }
  std::vector<ParallelProcedureRecord> out(
      static_cast<std::size_t>(cases));
  simulate_batch(out, rng);
  return out;
}

core::ParallelDetectionModel ParallelProcedureWorld::ground_truth(
    stats::Rng& rng, std::size_t samples_per_class) const {
  if (samples_per_class == 0) {
    throw std::invalid_argument(
        "ParallelProcedureWorld: samples_per_class == 0");
  }
  std::vector<core::ParallelClassConditional> params;
  params.reserve(class_count());
  for (std::size_t x = 0; x < class_count(); ++x) {
    stats::KahanAccumulator machine_miss, human_miss;
    stats::KahanAccumulator detected_mass, misclass_mass;
    for (std::size_t i = 0; i < samples_per_class; ++i) {
      const auto [human, machine] = sample_scaled_difficulties(x, rng);
      const double p_unaided = reader_.unaided_detection_probability(human);
      const double p_prompt = cadt_.prompt_probability(machine);
      machine_miss.add(1.0 - p_prompt);
      human_miss.add(1.0 - p_unaided);
      const double p_detected =
          p_unaided + (1.0 - p_unaided) * p_prompt * prompt_attention_;
      detected_mass.add(p_detected);
      misclass_mass.add(p_detected *
                        reader_.misclassification_probability(human));
    }
    core::ParallelClassConditional c;
    const double n = static_cast<double>(samples_per_class);
    c.p_machine_misses = machine_miss.total() / n;
    c.p_human_misses = human_miss.total() / n;
    c.p_human_misclassifies = detected_mass.total() > 0.0
                                  ? misclass_mass.total() /
                                        detected_mass.total()
                                  : 0.0;
    params.push_back(c);
  }
  return core::ParallelDetectionModel(class_names(), std::move(params));
}

double ParallelProcedureWorld::exact_system_failure(
    stats::Rng& rng, std::size_t samples_per_class) const {
  if (samples_per_class == 0) {
    throw std::invalid_argument(
        "ParallelProcedureWorld: samples_per_class == 0");
  }
  double total = 0.0;
  for (std::size_t x = 0; x < class_count(); ++x) {
    stats::KahanAccumulator failure;
    for (std::size_t i = 0; i < samples_per_class; ++i) {
      const auto [human, machine] = sample_scaled_difficulties(x, rng);
      const double p_unaided = reader_.unaided_detection_probability(human);
      const double p_prompt = cadt_.prompt_probability(machine);
      const double p_detected =
          p_unaided + (1.0 - p_unaided) * p_prompt * prompt_attention_;
      const double p_misclass =
          reader_.misclassification_probability(human);
      failure.add((1.0 - p_detected) + p_detected * p_misclass);
    }
    total += generator_.profile()[x] * failure.total() /
             static_cast<double>(samples_per_class);
  }
  return total;
}

ParallelEstimate estimate_parallel_model(
    const std::vector<ParallelProcedureRecord>& records,
    const std::vector<std::string>& class_names) {
  const std::size_t k = class_names.size();
  if (k == 0) {
    throw std::invalid_argument("estimate_parallel_model: no classes");
  }
  struct Counts {
    std::uint64_t cases = 0, machine_missed = 0, human_missed = 0;
    std::uint64_t detected = 0, misclassified = 0;
    std::uint64_t system_failed = 0;
  };
  std::vector<Counts> counts(k);
  std::uint64_t failures = 0;
  for (const auto& r : records) {
    if (r.class_index >= k) {
      throw std::invalid_argument(
          "estimate_parallel_model: record class out of range");
    }
    Counts& c = counts[r.class_index];
    ++c.cases;
    c.machine_missed += r.machine_failed ? 1 : 0;
    c.human_missed += r.human_missed ? 1 : 0;
    c.detected += r.detected ? 1 : 0;
    c.misclassified += r.misclassified ? 1 : 0;
    failures += r.system_failed ? 1 : 0;
  }
  ParallelEstimate out;
  out.class_names = class_names;
  out.classes.resize(k);
  for (std::size_t x = 0; x < k; ++x) {
    const Counts& c = counts[x];
    if (c.cases == 0) {
      throw std::invalid_argument("estimate_parallel_model: class '" +
                                  class_names[x] + "' has no cases");
    }
    if (c.detected == 0) {
      throw std::invalid_argument(
          "estimate_parallel_model: class '" + class_names[x] +
          "' has no detected cases; pHmisclass is unidentifiable");
    }
    out.classes[x].p_machine_misses =
        static_cast<double>(c.machine_missed) / static_cast<double>(c.cases);
    out.classes[x].p_human_misses =
        static_cast<double>(c.human_missed) / static_cast<double>(c.cases);
    out.classes[x].p_human_misclassifies =
        static_cast<double>(c.misclassified) /
        static_cast<double>(c.detected);
  }
  out.observed_system_failure =
      records.empty() ? 0.0
                      : static_cast<double>(failures) /
                            static_cast<double>(records.size());
  return out;
}

}  // namespace hmdiv::sim
