// Fitting the paper's model parameters from trial records.
//
// For each class x the estimator computes the maximum-likelihood
// proportions of {machine failure; human failure given machine failure;
// human failure given machine success} together with Wilson confidence
// intervals, mirroring how a real evaluation trial would analyse its data.
// The per-class counts are exactly the ClassCounts consumed by
// core::PosteriorModelSampler, so uncertainty propagation (core/uncertainty)
// composes directly with simulated trials.
#pragma once

#include <vector>

#include "core/demand_profile.hpp"
#include "core/sequential_model.hpp"
#include "core/uncertainty.hpp"
#include "sim/trial.hpp"
#include "stats/hypothesis.hpp"
#include "stats/intervals.hpp"

namespace hmdiv::sim {

/// Point estimates + intervals for one class.
struct ClassEstimate {
  core::ClassCounts counts;
  double p_machine_fails = 0.0;
  double p_human_fails_given_machine_fails = 0.0;
  double p_human_fails_given_machine_succeeds = 0.0;
  stats::ProportionInterval machine_interval;
  stats::ProportionInterval human_given_failure_interval;
  stats::ProportionInterval human_given_success_interval;
  /// t(x) point estimate.
  [[nodiscard]] double importance_index() const {
    return p_human_fails_given_machine_fails -
           p_human_fails_given_machine_succeeds;
  }
};

/// Full estimation result for a trial.
struct EstimationResult {
  std::vector<std::string> class_names;
  std::vector<ClassEstimate> classes;
  /// Empirical demand profile of the trial records.
  core::DemandProfile empirical_profile;

  /// The fitted sequential model (point estimates). Classes with no
  /// machine-failure (or no machine-success) observations get the Jeffreys
  /// posterior mean for the unobservable conditional.
  [[nodiscard]] core::SequentialModel fitted_model() const;

  /// The counts in core::PosteriorModelSampler form.
  [[nodiscard]] std::vector<core::ClassCounts> counts() const;
};

/// Estimates per-class parameters from trial data at `confidence` level.
/// Throws if any class has zero cases (the trial cannot say anything about
/// it — enlarge the trial or merge classes).
[[nodiscard]] EstimationResult estimate_sequential_model(
    const TrialData& data, double confidence = 0.95);

/// Per-class association between machine and human failures: chi-square
/// 2x2 independence test on (machine failed?, human failed?). Small
/// p-values falsify "the human is unaffected by the machine's output" —
/// the test the parallel-detection model of Section 3 implicitly needs.
[[nodiscard]] std::vector<stats::TestResult> association_by_class(
    const TrialData& data);

}  // namespace hmdiv::sim
