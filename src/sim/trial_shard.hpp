// Multi-process sharding of TabularWorld Monte-Carlo trials.
//
// The "sim.trial" shard workload ships a (SequentialModel, DemandProfile,
// case_count, seed) description to each worker as IEEE-754 bit patterns;
// workers rebuild the world through the bit-exact from_normalised path,
// run their wire::shard_range slice of the fixed batch index space with
// TrialRunner::run_batches, and return the per-case records. The parent's
// concatenation (ascending shard order) is bit-identical to
// TrialRunner::run(seed, config) in one process.
#pragma once

#include <cstdint>

#include "exec/shard.hpp"
#include "sim/tabular_world.hpp"
#include "sim/trial.hpp"

namespace hmdiv::exec {
class ClusterRunner;
}  // namespace hmdiv::exec

namespace hmdiv::sim {

/// Shard-workload name trial runs are registered under.
inline constexpr std::string_view kTrialShardWorkload = "sim.trial";

/// Runs a `case_count`-case trial on `world` across worker processes
/// (options.shards; 1 falls back to the in-process TrialRunner without
/// spawning anything). Output is bit-identical to
/// TrialRunner(world, case_count).run(seed) at any shard × thread
/// composition. Throws exec::ShardError on worker failure.
[[nodiscard]] TrialData run_trial_sharded(
    const TabularWorld& world, std::uint64_t case_count, std::uint64_t seed,
    const exec::ShardOptions& options = {});

/// Same trial, fanned across remote hmdiv_serve workers via `cluster`
/// (DESIGN.md §15). Identical blob, shard_range partition and ascending-
/// shard merge as run_trial_sharded, so the output is bit-identical to the
/// in-process run at any worker × shard composition. Throws
/// exec::ClusterError when no healthy worker can finish a shard.
[[nodiscard]] TrialData run_trial_clustered(const TabularWorld& world,
                                            std::uint64_t case_count,
                                            std::uint64_t seed,
                                            exec::ClusterRunner& cluster);

/// No-op anchor: calling it from an executable forces this translation
/// unit (and its static ShardWorkloadRegistration) to link in, so daemons
/// built against the static libraries can serve "sim.trial" shard tasks.
void ensure_trial_shard_registered();

}  // namespace hmdiv::sim
