#include "sim/estimation.hpp"

#include <stdexcept>

namespace hmdiv::sim {

namespace {

constexpr double kJeffreys = 0.5;

double proportion_or_prior(std::uint64_t k, std::uint64_t n) {
  if (n == 0) {
    // No observations: fall back to the Jeffreys prior mean, flagged by the
    // untouched default interval [0,1].
    return 0.5;
  }
  return static_cast<double>(k) / static_cast<double>(n);
}

double smoothed(std::uint64_t k, std::uint64_t n) {
  return (static_cast<double>(k) + kJeffreys) /
         (static_cast<double>(n) + 2.0 * kJeffreys);
}

}  // namespace

core::SequentialModel EstimationResult::fitted_model() const {
  std::vector<core::ClassConditional> params;
  params.reserve(classes.size());
  for (const auto& e : classes) {
    core::ClassConditional c;
    c.p_machine_fails = e.p_machine_fails;
    c.p_human_fails_given_machine_fails =
        e.counts.machine_failures > 0
            ? e.p_human_fails_given_machine_fails
            : smoothed(0, 0);
    c.p_human_fails_given_machine_succeeds =
        e.counts.cases - e.counts.machine_failures > 0
            ? e.p_human_fails_given_machine_succeeds
            : smoothed(0, 0);
    params.push_back(c);
  }
  return core::SequentialModel(class_names, std::move(params));
}

std::vector<core::ClassCounts> EstimationResult::counts() const {
  std::vector<core::ClassCounts> out;
  out.reserve(classes.size());
  for (const auto& e : classes) out.push_back(e.counts);
  return out;
}

EstimationResult estimate_sequential_model(const TrialData& data,
                                           double confidence) {
  const std::size_t k = data.class_names.size();
  if (k == 0) {
    throw std::invalid_argument("estimate_sequential_model: no classes");
  }
  std::vector<core::ClassCounts> counts(k);
  for (const auto& r : data.records) {
    if (r.class_index >= k) {
      throw std::invalid_argument(
          "estimate_sequential_model: record class out of range");
    }
    core::ClassCounts& c = counts[r.class_index];
    ++c.cases;
    if (r.machine_failed) {
      ++c.machine_failures;
      if (r.human_failed) ++c.human_failures_given_machine_failed;
    } else if (r.human_failed) {
      ++c.human_failures_given_machine_succeeded;
    }
  }

  std::vector<ClassEstimate> classes;
  classes.reserve(k);
  std::vector<double> weights(k);
  for (std::size_t x = 0; x < k; ++x) {
    const core::ClassCounts& c = counts[x];
    if (c.cases == 0) {
      throw std::invalid_argument(
          "estimate_sequential_model: class '" + data.class_names[x] +
          "' has no cases in the trial");
    }
    ClassEstimate e;
    e.counts = c;
    e.p_machine_fails = proportion_or_prior(c.machine_failures, c.cases);
    e.machine_interval =
        stats::wilson_interval(c.machine_failures, c.cases, confidence);

    const std::uint64_t machine_successes = c.cases - c.machine_failures;
    e.p_human_fails_given_machine_fails = proportion_or_prior(
        c.human_failures_given_machine_failed, c.machine_failures);
    if (c.machine_failures > 0) {
      e.human_given_failure_interval =
          stats::wilson_interval(c.human_failures_given_machine_failed,
                                 c.machine_failures, confidence);
    }
    e.p_human_fails_given_machine_succeeds = proportion_or_prior(
        c.human_failures_given_machine_succeeded, machine_successes);
    if (machine_successes > 0) {
      e.human_given_success_interval =
          stats::wilson_interval(c.human_failures_given_machine_succeeded,
                                 machine_successes, confidence);
    }
    weights[x] = static_cast<double>(c.cases);
    classes.push_back(e);
  }
  return EstimationResult{
      data.class_names, std::move(classes),
      core::DemandProfile::from_weights(data.class_names, std::move(weights))};
}

std::vector<stats::TestResult> association_by_class(const TrialData& data) {
  const std::size_t k = data.class_names.size();
  struct Cells {
    std::uint64_t mf_hf = 0, mf_hs = 0, ms_hf = 0, ms_hs = 0;
  };
  std::vector<Cells> cells(k);
  for (const auto& r : data.records) {
    Cells& c = cells.at(r.class_index);
    if (r.machine_failed) {
      (r.human_failed ? c.mf_hf : c.mf_hs) += 1;
    } else {
      (r.human_failed ? c.ms_hf : c.ms_hs) += 1;
    }
  }
  std::vector<stats::TestResult> out;
  out.reserve(k);
  for (const auto& c : cells) {
    out.push_back(
        stats::chi_square_independence_2x2(c.mf_hf, c.mf_hs, c.ms_hf, c.ms_hs));
  }
  return out;
}

}  // namespace hmdiv::sim
