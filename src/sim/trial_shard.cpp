#include "sim/trial_shard.hpp"

#include <stdexcept>
#include <utility>

#include "core/demand_profile.hpp"
#include "core/sequential_model.hpp"
#include "exec/cluster.hpp"
#include "obs/obs.hpp"

namespace hmdiv::sim {

namespace {

// Blob layout: u64 n_classes, n × str name, n × 3 f64 conditionals,
// doubles profile probabilities, u64 case_count, u64 seed. Doubles travel
// as bit patterns and the profile rebuilds through from_normalised, so the
// worker's TabularWorld (joint alias table included) matches the parent's
// bit-for-bit.

std::vector<std::uint8_t> encode_blob(const TabularWorld& world,
                                      std::uint64_t case_count,
                                      std::uint64_t seed) {
  const core::SequentialModel& model = world.model();
  exec::wire::Writer w;
  const std::size_t k = model.class_count();
  w.u64(k);
  for (const std::string& name : model.class_names()) w.str(name);
  for (std::size_t x = 0; x < k; ++x) {
    const core::ClassConditional& c = model.parameters(x);
    w.f64(c.p_machine_fails);
    w.f64(c.p_human_fails_given_machine_fails);
    w.f64(c.p_human_fails_given_machine_succeeds);
  }
  std::vector<double> probabilities(k);
  for (std::size_t x = 0; x < k; ++x) {
    probabilities[x] = world.profile().probability(x);
  }
  w.doubles(probabilities);
  w.u64(case_count);
  w.u64(seed);
  return w.take();
}

struct TrialShardConfig {
  TabularWorld world;
  std::uint64_t case_count = 0;
  std::uint64_t seed = 0;
};

TrialShardConfig decode_blob(std::span<const std::uint8_t> blob) {
  exec::wire::Reader r(blob);
  const std::uint64_t k = r.u64();
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(k));
  for (std::uint64_t x = 0; x < k; ++x) names.push_back(r.str());
  std::vector<core::ClassConditional> parameters(
      static_cast<std::size_t>(k));
  for (auto& c : parameters) {
    c.p_machine_fails = r.f64();
    c.p_human_fails_given_machine_fails = r.f64();
    c.p_human_fails_given_machine_succeeds = r.f64();
  }
  std::vector<double> probabilities = r.doubles();
  core::SequentialModel model(names, std::move(parameters));
  core::DemandProfile profile =
      core::DemandProfile::from_normalised(std::move(names),
                                           std::move(probabilities));
  TrialShardConfig config{
      TabularWorld(std::move(model), std::move(profile)), r.u64(), r.u64()};
  if (!r.exhausted()) {
    throw exec::wire::ProtocolError("sim.trial blob: trailing bytes");
  }
  return config;
}

std::vector<std::uint8_t> encode_records(
    std::span<const CaseRecord> records) {
  exec::wire::Writer w;
  w.u64(records.size());
  for (const CaseRecord& record : records) {
    w.u32(static_cast<std::uint32_t>(record.class_index));
    w.u8(static_cast<std::uint8_t>((record.machine_failed ? 2 : 0) |
                                   (record.human_failed ? 1 : 0)));
  }
  return w.take();
}

void decode_records_into(std::span<const std::uint8_t> payload,
                         std::vector<CaseRecord>& out,
                         std::size_t class_count) {
  exec::wire::Reader r(payload);
  const std::uint64_t n = r.u64();
  out.reserve(out.size() + static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    CaseRecord record;
    record.class_index = r.u32();
    const std::uint8_t flags = r.u8();
    record.machine_failed = (flags & 2) != 0;
    record.human_failed = (flags & 1) != 0;
    if (record.class_index >= class_count || (flags & ~3u) != 0) {
      throw exec::wire::ProtocolError("sim.trial result: bad case record");
    }
    out.push_back(record);
  }
  if (!r.exhausted()) {
    throw exec::wire::ProtocolError("sim.trial result: trailing bytes");
  }
}

/// Worker side: rebuild the world, run this task's slice of the batch
/// index space — a contiguous span of micro-shards — on the in-process
/// engine, ship the records back.
std::vector<std::uint8_t> handle_trial_shard(
    const exec::wire::ShardTask& task) {
  TrialShardConfig config = decode_blob(task.blob);
  TrialRunner runner(config.world, config.case_count);
  const exec::wire::ShardRange range =
      exec::wire::task_range(runner.batch_count(), task);
  return encode_records(
      runner.run_batches(config.seed, range.begin, range.end));
}

const exec::ShardWorkloadRegistration kRegistration{kTrialShardWorkload,
                                                    &handle_trial_shard};

/// Ascending-shard merge shared by the process-sharded and clustered
/// paths; both transports return payloads in shard order, so the merged
/// record stream is transport-independent.
TrialData merge_trial_payloads(
    const TabularWorld& world, std::uint64_t case_count,
    const std::vector<std::vector<std::uint8_t>>& payloads) {
  TrialData data;
  data.class_names = world.class_names();
  data.records.reserve(static_cast<std::size_t>(case_count));
  for (const auto& payload : payloads) {
    decode_records_into(payload, data.records, data.class_names.size());
  }
  if (data.records.size() != case_count) {
    throw exec::wire::ProtocolError(
        "sim.trial: merged record count mismatch");
  }
  return data;
}

}  // namespace

TrialData run_trial_sharded(const TabularWorld& world,
                            std::uint64_t case_count, std::uint64_t seed,
                            const exec::ShardOptions& options) {
  const exec::ShardRunner runner(options);
  if (runner.resolved_shards() == 1) {
    // No fan-out: run on the in-process engine directly (same output).
    TabularWorld local(world.model(), world.profile());
    return TrialRunner(local, case_count)
        .run(seed, options.threads ? exec::Config{options.threads}
                                   : exec::default_config());
  }
  HMDIV_OBS_SCOPED_TIMER("sim.trial.shard_ns");
  const std::vector<std::uint8_t> blob = encode_blob(world, case_count, seed);
  return merge_trial_payloads(world, case_count,
                              runner.run(kTrialShardWorkload, blob));
}

TrialData run_trial_clustered(const TabularWorld& world,
                              std::uint64_t case_count, std::uint64_t seed,
                              exec::ClusterRunner& cluster) {
  HMDIV_OBS_SCOPED_TIMER("sim.trial.cluster_ns");
  const std::vector<std::uint8_t> blob = encode_blob(world, case_count, seed);
  // Items hint: batches are the substream grain, so the coordinator can
  // micro-task at batch granularity.
  const std::uint64_t batches =
      (case_count + TrialRunner::kBatchSize - 1) / TrialRunner::kBatchSize;
  return merge_trial_payloads(world, case_count,
                              cluster.run(kTrialShardWorkload, blob, batches));
}

void ensure_trial_shard_registered() {}

}  // namespace hmdiv::sim
