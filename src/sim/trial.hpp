// Trial protocol and data collection.
//
// A `World` is anything that can simulate the composite human-machine
// system on one demand and report the observable outcome: which class the
// case belonged to, whether the machine failed (no prompt on a cancer) and
// whether the human — hence the system — failed (no recall). A controlled
// trial (`TrialRunner`) presents `case_count` demands drawn from the
// trial's (enriched) profile and records per-case outcomes; the estimator
// (estimation.hpp) then fits the paper's model parameters from the records.
#pragma once

#include <cstdint>
#include <vector>

#include "core/demand_profile.hpp"
#include "stats/rng.hpp"

namespace hmdiv::sim {

/// The observable outcome of one demand.
struct CaseRecord {
  std::size_t class_index = 0;
  bool machine_failed = false;
  bool human_failed = false;
};

/// Interface: a simulatable composite human-machine system.
class World {
 public:
  virtual ~World() = default;

  /// Simulates one demand end-to-end.
  [[nodiscard]] virtual CaseRecord simulate_case(stats::Rng& rng) = 0;

  /// Number of demand classes the world can emit.
  [[nodiscard]] virtual std::size_t class_count() const = 0;

  /// Class names, aligned with CaseRecord::class_index.
  [[nodiscard]] virtual const std::vector<std::string>& class_names()
      const = 0;
};

/// Collected trial data.
struct TrialData {
  std::vector<std::string> class_names;
  std::vector<CaseRecord> records;

  /// Observed fraction of system failures.
  [[nodiscard]] double observed_failure_rate() const;
  /// Observed fraction of machine failures.
  [[nodiscard]] double observed_machine_failure_rate() const;
  /// Observed class counts (length = class_names.size()).
  [[nodiscard]] std::vector<std::uint64_t> class_histogram() const;
};

/// Runs a fixed-size trial against a world.
class TrialRunner {
 public:
  /// `case_count` demands; the world defines the demand profile.
  TrialRunner(World& world, std::uint64_t case_count);

  /// Runs the whole trial; deterministic in `rng`.
  [[nodiscard]] TrialData run(stats::Rng& rng);

 private:
  World& world_;
  std::uint64_t case_count_;
};

}  // namespace hmdiv::sim
