// Trial protocol and data collection.
//
// A `World` is anything that can simulate the composite human-machine
// system on one demand and report the observable outcome: which class the
// case belonged to, whether the machine failed (no prompt on a cancer) and
// whether the human — hence the system — failed (no recall). A controlled
// trial (`TrialRunner`) presents `case_count` demands drawn from the
// trial's (enriched) profile and records per-case outcomes; the estimator
// (estimation.hpp) then fits the paper's model parameters from the records.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/demand_profile.hpp"
#include "exec/config.hpp"
#include "stats/rng.hpp"

namespace hmdiv::sim {

/// The observable outcome of one demand.
struct CaseRecord {
  std::size_t class_index = 0;
  bool machine_failed = false;
  bool human_failed = false;
};

/// Interface: a simulatable composite human-machine system.
class World {
 public:
  virtual ~World() = default;

  /// Simulates one demand end-to-end. This scalar path is the *reference
  /// implementation* of the world's case distribution: batched overrides
  /// may consume randomness in a different order, but must produce the
  /// same distribution (checked by the distributional-equivalence tests
  /// in test_batch_sim.cpp).
  [[nodiscard]] virtual CaseRecord simulate_case(stats::Rng& rng) = 0;

  /// Simulates out.size() consecutive demands into `out`. The default
  /// loops over simulate_case; worlds with a flat-table representation
  /// override it with a batch-granular kernel (probability tables hoisted
  /// out of the loop, bulk RNG, alias-method class sampling — see
  /// DESIGN.md §8). An override is the *canonical* draw stream for that
  /// world's batched trials: TrialRunner::run(seed, config) always goes
  /// through simulate_batch, so there is exactly one golden stream per
  /// (world, seed, batch-layout) regardless of thread count.
  virtual void simulate_batch(std::span<CaseRecord> out, stats::Rng& rng);

  /// Number of demand classes the world can emit.
  [[nodiscard]] virtual std::size_t class_count() const = 0;

  /// Class names, aligned with CaseRecord::class_index.
  [[nodiscard]] virtual const std::vector<std::string>& class_names()
      const = 0;

  /// Returns an independent copy of this world, or nullptr when the world
  /// cannot be duplicated. Parallel trial runs give each case batch its
  /// own clone (so per-run state such as reader adaptation restarts per
  /// batch); worlds without a clone fall back to a single-threaded run.
  [[nodiscard]] virtual std::unique_ptr<World> clone() const {
    return nullptr;
  }

  /// True iff clone() would return non-null. The default probes clone()
  /// itself (allocate + destroy); worlds that implement clone() should
  /// override this with a constant so TrialRunner's capability check is
  /// free on every run.
  [[nodiscard]] virtual bool cloneable() const { return clone() != nullptr; }

  /// True iff simulating cases leaves no observable state behind, i.e.
  /// simulate_batch on a clone yields the same records whether the clone
  /// is fresh or has already simulated other batches. Stateless worlds let
  /// TrialRunner reuse a small per-run pool of clones across batches
  /// instead of allocating one clone per batch; stateful worlds (e.g. an
  /// adapting reader) keep the clone-per-batch scheme so every batch
  /// restarts from this world's state. Either way the output is
  /// bit-identical at any thread count.
  [[nodiscard]] virtual bool stateless() const { return false; }
};

/// Collected trial data.
struct TrialData {
  std::vector<std::string> class_names;
  std::vector<CaseRecord> records;

  /// Observed fraction of system failures.
  [[nodiscard]] double observed_failure_rate() const;
  /// Observed fraction of machine failures.
  [[nodiscard]] double observed_machine_failure_rate() const;
  /// Observed class counts (length = class_names.size()).
  [[nodiscard]] std::vector<std::uint64_t> class_histogram() const;
};

/// Runs a fixed-size trial against a world.
class TrialRunner {
 public:
  /// Cases per batch in the parallel run. Fixed (never derived from the
  /// thread count) so the batch decomposition — and hence the output — is
  /// identical at any parallelism.
  static constexpr std::uint64_t kBatchSize = 4096;

  /// `case_count` demands; the world defines the demand profile.
  TrialRunner(World& world, std::uint64_t case_count);

  /// Runs the whole trial on one thread; deterministic in `rng`. Cases
  /// share the single stream, and stateful worlds (e.g. an adapting
  /// reader) evolve across the entire run. This is the scalar *reference*
  /// path: it draws through simulate_case only, never simulate_batch, so
  /// it defines the distribution the batched path is tested against.
  [[nodiscard]] TrialData run(stats::Rng& rng);

  /// Runs the trial in fixed batches of kBatchSize cases on the exec
  /// engine: batch b runs the world's batched kernel (simulate_batch) with
  /// substream Rng(seed, b), and records are merged in case order —
  /// bit-identical output for any thread count. Stateless worlds draw
  /// their clones from a reused per-run pool; stateful cloneable worlds
  /// get a fresh clone per batch; worlds whose clone() is null run the
  /// same batched substream scheme serially on the shared world instead.
  [[nodiscard]] TrialData run(
      std::uint64_t seed,
      const exec::Config& config = exec::default_config());

  /// Total fixed-size batches a run of this trial decomposes into —
  /// ceil(case_count / kBatchSize), the substream index space the shard
  /// engine partitions.
  [[nodiscard]] std::uint64_t batch_count() const;

  /// Runs only batches [first_batch, last_batch) of the batched scheme and
  /// returns their records in case order. run_batches(seed, 0,
  /// batch_count()) reproduces run(seed, ...)'s records exactly; a
  /// partition of the batch range reproduces them piecewise — each batch
  /// draws from substream Rng(seed, batch) wherever it executes, which is
  /// what lets shard workers compute disjoint slices that concatenate into
  /// the bit-identical single-process trial.
  [[nodiscard]] std::vector<CaseRecord> run_batches(
      std::uint64_t seed, std::uint64_t first_batch, std::uint64_t last_batch,
      const exec::Config& config = exec::default_config());

 private:
  World& world_;
  std::uint64_t case_count_;
};

}  // namespace hmdiv::sim
