#include "sim/two_reader_world.hpp"

#include <stdexcept>

#include "stats/summary.hpp"

namespace hmdiv::sim {

TwoReaderWorld::TwoReaderWorld(CaseGenerator generator, CadtModel cadt,
                               ReaderModel reader_a, ReaderModel reader_b)
    : generator_(std::move(generator)),
      cadt_(std::move(cadt)),
      reader_a_(std::move(reader_a)),
      reader_b_(std::move(reader_b)) {}

TwoReaderRecord TwoReaderWorld::simulate_case(stats::Rng& rng) {
  const Case demand = generator_.generate(rng);
  const bool prompted = cadt_.prompts(demand, rng);
  TwoReaderRecord r;
  r.class_index = demand.class_index;
  r.machine_failed = !prompted;
  // Given the case and the shared prompt state, the readers' perceptual
  // processes are independent — the correlation between them at system
  // level comes entirely from sharing the demand and the machine outcome.
  r.reader_a_failed = rng.bernoulli(
      reader_a_.failure_probability(demand.human_difficulty, prompted));
  r.reader_b_failed = rng.bernoulli(
      reader_b_.failure_probability(demand.human_difficulty, prompted));
  return r;
}

std::vector<TwoReaderRecord> TwoReaderWorld::run(std::uint64_t cases,
                                                 stats::Rng& rng) {
  if (cases == 0) throw std::invalid_argument("TwoReaderWorld: cases == 0");
  std::vector<TwoReaderRecord> out;
  out.reserve(cases);
  for (std::uint64_t i = 0; i < cases; ++i) out.push_back(simulate_case(rng));
  return out;
}

core::TwoReadersWithCadtModel TwoReaderWorld::ground_truth(
    stats::Rng& rng, std::size_t samples_per_class) const {
  if (samples_per_class == 0) {
    throw std::invalid_argument("TwoReaderWorld: samples_per_class == 0");
  }
  std::vector<double> p_mf(class_count());
  std::vector<core::ReaderConditional> a(class_count());
  std::vector<core::ReaderConditional> b(class_count());
  for (std::size_t x = 0; x < class_count(); ++x) {
    stats::KahanAccumulator mf, ms;
    stats::KahanAccumulator a_mf, a_ms, b_mf, b_ms;
    for (std::size_t i = 0; i < samples_per_class; ++i) {
      const auto [human, machine] = generator_.sample_difficulties(x, rng);
      const double p_prompt = cadt_.prompt_probability(machine);
      mf.add(1.0 - p_prompt);
      ms.add(p_prompt);
      a_mf.add((1.0 - p_prompt) * reader_a_.failure_probability(human, false));
      a_ms.add(p_prompt * reader_a_.failure_probability(human, true));
      b_mf.add((1.0 - p_prompt) * reader_b_.failure_probability(human, false));
      b_ms.add(p_prompt * reader_b_.failure_probability(human, true));
    }
    const double n = static_cast<double>(samples_per_class);
    p_mf[x] = mf.total() / n;
    a[x].p_fail_given_machine_fails =
        mf.total() > 0.0 ? a_mf.total() / mf.total() : 0.0;
    a[x].p_fail_given_machine_succeeds =
        ms.total() > 0.0 ? a_ms.total() / ms.total() : 0.0;
    b[x].p_fail_given_machine_fails =
        mf.total() > 0.0 ? b_mf.total() / mf.total() : 0.0;
    b[x].p_fail_given_machine_succeeds =
        ms.total() > 0.0 ? b_ms.total() / ms.total() : 0.0;
  }
  return core::TwoReadersWithCadtModel(class_names(), std::move(p_mf),
                                       std::move(a), std::move(b));
}

double TwoReaderWorld::exact_system_failure(
    const core::DemandProfile& profile, stats::Rng& rng,
    std::size_t samples_per_class) const {
  if (samples_per_class == 0) {
    throw std::invalid_argument("TwoReaderWorld: samples_per_class == 0");
  }
  if (profile.class_names() != class_names()) {
    throw std::invalid_argument(
        "TwoReaderWorld: profile classes do not match world classes");
  }
  double total = 0.0;
  for (std::size_t x = 0; x < class_count(); ++x) {
    stats::KahanAccumulator joint;
    for (std::size_t i = 0; i < samples_per_class; ++i) {
      const auto [human, machine] = generator_.sample_difficulties(x, rng);
      const double p_prompt = cadt_.prompt_probability(machine);
      joint.add(p_prompt * reader_a_.failure_probability(human, true) *
                    reader_b_.failure_probability(human, true) +
                (1.0 - p_prompt) *
                    reader_a_.failure_probability(human, false) *
                    reader_b_.failure_probability(human, false));
    }
    total += profile[x] * joint.total() /
             static_cast<double>(samples_per_class);
  }
  return total;
}

core::TwoReadersWithCadtModel TwoReaderEstimate::fitted_model() const {
  return core::TwoReadersWithCadtModel(class_names, p_machine_fails, reader_a,
                                       reader_b);
}

TwoReaderEstimate estimate_two_reader_model(
    const std::vector<TwoReaderRecord>& records,
    const std::vector<std::string>& class_names) {
  const std::size_t k = class_names.size();
  if (k == 0) {
    throw std::invalid_argument("estimate_two_reader_model: no classes");
  }
  struct Counts {
    std::uint64_t cases = 0, mf = 0;
    std::uint64_t a_mf = 0, a_ms = 0, b_mf = 0, b_ms = 0;
  };
  std::vector<Counts> counts(k);
  std::uint64_t system_failures = 0;
  for (const auto& r : records) {
    if (r.class_index >= k) {
      throw std::invalid_argument(
          "estimate_two_reader_model: record class out of range");
    }
    Counts& c = counts[r.class_index];
    ++c.cases;
    if (r.machine_failed) {
      ++c.mf;
      c.a_mf += r.reader_a_failed ? 1 : 0;
      c.b_mf += r.reader_b_failed ? 1 : 0;
    } else {
      c.a_ms += r.reader_a_failed ? 1 : 0;
      c.b_ms += r.reader_b_failed ? 1 : 0;
    }
    system_failures += r.system_failed() ? 1 : 0;
  }

  TwoReaderEstimate out;
  out.class_names = class_names;
  out.p_machine_fails.resize(k);
  out.reader_a.resize(k);
  out.reader_b.resize(k);
  for (std::size_t x = 0; x < k; ++x) {
    const Counts& c = counts[x];
    if (c.cases == 0) {
      throw std::invalid_argument("estimate_two_reader_model: class '" +
                                  class_names[x] + "' has no cases");
    }
    const std::uint64_t ms = c.cases - c.mf;
    auto ratio = [](std::uint64_t num, std::uint64_t den) {
      return den == 0 ? 0.5 : static_cast<double>(num) /
                                  static_cast<double>(den);
    };
    out.p_machine_fails[x] = static_cast<double>(c.mf) /
                             static_cast<double>(c.cases);
    out.reader_a[x].p_fail_given_machine_fails = ratio(c.a_mf, c.mf);
    out.reader_a[x].p_fail_given_machine_succeeds = ratio(c.a_ms, ms);
    out.reader_b[x].p_fail_given_machine_fails = ratio(c.b_mf, c.mf);
    out.reader_b[x].p_fail_given_machine_succeeds = ratio(c.b_ms, ms);
  }
  out.observed_system_failure =
      records.empty() ? 0.0
                      : static_cast<double>(system_failures) /
                            static_cast<double>(records.size());
  return out;
}

}  // namespace hmdiv::sim
