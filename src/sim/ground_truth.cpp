#include "sim/ground_truth.hpp"

#include <stdexcept>

#include "stats/summary.hpp"

namespace hmdiv::sim {

core::SequentialModel ground_truth_model(const FeatureWorld& world,
                                         stats::Rng& rng,
                                         std::size_t samples_per_class) {
  if (samples_per_class == 0) {
    throw std::invalid_argument("ground_truth_model: samples_per_class == 0");
  }
  const CaseGenerator& generator = world.generator();
  const CadtModel& cadt = world.cadt();
  const ReaderModel& reader = world.reader();

  std::vector<core::ClassConditional> params;
  params.reserve(world.class_count());
  for (std::size_t x = 0; x < world.class_count(); ++x) {
    stats::KahanAccumulator sum_mf, sum_mf_hf, sum_ms, sum_ms_hf;
    for (std::size_t i = 0; i < samples_per_class; ++i) {
      const auto [human_difficulty, machine_difficulty] =
          generator.sample_difficulties(x, rng);
      const double p_prompt = cadt.prompt_probability(machine_difficulty);
      const double p_fail_prompted =
          reader.failure_probability(human_difficulty, /*prompted=*/true);
      const double p_fail_silent =
          reader.failure_probability(human_difficulty, /*prompted=*/false);
      sum_mf.add(1.0 - p_prompt);
      sum_mf_hf.add((1.0 - p_prompt) * p_fail_silent);
      sum_ms.add(p_prompt);
      sum_ms_hf.add(p_prompt * p_fail_prompted);
    }
    core::ClassConditional c;
    const double n = static_cast<double>(samples_per_class);
    c.p_machine_fails = sum_mf.total() / n;
    c.p_human_fails_given_machine_fails =
        sum_mf.total() > 0.0 ? sum_mf_hf.total() / sum_mf.total() : 0.0;
    c.p_human_fails_given_machine_succeeds =
        sum_ms.total() > 0.0 ? sum_ms_hf.total() / sum_ms.total() : 0.0;
    params.push_back(c);
  }
  return core::SequentialModel(world.class_names(), std::move(params));
}

}  // namespace hmdiv::sim
