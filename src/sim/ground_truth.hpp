// Ground-truth extraction for the mechanistic world.
//
// FeatureWorld's class-conditional parameters {PMf(x), PHf|Mf(x),
// PHf|Ms(x)} are emergent from continuous difficulty distributions. This
// module computes them by Rao-Blackwellised Monte-Carlo integration:
// difficulties are sampled, but machine and reader outcomes enter through
// their *analytic* conditional probabilities, so the estimates converge
// O(1/sqrt(N)) with a small constant and no Bernoulli noise. The result is
// a core::SequentialModel whose Eq. (8) predictions can be checked against
// end-to-end simulated failure rates — the repository's strongest
// integration test.
//
// Note: the reader is taken at its *current* reliance state (adaptation is
// not advanced). For adapting readers, ground truth is a snapshot.
#pragma once

#include "core/sequential_model.hpp"
#include "sim/feature_world.hpp"
#include "stats/rng.hpp"

namespace hmdiv::sim {

/// Computes the emergent sequential-model parameters of `world`, using
/// `samples_per_class` difficulty draws per class.
[[nodiscard]] core::SequentialModel ground_truth_model(
    const FeatureWorld& world, stats::Rng& rng,
    std::size_t samples_per_class = 200000);

}  // namespace hmdiv::sim
