// Synthetic screening cases.
//
// The paper's demands are sets of X-ray films about one patient; their
// relevant property for the models is *difficulty* — for the human and for
// the machine, separately, and possibly correlated. A synthetic `Case`
// therefore carries two latent difficulty scores:
//
//   human_difficulty   — how hard the relevant features are for a reader to
//                        notice and interpret (subtlety, breast density,
//                        lesion size all fold into this scalar);
//   machine_difficulty — how hard they are for the pattern-matching
//                        algorithms (film artefacts, atypical textures).
//
// The correlation between the two within a class is the diversity knob: at
// +1 the machine is weak exactly where the human is (no diversity), at −1
// the machine is strongest where the human is weakest (ideal diversity).
// This is a faithful executable version of the paper's "difficulty
// function" discussion (Sections 2.2, 4, 6.2).
#pragma once

#include <cstdint>

namespace hmdiv::sim {

/// One synthetic screening demand.
struct Case {
  std::uint64_t id = 0;
  /// Which class of cases (index into the generating profile).
  std::size_t class_index = 0;
  /// Ground truth: does this patient have cancer? (False-negative analysis
  /// uses cancer cases; false-positive analysis uses non-cancer ones.)
  bool has_cancer = true;
  /// Latent difficulty for the human reader (standard-normal scale; higher
  /// is harder).
  double human_difficulty = 0.0;
  /// Latent difficulty for the machine's detection algorithms.
  double machine_difficulty = 0.0;
};

}  // namespace hmdiv::sim
