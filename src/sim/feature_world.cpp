#include "sim/feature_world.hpp"

#include <stdexcept>

namespace hmdiv::sim {

FeatureWorld::FeatureWorld(CaseGenerator generator, CadtModel cadt,
                           ReaderModel reader)
    : generator_(std::move(generator)),
      cadt_(std::move(cadt)),
      reader_(std::move(reader)) {}

std::size_t FeatureWorld::class_count() const {
  return generator_.class_count();
}

const std::vector<std::string>& FeatureWorld::class_names() const {
  return generator_.profile().class_names();
}

FeatureWorld::DetailedOutcome FeatureWorld::simulate_detailed(
    stats::Rng& rng) {
  DetailedOutcome out;
  out.demand = generator_.generate(rng);
  out.machine_prompted = cadt_.prompts(out.demand, rng);

  // Couple the reader's detection to a single latent uniform so that the
  // "did the reader find it unaided?" event — the only signal available for
  // reliance adaptation — is consistent with the prompted/unprompted
  // detection probabilities (both are monotone transforms of the unaided
  // probability).
  const double u = rng.uniform();
  const double p_unaided =
      reader_.unaided_detection_probability(out.demand.human_difficulty);
  const bool detected_unaided = u < p_unaided;
  if (out.machine_prompted) {
    // Residual misses recovered with probability prompt_effectiveness.
    out.reader_detected =
        detected_unaided ||
        rng.bernoulli(reader_.config().prompt_effectiveness);
  } else {
    // A reliant reader skips unprompted regions with probability reliance.
    out.reader_detected =
        detected_unaided && !rng.bernoulli(reader_.reliance());
  }
  const bool misclassified =
      out.reader_detected &&
      rng.bernoulli(reader_.misclassification_probability(
          out.demand.human_difficulty));
  out.recalled = out.reader_detected && !misclassified;

  if (adaptation_enabled_) {
    reader_.observe(out.machine_prompted, detected_unaided);
  }
  return out;
}

CaseRecord FeatureWorld::simulate_case(stats::Rng& rng) {
  const DetailedOutcome detail = simulate_detailed(rng);
  CaseRecord r;
  r.class_index = detail.demand.class_index;
  r.machine_failed = !detail.machine_prompted;
  r.human_failed = !detail.recalled;
  return r;
}

void FeatureWorld::simulate_batch(std::span<CaseRecord> out,
                                  stats::Rng& rng) {
  // Qualified call: no per-case virtual dispatch, same stream as scalar.
  for (CaseRecord& record : out) record = FeatureWorld::simulate_case(rng);
}

FeatureWorld reference_feature_world(
    std::optional<core::DemandProfile> profile) {
  std::vector<CaseClassSpec> specs(2);
  specs[0].name = "easy";
  specs[0].human_difficulty_mean = -0.6;
  specs[0].human_difficulty_sigma = 0.8;
  specs[0].machine_difficulty_mean = -0.9;
  specs[0].machine_difficulty_sigma = 0.8;
  specs[0].difficulty_correlation = 0.3;

  specs[1].name = "difficult";
  specs[1].human_difficulty_mean = 1.4;
  specs[1].human_difficulty_sigma = 0.9;
  specs[1].machine_difficulty_mean = 1.1;
  specs[1].machine_difficulty_sigma = 1.0;
  specs[1].difficulty_correlation = 0.55;

  core::DemandProfile mix = profile.has_value()
                                ? std::move(*profile)
                                : core::DemandProfile(
                                      {"easy", "difficult"}, {0.8, 0.2});
  CaseGenerator generator(std::move(specs), std::move(mix));

  CadtModel::Config cadt_config;
  cadt_config.capability = 1.6;
  cadt_config.sensitivity_slope = 1.4;
  CadtModel cadt(cadt_config);

  ReaderModel::Config reader_config;
  reader_config.skill = 1.2;
  reader_config.detection_slope = 1.3;
  reader_config.prompt_effectiveness = 0.7;
  reader_config.initial_reliance = 0.15;
  reader_config.misclassification_base = 0.06;
  reader_config.misclassification_slope = 0.07;
  reader_config.misclassification_max = 0.5;
  ReaderModel reader(reader_config);

  return FeatureWorld(std::move(generator), std::move(cadt),
                      std::move(reader));
}

}  // namespace hmdiv::sim
