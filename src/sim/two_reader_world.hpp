// Simulation of the "two readers assisted by a CADT" configuration named
// in the paper's Conclusions: the machine processes the case once; both
// readers independently interpret the case *plus the same prompts*; the
// programme recalls if either reader recalls.
//
// Emits per-case records with both readers' outcomes so the
// TwoReadersWithCadtModel's parameters — including the between-reader
// correlation induced by the shared machine — can be estimated and checked
// against the closed form.
#pragma once

#include <cstdint>
#include <vector>

#include "core/multi_reader.hpp"
#include "sim/cadt.hpp"
#include "sim/case_generator.hpp"
#include "sim/reader.hpp"
#include "stats/rng.hpp"

namespace hmdiv::sim {

/// Observable outcome of one demand under two readers + one CADT.
struct TwoReaderRecord {
  std::size_t class_index = 0;
  bool machine_failed = false;
  bool reader_a_failed = false;
  bool reader_b_failed = false;
  /// System FN iff both readers fail (recall-if-either rule).
  [[nodiscard]] bool system_failed() const {
    return reader_a_failed && reader_b_failed;
  }
};

/// Two static readers sharing one machine over a case stream.
class TwoReaderWorld {
 public:
  TwoReaderWorld(CaseGenerator generator, CadtModel cadt, ReaderModel reader_a,
                 ReaderModel reader_b);

  [[nodiscard]] std::size_t class_count() const {
    return generator_.class_count();
  }
  [[nodiscard]] const std::vector<std::string>& class_names() const {
    return generator_.profile().class_names();
  }

  [[nodiscard]] TwoReaderRecord simulate_case(stats::Rng& rng);
  [[nodiscard]] std::vector<TwoReaderRecord> run(std::uint64_t cases,
                                                 stats::Rng& rng);

  /// The conditional-independence model of this world (readers independent
  /// given class + machine outcome), by Rao-Blackwellised integration over
  /// the difficulty distributions (readers taken at their current reliance
  /// states). NOTE: this is the model an analyst following the paper's
  /// formalism would write down — and it *underestimates* the pair's joint
  /// failure probability, because within a class both readers also share
  /// the same residual case difficulty. Compare with
  /// exact_system_failure(); the gap is the within-class analogue of the
  /// paper's Eq. (3) covariance.
  [[nodiscard]] core::TwoReadersWithCadtModel ground_truth(
      stats::Rng& rng, std::size_t samples_per_class = 200000) const;

  /// The exact system (both readers fail) probability under `profile`, by
  /// integrating the *joint* conditional failure over the shared latent
  /// difficulty: E_h[ pPrompt·pA(h,t)·pB(h,t) + (1−pPrompt)·pA(h,f)·pB(h,f) ].
  [[nodiscard]] double exact_system_failure(
      const core::DemandProfile& profile, stats::Rng& rng,
      std::size_t samples_per_class = 200000) const;

 private:
  CaseGenerator generator_;
  CadtModel cadt_;
  ReaderModel reader_a_;
  ReaderModel reader_b_;
};

/// Estimated per-class parameters of the two-reader system.
struct TwoReaderEstimate {
  std::vector<std::string> class_names;
  std::vector<double> p_machine_fails;
  std::vector<core::ReaderConditional> reader_a;
  std::vector<core::ReaderConditional> reader_b;
  /// Observed system (both-fail) rate, overall.
  double observed_system_failure = 0.0;

  [[nodiscard]] core::TwoReadersWithCadtModel fitted_model() const;
};

/// Maximum-likelihood proportions from two-reader records. Throws if any
/// class has no cases.
[[nodiscard]] TwoReaderEstimate estimate_two_reader_model(
    const std::vector<TwoReaderRecord>& records,
    const std::vector<std::string>& class_names);

}  // namespace hmdiv::sim
