// Simulated computer-aided detection tool (CADT).
//
// Substitutes the proprietary prompting tool of the paper's case study. The
// detector's probability of prompting the relevant features of a cancer
// case is a logistic function of (capability − machine_difficulty); the
// `sensitivity_slope` controls how sharply performance degrades with
// difficulty, and `threshold_shift` moves the operating point (negative
// shift = more eager prompting = fewer false negatives but more false
// positives elsewhere). This reproduces the tunable FN/FP character the
// paper attributes to detection algorithms.
#pragma once

#include "sim/case.hpp"
#include "stats/rng.hpp"

namespace hmdiv::sim {

/// Immutable-parameter CADT simulator.
class CadtModel {
 public:
  struct Config {
    /// Overall competence of the detection algorithms.
    double capability = 1.5;
    /// Steepness of the logistic psychometric curve (> 0).
    double sensitivity_slope = 1.5;
    /// Operating-point shift added to the difficulty before comparison;
    /// negative = more eager prompting.
    double threshold_shift = 0.0;
  };

  explicit CadtModel(Config config);

  [[nodiscard]] const Config& config() const { return config_; }

  /// P(the CADT prompts the relevant features | machine_difficulty).
  [[nodiscard]] double prompt_probability(double machine_difficulty) const;

  /// P(false negative | machine_difficulty) = 1 − prompt_probability.
  [[nodiscard]] double failure_probability(double machine_difficulty) const {
    return 1.0 - prompt_probability(machine_difficulty);
  }

  /// Simulates the CADT on one case: true = prompted (machine success).
  [[nodiscard]] bool prompts(const Case& c, stats::Rng& rng) const;

  /// Samples the detector's latent decision score for a case of the given
  /// machine difficulty: margin + logistic noise with scale
  /// 1/sensitivity_slope. The CADT prompts iff the score is positive, so
  /// P(sample_score > 0) == prompt_probability — scores expose the ROC
  /// behaviour of the detector (see core/roc.hpp).
  [[nodiscard]] double sample_score(double machine_difficulty,
                                    stats::Rng& rng) const;

  /// A copy with the operating point shifted by `delta` (added to
  /// threshold_shift): the "different tuning of the detection algorithms"
  /// of Section 5 item 4.
  [[nodiscard]] CadtModel with_threshold_shift(double delta) const;

  /// A copy with capability multiplied by `factor` (> 0): "better detection
  /// algorithms".
  [[nodiscard]] CadtModel with_capability_factor(double factor) const;

 private:
  Config config_;
};

}  // namespace hmdiv::sim
