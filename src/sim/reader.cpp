#include "sim/reader.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hmdiv::sim {

ReaderModel::ReaderModel(Config config)
    : config_(config), reliance_(config.initial_reliance) {
  if (!(config_.detection_slope > 0.0)) {
    throw std::invalid_argument("ReaderModel: detection_slope must be > 0");
  }
  if (!(config_.prompt_effectiveness >= 0.0 &&
        config_.prompt_effectiveness <= 1.0)) {
    throw std::invalid_argument(
        "ReaderModel: prompt_effectiveness outside [0,1]");
  }
  if (!(config_.initial_reliance >= 0.0 && config_.initial_reliance < 1.0)) {
    throw std::invalid_argument("ReaderModel: initial_reliance outside [0,1)");
  }
  if (config_.misclassification_base < 0.0 ||
      config_.misclassification_slope < 0.0 ||
      !(config_.misclassification_max >= 0.0 &&
        config_.misclassification_max <= 1.0)) {
    throw std::invalid_argument(
        "ReaderModel: invalid misclassification parameters");
  }
  if (config_.false_recall_base < 0.0 || config_.false_recall_slope < 0.0 ||
      !(config_.false_recall_max >= 0.0 && config_.false_recall_max <= 1.0) ||
      !(config_.prompt_recall_bias >= 0.0 &&
        config_.prompt_recall_bias <= 1.0)) {
    throw std::invalid_argument(
        "ReaderModel: invalid false-recall parameters");
  }
  if (!(config_.adaptation_rate >= 0.0 && config_.adaptation_rate <= 1.0)) {
    throw std::invalid_argument("ReaderModel: adaptation_rate outside [0,1]");
  }
  if (!(config_.reliance_floor >= 0.0 && config_.reliance_gain >= 0.0 &&
        config_.reliance_floor + config_.reliance_gain < 1.0)) {
    throw std::invalid_argument(
        "ReaderModel: reliance floor+gain must stay below 1");
  }
}

double ReaderModel::unaided_detection_probability(
    double human_difficulty) const {
  const double margin = config_.skill - human_difficulty;
  return 1.0 / (1.0 + std::exp(-config_.detection_slope * margin));
}

double ReaderModel::detection_probability(double human_difficulty,
                                          bool prompted) const {
  const double unaided = unaided_detection_probability(human_difficulty);
  if (prompted) {
    // The prompt directs attention to the features: only the residual miss
    // probability survives.
    return 1.0 - (1.0 - unaided) * (1.0 - config_.prompt_effectiveness);
  }
  // No prompt: a reliant reader searches un-prompted regions less.
  return unaided * (1.0 - reliance_);
}

double ReaderModel::misclassification_probability(
    double human_difficulty) const {
  return std::clamp(config_.misclassification_base +
                        config_.misclassification_slope * human_difficulty,
                    0.0, config_.misclassification_max);
}

double ReaderModel::failure_probability(double human_difficulty,
                                        bool prompted) const {
  const double p_detect = detection_probability(human_difficulty, prompted);
  const double p_misclass = misclassification_probability(human_difficulty);
  // Fail by missing the features, or by detecting and misclassifying.
  return (1.0 - p_detect) + p_detect * p_misclass;
}

double ReaderModel::false_recall_probability(double suspiciousness,
                                             bool prompted) const {
  const double unaided =
      std::clamp(config_.false_recall_base +
                     config_.false_recall_slope * suspiciousness,
                 0.0, config_.false_recall_max);
  if (!prompted) return unaided;
  return 1.0 - (1.0 - unaided) * (1.0 - config_.prompt_recall_bias);
}

ReaderDecision ReaderModel::decide(const Case& c, bool prompted,
                                   stats::Rng& rng) const {
  ReaderDecision out;
  out.detected =
      rng.bernoulli(detection_probability(c.human_difficulty, prompted));
  out.recalled =
      out.detected &&
      !rng.bernoulli(misclassification_probability(c.human_difficulty));
  return out;
}

void ReaderModel::observe(bool machine_prompted,
                          bool reader_detected_unaided) {
  if (config_.adaptation_rate <= 0.0) return;
  // The reader can only judge the machine on cases where they themselves
  // found the features: prompt present = machine looked useful, prompt
  // absent = a visible machine miss. Silent cases the reader also missed
  // teach them nothing.
  if (reader_detected_unaided) {
    const double signal = machine_prompted ? 1.0 : 0.0;
    perceived_reliability_ += config_.adaptation_rate *
                              (signal - perceived_reliability_);
  }
  const double target =
      config_.reliance_floor + config_.reliance_gain * perceived_reliability_;
  reliance_ += config_.adaptation_rate * (target - reliance_);
  reliance_ = std::clamp(reliance_, 0.0, 0.999);
}

ReaderModel ReaderModel::with_skill_factor(double factor) const {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("ReaderModel: skill factor must be > 0");
  }
  Config modified = config_;
  modified.skill *= factor;
  ReaderModel out(modified);
  out.reliance_ = reliance_;
  out.perceived_reliability_ = perceived_reliability_;
  return out;
}

ReaderModel ReaderModel::with_reliance(double reliance) const {
  if (!(reliance >= 0.0 && reliance < 1.0)) {
    throw std::invalid_argument("ReaderModel: reliance outside [0,1)");
  }
  ReaderModel out(config_);
  out.reliance_ = reliance;
  out.perceived_reliability_ = perceived_reliability_;
  return out;
}

}  // namespace hmdiv::sim
