#include "sim/case_generator.hpp"

#include <cmath>
#include <stdexcept>

namespace hmdiv::sim {

CaseGenerator::CaseGenerator(std::vector<CaseClassSpec> specs,
                             core::DemandProfile profile)
    : specs_(std::move(specs)), profile_(std::move(profile)) {
  if (specs_.size() != profile_.class_count()) {
    throw std::invalid_argument(
        "CaseGenerator: one spec per profile class required");
  }
  for (std::size_t x = 0; x < specs_.size(); ++x) {
    const CaseClassSpec& s = specs_[x];
    if (s.name != profile_.class_names()[x]) {
      throw std::invalid_argument(
          "CaseGenerator: spec names must match profile class names");
    }
    if (!(s.human_difficulty_sigma >= 0.0) ||
        !(s.machine_difficulty_sigma >= 0.0)) {
      throw std::invalid_argument("CaseGenerator: sigmas must be >= 0");
    }
    if (!(s.difficulty_correlation >= -1.0 &&
          s.difficulty_correlation <= 1.0)) {
      throw std::invalid_argument(
          "CaseGenerator: correlation outside [-1,1]");
    }
  }
}

const CaseClassSpec& CaseGenerator::spec(std::size_t x) const {
  if (x >= specs_.size()) {
    throw std::invalid_argument("CaseGenerator: class index out of range");
  }
  return specs_[x];
}

std::pair<double, double> CaseGenerator::sample_difficulties(
    std::size_t class_index, stats::Rng& rng) const {
  const CaseClassSpec& s = spec(class_index);
  // Bivariate normal via Cholesky of [[1, rho], [rho, 1]].
  const double z1 = rng.normal();
  const double z2 = rng.normal();
  const double rho = s.difficulty_correlation;
  const double human = s.human_difficulty_mean + s.human_difficulty_sigma * z1;
  const double machine =
      s.machine_difficulty_mean +
      s.machine_difficulty_sigma *
          (rho * z1 + std::sqrt(1.0 - rho * rho) * z2);
  return {human, machine};
}

Case CaseGenerator::generate(stats::Rng& rng) {
  Case c;
  c.id = next_id_++;
  c.class_index = profile_.sample(rng);
  c.has_cancer = true;  // FN analysis: the generated stream is cancer cases.
  const auto [human, machine] = sample_difficulties(c.class_index, rng);
  c.human_difficulty = human;
  c.machine_difficulty = machine;
  return c;
}

CaseGenerator CaseGenerator::with_profile(core::DemandProfile profile) const {
  return CaseGenerator(specs_, std::move(profile));
}

}  // namespace hmdiv::sim
