#include "sim/cadt.hpp"

#include <cmath>
#include <stdexcept>

namespace hmdiv::sim {

CadtModel::CadtModel(Config config) : config_(config) {
  if (!(config_.sensitivity_slope > 0.0)) {
    throw std::invalid_argument("CadtModel: sensitivity_slope must be > 0");
  }
}

double CadtModel::prompt_probability(double machine_difficulty) const {
  const double margin =
      config_.capability - (machine_difficulty + config_.threshold_shift);
  return 1.0 / (1.0 + std::exp(-config_.sensitivity_slope * margin));
}

bool CadtModel::prompts(const Case& c, stats::Rng& rng) const {
  return rng.bernoulli(prompt_probability(c.machine_difficulty));
}

double CadtModel::sample_score(double machine_difficulty,
                               stats::Rng& rng) const {
  const double margin =
      config_.capability - (machine_difficulty + config_.threshold_shift);
  // Logistic(0, 1/slope) noise by inverse-CDF; u in (0,1) guaranteed by
  // nudging the endpoints.
  const double u = std::min(std::max(rng.uniform(), 1e-15), 1.0 - 1e-15);
  return margin + std::log(u / (1.0 - u)) / config_.sensitivity_slope;
}

CadtModel CadtModel::with_threshold_shift(double delta) const {
  Config modified = config_;
  modified.threshold_shift += delta;
  return CadtModel(modified);
}

CadtModel CadtModel::with_capability_factor(double factor) const {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("CadtModel: capability factor must be > 0");
  }
  Config modified = config_;
  modified.capability *= factor;
  return CadtModel(modified);
}

}  // namespace hmdiv::sim
