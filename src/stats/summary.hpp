// Summary statistics: compensated summation, streaming moments (Welford),
// and weighted means / covariances / correlations.
//
// The covariance helpers are central to the paper: Eq. (3) uses
// cov(pMf, pHmiss) over the demand profile, and Eq. (10) uses
// cov_x(PMf(x), t(x)). Weighted versions take the demand profile p(x) as
// the weight vector.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hmdiv::stats {

/// Kahan–Babuška compensated accumulator for long sums of small terms.
class KahanAccumulator {
 public:
  void add(double value) noexcept;
  [[nodiscard]] double total() const noexcept { return sum_ + compensation_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Streaming mean / variance / extrema (Welford's algorithm).
class OnlineStats {
 public:
  void add(double value) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  /// Unbiased sample variance; 0 when fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; throws on empty input.
[[nodiscard]] double mean(std::span<const double> values);

/// Unbiased sample variance; throws if fewer than two values.
[[nodiscard]] double sample_variance(std::span<const double> values);

/// Weighted mean sum(w_i x_i) / sum(w_i); weights must be non-negative and
/// not all zero.
[[nodiscard]] double weighted_mean(std::span<const double> values,
                                   std::span<const double> weights);

/// Population covariance under the probability weights `weights`
/// (normalised internally): E[xy] - E[x]E[y]. This is exactly the
/// cov_x(.,.) of the paper's Eqs. (3) and (10), with weights = demand
/// profile p(x).
[[nodiscard]] double weighted_covariance(std::span<const double> x,
                                         std::span<const double> y,
                                         std::span<const double> weights);

/// Weighted Pearson correlation; returns 0 when either variable is constant.
[[nodiscard]] double weighted_correlation(std::span<const double> x,
                                          std::span<const double> y,
                                          std::span<const double> weights);

/// Unweighted sample Pearson correlation; returns 0 for constant inputs.
[[nodiscard]] double correlation(std::span<const double> x,
                                 std::span<const double> y);

/// Quantile of an ascending-sorted sample with linear interpolation between
/// order statistics (type-7, the R/NumPy default). q in [0,1]; throws on
/// empty input, unsorted callers beware (not checked, O(1)).
[[nodiscard]] double sorted_quantile(std::span<const double> sorted, double q);

/// Sorts a copy of `values` and returns the requested quantiles.
[[nodiscard]] std::vector<double> quantiles(std::span<const double> values,
                                            std::span<const double> qs);

/// Selection-based multi-quantile extraction: partially orders `values`
/// in place (iterated nth_element over shrinking ranges) and writes the
/// type-7 (linear, R/NumPy default) quantile for each probability in `qs`
/// into `out`. `qs` must be ascending and within [0,1];
/// `out.size() == qs.size()`. O(n · |qs|) worst case but O(n + |qs| log n)
/// expected — no full sort. If any value is NaN, every output is NaN
/// (NaN propagates instead of sorting to an arbitrary end). Both the
/// bootstrap and the posterior-predictive interval paths use this routine,
/// so the interpolation convention cannot drift between them.
void quantiles(std::span<double> values, std::span<const double> qs,
               std::span<double> out);

}  // namespace hmdiv::stats
