// Beta–binomial modelling of over-dispersed failure counts.
//
// The paper stresses (Section 5, item 2) that readers "have varying levels
// of ability" — per-reader failure probabilities are not a single p but a
// distribution. A beta–binomial fit over per-reader failure counts exposes
// that heterogeneity: rho > 0 means genuine reader-to-reader variation
// beyond binomial sampling noise.
#pragma once

#include <cstdint>
#include <span>

namespace hmdiv::stats {

/// A group's observations: `failures` out of `trials` for one reader.
struct CountObservation {
  std::uint64_t failures = 0;
  std::uint64_t trials = 0;
};

/// Fitted beta-binomial parameters.
struct BetaBinomialFit {
  double alpha = 1.0;
  double beta = 1.0;
  /// Mean failure probability alpha / (alpha + beta).
  [[nodiscard]] double mean() const { return alpha / (alpha + beta); }
  /// Intra-class (over-dispersion) correlation 1 / (alpha + beta + 1);
  /// 0 => plain binomial, larger => more reader heterogeneity.
  [[nodiscard]] double rho() const { return 1.0 / (alpha + beta + 1.0); }
};

/// Log-likelihood of the observations under BetaBinomial(alpha, beta).
[[nodiscard]] double beta_binomial_log_likelihood(
    std::span<const CountObservation> observations, double alpha, double beta);

/// Method-of-moments fit; falls back to a near-binomial fit when the data
/// show no over-dispersion. Throws on empty input or all-zero trials.
[[nodiscard]] BetaBinomialFit fit_beta_binomial_moments(
    std::span<const CountObservation> observations);

/// Maximum-likelihood fit: coordinate search refining the moments fit.
[[nodiscard]] BetaBinomialFit fit_beta_binomial_mle(
    std::span<const CountObservation> observations);

}  // namespace hmdiv::stats
