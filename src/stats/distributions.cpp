#include "stats/distributions.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/rng.hpp"
#include "stats/special.hpp"

namespace hmdiv::stats {

double binomial_pmf(std::uint64_t n, double p, std::uint64_t k) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("binomial_pmf: p outside [0,1]");
  }
  if (k > n) return 0.0;
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = log_binomial_coefficient(n, k) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double binomial_cdf(std::uint64_t n, double p, std::uint64_t k) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("binomial_cdf: p outside [0,1]");
  }
  if (k >= n) return 1.0;
  // P(X <= k) = I_{1-p}(n-k, k+1).
  return regularized_incomplete_beta(static_cast<double>(n - k),
                                     static_cast<double>(k) + 1.0, 1.0 - p);
}

double beta_pdf(double a, double b, double x) {
  if (a <= 0.0 || b <= 0.0) throw std::invalid_argument("beta_pdf: a,b <= 0");
  if (x < 0.0 || x > 1.0) return 0.0;
  if (x == 0.0) return a < 1.0 ? HUGE_VAL : (a == 1.0 ? b : 0.0);
  if (x == 1.0) return b < 1.0 ? HUGE_VAL : (b == 1.0 ? a : 0.0);
  const double log_pdf = (a - 1.0) * std::log(x) + (b - 1.0) * std::log1p(-x) +
                         std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  return std::exp(log_pdf);
}

double beta_cdf(double a, double b, double x) {
  return regularized_incomplete_beta(a, b, x);
}

double beta_quantile(double a, double b, double p) {
  return inverse_regularized_incomplete_beta(a, b, p);
}

namespace {

/// Shared validation: finite, non-negative, sum within 1e-9 of 1. Returns
/// the probabilities untouched; the public constructor renormalises on top.
std::vector<double> checked_probabilities(std::vector<double> probabilities) {
  if (probabilities.empty()) {
    throw std::invalid_argument("DiscreteDistribution: empty");
  }
  double total = 0.0;
  for (const double p : probabilities) {
    if (!(p >= 0.0) || !std::isfinite(p)) {
      throw std::invalid_argument(
          "DiscreteDistribution: probabilities must be finite and >= 0");
    }
    total += p;
  }
  if (std::fabs(total - 1.0) > 1e-9) {
    throw std::invalid_argument(
        "DiscreteDistribution: probabilities must sum to 1 (use from_weights "
        "to normalise)");
  }
  return probabilities;
}

std::vector<double> validated_probabilities(std::vector<double> probabilities) {
  probabilities = checked_probabilities(std::move(probabilities));
  double total = 0.0;
  for (const double p : probabilities) total += p;
  // Renormalise exactly so expectation() is a true weighted average.
  for (double& p : probabilities) p /= total;
  return probabilities;
}

}  // namespace

DiscreteDistribution::DiscreteDistribution(std::vector<double> probabilities)
    : probabilities_(validated_probabilities(std::move(probabilities))),
      alias_(probabilities_) {}

DiscreteDistribution::DiscreteDistribution(NormalisedTag,
                                           std::vector<double> probabilities)
    : probabilities_(checked_probabilities(std::move(probabilities))),
      alias_(probabilities_) {}

DiscreteDistribution DiscreteDistribution::from_normalised(
    std::vector<double> probabilities) {
  return DiscreteDistribution(NormalisedTag{}, std::move(probabilities));
}

DiscreteDistribution DiscreteDistribution::from_weights(
    std::vector<double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("DiscreteDistribution::from_weights: empty");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument(
          "DiscreteDistribution::from_weights: weights must be finite, >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument(
        "DiscreteDistribution::from_weights: all weights zero");
  }
  for (double& w : weights) w /= total;
  return DiscreteDistribution(std::move(weights));
}

std::size_t DiscreteDistribution::sample(Rng& rng) const {
  return alias_.sample(rng);
}

double DiscreteDistribution::expectation(std::span<const double> values) const {
  if (values.size() != probabilities_.size()) {
    throw std::invalid_argument(
        "DiscreteDistribution::expectation: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    sum += probabilities_[i] * values[i];
  }
  return sum;
}

}  // namespace hmdiv::stats
