// Special functions needed by the statistics layer: regularized incomplete
// beta and gamma functions, the standard normal CDF and quantile, and log
// binomial coefficients. Implementations follow the classic Numerical
// Recipes continued-fraction / series forms with double precision tolerances.
#pragma once

#include <span>

namespace hmdiv::stats {

/// ln(n!) = lgamma(n + 1). Values for n < 4096 come from a table computed
/// once per process (each entry is the std::lgamma value, so cached and
/// uncached results are bit-identical); larger n fall back to std::lgamma.
/// Hot pmf/likelihood loops call this instead of paying three lgamma
/// evaluations per term.
[[nodiscard]] double log_factorial(unsigned long long n);

/// log(n choose k) for 0 <= k <= n, via the cached log_factorial table.
[[nodiscard]] double log_binomial_coefficient(unsigned long long n,
                                              unsigned long long k);

/// Regularized incomplete beta function I_x(a, b) for a,b > 0, x in [0,1].
[[nodiscard]] double regularized_incomplete_beta(double a, double b, double x);

/// Inverse of I_x(a,b) in x (quantile of the Beta(a,b) distribution),
/// for p in [0,1]. Bisection refined by Newton steps; accurate to ~1e-12.
[[nodiscard]] double inverse_regularized_incomplete_beta(double a, double b,
                                                         double p);

/// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
[[nodiscard]] double regularized_lower_incomplete_gamma(double a, double x);

/// Standard normal cumulative distribution function. Cody's rational
/// Chebyshev erfc approximation (max relative error vs a correctly rounded
/// reference ~3e-15 on |z| <= 8); implemented without libm calls so the
/// batched overload below auto-vectorises, and compiled with FP contraction
/// off so scalar and batched paths are bit-identical.
[[nodiscard]] double normal_cdf(double z);

/// Batched standard normal CDF: out[i] = normal_cdf(z[i]) for every i,
/// bit-identical to the scalar overload. When `z` is monotone (ascending or
/// descending — the layout threshold sweeps produce) the evaluation runs
/// branch-free over contiguous approximation-region segments and
/// auto-vectorises; otherwise it falls back to a scalar per-element loop.
/// Requires out.size() == z.size(); `z` and `out` must not overlap.
void normal_cdf(std::span<const double> z, std::span<double> out);

/// Standard normal quantile (inverse CDF) for p in (0,1).
/// Acklam's rational approximation refined by one Halley step; |err| < 1e-12.
[[nodiscard]] double normal_quantile(double p);

}  // namespace hmdiv::stats
