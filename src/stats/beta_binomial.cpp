#include "stats/beta_binomial.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/special.hpp"

namespace hmdiv::stats {

namespace {

void check(std::span<const CountObservation> observations) {
  if (observations.empty()) {
    throw std::invalid_argument("beta_binomial: no observations");
  }
  bool any = false;
  for (const auto& o : observations) {
    if (o.failures > o.trials) {
      throw std::invalid_argument("beta_binomial: failures > trials");
    }
    any = any || o.trials > 0;
  }
  if (!any) throw std::invalid_argument("beta_binomial: all trials zero");
}

}  // namespace

double beta_binomial_log_likelihood(
    std::span<const CountObservation> observations, double alpha,
    double beta) {
  if (alpha <= 0.0 || beta <= 0.0) {
    throw std::invalid_argument("beta_binomial_log_likelihood: alpha,beta <= 0");
  }
  check(observations);
  // The normalising term depends only on (alpha, beta): hoist it out of
  // the loop, and take the three factorial terms from the cached
  // log_factorial table — 3 lgamma calls per observation instead of 9.
  const double log_beta_norm =
      std::lgamma(alpha + beta) - std::lgamma(alpha) - std::lgamma(beta);
  double ll = 0.0;
  for (const auto& o : observations) {
    if (o.trials == 0) continue;
    const double k = static_cast<double>(o.failures);
    const double n = static_cast<double>(o.trials);
    ll += log_factorial(o.trials) - log_factorial(o.failures) -
          log_factorial(o.trials - o.failures) + std::lgamma(k + alpha) +
          std::lgamma(n - k + beta) - std::lgamma(n + alpha + beta) +
          log_beta_norm;
  }
  return ll;
}

BetaBinomialFit fit_beta_binomial_moments(
    std::span<const CountObservation> observations) {
  check(observations);
  // Weighted (by trials) mean and variance of the per-group proportions.
  double total_trials = 0.0;
  double weighted_sum = 0.0;
  std::size_t groups = 0;
  for (const auto& o : observations) {
    if (o.trials == 0) continue;
    total_trials += static_cast<double>(o.trials);
    weighted_sum += static_cast<double>(o.failures);
    ++groups;
  }
  const double mean_p = weighted_sum / total_trials;
  double between = 0.0;
  for (const auto& o : observations) {
    if (o.trials == 0) continue;
    const double p = static_cast<double>(o.failures) /
                     static_cast<double>(o.trials);
    between += static_cast<double>(o.trials) * (p - mean_p) * (p - mean_p);
  }
  between /= total_trials;

  const double clamped_mean = std::clamp(mean_p, 1e-9, 1.0 - 1e-9);
  const double binomial_var =
      clamped_mean * (1.0 - clamped_mean) *
      static_cast<double>(groups) / total_trials;
  double rho = 0.0;
  const double denom = clamped_mean * (1.0 - clamped_mean);
  if (between > binomial_var && denom > 0.0) {
    rho = std::clamp((between - binomial_var) / denom, 1e-9, 1.0 - 1e-6);
  } else {
    rho = 1e-6;  // Effectively binomial.
  }
  const double precision = 1.0 / rho - 1.0;  // alpha + beta
  BetaBinomialFit fit;
  fit.alpha = std::max(1e-6, clamped_mean * precision);
  fit.beta = std::max(1e-6, (1.0 - clamped_mean) * precision);
  return fit;
}

BetaBinomialFit fit_beta_binomial_mle(
    std::span<const CountObservation> observations) {
  BetaBinomialFit fit = fit_beta_binomial_moments(observations);
  // Coordinate search in log space, halving the step until convergence.
  double log_alpha = std::log(fit.alpha);
  double log_beta = std::log(fit.beta);
  double best = beta_binomial_log_likelihood(observations, fit.alpha, fit.beta);
  double step = 0.5;
  for (int iter = 0; iter < 200 && step > 1e-7; ++iter) {
    bool improved = false;
    for (const double da : {step, -step, 0.0}) {
      for (const double db : {step, -step, 0.0}) {
        if (da == 0.0 && db == 0.0) continue;
        const double a = std::exp(log_alpha + da);
        const double b = std::exp(log_beta + db);
        const double ll = beta_binomial_log_likelihood(observations, a, b);
        if (ll > best) {
          best = ll;
          log_alpha += da;
          log_beta += db;
          improved = true;
        }
      }
    }
    if (!improved) step *= 0.5;
  }
  fit.alpha = std::exp(log_alpha);
  fit.beta = std::exp(log_beta);
  return fit;
}

}  // namespace hmdiv::stats
