#include "stats/hypothesis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/special.hpp"

namespace hmdiv::stats {

TestResult two_proportion_z_test(std::uint64_t successes1,
                                 std::uint64_t trials1,
                                 std::uint64_t successes2,
                                 std::uint64_t trials2) {
  if (trials1 == 0 || trials2 == 0) {
    throw std::invalid_argument("two_proportion_z_test: zero trials");
  }
  if (successes1 > trials1 || successes2 > trials2) {
    throw std::invalid_argument("two_proportion_z_test: successes > trials");
  }
  const double n1 = static_cast<double>(trials1);
  const double n2 = static_cast<double>(trials2);
  const double p1 = static_cast<double>(successes1) / n1;
  const double p2 = static_cast<double>(successes2) / n2;
  const double pooled =
      static_cast<double>(successes1 + successes2) / (n1 + n2);
  const double se = std::sqrt(pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2));
  TestResult out;
  if (se == 0.0) {
    out.statistic = 0.0;
    out.p_value = 1.0;
    return out;
  }
  out.statistic = (p1 - p2) / se;
  out.p_value = 2.0 * (1.0 - normal_cdf(std::fabs(out.statistic)));
  return out;
}

double chi_square_sf(double x, double dof) {
  if (dof <= 0.0) throw std::invalid_argument("chi_square_sf: dof <= 0");
  if (x <= 0.0) return 1.0;
  return 1.0 - regularized_lower_incomplete_gamma(dof / 2.0, x / 2.0);
}

TestResult chi_square_goodness_of_fit(
    std::span<const std::uint64_t> observed,
    std::span<const double> expected_probabilities) {
  if (observed.size() != expected_probabilities.size()) {
    throw std::invalid_argument("chi_square_goodness_of_fit: size mismatch");
  }
  if (observed.size() < 2) {
    throw std::invalid_argument(
        "chi_square_goodness_of_fit: need at least two cells");
  }
  std::uint64_t total = 0;
  for (const std::uint64_t o : observed) total += o;
  if (total == 0) {
    throw std::invalid_argument("chi_square_goodness_of_fit: empty sample");
  }
  double statistic = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected =
        expected_probabilities[i] * static_cast<double>(total);
    if (expected <= 0.0) {
      throw std::invalid_argument(
          "chi_square_goodness_of_fit: expected count <= 0");
    }
    const double diff = static_cast<double>(observed[i]) - expected;
    statistic += diff * diff / expected;
  }
  TestResult out;
  out.statistic = statistic;
  out.p_value =
      chi_square_sf(statistic, static_cast<double>(observed.size() - 1));
  return out;
}

TestResult kolmogorov_smirnov_test(std::span<const double> sample,
                                   const std::function<double(double)>& cdf) {
  if (sample.empty()) {
    throw std::invalid_argument("kolmogorov_smirnov_test: empty sample");
  }
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    if (!(f >= 0.0 && f <= 1.0)) {
      throw std::invalid_argument(
          "kolmogorov_smirnov_test: reference CDF left [0,1]");
    }
    const double upper = static_cast<double>(i + 1) / n - f;
    const double lower = f - static_cast<double>(i) / n;
    d = std::max({d, upper, lower});
  }
  TestResult out;
  out.statistic = d;
  // Stephens' effective statistic, then the Kolmogorov series.
  const double lambda = (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n)) * d;
  double p = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = 2.0 * std::pow(-1.0, k - 1) *
                        std::exp(-2.0 * k * k * lambda * lambda);
    p += term;
    if (std::fabs(term) < 1e-12) break;
  }
  out.p_value = std::clamp(p, 0.0, 1.0);
  return out;
}

TestResult kolmogorov_smirnov_two_sample(std::span<const double> sample1,
                                         std::span<const double> sample2) {
  if (sample1.empty() || sample2.empty()) {
    throw std::invalid_argument("kolmogorov_smirnov_two_sample: empty sample");
  }
  std::vector<double> a(sample1.begin(), sample1.end());
  std::vector<double> b(sample2.begin(), sample2.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double m = static_cast<double>(a.size());
  const double n = static_cast<double>(b.size());
  // Sweep the pooled order statistics, tracking the gap between the two
  // empirical CDFs. Ties advance both sides before the gap is measured.
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double value = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= value) ++i;
    while (j < b.size() && b[j] <= value) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / m -
                              static_cast<double>(j) / n));
  }
  TestResult out;
  out.statistic = d;
  const double effective = std::sqrt(m * n / (m + n));
  const double lambda = (effective + 0.12 + 0.11 / effective) * d;
  double p = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = 2.0 * std::pow(-1.0, k - 1) *
                        std::exp(-2.0 * k * k * lambda * lambda);
    p += term;
    if (std::fabs(term) < 1e-12) break;
  }
  out.p_value = std::clamp(p, 0.0, 1.0);
  return out;
}

TestResult chi_square_independence_2x2(std::uint64_t a, std::uint64_t b,
                                       std::uint64_t c, std::uint64_t d) {
  const double da = static_cast<double>(a), db = static_cast<double>(b);
  const double dc = static_cast<double>(c), dd = static_cast<double>(d);
  const double n = da + db + dc + dd;
  if (n == 0.0) {
    throw std::invalid_argument("chi_square_independence_2x2: empty table");
  }
  const double row1 = da + db, row2 = dc + dd;
  const double col1 = da + dc, col2 = db + dd;
  TestResult out;
  if (row1 == 0.0 || row2 == 0.0 || col1 == 0.0 || col2 == 0.0) {
    // A degenerate margin carries no information about association.
    out.statistic = 0.0;
    out.p_value = 1.0;
    return out;
  }
  const double det = da * dd - db * dc;
  out.statistic = n * det * det / (row1 * row2 * col1 * col2);
  out.p_value = chi_square_sf(out.statistic, 1.0);
  return out;
}

}  // namespace hmdiv::stats
