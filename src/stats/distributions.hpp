// Probability distributions used by the models, estimators and simulators:
// binomial and beta pmf/pdf/cdf/quantiles, normal wrappers, and a validated
// discrete distribution type used for demand profiles.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/alias_table.hpp"

namespace hmdiv::stats {

class Rng;

/// Binomial(n, p) probability mass at k.
[[nodiscard]] double binomial_pmf(std::uint64_t n, double p, std::uint64_t k);

/// Binomial(n, p) lower-tail probability P(X <= k), computed via the
/// regularized incomplete beta identity (numerically stable for large n).
[[nodiscard]] double binomial_cdf(std::uint64_t n, double p, std::uint64_t k);

/// Beta(a, b) density at x in [0,1].
[[nodiscard]] double beta_pdf(double a, double b, double x);

/// Beta(a, b) cumulative distribution at x.
[[nodiscard]] double beta_cdf(double a, double b, double x);

/// Beta(a, b) quantile for probability p.
[[nodiscard]] double beta_quantile(double a, double b, double p);

/// A validated probability distribution over a fixed number of categories.
///
/// Invariants: all probabilities are finite, non-negative, and sum to 1
/// within 1e-9 (the constructor renormalises exactly so that downstream
/// weighted sums are consistent).
class DiscreteDistribution {
 public:
  /// Throws std::invalid_argument if `probabilities` is empty, contains a
  /// negative/non-finite value, or sums to something not within 1e-9 of 1.
  explicit DiscreteDistribution(std::vector<double> probabilities);

  /// Builds from non-negative weights, normalising them to sum to 1.
  [[nodiscard]] static DiscreteDistribution from_weights(
      std::vector<double> weights);

  /// Builds from probabilities that are *already* normalised, validating
  /// them (finite, >= 0, sum within 1e-9 of 1) but storing them untouched —
  /// no renormalising division. This is the wire round-trip path: a
  /// distribution serialized as IEEE-754 bit patterns rebuilds with the
  /// exact same probabilities (the public constructor's `p /= total` could
  /// move the last ulp when the stored sum differs from 1 by one rounding),
  /// so alias tables — and every case drawn through them — match the
  /// originating process bit-for-bit.
  [[nodiscard]] static DiscreteDistribution from_normalised(
      std::vector<double> probabilities);

  [[nodiscard]] std::size_t size() const { return probabilities_.size(); }
  [[nodiscard]] double operator[](std::size_t i) const {
    return probabilities_[i];
  }
  [[nodiscard]] std::span<const double> probabilities() const {
    return probabilities_;
  }

  /// Samples a category index in O(1) via the precomputed alias table,
  /// consuming exactly one uniform draw.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  /// The Walker alias table, built once at construction. Batched kernels
  /// use it directly to map bulk-filled uniforms to category indices.
  [[nodiscard]] const AliasTable& alias() const { return alias_; }

  /// Expectation of `values[i]` under this distribution; sizes must match.
  [[nodiscard]] double expectation(std::span<const double> values) const;

 private:
  struct NormalisedTag {};
  DiscreteDistribution(NormalisedTag, std::vector<double> probabilities);

  std::vector<double> probabilities_;
  AliasTable alias_;
};

}  // namespace hmdiv::stats
