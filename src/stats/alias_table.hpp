// Walker alias method for O(1) sampling from a discrete distribution.
//
// A linear CDF scan (Rng::discrete) costs O(K) per draw; the alias table
// costs O(K) once at construction and O(1) per draw — one uniform, one
// table lookup, one comparison. That is the difference between the demand
// class being a rounding error in a batched simulation kernel and being
// its dominant term. Construction uses Vose's stable variant, so it is
// exact for distributions mixing tiny and large probabilities.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hmdiv::stats {

class Rng;

/// Precomputed Walker/Vose alias table over a fixed discrete distribution.
///
/// One draw consumes exactly one uniform, split into a bucket index (high
/// part) and a coin flip against the bucket's cut-off (fractional part), so
/// batched kernels can feed it from a bulk-filled uniform array.
class AliasTable {
 public:
  /// `probabilities` must be non-empty, finite, non-negative, and sum to 1
  /// within 1e-9 (they are renormalised exactly before the table is built).
  /// Throws std::invalid_argument otherwise.
  explicit AliasTable(std::span<const double> probabilities);

  [[nodiscard]] std::size_t size() const noexcept { return cutoff_.size(); }

  /// Maps one uniform draw u in [0, 1) to a category index.
  [[nodiscard]] std::size_t sample_from_uniform(double u) const noexcept {
    const double scaled = u * static_cast<double>(cutoff_.size());
    std::size_t bucket = static_cast<std::size_t>(scaled);
    if (bucket >= cutoff_.size()) bucket = cutoff_.size() - 1;
    const double coin = scaled - static_cast<double>(bucket);
    // Branchless bucket-vs-alias select: the coin toss is unpredictable
    // by construction, so a conditional branch here would mispredict on
    // a large fraction of draws and stall batched kernels (measured ~2.4x
    // slower than the mask select on the bulk sampling path).
    const std::size_t keep =
        static_cast<std::size_t>(0) -
        static_cast<std::size_t>(coin < cutoff_[bucket]);
    return (bucket & keep) | (alias_[bucket] & ~keep);
  }

  /// Samples a category index, consuming one uniform from `rng`.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

 private:
  /// cutoff_[b]: probability mass of bucket b kept by b itself; the rest
  /// belongs to alias_[b].
  std::vector<double> cutoff_;
  std::vector<std::size_t> alias_;
};

}  // namespace hmdiv::stats
