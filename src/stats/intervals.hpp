// Binomial proportion confidence intervals.
//
// The simulated-trial estimator reports each model parameter (PMf, PHf|Mf,
// PHf|Ms per class of cases) with an interval; the paper assumes "narrow
// enough confidence intervals can be obtained for all parameters" — the
// bench for Table 1 makes that assumption checkable.
#pragma once

#include <cstdint>

namespace hmdiv::stats {

/// A two-sided confidence interval for a proportion, clipped to [0,1].
struct ProportionInterval {
  double lower = 0.0;
  double upper = 1.0;

  [[nodiscard]] bool contains(double p) const {
    return p >= lower && p <= upper;
  }
  [[nodiscard]] double width() const { return upper - lower; }
};

/// Wald (normal approximation) interval. Included for completeness; known to
/// undercover for small n or extreme p.
[[nodiscard]] ProportionInterval wald_interval(std::uint64_t successes,
                                               std::uint64_t trials,
                                               double confidence = 0.95);

/// Wilson score interval — good coverage across the range; the default used
/// by the trial estimator.
[[nodiscard]] ProportionInterval wilson_interval(std::uint64_t successes,
                                                 std::uint64_t trials,
                                                 double confidence = 0.95);

/// Agresti–Coull ("add two successes and two failures") interval.
[[nodiscard]] ProportionInterval agresti_coull_interval(
    std::uint64_t successes, std::uint64_t trials, double confidence = 0.95);

/// Clopper–Pearson exact interval via beta quantiles. Conservative.
[[nodiscard]] ProportionInterval clopper_pearson_interval(
    std::uint64_t successes, std::uint64_t trials, double confidence = 0.95);

/// Jeffreys (Bayesian, Beta(1/2,1/2) prior) equal-tailed interval.
[[nodiscard]] ProportionInterval jeffreys_interval(std::uint64_t successes,
                                                   std::uint64_t trials,
                                                   double confidence = 0.95);

}  // namespace hmdiv::stats
