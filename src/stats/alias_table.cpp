#include "stats/alias_table.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/rng.hpp"

namespace hmdiv::stats {

AliasTable::AliasTable(std::span<const double> probabilities) {
  const std::size_t k = probabilities.size();
  if (k == 0) {
    throw std::invalid_argument("AliasTable: empty distribution");
  }
  double total = 0.0;
  for (const double p : probabilities) {
    if (!(p >= 0.0) || !std::isfinite(p)) {
      throw std::invalid_argument(
          "AliasTable: probabilities must be finite and >= 0");
    }
    total += p;
  }
  if (std::fabs(total - 1.0) > 1e-9) {
    throw std::invalid_argument("AliasTable: probabilities must sum to 1");
  }

  // Vose's construction: scale every mass to a mean of 1, then repeatedly
  // pair an under-full bucket with an over-full one. The over-full donor's
  // leftover mass is re-classified, so each index is processed once: O(K).
  std::vector<double> scaled(k);
  for (std::size_t i = 0; i < k; ++i) {
    scaled[i] = probabilities[i] / total * static_cast<double>(k);
  }
  cutoff_.assign(k, 1.0);
  alias_.resize(k);
  for (std::size_t i = 0; i < k; ++i) alias_[i] = i;

  std::vector<std::size_t> small, large;
  small.reserve(k);
  large.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t under = small.back();
    small.pop_back();
    const std::size_t over = large.back();
    cutoff_[under] = scaled[under];
    alias_[under] = over;
    scaled[over] -= 1.0 - scaled[under];
    if (scaled[over] < 1.0) {
      large.pop_back();
      small.push_back(over);
    }
  }
  // Leftovers (either list) are exactly-full buckets up to rounding; their
  // cutoff stays 1 so the alias is never taken.
  for (const std::size_t i : small) cutoff_[i] = 1.0;
  for (const std::size_t i : large) cutoff_[i] = 1.0;
}

std::size_t AliasTable::sample(Rng& rng) const {
  return sample_from_uniform(rng.uniform());
}

}  // namespace hmdiv::stats
