// Basic hypothesis tests used to analyse trial output: two-proportion z-test
// (does the CADT change reader failure rate on a class?), chi-square
// goodness-of-fit (does the simulated demand stream match its profile?), and
// a 2x2 independence test (are human and machine failures associated?).
#pragma once

#include <cstdint>
#include <functional>
#include <span>

namespace hmdiv::stats {

/// Outcome of a test: the statistic and its (two-sided unless noted) p-value.
struct TestResult {
  double statistic = 0.0;
  double p_value = 1.0;
};

/// Two-sided two-proportion z-test with pooled variance.
/// Compares successes1/trials1 against successes2/trials2.
[[nodiscard]] TestResult two_proportion_z_test(std::uint64_t successes1,
                                               std::uint64_t trials1,
                                               std::uint64_t successes2,
                                               std::uint64_t trials2);

/// Chi-square goodness-of-fit of observed counts against expected
/// probabilities (must sum to ~1; same length; expected count per cell > 0).
[[nodiscard]] TestResult chi_square_goodness_of_fit(
    std::span<const std::uint64_t> observed,
    std::span<const double> expected_probabilities);

/// Chi-square test of independence for a 2x2 contingency table
/// [[a, b], [c, d]] (no continuity correction). A small p-value indicates
/// the row and column events are associated — e.g. human failures cluster
/// on machine failures.
[[nodiscard]] TestResult chi_square_independence_2x2(std::uint64_t a,
                                                     std::uint64_t b,
                                                     std::uint64_t c,
                                                     std::uint64_t d);

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom: P(X >= x).
[[nodiscard]] double chi_square_sf(double x, double dof);

/// One-sample Kolmogorov–Smirnov test of `sample` against a continuous
/// reference CDF. statistic = sup |F_n − F|; p-value from the asymptotic
/// Kolmogorov distribution with the Stephens small-sample correction.
/// Used to validate simulated difficulty distributions against their specs.
[[nodiscard]] TestResult kolmogorov_smirnov_test(
    std::span<const double> sample, const std::function<double(double)>& cdf);

/// Two-sample Kolmogorov–Smirnov test: statistic = sup |F_m − G_n| over the
/// pooled sample, p-value from the asymptotic Kolmogorov distribution at
/// the effective size sqrt(mn/(m+n)). Used to check that a batched sampling
/// kernel and its scalar reference draw from the same distribution.
[[nodiscard]] TestResult kolmogorov_smirnov_two_sample(
    std::span<const double> sample1, std::span<const double> sample2);

}  // namespace hmdiv::stats
