#include "stats/intervals.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/distributions.hpp"
#include "stats/special.hpp"

namespace hmdiv::stats {

namespace {

double z_for(double confidence) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("confidence must lie in (0,1)");
  }
  return normal_quantile(0.5 + confidence / 2.0);
}

void check_counts(std::uint64_t successes, std::uint64_t trials) {
  if (trials == 0) throw std::invalid_argument("interval: trials == 0");
  if (successes > trials) {
    throw std::invalid_argument("interval: successes > trials");
  }
}

ProportionInterval clipped(double lo, double hi) {
  // std::max(0.0, NaN) returns 0.0 (the comparison is false), which would
  // silently turn an undefined endpoint into a confident-looking bound.
  // Propagate NaN instead; only finite endpoints are clipped to [0, 1].
  if (std::isnan(lo) || std::isnan(hi)) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    return ProportionInterval{nan, nan};
  }
  return ProportionInterval{std::max(0.0, lo), std::min(1.0, hi)};
}

}  // namespace

ProportionInterval wald_interval(std::uint64_t successes, std::uint64_t trials,
                                 double confidence) {
  check_counts(successes, trials);
  const double z = z_for(confidence);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double half = z * std::sqrt(p * (1.0 - p) / n);
  return clipped(p - half, p + half);
}

ProportionInterval wilson_interval(std::uint64_t successes,
                                   std::uint64_t trials, double confidence) {
  check_counts(successes, trials);
  const double z = z_for(confidence);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return clipped(centre - half, centre + half);
}

ProportionInterval agresti_coull_interval(std::uint64_t successes,
                                          std::uint64_t trials,
                                          double confidence) {
  check_counts(successes, trials);
  const double z = z_for(confidence);
  const double z2 = z * z;
  const double n_tilde = static_cast<double>(trials) + z2;
  const double p_tilde = (static_cast<double>(successes) + z2 / 2.0) / n_tilde;
  const double half = z * std::sqrt(p_tilde * (1.0 - p_tilde) / n_tilde);
  return clipped(p_tilde - half, p_tilde + half);
}

ProportionInterval clopper_pearson_interval(std::uint64_t successes,
                                            std::uint64_t trials,
                                            double confidence) {
  check_counts(successes, trials);
  const double alpha = 1.0 - confidence;
  if (!(alpha > 0.0 && alpha < 1.0)) {
    throw std::invalid_argument("confidence must lie in (0,1)");
  }
  const double k = static_cast<double>(successes);
  const double n = static_cast<double>(trials);
  const double lo =
      successes == 0 ? 0.0 : beta_quantile(k, n - k + 1.0, alpha / 2.0);
  const double hi = successes == trials
                        ? 1.0
                        : beta_quantile(k + 1.0, n - k, 1.0 - alpha / 2.0);
  return clipped(lo, hi);
}

ProportionInterval jeffreys_interval(std::uint64_t successes,
                                     std::uint64_t trials, double confidence) {
  check_counts(successes, trials);
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("confidence must lie in (0,1)");
  }
  const double alpha = 1.0 - confidence;
  const double a = static_cast<double>(successes) + 0.5;
  const double b = static_cast<double>(trials - successes) + 0.5;
  const double lo = successes == 0 ? 0.0 : beta_quantile(a, b, alpha / 2.0);
  const double hi =
      successes == trials ? 1.0 : beta_quantile(a, b, 1.0 - alpha / 2.0);
  return clipped(lo, hi);
}

}  // namespace hmdiv::stats
