// Nonparametric bootstrap for statistics of i.i.d. samples, used to put
// intervals on derived quantities (e.g. the importance index t(x) or the
// covariance term of Eq. (10)) for which no closed-form interval exists.
//
// Replicates run in parallel on the exec engine: replicate r draws from
// the substream Rng(base, r), where `base` is one 64-bit draw from the
// caller's generator, so results are bit-identical for any thread count
// (the caller's rng advances by exactly one step either way).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "exec/config.hpp"

namespace hmdiv::stats {

class Rng;

/// Result of a bootstrap run: point estimate on the original sample plus a
/// percentile interval of the resampled statistic.
struct BootstrapResult {
  double estimate = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  /// Bootstrap standard error (stddev of the resampled statistic).
  double standard_error = 0.0;
};

/// A statistic maps a sample (span of doubles) to a scalar.
using Statistic = std::function<double(std::span<const double>)>;

/// Percentile bootstrap with `replicates` resamples at level `confidence`.
/// Throws if the sample is empty or replicates == 0.
[[nodiscard]] BootstrapResult bootstrap_percentile(
    std::span<const double> sample, const Statistic& statistic, Rng& rng,
    std::size_t replicates = 2000, double confidence = 0.95,
    const exec::Config& config = exec::default_config());

/// Paired bootstrap for statistics of two aligned samples (x_i, y_i), e.g.
/// a correlation. The pairs are resampled jointly.
using PairedStatistic =
    std::function<double(std::span<const double>, std::span<const double>)>;

[[nodiscard]] BootstrapResult bootstrap_paired(
    std::span<const double> x, std::span<const double> y,
    const PairedStatistic& statistic, Rng& rng, std::size_t replicates = 2000,
    double confidence = 0.95,
    const exec::Config& config = exec::default_config());

}  // namespace hmdiv::stats
