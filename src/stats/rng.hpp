// Deterministic, seedable random number generation.
//
// All stochastic code in this repository draws from an explicitly passed
// `Rng` — there is no global generator — so every simulation, trial and
// bench is reproducible from its seed. The engine is xoshiro256** seeded
// through SplitMix64, the standard recommendation of its authors; it is much
// faster than std::mt19937_64 and has no detectable linear artefacts in the
// output bits we use.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace hmdiv::stats {

/// SplitMix64 step: used for seeding and for cheap stateless hashing of
/// (seed, stream) pairs into independent engine states.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** pseudo-random engine with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also feed <random>
/// distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine deterministically from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Seeds substream `stream` of `seed`: both words are whitened through
  /// SplitMix64 before they meet, so streams 0, 1, 2, … of one seed are as
  /// unrelated as different seeds, and Rng(s, 0) differs from Rng(s).
  /// This is the deterministic-parallelism workhorse: give chunk/replicate
  /// k the engine Rng(seed, k) and the result no longer depends on which
  /// thread runs it.
  Rng(std::uint64_t seed, std::uint64_t stream) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept { return next_u64(); }
  result_type next_u64() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() noexcept;

  /// Fills `out` with uniform doubles in [0, 1): bit-identical to calling
  /// uniform() out.size() times, but the whole loop lives in one TU with
  /// the engine so it compiles to a tight inlined kernel. This is the bulk
  /// primitive behind the batched simulation kernels.
  void fill_uniform(std::span<double> out) noexcept;

  /// Fills `out` with standard normal deviates: bit-identical to calling
  /// normal() out.size() times (including the cached-spare behaviour).
  void fill_normal(std::span<double> out) noexcept;

  /// Fills `out` with standard normal deviates via the Acklam inverse-CDF
  /// rational applied to one uniform per lane. Branch-free over the central
  /// 95.15% of lanes, so the whole block vectorises — unlike the polar
  /// method, whose per-pair rejection loop is inherently serial. NOT
  /// bit-identical to fill_normal()/normal(): same distribution (the
  /// rational's relative error is ~1e-9, far below anything a KS test can
  /// resolve), different stream mapping (one u64 per deviate). This is the
  /// normal primitive of the batched gamma/beta kernels below.
  void fill_normal_icdf(std::span<double> out) noexcept;

  /// Uniform double in [lo, hi); requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound) without modulo bias; bound must be > 0.
  std::uint64_t uniform_index(std::uint64_t bound);

  /// Bernoulli draw; p is clamped to [0, 1].
  bool bernoulli(double p) noexcept;

  /// Standard normal via Marsaglia polar method (cached spare deviate).
  double normal() noexcept;
  /// Normal with given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Precomputed Marsaglia–Tsang constants for repeated Gamma(shape, 1)
  /// draws at a fixed shape (posterior samplers draw thousands of times
  /// from the same handful of shapes). gamma(const GammaPrep&) is
  /// bit-identical to gamma(shape) — the constants are derived with
  /// exactly the arithmetic gamma(shape) would perform per call.
  struct GammaPrep {
    explicit GammaPrep(double shape);
    double d;          ///< (effective shape) − 1/3
    double c;          ///< 1 / sqrt(9 d)
    double inv_shape;  ///< 1/shape, used by the boosted (<1) path
    bool boosted;      ///< shape < 1: draw via Gamma(shape+1) and scale
  };

  /// Gamma(shape, 1) via Marsaglia–Tsang; shape must be > 0.
  double gamma(double shape);

  /// Gamma draw with precomputed constants; same stream consumption and
  /// bit-identical values vs gamma(shape) for the prep's shape.
  double gamma(const GammaPrep& prep);

  /// Beta(a, b) via two gamma draws; a, b must be > 0.
  double beta(double a, double b);

  /// Beta draw with precomputed per-parameter constants; bit-identical to
  /// beta(a, b) for the preps' shapes.
  double beta(const GammaPrep& a, const GammaPrep& b);

  /// Fills `out` with Gamma(shape, 1) draws for the prep's shape. Batched
  /// Marsaglia–Tsang: each candidate lane takes one engine step (split
  /// into a normal via the inverse-CDF transform of fill_normal_icdf and a
  /// squeeze uniform), the squeeze test runs branch-free over whole lanes,
  /// and the rejected lanes are compacted into an index list and refilled
  /// in blocks until none remain. Equivalent to gamma(prep) in
  /// distribution, NOT bitwise (different stream consumption). All scratch
  /// is fixed-size stack blocks — no heap allocation at all.
  void fill_gamma(const GammaPrep& prep, std::span<double> out) noexcept;

  /// Fills `out` with Beta(a, b) draws as X/(X+Y) from two fill_gamma
  /// blocks. Equivalent to beta(a, b) in distribution, NOT bitwise.
  void fill_beta(const GammaPrep& a, const GammaPrep& b,
                 std::span<double> out) noexcept;

  /// Binomial(n, p) by inversion for small n, otherwise by summed Bernoulli
  /// (n in this codebase is at most a trial size, so O(n) is acceptable and
  /// keeps the generator simple and exactly reproducible).
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Samples an index from a discrete distribution given non-negative
  /// weights (not necessarily normalised). Throws if all weights are zero.
  std::size_t discrete(std::span<const double> weights);

  /// Returns a new engine whose stream is independent of this one (keyed
  /// jump: hashes the current state with `stream_id`). Use to give each
  /// simulated entity — reader, CADT, case stream — its own generator.
  [[nodiscard]] Rng split(std::uint64_t stream_id) const noexcept;

  /// Advances the engine by 2^128 steps (the xoshiro256** jump
  /// polynomial): repeated jumps partition one seed's sequence into
  /// non-overlapping blocks of 2^128 outputs each. Discards any cached
  /// normal deviate.
  void jump() noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  /// One engine output per lane, split into two mid-tread 32-bit uniforms
  /// (k + 0.5)·2⁻³², both strictly inside (0, 1): p feeds the inverse-CDF
  /// normal, u the squeeze test. Halves the engine traffic of the batched
  /// gamma kernel; the 2⁻³² grid perturbs the distribution at the 2⁻³³
  /// level, far below the batched kernels' distributional-equivalence
  /// contract (the inverse-CDF rational's own error is ~1e-9). Large spans
  /// run an interleaved 8-lane xoshiro256+ kernel whose lane states are
  /// derived deterministically from one member-engine draw (so the serial
  /// engine recurrence stops being the bottleneck); short spans step the
  /// member engine directly.
  void fill_uniform_pair(std::span<double> p, double* u) noexcept;

  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace hmdiv::stats
