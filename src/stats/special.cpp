// NOTE ON FLOATING-POINT CONTRACTS: this translation unit is compiled with
// -ffp-contract=off (see src/stats/CMakeLists.txt). Every Φ evaluation in
// the project funnels through this TU, so with contraction disabled each
// arithmetic op is individually correctly rounded and the scalar
// normal_cdf(double), the batched normal_cdf(span), and every ISA clone of
// the batch kernel produce bit-identical results — the property the sweep
// engine's scalar-vs-batched equivalence tests rely on.
#include "stats/special.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

namespace hmdiv::stats {

namespace {

constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

/// Continued fraction for the incomplete beta function (Lentz's algorithm).
double beta_continued_fraction(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= 300; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double log_factorial(unsigned long long n) {
  // Table of lgamma(n + 1) values (not cumulative log sums), so the cached
  // range returns exactly what the direct computation would. Magic-static
  // initialisation makes the one-time build thread-safe.
  static const std::vector<double> table = [] {
    std::vector<double> t(4096);
    for (std::size_t i = 0; i < t.size(); ++i) {
      t[i] = std::lgamma(static_cast<double>(i) + 1.0);
    }
    return t;
  }();
  if (n < table.size()) return table[n];
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_binomial_coefficient(unsigned long long n, unsigned long long k) {
  if (k > n) {
    throw std::invalid_argument("log_binomial_coefficient: k > n");
  }
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double regularized_incomplete_beta(double a, double b, double x) {
  if (a <= 0.0 || b <= 0.0) {
    throw std::invalid_argument("regularized_incomplete_beta: a,b must be > 0");
  }
  if (x < 0.0 || x > 1.0) {
    throw std::invalid_argument("regularized_incomplete_beta: x outside [0,1]");
  }
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front = std::lgamma(a + b) - std::lgamma(a) -
                           std::lgamma(b) + a * std::log(x) +
                           b * std::log1p(-x);
  const double front = std::exp(log_front);
  // Use the symmetry transformation for faster convergence.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - std::exp(std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                        a * std::log(x) + b * std::log1p(-x)) *
                   beta_continued_fraction(b, a, 1.0 - x) / b;
}

double inverse_regularized_incomplete_beta(double a, double b, double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(
        "inverse_regularized_incomplete_beta: p outside [0,1]");
  }
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  // Work on whichever tail holds the solution: a quantile near 1 is only
  // representable as 1 − (complement), and the log-space iteration below
  // needs the solution on the small-x side to resolve it. The flip cannot
  // recurse twice because the complementary call sees 1 − p on the other
  // side of its own midpoint value.
  if (p > regularized_incomplete_beta(a, b, 0.5)) {
    return 1.0 - inverse_regularized_incomplete_beta(b, a, 1.0 - p);
  }
  double lo = 0.0, hi = 1.0;
  double x = 0.5;
  for (int iter = 0; iter < 700; ++iter) {
    const double value = regularized_incomplete_beta(a, b, x);
    if (value < p) {
      lo = x;
    } else {
      hi = x;
    }
    // Newton in log space: dI/d(log x) = pdf(x)·x, which stays finite for
    // tiny x even where the density itself overflows (a < 1), and one step
    // can cross hundreds of decades — required for quantiles such as
    // I⁻¹(10⁻³, 1, 0.5) ≈ 9.3e-302 that arithmetic bisection never reaches.
    const double log_deriv = a * std::log(x) + (b - 1.0) * std::log1p(-x) +
                             std::lgamma(a + b) - std::lgamma(a) -
                             std::lgamma(b);
    const double deriv = std::exp(log_deriv);
    double next = 0.0;
    if (deriv > 0.0 && std::isfinite(deriv)) {
      // Cap each move at e^±60 so one flat-derivative step cannot fling the
      // iterate out of range before the bracket tightens.
      const double step = std::clamp((value - p) / deriv, -60.0, 60.0);
      next = x * std::exp(-step);
    }
    if (!(next > lo && next < hi)) {
      // Geometric bisection (midpoint of log x) as the safety net; the
      // sqrt(lo)·sqrt(hi) form avoids underflow of the product.
      next = lo > 0.0 ? std::sqrt(lo) * std::sqrt(hi) : hi / 256.0;
      if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    }
    if (std::fabs(next - x) <= 1e-15 * x) return next;
    x = next;
  }
  return x;
}

double regularized_lower_incomplete_gamma(double a, double x) {
  if (a <= 0.0) {
    throw std::invalid_argument("regularized_lower_incomplete_gamma: a <= 0");
  }
  if (x < 0.0) {
    throw std::invalid_argument("regularized_lower_incomplete_gamma: x < 0");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) {
    // Series representation.
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
  }
  // Continued fraction for the upper tail Q(a,x); P = 1 - Q.
  double b0 = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b0;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b0 += 2.0;
    d = an * d + b0;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b0 + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  const double q = std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
  return 1.0 - q;
}

namespace {

// --- Vectorisable Φ kernel -------------------------------------------------
//
// normal_cdf(z) = 0.5 * erfc(x) with x = -z / sqrt(2), using W. J. Cody's
// rational Chebyshev approximations (Math. Comp. 23, 1969) in the classic
// three regions:
//   A: |x| <  0.46875          erf via an odd rational in x²
//   B: 0.46875 <= |x| < 4      erfc via exp(-x²) · rational(|x|)
//   C: |x| >= 4                erfc via exp(-x²)/|x| · asymptotic in 1/x²
// All three region evaluators are straight-line arithmetic (the only
// transcendental, exp, is inlined below), so a loop that applies one region
// to a contiguous run of inputs auto-vectorises.

constexpr double kInvSqrt2 = 0.70710678118654752440;
constexpr double kInvLn2 = 1.4426950408889634074;
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
constexpr double kRoundMagic = 6755399441055744.0;  // 1.5 * 2^52
constexpr double kInvSqrtPi = 5.6418958354775628695e-01;

/// exp(y) for y in [-746, 0], branch-free and libm-free so the region
/// loops below auto-vectorise. Cody–Waite reduction y = k·ln2 + r with
/// round-to-nearest k obtained via the magic-constant trick, degree-13
/// Taylor for e^r, and 2^k applied as two half-scales so the deep tail
/// (k below -1022) underflows gradually instead of producing a zero scale.
/// PRECONDITION: y >= -746 (the callers' region cuts guarantee y >= -703);
/// more negative inputs would corrupt the scale computation, which is why
/// phi() routes |x| >= 26.5 — where erfc underflows anyway — to the
/// constant tail region instead of here.
inline double exp_neg(double y) {
  const double t = y * kInvLn2 + kRoundMagic;
  const double kd = t - kRoundMagic;
  // k as an integer: the low 32 bits of the magic-biased mantissa.
  const auto ki = static_cast<std::int32_t>(
      std::bit_cast<std::uint64_t>(t) & 0xFFFFFFFFu);
  const double r = (y - kd * kLn2Hi) - kd * kLn2Lo;
  double p = 1.0 / 6227020800.0;  // 1/13!
  p = p * r + 1.0 / 479001600.0;
  p = p * r + 1.0 / 39916800.0;
  p = p * r + 1.0 / 3628800.0;
  p = p * r + 1.0 / 362880.0;
  p = p * r + 1.0 / 40320.0;
  p = p * r + 1.0 / 5040.0;
  p = p * r + 1.0 / 720.0;
  p = p * r + 1.0 / 120.0;
  p = p * r + 1.0 / 24.0;
  p = p * r + 1.0 / 6.0;
  p = p * r + 0.5;
  p = p * r + 1.0;
  p = p * r + 1.0;
  const std::int32_t k1 = ki >> 1;
  const std::int32_t k2 = ki - k1;
  const double s1 =
      std::bit_cast<double>(static_cast<std::uint64_t>(k1 + 1023) << 52);
  const double s2 =
      std::bit_cast<double>(static_cast<std::uint64_t>(k2 + 1023) << 52);
  return p * s1 * s2;
}

/// Region A: erf(x) for |x| < 0.46875.
inline double erf_small(double x) {
  constexpr double pa0 = 3.16112374387056560e+00;
  constexpr double pa1 = 1.13864154151050156e+02;
  constexpr double pa2 = 3.77485237685302021e+02;
  constexpr double pa3 = 3.20937758913846947e+03;
  constexpr double pa4 = 1.85777706184603153e-01;
  constexpr double qa0 = 2.36012909523441209e+01;
  constexpr double qa1 = 2.44024637934444173e+02;
  constexpr double qa2 = 1.28261652607737228e+03;
  constexpr double qa3 = 2.84423683343917062e+03;
  const double z = x * x;
  const double num = ((((pa4 * z + pa0) * z + pa1) * z + pa2) * z + pa3);
  const double den = ((((z + qa0) * z + qa1) * z + qa2) * z + qa3);
  return x * num / den;
}

/// Region B: erfc(ax) for 0.46875 <= ax < 4.
inline double erfc_mid(double ax) {
  constexpr double pb0 = 5.64188496988670089e-01;
  constexpr double pb1 = 8.88314979438837594e+00;
  constexpr double pb2 = 6.61191906371416295e+01;
  constexpr double pb3 = 2.98635138197400131e+02;
  constexpr double pb4 = 8.81952221241769090e+02;
  constexpr double pb5 = 1.71204761263407058e+03;
  constexpr double pb6 = 2.05107837782607147e+03;
  constexpr double pb7 = 1.23033935479799725e+03;
  constexpr double pb8 = 2.15311535474403846e-08;
  constexpr double qb0 = 1.57449261107098347e+01;
  constexpr double qb1 = 1.17693950891312499e+02;
  constexpr double qb2 = 5.37181101862009858e+02;
  constexpr double qb3 = 1.62138957456669019e+03;
  constexpr double qb4 = 3.29079923573345963e+03;
  constexpr double qb5 = 4.36261909014324716e+03;
  constexpr double qb6 = 3.43936767414372164e+03;
  constexpr double qb7 = 1.23033935480374942e+03;
  const double num =
      ((((((((pb8 * ax + pb0) * ax + pb1) * ax + pb2) * ax + pb3) * ax + pb4) *
             ax + pb5) * ax + pb6) * ax + pb7);
  const double den =
      ((((((((ax + qb0) * ax + qb1) * ax + qb2) * ax + qb3) * ax + qb4) *
             ax + qb5) * ax + qb6) * ax + qb7);
  return exp_neg(-(ax * ax)) * num / den;
}

/// Region C: erfc(ax) for ax >= 4.
inline double erfc_far(double ax) {
  constexpr double pc0 = 3.05326634961232344e-01;
  constexpr double pc1 = 3.60344899949804439e-01;
  constexpr double pc2 = 1.25781726111229246e-01;
  constexpr double pc3 = 1.60837851487422766e-02;
  constexpr double pc4 = 6.58749161529837803e-04;
  constexpr double pc5 = 1.63153871373020978e-02;
  constexpr double qc0 = 2.56852019228982242e+00;
  constexpr double qc1 = 1.87295284992346047e+00;
  constexpr double qc2 = 5.27905102951428412e-01;
  constexpr double qc3 = 6.05183413124413191e-02;
  constexpr double qc4 = 2.33520497626869185e-03;
  const double z2 = 1.0 / (ax * ax);
  const double num =
      (((((pc5 * z2 + pc0) * z2 + pc1) * z2 + pc2) * z2 + pc3) * z2 + pc4);
  const double den =
      (((((z2 + qc0) * z2 + qc1) * z2 + qc2) * z2 + qc3) * z2 + qc4);
  const double r = (kInvSqrtPi - z2 * num / den) / ax;
  return exp_neg(-(ax * ax)) * r;
}

/// |x| at and beyond which Φ is flushed to an exact 0 or 1: erfc(26.5) is
/// below 1e-305, more than 290 decimal orders under the smallest value any
/// operating-point arithmetic can resolve, and cutting here keeps exp_neg's
/// argument comfortably inside its precondition.
constexpr double kErfcFlushX = 26.5;

/// Scalar Φ — the documented reference path every other overload matches.
inline double phi(double z) {
  if (std::isnan(z)) return z;
  const double x = -z * kInvSqrt2;
  const double ax = std::fabs(x);
  if (ax < 0.46875) return 0.5 * (1.0 - erf_small(x));
  if (ax >= kErfcFlushX) return x < 0.0 ? 1.0 : 0.0;
  const double r = ax < 4.0 ? erfc_mid(ax) : erfc_far(ax);
  return x < 0.0 ? 1.0 - 0.5 * r : 0.5 * r;
}

/// Approximation regions of Φ in the order they appear over ascending x
/// (x = -z/sqrt(2)); "upper"/"lower" refer to the sign branch in phi().
/// kZeroTail/kOneTail are the |x| >= kErfcFlushX flush regions.
enum class PhiRegion {
  kZeroTail,
  kFarUpper,
  kMidUpper,
  kCenter,
  kMidLower,
  kFarLower,
  kOneTail,
};

// target_clones is implemented with an ifunc resolver, which the dynamic
// loader runs before the TSan runtime has initialised — instrumented
// resolvers segfault at startup. Sanitized builds take the plain
// (still auto-vectorised) default codegen; clone selection changes only
// instruction scheduling, never per-lane arithmetic, so results are
// identical either way.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define HMDIV_PHI_TARGET_CLONES
#else
#define HMDIV_PHI_TARGET_CLONES \
  __attribute__((target_clones("avx2", "default")))
#endif

/// Applies one region's evaluator to a contiguous run of z values. Each
/// loop body is branch-free straight-line arithmetic, so GCC vectorises it;
/// the avx2 clone is selected at load time on machines that have it, and
/// -ffp-contract=off keeps every clone's per-lane arithmetic identical to
/// the scalar phi() above.
HMDIV_PHI_TARGET_CLONES void apply_phi_region(
    PhiRegion region, const double* z, double* out, std::size_t n) {
  switch (region) {
    case PhiRegion::kZeroTail:
      for (std::size_t i = 0; i < n; ++i) out[i] = 0.0;
      break;
    case PhiRegion::kFarUpper:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = 0.5 * erfc_far(-z[i] * kInvSqrt2);
      }
      break;
    case PhiRegion::kMidUpper:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = 0.5 * erfc_mid(-z[i] * kInvSqrt2);
      }
      break;
    case PhiRegion::kCenter:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = 0.5 * (1.0 - erf_small(-z[i] * kInvSqrt2));
      }
      break;
    case PhiRegion::kMidLower:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = 1.0 - 0.5 * erfc_mid(z[i] * kInvSqrt2);
      }
      break;
    case PhiRegion::kFarLower:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = 1.0 - 0.5 * erfc_far(z[i] * kInvSqrt2);
      }
      break;
    case PhiRegion::kOneTail:
      for (std::size_t i = 0; i < n; ++i) out[i] = 1.0;
      break;
  }
}

/// Segmented batch Φ for monotone input. Region boundaries are found by
/// binary search on the *computed* predicate x = -z/sqrt(2) — the same
/// quantity and the same comparisons phi() branches on — so every element
/// lands in exactly the region the scalar path would have taken.
/// `ascending` selects the region order (ascending z walks x downward).
void phi_batch_monotone(const double* z, double* out, std::size_t n,
                        bool ascending) {
  const double* const e = z + n;
  auto boundary = [&](const double* lo, auto pred) {
    return std::partition_point(lo, e, pred);
  };
  const double* cut[6];
  if (ascending) {
    cut[0] = boundary(
        z, [](double v) { return -v * kInvSqrt2 >= kErfcFlushX; });
    cut[1] = boundary(cut[0], [](double v) { return -v * kInvSqrt2 >= 4.0; });
    cut[2] = boundary(cut[1],
                      [](double v) { return -v * kInvSqrt2 >= 0.46875; });
    cut[3] = boundary(cut[2],
                      [](double v) { return -v * kInvSqrt2 > -0.46875; });
    cut[4] = boundary(cut[3], [](double v) { return -v * kInvSqrt2 > -4.0; });
    cut[5] = boundary(
        cut[4], [](double v) { return -v * kInvSqrt2 > -kErfcFlushX; });
  } else {
    cut[0] = boundary(
        z, [](double v) { return -v * kInvSqrt2 <= -kErfcFlushX; });
    cut[1] = boundary(cut[0], [](double v) { return -v * kInvSqrt2 <= -4.0; });
    cut[2] = boundary(cut[1],
                      [](double v) { return -v * kInvSqrt2 <= -0.46875; });
    cut[3] = boundary(cut[2],
                      [](double v) { return -v * kInvSqrt2 < 0.46875; });
    cut[4] = boundary(cut[3], [](double v) { return -v * kInvSqrt2 < 4.0; });
    cut[5] = boundary(
        cut[4], [](double v) { return -v * kInvSqrt2 < kErfcFlushX; });
  }
  static constexpr PhiRegion kAscendingOrder[7] = {
      PhiRegion::kZeroTail, PhiRegion::kFarUpper, PhiRegion::kMidUpper,
      PhiRegion::kCenter,   PhiRegion::kMidLower, PhiRegion::kFarLower,
      PhiRegion::kOneTail};
  static constexpr PhiRegion kDescendingOrder[7] = {
      PhiRegion::kOneTail, PhiRegion::kFarLower, PhiRegion::kMidLower,
      PhiRegion::kCenter,  PhiRegion::kMidUpper, PhiRegion::kFarUpper,
      PhiRegion::kZeroTail};
  const PhiRegion* order = ascending ? kAscendingOrder : kDescendingOrder;
  const double* begin = z;
  for (int s = 0; s < 7; ++s) {
    const double* end = s < 6 ? cut[s] : e;
    if (end > begin) {
      apply_phi_region(order[s], begin,
                       out + static_cast<std::size_t>(begin - z),
                       static_cast<std::size_t>(end - begin));
    }
    begin = end;
  }
}

}  // namespace

double normal_cdf(double z) { return phi(z); }

void normal_cdf(std::span<const double> z, std::span<double> out) {
  if (out.size() != z.size()) {
    throw std::invalid_argument("normal_cdf: out.size() != z.size()");
  }
  const std::size_t n = z.size();
  if (n == 0) return;
  const double* b = z.data();
  // Monotone input (the sweep layouts) takes the segmented vector path;
  // anything else gets the scalar loop — same values either way.
  if (std::is_sorted(b, b + n)) {
    phi_batch_monotone(b, out.data(), n, /*ascending=*/true);
  } else if (std::is_sorted(b, b + n, std::greater<double>())) {
    phi_batch_monotone(b, out.data(), n, /*ascending=*/false);
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = phi(z[i]);
  }
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("normal_quantile: p must lie in (0,1)");
  }
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step brings the error below 1e-12.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

}  // namespace hmdiv::stats
