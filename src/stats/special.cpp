#include "stats/special.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace hmdiv::stats {

namespace {

constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

/// Continued fraction for the incomplete beta function (Lentz's algorithm).
double beta_continued_fraction(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= 300; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double log_factorial(unsigned long long n) {
  // Table of lgamma(n + 1) values (not cumulative log sums), so the cached
  // range returns exactly what the direct computation would. Magic-static
  // initialisation makes the one-time build thread-safe.
  static const std::vector<double> table = [] {
    std::vector<double> t(4096);
    for (std::size_t i = 0; i < t.size(); ++i) {
      t[i] = std::lgamma(static_cast<double>(i) + 1.0);
    }
    return t;
  }();
  if (n < table.size()) return table[n];
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_binomial_coefficient(unsigned long long n, unsigned long long k) {
  if (k > n) {
    throw std::invalid_argument("log_binomial_coefficient: k > n");
  }
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double regularized_incomplete_beta(double a, double b, double x) {
  if (a <= 0.0 || b <= 0.0) {
    throw std::invalid_argument("regularized_incomplete_beta: a,b must be > 0");
  }
  if (x < 0.0 || x > 1.0) {
    throw std::invalid_argument("regularized_incomplete_beta: x outside [0,1]");
  }
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front = std::lgamma(a + b) - std::lgamma(a) -
                           std::lgamma(b) + a * std::log(x) +
                           b * std::log1p(-x);
  const double front = std::exp(log_front);
  // Use the symmetry transformation for faster convergence.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - std::exp(std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                        a * std::log(x) + b * std::log1p(-x)) *
                   beta_continued_fraction(b, a, 1.0 - x) / b;
}

double inverse_regularized_incomplete_beta(double a, double b, double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(
        "inverse_regularized_incomplete_beta: p outside [0,1]");
  }
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  double lo = 0.0, hi = 1.0;
  double x = 0.5;
  for (int iter = 0; iter < 200; ++iter) {
    const double value = regularized_incomplete_beta(a, b, x);
    if (value < p) {
      lo = x;
    } else {
      hi = x;
    }
    // Newton step using the beta density; fall back to bisection when it
    // would leave the bracket.
    const double log_pdf = (a - 1.0) * std::log(x) + (b - 1.0) * std::log1p(-x) +
                           std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
    const double pdf = std::exp(log_pdf);
    double next = x - (value - p) / (pdf > kTiny ? pdf : kTiny);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::fabs(next - x) < 1e-14) return next;
    x = next;
  }
  return x;
}

double regularized_lower_incomplete_gamma(double a, double x) {
  if (a <= 0.0) {
    throw std::invalid_argument("regularized_lower_incomplete_gamma: a <= 0");
  }
  if (x < 0.0) {
    throw std::invalid_argument("regularized_lower_incomplete_gamma: x < 0");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) {
    // Series representation.
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
  }
  // Continued fraction for the upper tail Q(a,x); P = 1 - Q.
  double b0 = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b0;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b0 += 2.0;
    d = an * d + b0;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b0 + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  const double q = std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
  return 1.0 - q;
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("normal_quantile: p must lie in (0,1)");
  }
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step brings the error below 1e-12.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

}  // namespace hmdiv::stats
