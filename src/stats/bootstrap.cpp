#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace hmdiv::stats {

namespace {

BootstrapResult summarise(double estimate, std::vector<double> replicates,
                          double confidence) {
  std::sort(replicates.begin(), replicates.end());
  const double alpha = 1.0 - confidence;
  BootstrapResult out;
  out.estimate = estimate;
  out.lower = sorted_quantile(replicates, alpha / 2.0);
  out.upper = sorted_quantile(replicates, 1.0 - alpha / 2.0);
  OnlineStats stats;
  for (const double r : replicates) stats.add(r);
  out.standard_error = stats.stddev();
  return out;
}

void check_args(std::size_t sample_size, std::size_t replicates,
                double confidence) {
  if (sample_size == 0) throw std::invalid_argument("bootstrap: empty sample");
  if (replicates == 0) {
    throw std::invalid_argument("bootstrap: replicates == 0");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("bootstrap: confidence outside (0,1)");
  }
}

}  // namespace

BootstrapResult bootstrap_percentile(std::span<const double> sample,
                                     const Statistic& statistic, Rng& rng,
                                     std::size_t replicates,
                                     double confidence) {
  check_args(sample.size(), replicates, confidence);
  const double estimate = statistic(sample);
  std::vector<double> resample(sample.size());
  std::vector<double> values;
  values.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (double& v : resample) {
      v = sample[static_cast<std::size_t>(rng.uniform_index(sample.size()))];
    }
    values.push_back(statistic(resample));
  }
  return summarise(estimate, std::move(values), confidence);
}

BootstrapResult bootstrap_paired(std::span<const double> x,
                                 std::span<const double> y,
                                 const PairedStatistic& statistic, Rng& rng,
                                 std::size_t replicates, double confidence) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("bootstrap_paired: size mismatch");
  }
  check_args(x.size(), replicates, confidence);
  const double estimate = statistic(x, y);
  std::vector<double> rx(x.size()), ry(y.size());
  std::vector<double> values;
  values.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      const auto j = static_cast<std::size_t>(rng.uniform_index(x.size()));
      rx[i] = x[j];
      ry[i] = y[j];
    }
    values.push_back(statistic(rx, ry));
  }
  return summarise(estimate, std::move(values), confidence);
}

}  // namespace hmdiv::stats
