#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "exec/parallel.hpp"
#include "exec/workspace.hpp"
#include "obs/obs.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace hmdiv::stats {

namespace {

/// Replicates per chunk: large enough to amortise scheduling over the
/// statistic evaluations, small enough that 2000 replicates still split
/// into ~125 chunks for wide machines.
constexpr std::size_t kReplicateGrain = 16;

/// Partially reorders `replicates` in place (workspace scratch — nothing
/// else reads it afterwards) and derives the interval summary. Quantiles
/// come from the shared selection-based stats::quantiles — no full sort,
/// and the same type-7 interpolation as the posterior credible intervals.
/// A NaN replicate yields a NaN interval and standard error: the statistic
/// is undefined, and a NaN must never be sorted to an arbitrary end.
BootstrapResult summarise(double estimate, std::span<double> replicates,
                          double confidence) {
  HMDIV_OBS_SCOPED_TIMER("stats.boot.summarise_ns");
  const double alpha = 1.0 - confidence;
  const double qs[2] = {alpha / 2.0, 1.0 - alpha / 2.0};
  double bounds[2];
  quantiles(replicates, qs, bounds);
  BootstrapResult out;
  out.estimate = estimate;
  out.lower = bounds[0];
  out.upper = bounds[1];
  OnlineStats stats;
  for (const double r : replicates) stats.add(r);
  out.standard_error = stats.stddev();
  return out;
}

void check_args(std::size_t sample_size, std::size_t replicates,
                double confidence) {
  if (sample_size == 0) throw std::invalid_argument("bootstrap: empty sample");
  if (replicates == 0) {
    throw std::invalid_argument("bootstrap: replicates == 0");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("bootstrap: confidence outside (0,1)");
  }
}

}  // namespace

BootstrapResult bootstrap_percentile(std::span<const double> sample,
                                     const Statistic& statistic, Rng& rng,
                                     std::size_t replicates, double confidence,
                                     const exec::Config& config) {
  check_args(sample.size(), replicates, confidence);
  HMDIV_OBS_SCOPED_TIMER("stats.bootstrap.run_ns");
  HMDIV_OBS_COUNT("stats.bootstrap.calls", 1);
  HMDIV_OBS_COUNT("stats.bootstrap.replicates", replicates);
  const double estimate = statistic(sample);
  // Replicate r resamples with its own substream Rng(base, r): the values
  // array is filled identically no matter how chunks map to threads.
  const std::uint64_t base = rng.next_u64();
  exec::Workspace& workspace = exec::thread_workspace();
  const exec::Workspace::Scope scope(workspace);
  const std::span<double> values = workspace.alloc<double>(replicates);
  exec::parallel_for_chunks(
      replicates, kReplicateGrain,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        // Per-worker scratch from the executing thread's arena, reused
        // across chunks after warm-up: every element is overwritten before
        // the statistic reads it, so reuse cannot leak data between
        // replicates (and the fill order is fixed by the substream, so
        // reuse cannot change the result either).
        exec::Workspace& local = exec::thread_workspace();
        const exec::Workspace::Scope chunk_scope(local);
        const std::span<double> resample =
            local.alloc<double>(sample.size());
        for (std::size_t r = begin; r < end; ++r) {
          Rng replicate_rng(base, r);
          for (double& v : resample) {
            v = sample[static_cast<std::size_t>(
                replicate_rng.uniform_index(sample.size()))];
          }
          values[r] = statistic(resample);
        }
      },
      config);
  return summarise(estimate, values, confidence);
}

BootstrapResult bootstrap_paired(std::span<const double> x,
                                 std::span<const double> y,
                                 const PairedStatistic& statistic, Rng& rng,
                                 std::size_t replicates, double confidence,
                                 const exec::Config& config) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("bootstrap_paired: size mismatch");
  }
  check_args(x.size(), replicates, confidence);
  HMDIV_OBS_SCOPED_TIMER("stats.bootstrap.run_ns");
  HMDIV_OBS_COUNT("stats.bootstrap.calls", 1);
  HMDIV_OBS_COUNT("stats.bootstrap.replicates", replicates);
  const double estimate = statistic(x, y);
  const std::uint64_t base = rng.next_u64();
  exec::Workspace& workspace = exec::thread_workspace();
  const exec::Workspace::Scope scope(workspace);
  const std::span<double> values = workspace.alloc<double>(replicates);
  exec::parallel_for_chunks(
      replicates, kReplicateGrain,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        // Same per-worker arena scratch as bootstrap_percentile.
        exec::Workspace& local = exec::thread_workspace();
        const exec::Workspace::Scope chunk_scope(local);
        const std::span<double> rx = local.alloc<double>(x.size());
        const std::span<double> ry = local.alloc<double>(y.size());
        for (std::size_t r = begin; r < end; ++r) {
          Rng replicate_rng(base, r);
          for (std::size_t i = 0; i < x.size(); ++i) {
            const auto j = static_cast<std::size_t>(
                replicate_rng.uniform_index(x.size()));
            rx[i] = x[j];
            ry[i] = y[j];
          }
          values[r] = statistic(rx, ry);
        }
      },
      config);
  return summarise(estimate, values, confidence);
}

}  // namespace hmdiv::stats
