#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "exec/parallel.hpp"
#include "obs/obs.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace hmdiv::stats {

namespace {

/// Replicates per chunk: large enough to amortise scheduling over the
/// statistic evaluations, small enough that 2000 replicates still split
/// into ~125 chunks for wide machines.
constexpr std::size_t kReplicateGrain = 16;

BootstrapResult summarise(double estimate, std::vector<double> replicates,
                          double confidence) {
  std::sort(replicates.begin(), replicates.end());
  const double alpha = 1.0 - confidence;
  BootstrapResult out;
  out.estimate = estimate;
  out.lower = sorted_quantile(replicates, alpha / 2.0);
  out.upper = sorted_quantile(replicates, 1.0 - alpha / 2.0);
  OnlineStats stats;
  for (const double r : replicates) stats.add(r);
  out.standard_error = stats.stddev();
  return out;
}

void check_args(std::size_t sample_size, std::size_t replicates,
                double confidence) {
  if (sample_size == 0) throw std::invalid_argument("bootstrap: empty sample");
  if (replicates == 0) {
    throw std::invalid_argument("bootstrap: replicates == 0");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("bootstrap: confidence outside (0,1)");
  }
}

}  // namespace

BootstrapResult bootstrap_percentile(std::span<const double> sample,
                                     const Statistic& statistic, Rng& rng,
                                     std::size_t replicates, double confidence,
                                     const exec::Config& config) {
  check_args(sample.size(), replicates, confidence);
  HMDIV_OBS_SCOPED_TIMER("stats.bootstrap.run_ns");
  HMDIV_OBS_COUNT("stats.bootstrap.calls", 1);
  HMDIV_OBS_COUNT("stats.bootstrap.replicates", replicates);
  const double estimate = statistic(sample);
  // Replicate r resamples with its own substream Rng(base, r): the values
  // vector is filled identically no matter how chunks map to threads.
  const std::uint64_t base = rng.next_u64();
  std::vector<double> values(replicates);
  exec::parallel_for_chunks(
      replicates, kReplicateGrain,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        // Per-worker scratch, reused across chunks: every element is
        // overwritten before the statistic reads it, so reuse cannot leak
        // data between replicates (and the fill order is fixed by the
        // substream, so reuse cannot change the result either).
        thread_local std::vector<double> resample;
        resample.resize(sample.size());
        for (std::size_t r = begin; r < end; ++r) {
          Rng replicate_rng(base, r);
          for (double& v : resample) {
            v = sample[static_cast<std::size_t>(
                replicate_rng.uniform_index(sample.size()))];
          }
          values[r] = statistic(resample);
        }
      },
      config);
  return summarise(estimate, std::move(values), confidence);
}

BootstrapResult bootstrap_paired(std::span<const double> x,
                                 std::span<const double> y,
                                 const PairedStatistic& statistic, Rng& rng,
                                 std::size_t replicates, double confidence,
                                 const exec::Config& config) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("bootstrap_paired: size mismatch");
  }
  check_args(x.size(), replicates, confidence);
  HMDIV_OBS_SCOPED_TIMER("stats.bootstrap.run_ns");
  HMDIV_OBS_COUNT("stats.bootstrap.calls", 1);
  HMDIV_OBS_COUNT("stats.bootstrap.replicates", replicates);
  const double estimate = statistic(x, y);
  const std::uint64_t base = rng.next_u64();
  std::vector<double> values(replicates);
  exec::parallel_for_chunks(
      replicates, kReplicateGrain,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        // Same per-worker scratch reuse as bootstrap_percentile.
        thread_local std::vector<double> rx;
        thread_local std::vector<double> ry;
        rx.resize(x.size());
        ry.resize(y.size());
        for (std::size_t r = begin; r < end; ++r) {
          Rng replicate_rng(base, r);
          for (std::size_t i = 0; i < x.size(); ++i) {
            const auto j = static_cast<std::size_t>(
                replicate_rng.uniform_index(x.size()));
            rx[i] = x[j];
            ry[i] = y[j];
          }
          values[r] = statistic(rx, ry);
        }
      },
      config);
  return summarise(estimate, std::move(values), confidence);
}

}  // namespace hmdiv::stats
