#include "stats/rng.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace hmdiv::stats {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state; SplitMix64 cannot emit
  // four consecutive zeros, but guard anyway for clarity.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Whiten seed and stream through independent SplitMix64 chains before
  // combining, then expand the combined word into the state. A raw XOR of
  // the two inputs would alias (s ^ k, 0) with (s, k); hashing each side
  // first removes that structure.
  std::uint64_t seed_chain = seed;
  std::uint64_t stream_chain = ~stream;
  std::uint64_t sm =
      splitmix64(seed_chain) ^ (splitmix64(stream_chain) + 0x9E3779B97F4A7C15ULL);
  for (auto& word : state_) word = splitmix64(sm);
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

void Rng::fill_uniform(std::span<double> out) noexcept {
  for (double& v : out) {
    v = static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }
}

void Rng::fill_normal(std::span<double> out) noexcept {
  for (double& v : out) v = normal();
}

namespace {

// Acklam's rational approximation to the inverse normal CDF (relative
// error ~1.15e-9 over (0,1)). special.cpp's normal_quantile refines the
// same rational with a Halley step for interval endpoints; here the raw
// rational is enough — a ~1e-9 perturbation of a random deviate is far
// below anything a distributional (KS/chi-square) test can resolve, and
// skipping the refinement keeps the central path free of libm calls so it
// vectorises.
constexpr double kIcdfA[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                              -2.759285104469687e+02, 1.383577518672690e+02,
                              -3.066479806614716e+01, 2.506628277459239e+00};
constexpr double kIcdfB[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                              -1.556989798598866e+02, 6.680131188771972e+01,
                              -1.328068155288572e+01};
constexpr double kIcdfC[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                              -2.400758277161838e+00, -2.549732539343734e+00,
                              4.374664141464968e+00,  2.938163982698783e+00};
constexpr double kIcdfD[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                              2.445134137142996e+00, 3.754408661907416e+00};
constexpr double kIcdfPLow = 0.02425;

// Same gating as special.cpp: target_clones resolves through an ifunc,
// which runs before sanitizer runtimes initialise; sanitized builds take
// the default codegen. Clone selection changes instruction scheduling
// only — the batched kernels promise distributional equivalence, and the
// same binary always picks the same clone, so determinism across thread
// counts is unaffected.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define HMDIV_RNG_TARGET_CLONES
#define HMDIV_RNG_TARGET_CLONES_AVX2
#else
#define HMDIV_RNG_TARGET_CLONES \
  __attribute__((target_clones("avx512f", "avx2", "default")))
// For the integer-heavy engine kernel only: GCC 12's avx512f codegen
// scalarises the interleaved state recurrence into GPRs (the resolver
// would still pick that clone on AVX-512 hardware), while the avx2 clone
// keeps all four state vectors register-resident. Cap it at AVX2.
#define HMDIV_RNG_TARGET_CLONES_AVX2 \
  __attribute__((target_clones("avx2", "default")))
#endif

/// Central-region rational; only valid for p in [kIcdfPLow, 1-kIcdfPLow]
/// but finite everywhere, so it can run unconditionally over a block.
inline double icdf_central(double p) noexcept {
  const double q = p - 0.5;
  const double r = q * q;
  const double num =
      (((((kIcdfA[0] * r + kIcdfA[1]) * r + kIcdfA[2]) * r + kIcdfA[3]) * r +
        kIcdfA[4]) *
           r +
       kIcdfA[5]) *
      q;
  const double den =
      ((((kIcdfB[0] * r + kIcdfB[1]) * r + kIcdfB[2]) * r + kIcdfB[3]) * r +
       kIcdfB[4]) *
          r +
      1.0;
  return num / den;
}

/// Lower-tail branch for p in (0, kIcdfPLow); returns a negative deviate.
/// The upper tail is the mirror image: -icdf_lower_tail(1 - p).
inline double icdf_lower_tail(double p) noexcept {
  const double q = std::sqrt(-2.0 * std::log(p));
  return (((((kIcdfC[0] * q + kIcdfC[1]) * q + kIcdfC[2]) * q + kIcdfC[3]) *
               q +
           kIcdfC[4]) *
              q +
          kIcdfC[5]) /
         ((((kIcdfD[0] * q + kIcdfD[1]) * q + kIcdfD[2]) * q + kIcdfD[3]) * q +
          1.0);
}

/// Stack-block lane width for the batched kernels: big enough to amortise
/// loop overheads and keep the vector units busy, small enough that the
/// scratch (a few such arrays) stays a handful of KiB of stack.
constexpr std::size_t kFillBlock = 256;

/// Pass 1 of fill_normal_icdf: shift the 53-bit uniforms off the endpoints
/// and run the central rational over every lane. Branch-free, so the whole
/// loop (including the one division) vectorises.
HMDIV_RNG_TARGET_CLONES void icdf_central_block(double* __restrict__ p,
                                        double* __restrict__ z,
                                                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) p[i] += 0x1.0p-54;
  for (std::size_t i = 0; i < n; ++i) z[i] = icdf_central(p[i]);
}

/// Fused pass 1 of fill_gamma: run the central inverse-CDF rational and
/// the Marsaglia–Tsang squeeze in one branch-free traversal. Writes the
/// normal deviate (z), the candidate value d·v³ and the squeeze flag per
/// lane. `p` and `u` come from fill_uniform_pair, already strictly inside
/// (0, 1). Lanes whose p landed in an inverse-CDF tail hold garbage until
/// the caller's scalar fixup.
HMDIV_RNG_TARGET_CLONES void gamma_candidate_block(
    const double* __restrict__ p, const double* __restrict__ u, double d,
    double c, double* __restrict__ z, double* __restrict__ value,
    unsigned char* __restrict__ ok, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const double zz = icdf_central(p[j]);
    z[j] = zz;
    const double v = 1.0 + c * zz;
    value[j] = d * (v * v * v);
    const double z2 = zz * zz;
    ok[j] =
        static_cast<unsigned char>((v > 0.0) & (u[j] < 1.0 - 0.0331 * z2 * z2));
  }
}

/// Lane-wise X/(X+Y) reduction of two gamma blocks to a beta block.
HMDIV_RNG_TARGET_CLONES void beta_combine_block(double* __restrict__ x,
                                                const double* __restrict__ y,
                                                std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) x[j] = x[j] / (x[j] + y[j]);
}

/// Interleave width of the vectorised uniform-pair kernel: 8 × 64-bit
/// states fill one AVX-512 register (two AVX2 registers), and GCC unrolls
/// the inner lane loop into straight vector code.
constexpr std::size_t kUniformLanes = 8;

/// Interleaved xoshiro256+ block: each lane j runs its own engine
/// (SoA state s0..s3), one output per lane per step, split into the
/// (hi, lo) mid-tread uniforms of fill_uniform_pair. xoshiro256+ instead
/// of ** because the + scrambler is a single add — the ** variant's 64-bit
/// multiplies have no AVX2 instruction and de-vectorise the loop. Its known
/// weakness (linear artefacts in the lowest output bits) lands in the low
/// bits of the squeeze uniform `u`, perturbing it below the 2⁻³⁰ level —
/// invisible to the distributional contract of the batched kernels. The
/// u64→double conversions use the 2⁵² exponent-offset trick because AVX2
/// has no unsigned-quad convert; the result is bit-identical to
/// static_cast (both halves are < 2³², exactly representable).
/// n must be a multiple of kUniformLanes.
HMDIV_RNG_TARGET_CLONES_AVX2 void uniform_pair_block(
    std::uint64_t* __restrict__ s0, std::uint64_t* __restrict__ s1,
    std::uint64_t* __restrict__ s2, std::uint64_t* __restrict__ s3,
    double* __restrict__ p, double* __restrict__ u, std::size_t n) {
  constexpr double kOffset = 0x1.0p52 - 0.5;       // folds the +0.5 mid-tread
  constexpr std::uint64_t kExp52 = 0x4330000000000000ULL;  // 2⁵² exponent
  std::uint64_t r[kUniformLanes];
  // Two inner loops, not one: mixing the integer state recurrence with the
  // double conversions in a single body makes GCC's SLP vectoriser bail on
  // the conversion half and extract lanes to scalar registers.
  for (std::size_t i = 0; i < n; i += kUniformLanes) {
    for (std::size_t j = 0; j < kUniformLanes; ++j) r[j] = s0[j] + s3[j];
    for (std::size_t j = 0; j < kUniformLanes; ++j) {
      const std::uint64_t t = s1[j] << 17;
      s2[j] ^= s0[j];
      s3[j] ^= s1[j];
      s1[j] ^= s2[j];
      s0[j] ^= s3[j];
      s2[j] ^= t;
      s3[j] = rotl(s3[j], 45);
    }
    for (std::size_t j = 0; j < kUniformLanes; ++j) {
      const std::uint64_t hi = (r[j] >> 32) | kExp52;
      const std::uint64_t lo = (r[j] & 0xFFFFFFFFULL) | kExp52;
      p[i + j] = (std::bit_cast<double>(hi) - kOffset) * 0x1.0p-32;
      u[i + j] = (std::bit_cast<double>(lo) - kOffset) * 0x1.0p-32;
    }
  }
}

/// Exact Marsaglia–Tsang decision for a lane that failed the squeeze:
/// accept iff ln(u) < 0.5·x² + d·(1 − v³ + ln v³), v > 0 (u == 0 rejects,
/// matching gamma_core's guard). Before paying for libm logs, two cheap
/// exact inequalities resolve almost every lane:
///   ln u ≤ u − 1            and   ln u ≥ 1 − 1/u          (u > 0)
///   ln v ≥ 2(v−1)/(v+1)     (v ≥ 1),   ln v ≥ 1 − 1/v     (v ≤ 1)
///   ln v ≤ v − 1            (all v > 0)
/// Their gaps are O((v−1)³) and O((u−1)²) — and squeeze-failed lanes have
/// u near 1 — so only the sliver where the bounds bracket the threshold
/// still calls std::log. (The bounds are evaluated in floating point, so a
/// lane within ~1 ulp of the exact threshold may flip; the batched kernels
/// promise distributional equivalence, and this is far below what any
/// distributional test can resolve.)
inline bool gamma_accept_slow(double u, double x2, double d,
                              double v) noexcept {
  if (u <= 0.0) return false;
  const double v3 = v * v * v;
  const double base = 0.5 * x2 + d * (1.0 - v3);
  const double lb_lnv =
      v >= 1.0 ? 2.0 * (v - 1.0) / (v + 1.0) : 1.0 - 1.0 / v;
  if (u - 1.0 < base + 3.0 * d * lb_lnv) return true;
  if (1.0 - 1.0 / u > base + 3.0 * d * (v - 1.0)) return false;
  return std::log(u) < base + d * std::log(v3);
}

}  // namespace

void Rng::fill_uniform_pair(std::span<double> p, double* u) noexcept {
  const std::size_t n = p.size();
  std::size_t start = 0;
  if (n >= kUniformLanes * 8) {
    // Large span (the main candidate blocks): hand the bulk to the
    // interleaved kernel. Lane states are derived from ONE member-engine
    // draw through a SplitMix64 chain — the same whitening the (seed,
    // stream) constructor uses — so the lanes are as unrelated as
    // different seeds and the expansion is deterministic: one call, one
    // member step, same outputs every time.
    std::uint64_t sm = next_u64();
    std::uint64_t s0[kUniformLanes];
    std::uint64_t s1[kUniformLanes];
    std::uint64_t s2[kUniformLanes];
    std::uint64_t s3[kUniformLanes];
    for (std::size_t j = 0; j < kUniformLanes; ++j) {
      s0[j] = splitmix64(sm);
      s1[j] = splitmix64(sm);
      s2[j] = splitmix64(sm);
      s3[j] = splitmix64(sm);
      if (s0[j] == 0 && s1[j] == 0 && s2[j] == 0 && s3[j] == 0) s0[j] = 1;
    }
    start = n - n % kUniformLanes;
    uniform_pair_block(s0, s1, s2, s3, p.data(), u, start);
  }
  // Short spans (refill rounds touch only the few rejected lanes) and the
  // vector remainder: step the member engine directly.
  for (std::size_t j = start; j < n; ++j) {
    const std::uint64_t r = next_u64();
    p[j] = (static_cast<double>(r >> 32) + 0.5) * 0x1.0p-32;
    u[j] = (static_cast<double>(r & 0xFFFFFFFFULL) + 0.5) * 0x1.0p-32;
  }
}

void Rng::fill_normal_icdf(std::span<double> out) noexcept {
  double p[kFillBlock];
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t n = std::min(kFillBlock, out.size() - start);
    fill_uniform({p, n});
    double* z = out.data() + start;
    // fill_uniform yields k * 2^-53 with k in [0, 2^53): pass 1 shifts by
    // half an ulp to (k + 0.5) * 2^-53, strictly inside (0, 1), so the
    // tail logs below never see 0 and no lane can produce an infinity;
    // then the central rational runs over every lane. Tail lanes get a
    // finite garbage value, fixed up in pass 2.
    icdf_central_block(p, z, n);
    // Pass 2: ~4.85% of lanes fall in a tail and take the scalar log path.
    for (std::size_t i = 0; i < n; ++i) {
      if (p[i] < kIcdfPLow) {
        z[i] = icdf_lower_tail(p[i]);
      } else if (p[i] > 1.0 - kIcdfPLow) {
        z[i] = -icdf_lower_tail(1.0 - p[i]);
      }
    }
    start += n;
  }
}

void Rng::fill_gamma(const GammaPrep& prep, std::span<double> out) noexcept {
  double p[kFillBlock];
  double z[kFillBlock];
  double u[kFillBlock];
  std::uint32_t idx[kFillBlock];
  unsigned char ok[kFillBlock];
  const double d = prep.d;
  const double c = prep.c;
  for (std::size_t start = 0; start < out.size(); start += kFillBlock) {
    const std::size_t m = std::min(kFillBlock, out.size() - start);
    double* block = out.data() + start;
    fill_uniform_pair({p, m}, u);
    // Pass 1 (vectorised, fused): inverse-CDF normal + candidate d·v³ +
    // squeeze flag in one traversal.
    gamma_candidate_block(p, u, d, c, z, block, ok, m);
    // Pass 2 (one scalar traversal): the ~4.85% of lanes whose uniform
    // fell in an inverse-CDF tail redo the candidate with the scalar tail
    // branch; lanes that failed the squeeze get the exact log test. The
    // survivors' candidate values are already in place; true rejections
    // (v <= 0 or log test failed) are compacted into `idx` for refill.
    std::size_t pending = 0;
    for (std::size_t j = 0; j < m; ++j) {
      double zz = z[j];
      if (p[j] < kIcdfPLow || p[j] > 1.0 - kIcdfPLow) {
        zz = p[j] < kIcdfPLow ? icdf_lower_tail(p[j])
                              : -icdf_lower_tail(1.0 - p[j]);
        const double v = 1.0 + c * zz;
        const double z2 = zz * zz;
        if (v > 0.0 && (u[j] < 1.0 - 0.0331 * z2 * z2 ||
                        gamma_accept_slow(u[j], z2, d, v))) {
          block[j] = d * (v * v * v);
          continue;
        }
      } else if (ok[j]) {
        continue;
      } else {
        const double v = 1.0 + c * zz;
        if (v > 0.0 && gamma_accept_slow(u[j], zz * zz, d, v)) {
          continue;  // block[j] already holds d·v³
        }
      }
      idx[pending++] = static_cast<std::uint32_t>(j);
    }
    // Refill rounds: regenerate candidates only for the rejected lanes
    // (typically a few percent, so one short round ends almost all blocks).
    while (pending > 0) {
      fill_uniform_pair({p, pending}, u);
      std::size_t rejected = 0;
      for (std::size_t k = 0; k < pending; ++k) {
        const std::uint32_t j = idx[k];
        const double pp = p[k];
        const double zz = pp < kIcdfPLow ? icdf_lower_tail(pp)
                          : pp > 1.0 - kIcdfPLow
                              ? -icdf_lower_tail(1.0 - pp)
                              : icdf_central(pp);
        const double v = 1.0 + c * zz;
        if (v > 0.0) {
          const double uu = u[k];
          const double z2 = zz * zz;
          if (uu < 1.0 - 0.0331 * z2 * z2 ||
              gamma_accept_slow(uu, z2, d, v)) {
            block[j] = d * (v * v * v);
            continue;
          }
        }
        idx[rejected++] = j;
      }
      pending = rejected;
    }
    if (prep.boosted) {
      // Shape < 1: scale the Gamma(shape+1) block by u^(1/shape), the
      // Marsaglia–Tsang boost. The scalar path draws its uniform before
      // the gamma; the batched path draws the whole block after — a
      // different stream mapping, same distribution.
      fill_uniform({u, m});
      for (std::size_t j = 0; j < m; ++j) {
        block[j] *= std::pow(u[j], prep.inv_shape);
      }
    }
  }
}

void Rng::fill_beta(const GammaPrep& a, const GammaPrep& b,
                    std::span<double> out) noexcept {
  double y[kFillBlock];
  for (std::size_t start = 0; start < out.size(); start += kFillBlock) {
    const std::size_t m = std::min(kFillBlock, out.size() - start);
    double* block = out.data() + start;
    fill_gamma(a, {block, m});
    fill_gamma(b, {y, m});
    beta_combine_block(block, y, m);
  }
}

double Rng::uniform(double lo, double hi) {
  if (!(lo <= hi)) throw std::invalid_argument("Rng::uniform: lo > hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform_index: bound == 0");
  // Rejection sampling over the largest multiple of `bound` <= 2^64.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double sigma) {
  if (sigma < 0.0) throw std::invalid_argument("Rng::normal: sigma < 0");
  return mean + sigma * normal();
}

Rng::GammaPrep::GammaPrep(double shape) {
  if (shape <= 0.0) throw std::invalid_argument("Rng::GammaPrep: shape <= 0");
  boosted = shape < 1.0;
  const double effective = boosted ? shape + 1.0 : shape;
  d = effective - 1.0 / 3.0;
  c = 1.0 / std::sqrt(9.0 * d);
  inv_shape = 1.0 / shape;
}

namespace {

/// The Marsaglia–Tsang acceptance loop for effective shape >= 1, with the
/// per-shape constants hoisted out. Both gamma overloads funnel here so
/// their streams and values agree exactly.
double gamma_core(Rng& rng, double d, double c) {
  for (;;) {
    double x, v;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

}  // namespace

double Rng::gamma(double shape) {
  if (shape <= 0.0) throw std::invalid_argument("Rng::gamma: shape <= 0");
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia–Tsang note). The uniform
    // is drawn *before* the boosted gamma, and GammaPrep's path preserves
    // that order.
    const double u = uniform();
    const double d = (shape + 1.0) - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    return gamma_core(*this, d, c) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  return gamma_core(*this, d, c);
}

double Rng::gamma(const GammaPrep& prep) {
  if (prep.boosted) {
    const double u = uniform();
    return gamma_core(*this, prep.d, prep.c) * std::pow(u, prep.inv_shape);
  }
  return gamma_core(*this, prep.d, prep.c);
}

double Rng::beta(double a, double b) {
  if (a <= 0.0 || b <= 0.0) throw std::invalid_argument("Rng::beta: a,b <= 0");
  const double x = gamma(a);
  const double y = gamma(b);
  return x / (x + y);
}

double Rng::beta(const GammaPrep& a, const GammaPrep& b) {
  const double x = gamma(a);
  const double y = gamma(b);
  return x / (x + y);
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("Rng::binomial: p outside [0,1]");
  std::uint64_t successes = 0;
  for (std::uint64_t i = 0; i < n; ++i) successes += bernoulli(p) ? 1 : 0;
  return successes;
}

std::size_t Rng::discrete(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("Rng::discrete: weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::discrete: all weights are zero");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Numerical edge: land on the last bucket.
}

void Rng::jump() noexcept {
  // Jump polynomial published with xoshiro256** (Blackman & Vigna):
  // advances the state by exactly 2^128 steps of next_u64().
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> gathered{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if ((word & (1ULL << bit)) != 0) {
        for (std::size_t i = 0; i < state_.size(); ++i) {
          gathered[i] ^= state_[i];
        }
      }
      (void)next_u64();
    }
  }
  state_ = gathered;
  has_spare_normal_ = false;
}

Rng Rng::split(std::uint64_t stream_id) const noexcept {
  // Key the child stream on the parent's full state plus the stream id.
  std::uint64_t mix = stream_id ^ 0xA5A5A5A55A5A5A5AULL;
  for (const std::uint64_t word : state_) mix ^= splitmix64(mix) + word;
  return Rng(mix);
}

}  // namespace hmdiv::stats
