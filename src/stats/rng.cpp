#include "stats/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace hmdiv::stats {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state; SplitMix64 cannot emit
  // four consecutive zeros, but guard anyway for clarity.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Whiten seed and stream through independent SplitMix64 chains before
  // combining, then expand the combined word into the state. A raw XOR of
  // the two inputs would alias (s ^ k, 0) with (s, k); hashing each side
  // first removes that structure.
  std::uint64_t seed_chain = seed;
  std::uint64_t stream_chain = ~stream;
  std::uint64_t sm =
      splitmix64(seed_chain) ^ (splitmix64(stream_chain) + 0x9E3779B97F4A7C15ULL);
  for (auto& word : state_) word = splitmix64(sm);
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

void Rng::fill_uniform(std::span<double> out) noexcept {
  for (double& v : out) {
    v = static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }
}

void Rng::fill_normal(std::span<double> out) noexcept {
  for (double& v : out) v = normal();
}

double Rng::uniform(double lo, double hi) {
  if (!(lo <= hi)) throw std::invalid_argument("Rng::uniform: lo > hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform_index: bound == 0");
  // Rejection sampling over the largest multiple of `bound` <= 2^64.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double sigma) {
  if (sigma < 0.0) throw std::invalid_argument("Rng::normal: sigma < 0");
  return mean + sigma * normal();
}

Rng::GammaPrep::GammaPrep(double shape) {
  if (shape <= 0.0) throw std::invalid_argument("Rng::GammaPrep: shape <= 0");
  boosted = shape < 1.0;
  const double effective = boosted ? shape + 1.0 : shape;
  d = effective - 1.0 / 3.0;
  c = 1.0 / std::sqrt(9.0 * d);
  inv_shape = 1.0 / shape;
}

namespace {

/// The Marsaglia–Tsang acceptance loop for effective shape >= 1, with the
/// per-shape constants hoisted out. Both gamma overloads funnel here so
/// their streams and values agree exactly.
double gamma_core(Rng& rng, double d, double c) {
  for (;;) {
    double x, v;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

}  // namespace

double Rng::gamma(double shape) {
  if (shape <= 0.0) throw std::invalid_argument("Rng::gamma: shape <= 0");
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia–Tsang note). The uniform
    // is drawn *before* the boosted gamma, and GammaPrep's path preserves
    // that order.
    const double u = uniform();
    const double d = (shape + 1.0) - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    return gamma_core(*this, d, c) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  return gamma_core(*this, d, c);
}

double Rng::gamma(const GammaPrep& prep) {
  if (prep.boosted) {
    const double u = uniform();
    return gamma_core(*this, prep.d, prep.c) * std::pow(u, prep.inv_shape);
  }
  return gamma_core(*this, prep.d, prep.c);
}

double Rng::beta(double a, double b) {
  if (a <= 0.0 || b <= 0.0) throw std::invalid_argument("Rng::beta: a,b <= 0");
  const double x = gamma(a);
  const double y = gamma(b);
  return x / (x + y);
}

double Rng::beta(const GammaPrep& a, const GammaPrep& b) {
  const double x = gamma(a);
  const double y = gamma(b);
  return x / (x + y);
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("Rng::binomial: p outside [0,1]");
  std::uint64_t successes = 0;
  for (std::uint64_t i = 0; i < n; ++i) successes += bernoulli(p) ? 1 : 0;
  return successes;
}

std::size_t Rng::discrete(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("Rng::discrete: weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::discrete: all weights are zero");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Numerical edge: land on the last bucket.
}

void Rng::jump() noexcept {
  // Jump polynomial published with xoshiro256** (Blackman & Vigna):
  // advances the state by exactly 2^128 steps of next_u64().
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> gathered{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if ((word & (1ULL << bit)) != 0) {
        for (std::size_t i = 0; i < state_.size(); ++i) {
          gathered[i] ^= state_[i];
        }
      }
      (void)next_u64();
    }
  }
  state_ = gathered;
  has_spare_normal_ = false;
}

Rng Rng::split(std::uint64_t stream_id) const noexcept {
  // Key the child stream on the parent's full state plus the stream id.
  std::uint64_t mix = stream_id ^ 0xA5A5A5A55A5A5A5AULL;
  for (const std::uint64_t word : state_) mix ^= splitmix64(mix) + word;
  return Rng(mix);
}

}  // namespace hmdiv::stats
