#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace hmdiv::stats {

void KahanAccumulator::add(double value) noexcept {
  const double t = sum_ + value;
  if (std::fabs(sum_) >= std::fabs(value)) {
    compensation_ += (sum_ - t) + value;
  } else {
    compensation_ += (value - t) + sum_;
  }
  sum_ = t;
}

void OnlineStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double OnlineStats::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::min() const noexcept { return min_; }
double OnlineStats::max() const noexcept { return max_; }

double mean(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("mean: empty input");
  KahanAccumulator acc;
  for (const double v : values) acc.add(v);
  return acc.total() / static_cast<double>(values.size());
}

double sample_variance(std::span<const double> values) {
  if (values.size() < 2) {
    throw std::invalid_argument("sample_variance: need at least two values");
  }
  const double m = mean(values);
  KahanAccumulator acc;
  for (const double v : values) acc.add((v - m) * (v - m));
  return acc.total() / static_cast<double>(values.size() - 1);
}

namespace {

void check_weights(std::span<const double> values,
                   std::span<const double> weights, const char* who) {
  if (values.size() != weights.size()) {
    throw std::invalid_argument(std::string(who) + ": size mismatch");
  }
  if (values.empty()) {
    throw std::invalid_argument(std::string(who) + ": empty input");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument(std::string(who) +
                                  ": weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument(std::string(who) + ": all weights are zero");
  }
}

double weight_total(std::span<const double> weights) {
  KahanAccumulator acc;
  for (const double w : weights) acc.add(w);
  return acc.total();
}

}  // namespace

double weighted_mean(std::span<const double> values,
                     std::span<const double> weights) {
  check_weights(values, weights, "weighted_mean");
  KahanAccumulator acc;
  for (std::size_t i = 0; i < values.size(); ++i) {
    acc.add(weights[i] * values[i]);
  }
  return acc.total() / weight_total(weights);
}

double weighted_covariance(std::span<const double> x,
                           std::span<const double> y,
                           std::span<const double> weights) {
  check_weights(x, weights, "weighted_covariance");
  if (y.size() != x.size()) {
    throw std::invalid_argument("weighted_covariance: size mismatch");
  }
  const double mx = weighted_mean(x, weights);
  const double my = weighted_mean(y, weights);
  KahanAccumulator acc;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc.add(weights[i] * (x[i] - mx) * (y[i] - my));
  }
  return acc.total() / weight_total(weights);
}

double weighted_correlation(std::span<const double> x,
                            std::span<const double> y,
                            std::span<const double> weights) {
  const double cxy = weighted_covariance(x, y, weights);
  const double vx = weighted_covariance(x, x, weights);
  const double vy = weighted_covariance(y, y, weights);
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cxy / std::sqrt(vx * vy);
}

double correlation(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("correlation: size mismatch");
  }
  const std::vector<double> w(x.size(), 1.0);
  return weighted_correlation(x, y, w);
}

double sorted_quantile(std::span<const double> sorted, double q) {
  if (sorted.empty()) {
    throw std::invalid_argument("sorted_quantile: empty input");
  }
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("sorted_quantile: q outside [0,1]");
  }
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto below = static_cast<std::size_t>(position);
  const std::size_t above = std::min(below + 1, sorted.size() - 1);
  const double fraction = position - static_cast<double>(below);
  return sorted[below] * (1.0 - fraction) + sorted[above] * fraction;
}

std::vector<double> quantiles(std::span<const double> values,
                              std::span<const double> qs) {
  std::vector<double> sorted(values.begin(), values.end());
  std::vector<double> out(qs.size());
  std::vector<double> ascending(qs.begin(), qs.end());
  std::sort(ascending.begin(), ascending.end());
  std::vector<double> picked(qs.size());
  quantiles(sorted, ascending, picked);
  // Map results back to the caller's (possibly unsorted) probability order.
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto it =
        std::lower_bound(ascending.begin(), ascending.end(), qs[i]);
    out[i] = picked[static_cast<std::size_t>(it - ascending.begin())];
  }
  return out;
}

void quantiles(std::span<double> values, std::span<const double> qs,
               std::span<double> out) {
  if (values.empty()) throw std::invalid_argument("quantiles: empty input");
  if (out.size() != qs.size()) {
    throw std::invalid_argument("quantiles: out/qs size mismatch");
  }
  for (std::size_t i = 0; i < qs.size(); ++i) {
    if (!(qs[i] >= 0.0 && qs[i] <= 1.0)) {
      throw std::invalid_argument("quantiles: q outside [0,1]");
    }
    if (i > 0 && qs[i] < qs[i - 1]) {
      throw std::invalid_argument("quantiles: qs must be ascending");
    }
  }
  // nth_element requires a strict weak ordering, which NaN breaks; a NaN
  // replicate also means the statistic is undefined, so propagate it.
  for (const double v : values) {
    if (std::isnan(v)) {
      std::fill(out.begin(), out.end(),
                std::numeric_limits<double>::quiet_NaN());
      return;
    }
  }
  const std::size_t n = values.size();
  std::size_t done = 0;  // values[0..done) already hold final order stats
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const double position = qs[i] * static_cast<double>(n - 1);
    const auto below = static_cast<std::size_t>(position);
    const double fraction = position - static_cast<double>(below);
    if (below >= done) {
      std::nth_element(values.begin() + static_cast<std::ptrdiff_t>(done),
                       values.begin() + static_cast<std::ptrdiff_t>(below),
                       values.end());
      done = below + 1;
    }
    double result = values[below];
    if (fraction > 0.0 && below + 1 < n) {
      // The (below+1)-th order statistic is the minimum of the tail left
      // by nth_element — no second selection pass needed.
      const double above =
          *std::min_element(values.begin() + static_cast<std::ptrdiff_t>(done),
                            values.end());
      result = result * (1.0 - fraction) + above * fraction;
    }
    out[i] = result;
  }
}

}  // namespace hmdiv::stats
