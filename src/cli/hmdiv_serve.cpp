// hmdiv_serve — long-running analysis daemon over a TCP socket.
//
// Usage:
//   hmdiv_serve --model MODEL_FILE --trial PROFILE_FILE --field PROFILE_FILE
//               [--bind HOST:PORT] [--port N] [--address A] [--max-queue N]
//               [--max-concurrent N] [--max-conns N] [--threads N]
//               [--deadline-ms N] [--whatif-cache N] [--sweep-cache N]
//               [--batch-max N] [--batch-wait-us N] [--compute-threads N]
//               [--no-obs]
//   hmdiv_serve --example [--port N] ...
//
// Protocol: newline-delimited JSON (one request object per line; see
// DESIGN.md §13). Endpoints: analyze, whatif, sweep, minimise, uq,
// compare, health, metrics, reload, shard (the last upgrades the
// connection to the binary cluster-worker protocol, DESIGN.md §15).
//
// The daemon prints exactly one "listening on <address>:<port>" line to
// stdout once the socket is bound (--port 0 binds an ephemeral port and
// reports the real one), then serves until SIGTERM/SIGINT. On signal it
// stops accepting, answers every fully received request, closes every
// connection and exits 0.
#include <csignal>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "cli/parse_util.hpp"
#include "core/model_io.hpp"
#include "core/paper_example.hpp"
#include "core/tradeoff_shard.hpp"
#include "core/uncertainty_shard.hpp"
#include "exec/config.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "sim/trial_shard.hpp"

namespace {

using namespace hmdiv;

[[noreturn]] void usage(int exit_code) {
  std::cerr
      << "usage: hmdiv_serve --model FILE --trial FILE --field FILE\n"
         "                   [--bind HOST:PORT] [--port N] [--address A]\n"
         "                   [--max-queue N]\n"
         "                   [--max-concurrent N] [--max-conns N]\n"
         "                   [--threads N] [--deadline-ms N]\n"
         "                   [--whatif-cache N] [--sweep-cache N]\n"
         "                   [--batch-max N] [--batch-wait-us N]\n"
         "                   [--compute-threads N] [--no-obs]\n"
         "       hmdiv_serve --example [--port N] ...\n"
         "\n"
         "Serves the analysis endpoints (analyze, whatif, sweep, minimise,\n"
         "uq, compare, health, metrics, reload) over a newline-delimited\n"
         "JSON TCP protocol.\n"
         "--bind HOST:PORT (or [IPV6]:PORT) sets the listen address and\n"
         "port together; --port N and --address A set them separately\n"
         "(defaults 0 = ephemeral and 127.0.0.1; the bound port is\n"
         "printed on startup).\n"
         "--max-concurrent N caps requests executing at once (default:\n"
         "hardware threads); --max-queue N bounds the admission queue\n"
         "beyond which requests are shed with a structured error\n"
         "(default 64). --max-conns N caps open connections (default 64).\n"
         "--threads N is the per-request compute thread budget (default\n"
         "1; requests are already parallel across connections).\n"
         "--deadline-ms N is the default per-request deadline (default\n"
         "1000).\n"
         "--whatif-cache/--sweep-cache N size the shared result caches\n"
         "(entries; 0 disables). --no-obs disables the serve.* metrics.\n"
         "--batch-max N coalesces up to N concurrent requests per\n"
         "endpoint onto the batched kernels (default 1 = off);\n"
         "--batch-wait-us N bounds how long a forming batch waits for\n"
         "company (default 100; never past a request deadline);\n"
         "--compute-threads N sizes the batching worker pool (default 1).\n";
  std::exit(exit_code);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "hmdiv_serve: cannot open '" << path << "'\n";
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

serve::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_path;
  std::string trial_path;
  std::string field_path;
  bool example = false;
  bool obs_enabled = true;
  serve::ServiceOptions service_options;
  serve::ServerOptions server_options;

  const auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(2);
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--model") {
      model_path = next(i);
    } else if (arg == "--trial") {
      trial_path = next(i);
    } else if (arg == "--field") {
      field_path = next(i);
    } else if (arg == "--example") {
      example = true;
    } else if (arg == "--port") {
      server_options.port = static_cast<std::uint16_t>(cli::parse_bounded_ulong(
          "hmdiv_serve", "--port", next(i), 0, 65535));
    } else if (arg == "--address") {
      server_options.bind_address = next(i);
    } else if (arg == "--bind") {
      cli::HostPort bind =
          cli::parse_host_port("hmdiv_serve", "--bind", next(i));
      server_options.bind_address = std::move(bind.host);
      server_options.port = bind.port;
    } else if (arg == "--max-queue") {
      service_options.max_queue = cli::parse_bounded_ulong(
          "hmdiv_serve", "--max-queue", next(i), 0, 1'000'000);
    } else if (arg == "--max-concurrent") {
      service_options.max_concurrent = cli::parse_bounded_ulong(
          "hmdiv_serve", "--max-concurrent", next(i), 1, 4096);
    } else if (arg == "--max-conns") {
      server_options.max_connections = cli::parse_bounded_ulong(
          "hmdiv_serve", "--max-conns", next(i), 1, 65536);
    } else if (arg == "--threads") {
      service_options.compute_threads =
          static_cast<unsigned>(cli::parse_bounded_ulong(
              "hmdiv_serve", "--threads", next(i), 1, 4096));
    } else if (arg == "--deadline-ms") {
      service_options.default_deadline_ms = cli::parse_bounded_ulong(
          "hmdiv_serve", "--deadline-ms", next(i), 1, 86'400'000);
    } else if (arg == "--whatif-cache") {
      service_options.whatif_cache_capacity = cli::parse_bounded_ulong(
          "hmdiv_serve", "--whatif-cache", next(i), 0, 10'000'000);
    } else if (arg == "--sweep-cache") {
      service_options.sweep_cache_capacity = cli::parse_bounded_ulong(
          "hmdiv_serve", "--sweep-cache", next(i), 0, 1'000'000);
    } else if (arg == "--batch-max") {
      service_options.batch_max = cli::parse_bounded_ulong(
          "hmdiv_serve", "--batch-max", next(i), 1, 4096);
    } else if (arg == "--batch-wait-us") {
      service_options.batch_wait_us = cli::parse_bounded_ulong(
          "hmdiv_serve", "--batch-wait-us", next(i), 0, 1'000'000);
    } else if (arg == "--compute-threads") {
      service_options.batch_workers =
          static_cast<unsigned>(cli::parse_bounded_ulong(
              "hmdiv_serve", "--compute-threads", next(i), 1, 1024));
    } else if (arg == "--no-obs") {
      obs_enabled = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::cerr << "hmdiv_serve: unknown flag '" << arg << "'\n";
      usage(2);
    }
  }

  if (!example && (model_path.empty() || trial_path.empty() ||
                   field_path.empty())) {
    usage(2);
  }

  obs::set_enabled(obs_enabled);

  // Anchor the shard-workload translation units (static registrations in
  // static libraries are dead-stripped unless something in the executable
  // references them) so the "shard" endpoint can serve every workload.
  sim::ensure_trial_shard_registered();
  core::ensure_tradeoff_shard_registered();
  core::ensure_uncertainty_shard_registered();

  std::optional<serve::Service> service;
  try {
    if (example) {
      service.emplace(core::paper::example_model(),
                      core::paper::trial_profile(),
                      core::paper::field_profile(), service_options);
    } else {
      service.emplace(core::parse_sequential_model(read_file(model_path)),
                      core::parse_demand_profile(read_file(trial_path)),
                      core::parse_demand_profile(read_file(field_path)),
                      service_options);
    }
  } catch (const std::exception& e) {
    std::cerr << "hmdiv_serve: " << e.what() << "\n";
    return 2;
  }

  serve::Server server(*service, server_options);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "hmdiv_serve: " << e.what() << "\n";
    return 2;
  }
  g_server = &server;

  struct sigaction action{};
  action.sa_handler = handle_signal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: the accept/connection poll loops observe shutdown via
  // the wake pipe, not via EINTR, so restart semantics are irrelevant —
  // but leaving it off exercises the EINTR-retry paths.
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  std::cout << "hmdiv_serve: listening on " << server_options.bind_address
            << ":" << server.port() << std::endl;

  server.wait();
  g_server = nullptr;
  std::cout << "hmdiv_serve: drained, exiting\n";
  return 0;
}
