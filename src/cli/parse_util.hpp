// Shared hardened option parsing for the hmdiv command-line tools.
//
// Every integer-valued flag across the CLIs wants the same rejection
// table: empty values, leading/trailing garbage ("2x" must not pass as
// 2), negatives (strtoul silently wraps them into huge values), overflow
// (ERANGE) and out-of-range counts all exit 2 with a message that names
// the flag, the accepted range AND the offending value — hmdiv_analyze
// used to carry four near-identical copies of this logic, which is
// exactly how the error messages drifted. One helper, one message shape.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

namespace hmdiv::cli {

/// Parses `value` as an unsigned decimal integer in [lo, hi]. On any
/// violation prints
///   <program>: <flag> expects an integer in [<lo>, <hi>], got '<value>'
/// to stderr and exits 2 — malformed input must never silently
/// misconfigure a run (or a long-lived server).
/// A parsed "host:port" endpoint. `host` keeps the textual form handed to
/// getaddrinfo later (IPv6 literals without the brackets).
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

[[nodiscard]] inline unsigned long parse_bounded_ulong(
    const char* program, const char* flag, const std::string& value,
    unsigned long lo, unsigned long hi) {
  char* end = nullptr;
  errno = 0;
  const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
  // strtoul accepts leading whitespace and '-'; neither is a sane spelling
  // of a count, and "-1" would otherwise wrap to ULONG_MAX and be caught
  // only when hi is small. Reject any value that does not start with a
  // digit outright.
  const bool starts_with_digit =
      !value.empty() && value.front() >= '0' && value.front() <= '9';
  if (!starts_with_digit || end != value.c_str() + value.size() ||
      errno == ERANGE || parsed < lo || parsed > hi) {
    std::cerr << program << ": " << flag << " expects an integer in [" << lo
              << ", " << hi << "], got '" << value << "'\n";
    std::exit(2);
  }
  return parsed;
}

/// Parses `value` as "HOST:PORT" or "[IPV6]:PORT" (the bracketed form is
/// required for IPv6 literals — a bare one is ambiguous with the port
/// separator). Port 0 is accepted: it means "ephemeral" in bind contexts
/// (callers that need a connectable port reject 0 themselves, naming the
/// element). On any violation prints
///   <program>: <flag> expects HOST:PORT or [IPV6]:PORT, got '<value>'
/// to stderr and exits 2 — the same fail-fast contract as
/// parse_bounded_ulong, shared by hmdiv_serve --bind and hmdiv_analyze
/// --workers so the two tools can never drift on what an address is.
[[nodiscard]] inline HostPort parse_host_port(const char* program,
                                              const char* flag,
                                              const std::string& value) {
  const auto reject = [&]() -> HostPort {
    std::cerr << program << ": " << flag
              << " expects HOST:PORT or [IPV6]:PORT, got '" << value << "'\n";
    std::exit(2);
  };
  std::string host;
  std::string port_text;
  if (!value.empty() && value.front() == '[') {
    const std::size_t close = value.find(']');
    if (close == std::string::npos || close == 1 ||
        close + 1 >= value.size() || value[close + 1] != ':') {
      return reject();
    }
    host = value.substr(1, close - 1);
    port_text = value.substr(close + 2);
  } else {
    const std::size_t colon = value.find(':');
    // A second colon means an unbracketed IPv6 literal (or garbage);
    // require the bracketed form so "::1:8080" can't parse as host "::1".
    if (colon == std::string::npos || colon == 0 ||
        value.find(':', colon + 1) != std::string::npos) {
      return reject();
    }
    host = value.substr(0, colon);
    port_text = value.substr(colon + 1);
  }
  const bool digits_only =
      !port_text.empty() &&
      port_text.find_first_not_of("0123456789") == std::string::npos;
  if (!digits_only) return reject();
  errno = 0;
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (end != port_text.c_str() + port_text.size() || errno == ERANGE ||
      port > 65535) {
    return reject();
  }
  return HostPort{std::move(host), static_cast<std::uint16_t>(port)};
}

}  // namespace hmdiv::cli
