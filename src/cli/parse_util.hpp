// Shared hardened option parsing for the hmdiv command-line tools.
//
// Every integer-valued flag across the CLIs wants the same rejection
// table: empty values, leading/trailing garbage ("2x" must not pass as
// 2), negatives (strtoul silently wraps them into huge values), overflow
// (ERANGE) and out-of-range counts all exit 2 with a message that names
// the flag, the accepted range AND the offending value — hmdiv_analyze
// used to carry four near-identical copies of this logic, which is
// exactly how the error messages drifted. One helper, one message shape.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>

namespace hmdiv::cli {

/// Parses `value` as an unsigned decimal integer in [lo, hi]. On any
/// violation prints
///   <program>: <flag> expects an integer in [<lo>, <hi>], got '<value>'
/// to stderr and exits 2 — malformed input must never silently
/// misconfigure a run (or a long-lived server).
[[nodiscard]] inline unsigned long parse_bounded_ulong(
    const char* program, const char* flag, const std::string& value,
    unsigned long lo, unsigned long hi) {
  char* end = nullptr;
  errno = 0;
  const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
  // strtoul accepts leading whitespace and '-'; neither is a sane spelling
  // of a count, and "-1" would otherwise wrap to ULONG_MAX and be caught
  // only when hi is small. Reject any value that does not start with a
  // digit outright.
  const bool starts_with_digit =
      !value.empty() && value.front() >= '0' && value.front() <= '9';
  if (!starts_with_digit || end != value.c_str() + value.size() ||
      errno == ERANGE || parsed < lo || parsed > hi) {
    std::cerr << program << ": " << flag << " expects an integer in [" << lo
              << ", " << hi << "], got '" << value << "'\n";
    std::exit(2);
  }
  return parsed;
}

}  // namespace hmdiv::cli
