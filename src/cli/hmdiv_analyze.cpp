// hmdiv_analyze — command-line analysis of a human-machine advisory system.
//
// Usage:
//   hmdiv_analyze --model MODEL_FILE --trial PROFILE_FILE --field PROFILE_FILE
//                 [--improve CLASS=FACTOR]... [--text] [--no-advice]
//   hmdiv_analyze --example            # run on the paper's Section-5 example
//
// MODEL_FILE / PROFILE_FILE use the model_io text formats (see
// core/model_io.hpp). The report covers: parameters, Eq.-(8) failure
// probabilities under both profiles, the Eq.-(10) decomposition,
// sensitivities, and design advice; each --improve adds a what-if scenario.
//
// --profile additionally runs a Monte-Carlo validation workload (trial
// simulation, bootstrap interval, operating-threshold sweep) on the exec
// engine and dumps the observability registry as a table; --profile-csv
// FILE writes the same snapshot as CSV. --workers HOST:PORT,... fans the
// profiling workload out over remote hmdiv_serve daemons instead of local
// worker processes (DESIGN.md §15); results stay bit-identical.
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cli/parse_util.hpp"
#include "core/analysis_report.hpp"
#include "core/design_advisor.hpp"
#include "core/model_io.hpp"
#include "core/paper_example.hpp"
#include "core/tradeoff.hpp"
#include "core/tradeoff_shard.hpp"
#include "core/uncertainty.hpp"
#include "core/uncertainty_shard.hpp"
#include "exec/cluster.hpp"
#include "exec/config.hpp"
#include "exec/shard.hpp"
#include "obs/obs.hpp"
#include "report/format.hpp"
#include "report/profile.hpp"
#include "report/table.hpp"
#include "sim/tabular_world.hpp"
#include "sim/trial.hpp"
#include "sim/trial_shard.hpp"
#include "stats/bootstrap.hpp"
#include "stats/rng.hpp"
#include "stats/special.hpp"

namespace {

using namespace hmdiv;

[[noreturn]] void usage(int exit_code) {
  std::cerr
      << "usage: hmdiv_analyze --model FILE --trial FILE --field FILE\n"
         "                     [--improve CLASS=FACTOR]... [--text]\n"
         "                     [--no-advice] [--threads N] [--shards N]\n"
         "                     [--workers HOST:PORT,...] [--window N]\n"
         "                     [--profile] [--profile-csv FILE]\n"
         "                     [--grid-steps N] [--samples N]\n"
         "       hmdiv_analyze --example [--text]\n"
         "\n"
         "--threads N caps the worker threads of Monte-Carlo and sweep\n"
         "computations (default: all hardware threads, or HMDIV_THREADS).\n"
         "Results are identical for any thread count.\n"
         "--shards N fans the profiling workload out over N worker\n"
         "processes of --threads threads each (default: 1, or\n"
         "HMDIV_SHARDS). Results are bit-identical for any shard count.\n"
         "--workers HOST:PORT,... fans the profiling workload out over\n"
         "remote hmdiv_serve daemons via their shard endpoint instead of\n"
         "local worker processes; composes with --shards (shard count)\n"
         "and --threads (per-task budget on each worker). Results remain\n"
         "bit-identical to the in-process run.\n"
         "--window N keeps up to N tasks in flight per worker connection\n"
         "(pipelining depth, default 4, range [1, 64]); 1 restores strict\n"
         "request/reply lockstep. Output is identical at any depth.\n"
         "--profile runs a Monte-Carlo validation workload (simulated\n"
         "trial, bootstrap interval, threshold sweep) and prints the\n"
         "observability registry; --profile-csv FILE writes it as CSV.\n"
         "--grid-steps N sets the threshold-sweep / cost-minimisation grid\n"
         "size of the profiling workload (default 20000, range [2, 5e6]).\n"
         "--samples N sets the resampling depth of the profiling workload:\n"
         "bootstrap replicates and posterior predictive draws (default\n"
         "500, range [100, 10000000]).\n";
  std::exit(exit_code);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "hmdiv_analyze: cannot open '" << path << "'\n";
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Improvement {
  std::string class_name;
  double factor = 0.1;
};

Improvement parse_improvement(const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
    std::cerr << "hmdiv_analyze: --improve expects CLASS=FACTOR, got '" << spec
              << "'\n";
    std::exit(2);
  }
  Improvement out;
  out.class_name = spec.substr(0, eq);
  const std::string value = spec.substr(eq + 1);
  std::size_t consumed = 0;
  try {
    out.factor = std::stod(value, &consumed);
  } catch (const std::exception&) {
    std::cerr << "hmdiv_analyze: bad factor in '" << spec << "'\n";
    std::exit(2);
  }
  if (consumed != value.size()) {
    std::cerr << "hmdiv_analyze: trailing garbage after factor in '" << spec
              << "'\n";
    std::exit(2);
  }
  if (!std::isfinite(out.factor) || out.factor < 0.0) {
    std::cerr << "hmdiv_analyze: factor must be finite and >= 0, got '"
              << value << "'\n";
    std::exit(2);
  }
  return out;
}

/// The Monte-Carlo workload behind --profile: exercises every instrumented
/// engine phase (trial simulation + world cloning, bootstrap replicates,
/// threshold sweep + grid minimisation) on the model under analysis, and
/// prints a short validation table. By the determinism contract the
/// numbers are identical at any thread count, so the thread floor is
/// raised to 2 to keep the pool paths observable on single-core hosts.
/// The trial, posterior, sweep and minimisation phases route through the
/// shard engine: with --shards N (or HMDIV_SHARDS) they fan out over N
/// worker processes; at 1 shard they run in-process, bit-identically.
/// With --workers they fan out over remote hmdiv_serve daemons instead,
/// through one warm ClusterRunner connection pool shared by all four
/// phases (DESIGN.md §15) — same partition, same merge, same bits.
void run_profiling_workload(const core::SequentialModel& model,
                            const core::DemandProfile& trial,
                            const core::DemandProfile& field, bool markdown,
                            std::size_t grid_steps, std::size_t samples,
                            const std::vector<std::string>& workers,
                            unsigned window) {
  exec::Config config = exec::default_config();
  if (config.resolved_threads() < 2) config = exec::Config{2};
  exec::ShardOptions sopts;
  sopts.threads = config.threads;
  std::optional<exec::ClusterRunner> cluster;
  if (!workers.empty()) {
    exec::ClusterOptions copts;
    copts.workers = workers;
    copts.threads = config.threads;
    copts.window = window;
    cluster.emplace(std::move(copts));
  }

  // Trial phase: simulate the model under the trial profile and
  // cross-check the Eq.-(8) prediction against the observed rate.
  constexpr std::uint64_t kCases = 200'000;
  sim::TabularWorld world(model, trial);
  sim::TrialRunner runner(world, kCases);
  const sim::TrialData data =
      cluster ? sim::run_trial_clustered(world, kCases, /*seed=*/20030625,
                                         *cluster)
              : sim::run_trial_sharded(world, kCases, /*seed=*/20030625,
                                       sopts);
  const double observed = data.observed_failure_rate();
  const double predicted = model.system_failure_probability(trial);

  // Bootstrap phase: percentile interval on the observed failure rate.
  std::vector<double> failures;
  failures.reserve(data.records.size());
  for (const auto& record : data.records) {
    failures.push_back(record.human_failed ? 1.0 : 0.0);
  }
  const auto mean_statistic = [](std::span<const double> s) {
    double total = 0.0;
    for (const double v : s) total += v;
    return total / static_cast<double>(s.size());
  };
  stats::Rng rng(7);
  const auto interval = stats::bootstrap_percentile(
      failures, mean_statistic, rng, /*replicates=*/samples, 0.95, config);

  // Uncertainty phase: rebuild the per-class trial counts from the
  // simulated records and propagate the Beta posteriors through Eq. (8)
  // under the *field* profile with the batched engine — the credible
  // interval shows how much the trial size limits the field prediction.
  std::vector<core::ClassCounts> counts(model.class_count());
  for (const auto& record : data.records) {
    auto& c = counts[record.class_index];
    ++c.cases;
    if (record.machine_failed) {
      ++c.machine_failures;
      if (record.human_failed) ++c.human_failures_given_machine_failed;
    } else if (record.human_failed) {
      ++c.human_failures_given_machine_succeeded;
    }
  }
  const core::PosteriorModelSampler sampler(model.class_names(), counts);
  stats::Rng posterior_rng(11);
  const auto posterior =
      cluster ? core::predict_clustered(sampler, field, posterior_rng,
                                        samples, 0.95, *cluster)
              : core::predict_sharded(sampler, field, posterior_rng, samples,
                                      0.95, sopts);

  // Sweep phase: the binormal machine implied by each class's PMf at
  // threshold 0 (mu = -probit(PMf)), swept across operating thresholds,
  // plus a cost-minimising grid search.
  core::BinormalMachine machine;
  std::vector<core::HumanFnResponse> fn_response;
  std::vector<core::HumanFpResponse> fp_response;
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    const auto& p = model.parameters(x);
    // Clamp away from {0,1} so degenerate models still yield a finite mean.
    const double p_mf = std::min(std::max(p.p_machine_fails, 1e-9),
                                 1.0 - 1e-9);
    machine.cancer_class_means.push_back(-stats::normal_quantile(p_mf));
    machine.normal_class_means.push_back(-2.0);
    fn_response.push_back({p.p_human_fails_given_machine_succeeds,
                           p.p_human_fails_given_machine_fails});
    fp_response.push_back({0.1, 0.02});
  }
  const core::TradeoffAnalyzer analyzer(machine, field, fn_response, field,
                                        fp_response, /*prevalence=*/0.007);
  std::vector<double> thresholds(grid_steps);
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    thresholds[i] = -4.0 + 8.0 * static_cast<double>(i) /
                               static_cast<double>(thresholds.size() - 1);
  }
  const auto curve = cluster
                         ? core::sweep_clustered(analyzer, thresholds, *cluster)
                         : core::sweep_sharded(analyzer, thresholds, sopts);
  const auto best =
      cluster ? core::minimise_cost_clustered(analyzer, /*cost_fn=*/500.0,
                                              /*cost_fp=*/20.0, -4.0, 4.0,
                                              grid_steps, *cluster)
              : core::minimise_cost_sharded(analyzer, /*cost_fn=*/500.0,
                                            /*cost_fp=*/20.0, -4.0, 4.0,
                                            grid_steps, sopts);

  std::cout << (markdown ? "## Profiling workload (Monte-Carlo validation)\n\n"
                         : "== Profiling workload (Monte-Carlo validation) "
                           "==\n\n");
  report::Table table({"check", "value"});
  table.row({"simulated trial cases", report::with_thousands(
                                          static_cast<long long>(kCases))});
  table.row({"observed failure rate", report::fixed(observed, 4)});
  table.row({"Eq.-(8) prediction", report::fixed(predicted, 4)});
  table.row({"bootstrap 95% interval",
             report::with_interval(interval.estimate, interval.lower,
                                   interval.upper, 4)});
  table.row({"resampling depth (--samples)",
             report::with_thousands(static_cast<long long>(samples))});
  table.row({"posterior 95% interval (field)",
             report::with_interval(posterior.mean, posterior.lower,
                                   posterior.upper, 4)});
  table.row({"sweep points evaluated",
             report::with_thousands(static_cast<long long>(curve.size()))});
  table.row({"cost-minimising threshold", report::fixed(best.threshold, 3)});
  std::cout << (markdown ? table.to_markdown() : table.to_text()) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Shard workers re-exec this binary with a hidden flag; they must take
  // this branch before any argument parsing or output.
  if (hmdiv::exec::shard_worker_requested(argc, argv)) {
    return hmdiv::exec::shard_worker_main();
  }
  std::optional<std::string> model_path, trial_path, field_path;
  std::vector<Improvement> improvements;
  bool use_example = false;
  bool profile = false;
  std::size_t grid_steps = 20'000;
  std::size_t samples = 500;
  std::vector<std::string> workers;
  unsigned window = 4;
  std::optional<std::string> profile_csv_path;
  core::ReportOptions options;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "hmdiv_analyze: " << arg << " needs a value\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--model") {
      model_path = next();
    } else if (arg == "--trial") {
      trial_path = next();
    } else if (arg == "--field") {
      field_path = next();
    } else if (arg == "--improve") {
      improvements.push_back(parse_improvement(next()));
    } else if (arg == "--example") {
      use_example = true;
    } else if (arg == "--threads") {
      // Hardened parse shared with every integer flag (parse_util.hpp):
      // trailing garbage, negatives, overflow and out-of-range counts all
      // exit 2 naming the offending value, same range as HMDIV_THREADS.
      exec::set_default_config(exec::Config{
          static_cast<unsigned>(cli::parse_bounded_ulong(
              "hmdiv_analyze", "--threads", next(), 1, 4096))});
    } else if (arg == "--shards") {
      exec::set_default_shard_count(
          static_cast<unsigned>(cli::parse_bounded_ulong(
              "hmdiv_analyze", "--shards", next(), 1, exec::kMaxShards)));
    } else if (arg == "--workers") {
      // Comma-separated worker list; every element must parse as
      // HOST:PORT (or [IPV6]:PORT) and name a connectable port — port 0
      // is bind-only, so an element carrying it is a mistake here.
      const std::string list = next();
      std::size_t start = 0;
      while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        const std::string element = list.substr(start, comma - start);
        const cli::HostPort parsed =
            cli::parse_host_port("hmdiv_analyze", "--workers", element);
        if (parsed.port == 0) {
          std::cerr << "hmdiv_analyze: --workers needs a connectable "
                       "port, got '"
                    << element << "'\n";
          std::exit(2);
        }
        workers.push_back(element);
        start = comma + 1;
      }
    } else if (arg == "--window") {
      window = static_cast<unsigned>(cli::parse_bounded_ulong(
          "hmdiv_analyze", "--window", next(), 1, 64));
    } else if (arg == "--grid-steps") {
      // < 2 cannot form a grid; > 5'000'000 is a typo, not a workload.
      grid_steps = static_cast<std::size_t>(cli::parse_bounded_ulong(
          "hmdiv_analyze", "--grid-steps", next(), 2, 5'000'000));
    } else if (arg == "--samples") {
      // Fewer than 100 resamples cannot support a 95% interval; more than
      // 1e7 is a typo.
      samples = static_cast<std::size_t>(cli::parse_bounded_ulong(
          "hmdiv_analyze", "--samples", next(), 100, 10'000'000));
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--profile-csv") {
      profile = true;
      profile_csv_path = next();
    } else if (arg == "--text") {
      options.markdown = false;
    } else if (arg == "--no-advice") {
      options.include_design_advice = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::cerr << "hmdiv_analyze: unknown argument '" << arg << "'\n";
      usage(2);
    }
  }

  if (profile) obs::set_enabled(true);

  try {
    core::SequentialModel model =
        use_example ? core::paper::example_model()
        : model_path
            ? core::parse_sequential_model(read_file(*model_path))
            : (usage(2), core::paper::example_model());
    core::DemandProfile trial =
        use_example ? core::paper::trial_profile()
        : trial_path ? core::parse_demand_profile(read_file(*trial_path))
                     : (usage(2), core::paper::trial_profile());
    core::DemandProfile field =
        use_example ? core::paper::field_profile()
        : field_path ? core::parse_demand_profile(read_file(*field_path))
                     : (usage(2), core::paper::field_profile());

    std::cout << core::analysis_report(model, trial, field, options);

    if (!improvements.empty()) {
      std::cout << (options.markdown ? "## What-if improvements\n\n"
                                     : "== What-if improvements ==\n\n");
      const double baseline = model.system_failure_probability(field);
      for (const auto& imp : improvements) {
        const std::size_t x = model.index_of(imp.class_name);
        const auto improved = model.with_machine_improvement(x, imp.factor);
        std::cout << "- improve '" << imp.class_name << "' by factor "
                  << report::fixed(imp.factor, 2) << ": field PHf "
                  << report::fixed(baseline, 3) << " -> "
                  << report::fixed(
                         improved.system_failure_probability(field), 3)
                  << "\n";
      }
    }

    if (profile) {
      run_profiling_workload(model, trial, field, options.markdown,
                             grid_steps, samples, workers, window);
      const obs::Snapshot snapshot = obs::registry_snapshot();
      std::cout << (options.markdown ? "## Profile (obs registry)\n\n"
                                     : "== Profile (obs registry) ==\n\n")
                << report::profile_table(snapshot);
      if (profile_csv_path) {
        std::ofstream csv(*profile_csv_path);
        if (!csv) {
          std::cerr << "hmdiv_analyze: cannot write '" << *profile_csv_path
                    << "'\n";
          return 2;
        }
        report::write_profile_csv(csv, snapshot);
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "hmdiv_analyze: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
