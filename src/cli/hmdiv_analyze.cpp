// hmdiv_analyze — command-line analysis of a human-machine advisory system.
//
// Usage:
//   hmdiv_analyze --model MODEL_FILE --trial PROFILE_FILE --field PROFILE_FILE
//                 [--improve CLASS=FACTOR]... [--text] [--no-advice]
//   hmdiv_analyze --example            # run on the paper's Section-5 example
//
// MODEL_FILE / PROFILE_FILE use the model_io text formats (see
// core/model_io.hpp). The report covers: parameters, Eq.-(8) failure
// probabilities under both profiles, the Eq.-(10) decomposition,
// sensitivities, and design advice; each --improve adds a what-if scenario.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis_report.hpp"
#include "core/design_advisor.hpp"
#include "core/model_io.hpp"
#include "core/paper_example.hpp"
#include "exec/config.hpp"
#include "report/format.hpp"

namespace {

using namespace hmdiv;

[[noreturn]] void usage(int exit_code) {
  std::cerr
      << "usage: hmdiv_analyze --model FILE --trial FILE --field FILE\n"
         "                     [--improve CLASS=FACTOR]... [--text]\n"
         "                     [--no-advice] [--threads N]\n"
         "       hmdiv_analyze --example [--text]\n"
         "\n"
         "--threads N caps the worker threads of Monte-Carlo and sweep\n"
         "computations (default: all hardware threads, or HMDIV_THREADS).\n"
         "Results are identical for any thread count.\n";
  std::exit(exit_code);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "hmdiv_analyze: cannot open '" << path << "'\n";
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Improvement {
  std::string class_name;
  double factor = 0.1;
};

Improvement parse_improvement(const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
    std::cerr << "hmdiv_analyze: --improve expects CLASS=FACTOR, got '" << spec
              << "'\n";
    std::exit(2);
  }
  Improvement out;
  out.class_name = spec.substr(0, eq);
  try {
    out.factor = std::stod(spec.substr(eq + 1));
  } catch (const std::exception&) {
    std::cerr << "hmdiv_analyze: bad factor in '" << spec << "'\n";
    std::exit(2);
  }
  if (out.factor < 0.0) {
    std::cerr << "hmdiv_analyze: factor must be >= 0\n";
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<std::string> model_path, trial_path, field_path;
  std::vector<Improvement> improvements;
  bool use_example = false;
  core::ReportOptions options;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "hmdiv_analyze: " << arg << " needs a value\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--model") {
      model_path = next();
    } else if (arg == "--trial") {
      trial_path = next();
    } else if (arg == "--field") {
      field_path = next();
    } else if (arg == "--improve") {
      improvements.push_back(parse_improvement(next()));
    } else if (arg == "--example") {
      use_example = true;
    } else if (arg == "--threads") {
      const std::string& value = next();
      unsigned threads = 0;
      try {
        const unsigned long parsed = std::stoul(value);
        if (parsed == 0 || parsed > 4096) throw std::out_of_range(value);
        threads = static_cast<unsigned>(parsed);
      } catch (const std::exception&) {
        std::cerr << "hmdiv_analyze: --threads expects an integer in "
                     "[1, 4096], got '"
                  << value << "'\n";
        std::exit(2);
      }
      exec::set_default_config(exec::Config{threads});
    } else if (arg == "--text") {
      options.markdown = false;
    } else if (arg == "--no-advice") {
      options.include_design_advice = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::cerr << "hmdiv_analyze: unknown argument '" << arg << "'\n";
      usage(2);
    }
  }

  try {
    core::SequentialModel model =
        use_example ? core::paper::example_model()
        : model_path
            ? core::parse_sequential_model(read_file(*model_path))
            : (usage(2), core::paper::example_model());
    core::DemandProfile trial =
        use_example ? core::paper::trial_profile()
        : trial_path ? core::parse_demand_profile(read_file(*trial_path))
                     : (usage(2), core::paper::trial_profile());
    core::DemandProfile field =
        use_example ? core::paper::field_profile()
        : field_path ? core::parse_demand_profile(read_file(*field_path))
                     : (usage(2), core::paper::field_profile());

    std::cout << core::analysis_report(model, trial, field, options);

    if (!improvements.empty()) {
      std::cout << (options.markdown ? "## What-if improvements\n\n"
                                     : "== What-if improvements ==\n\n");
      const double baseline = model.system_failure_probability(field);
      for (const auto& imp : improvements) {
        const std::size_t x = model.index_of(imp.class_name);
        const auto improved = model.with_machine_improvement(x, imp.factor);
        std::cout << "- improve '" << imp.class_name << "' by factor "
                  << report::fixed(imp.factor, 2) << ": field PHf "
                  << report::fixed(baseline, 3) << " -> "
                  << report::fixed(
                         improved.system_failure_probability(field), 3)
                  << "\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "hmdiv_analyze: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
