// Multi-process sharding of posterior predictive sampling.
//
// The "core.uq.sample" shard workload partitions the batched sampler's
// fixed 512-draw chunk index space (PosteriorModelSampler::kDrawChunk)
// across worker processes. The parent consumes exactly one rng step for
// the substream base — the same step the in-process engine consumes — and
// each worker rebuilds the sampler from the integer trial counts (bit-
// identical Beta preps) plus the from_normalised profile, then fills its
// wire::shard_range slice of chunks. Concatenated in ascending shard
// order, the draws equal the single-process sample_failure_probabilities
// output bit-for-bit.
#pragma once

#include <span>

#include "core/uncertainty.hpp"
#include "exec/shard.hpp"

namespace hmdiv::exec {
class ClusterRunner;
}  // namespace hmdiv::exec

namespace hmdiv::core {

/// Shard-workload name posterior sampling registers under.
inline constexpr std::string_view kUncertaintyShardWorkload =
    "core.uq.sample";

/// PosteriorModelSampler::sample_failure_probabilities across worker
/// processes (options.shards; 1 runs in-process without spawning). Fills
/// `out` bit-identically to the in-process call at any shard × thread
/// composition; `rng` advances by exactly one step either way. Throws
/// exec::ShardError on worker failure.
void sample_failure_probabilities_sharded(
    const PosteriorModelSampler& sampler, const DemandProfile& profile,
    stats::Rng& rng, std::span<double> out,
    const exec::ShardOptions& options = {});

/// predict() on the sharded sampling stage: sample across workers, then
/// summarise in the parent. Bit-identical to the in-process predict().
[[nodiscard]] UncertainPrediction predict_sharded(
    const PosteriorModelSampler& sampler, const DemandProfile& profile,
    stats::Rng& rng, std::size_t draws = 4000, double credibility = 0.95,
    const exec::ShardOptions& options = {});

/// Posterior predictive sampling across remote hmdiv_serve workers via
/// `cluster` (DESIGN.md §15). Identical blob, chunk partition and
/// ascending-shard merge as the process-sharded path; `rng` advances by
/// exactly one step and `out` fills bit-identically to the in-process call
/// at any worker × shard composition. Throws exec::ClusterError when no
/// healthy worker can finish a shard.
void sample_failure_probabilities_clustered(
    const PosteriorModelSampler& sampler, const DemandProfile& profile,
    stats::Rng& rng, std::span<double> out, exec::ClusterRunner& cluster);

/// predict() on the clustered sampling stage: sample across remote
/// workers, then summarise in the parent. Bit-identical to the in-process
/// predict().
[[nodiscard]] UncertainPrediction predict_clustered(
    const PosteriorModelSampler& sampler, const DemandProfile& profile,
    stats::Rng& rng, std::size_t draws, double credibility,
    exec::ClusterRunner& cluster);

/// No-op anchor: calling it from an executable forces this translation
/// unit (and its static ShardWorkloadRegistration) to link in, so daemons
/// built against the static libraries can serve "core.uq.sample" shard
/// tasks.
void ensure_uncertainty_shard_registered();

}  // namespace hmdiv::core
