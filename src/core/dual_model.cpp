#include "core/dual_model.hpp"

#include <stdexcept>

#include "core/paper_example.hpp"

namespace hmdiv::core {

DualModel::DualModel(SequentialModel fn_model, DemandProfile fn_profile,
                     SequentialModel fp_model, DemandProfile fp_profile,
                     double prevalence)
    : fn_model_(std::move(fn_model)),
      fn_profile_(std::move(fn_profile)),
      fp_model_(std::move(fp_model)),
      fp_profile_(std::move(fp_profile)),
      prevalence_(prevalence) {
  if (!fn_model_.compatible_with(fn_profile_)) {
    throw std::invalid_argument("DualModel: FN profile/model class mismatch");
  }
  if (!fp_model_.compatible_with(fp_profile_)) {
    throw std::invalid_argument("DualModel: FP profile/model class mismatch");
  }
  if (!(prevalence_ > 0.0 && prevalence_ < 1.0)) {
    throw std::invalid_argument("DualModel: prevalence must lie in (0,1)");
  }
}

ScreeningPerformance DualModel::performance() const {
  ScreeningPerformance out;
  out.false_negative_rate = fn_model_.system_failure_probability(fn_profile_);
  out.false_positive_rate = fp_model_.system_failure_probability(fp_profile_);
  out.sensitivity = 1.0 - out.false_negative_rate;
  out.specificity = 1.0 - out.false_positive_rate;
  out.recall_rate = prevalence_ * out.sensitivity +
                    (1.0 - prevalence_) * out.false_positive_rate;
  out.ppv = out.recall_rate > 0.0
                ? prevalence_ * out.sensitivity / out.recall_rate
                : 0.0;
  const double no_recall = 1.0 - out.recall_rate;
  out.npv = no_recall > 0.0
                ? (1.0 - prevalence_) * out.specificity / no_recall
                : 0.0;
  out.cancer_detection_rate_per_1000 = 1000.0 * prevalence_ * out.sensitivity;
  return out;
}

double DualModel::expected_cost_per_case(const OutcomeCosts& costs) const {
  if (costs.per_recall < 0.0 || costs.per_missed_cancer < 0.0) {
    throw std::invalid_argument("DualModel: costs must be >= 0");
  }
  const ScreeningPerformance p = performance();
  return p.recall_rate * costs.per_recall +
         prevalence_ * p.false_negative_rate * costs.per_missed_cancer;
}

DualModel DualModel::with_environment(DemandProfile fn_profile,
                                      DemandProfile fp_profile,
                                      double prevalence) const {
  return DualModel(fn_model_, std::move(fn_profile), fp_model_,
                   std::move(fp_profile), prevalence);
}

DualModel DualModel::with_machine_retuned(double fn_factor,
                                          double fp_factor) const {
  return DualModel(fn_model_.with_uniform_machine_improvement(fn_factor),
                   fn_profile_,
                   fp_model_.with_uniform_machine_improvement(fp_factor),
                   fp_profile_, prevalence_);
}

DualModel DualModel::with_reader_drift(double fn_factor,
                                       double fp_factor) const {
  return DualModel(fn_model_.with_reader_improvement(fn_factor), fn_profile_,
                   fp_model_.with_reader_improvement(fp_factor), fp_profile_,
                   prevalence_);
}

DualModel example_dual_model(double prevalence) {
  // FN side: the paper's Section-5 example under the field mix.
  SequentialModel fn = paper::example_model();
  DemandProfile fn_profile = paper::field_profile();

  // FP side: "machine fails" = false prompt on a healthy case. Machine
  // false-prompt probabilities are high by design (the paper: low PMf "at
  // the cost of relatively frequent false positive failures"); prompts
  // bias the reader towards recalling the healthy patient.
  ClassConditional typical;   // obviously benign films
  typical.p_machine_fails = 0.25;                       // false prompt rate
  typical.p_human_fails_given_machine_fails = 0.045;    // recall | prompt
  typical.p_human_fails_given_machine_succeeds = 0.015; // recall | no prompt
  ClassConditional complex;   // dense / artefact-laden films
  complex.p_machine_fails = 0.55;
  complex.p_human_fails_given_machine_fails = 0.18;
  complex.p_human_fails_given_machine_succeeds = 0.07;
  SequentialModel fp(
      {"typical", "complex"},
      {typical, complex});
  DemandProfile fp_profile({"typical", "complex"}, {0.85, 0.15});

  return DualModel(std::move(fn), std::move(fn_profile), std::move(fp),
                   std::move(fp_profile), prevalence);
}

}  // namespace hmdiv::core
