// Both failure modes in one model.
//
// The paper's §2.3: "Our modelling approach describes the two kinds of
// failure by identical equations. For reasons of space, in this paper we
// only describe the model for false negatives." This module writes down
// the other half and combines the two:
//
//  * a `SequentialModel` over classes of *cancer* cases, where machine
//    failure = no prompt and human failure = no recall (false negative);
//  * a `SequentialModel` over classes of *normal* cases, where "machine
//    failure" = a false prompt and "human failure" = recalling the healthy
//    patient (false positive) — same conditional structure, PHf|Mf is the
//    recall probability given a (false) prompt, PHf|Ms given none;
//  * the cancer prevalence in the screened population.
//
// From these, all screening-programme quantities follow: sensitivity,
// specificity, recall rate, PPV/NPV, cancer detection rate, and expected
// cost — and every what-if transform of the component models (machine
// re-tuning, reader drift, profile changes) propagates to both failure
// modes at once, which is exactly the trade-off study the Conclusions
// propose.
#pragma once

#include "core/demand_profile.hpp"
#include "core/sequential_model.hpp"

namespace hmdiv::core {

/// System-level screening quantities derived from a DualModel.
struct ScreeningPerformance {
  double false_negative_rate = 0.0;  ///< P(no recall | cancer)
  double false_positive_rate = 0.0;  ///< P(recall | no cancer)
  double sensitivity = 0.0;          ///< 1 − FN rate
  double specificity = 0.0;          ///< 1 − FP rate
  double recall_rate = 0.0;          ///< P(recall)
  double ppv = 0.0;                  ///< P(cancer | recall); 0 if no recalls
  double npv = 0.0;                  ///< P(no cancer | no recall)
  double cancer_detection_rate_per_1000 = 0.0;
};

/// Costs per screened case attributable to each outcome.
struct OutcomeCosts {
  double per_recall = 20.0;         ///< every recall (TP or FP)
  double per_missed_cancer = 500.0; ///< every FN
};

/// The two-sided model.
class DualModel {
 public:
  /// `fn_model`/`fn_profile`: cancer-case classes; `fp_model`/`fp_profile`:
  /// normal-case classes. Profiles must match their models; prevalence in
  /// (0,1).
  DualModel(SequentialModel fn_model, DemandProfile fn_profile,
            SequentialModel fp_model, DemandProfile fp_profile,
            double prevalence);

  [[nodiscard]] const SequentialModel& fn_model() const { return fn_model_; }
  [[nodiscard]] const SequentialModel& fp_model() const { return fp_model_; }
  [[nodiscard]] const DemandProfile& fn_profile() const { return fn_profile_; }
  [[nodiscard]] const DemandProfile& fp_profile() const { return fp_profile_; }
  [[nodiscard]] double prevalence() const { return prevalence_; }

  /// Eq. (8) on each side, combined at the given prevalence.
  [[nodiscard]] ScreeningPerformance performance() const;

  /// Expected cost per screened case under `costs`.
  [[nodiscard]] double expected_cost_per_case(const OutcomeCosts& costs) const;

  // --- What-if transforms: each returns a new DualModel -----------------

  /// Different environment: new profiles (same classes) and/or prevalence.
  [[nodiscard]] DualModel with_environment(DemandProfile fn_profile,
                                           DemandProfile fp_profile,
                                           double prevalence) const;

  /// Machine re-tuned towards eagerness: FN-side machine failures scaled by
  /// `fn_factor` (<1 = fewer missed prompts) and FP-side "machine failures"
  /// (false prompts) scaled by `fp_factor` (>1 = more false prompts). The
  /// two usually move in opposite directions — pass e.g. (0.5, 2.0).
  [[nodiscard]] DualModel with_machine_retuned(double fn_factor,
                                               double fp_factor) const;

  /// Reader drift applied to both sides (e.g. complacency: > 1 on the FN
  /// side; on the FP side reader failures are false recalls, scaled by
  /// `fp_factor`).
  [[nodiscard]] DualModel with_reader_drift(double fn_factor,
                                            double fp_factor) const;

 private:
  SequentialModel fn_model_;
  DemandProfile fn_profile_;
  SequentialModel fp_model_;
  DemandProfile fp_profile_;
  double prevalence_;
};

/// A DualModel calibrated to the paper's Section-5 FN example plus a
/// plausible FP side (machine false-prompt rates of a few tens of %, the
/// "relatively frequent false positive failures" the paper mentions), at
/// `prevalence` (default 0.7%, "less than 1%").
[[nodiscard]] DualModel example_dual_model(double prevalence = 0.007);

}  // namespace hmdiv::core
