// Multi-process sharding of trade-off analyses.
//
// Two shard workloads over the same serialized TradeoffAnalyzer:
//
//   "core.sweep"    — partition the threshold grid's index space; workers
//                     sweep their wire::shard_range slice with the batched
//                     kernel and ship the operating points back as bit
//                     patterns. evaluate_batch is bit-identical to the
//                     scalar evaluate() at any batch boundary, so the
//                     parent's ascending-order concatenation equals the
//                     single-process sweep bit-for-bit.
//   "core.minimise" — partition the cost-scan grid; workers return their
//                     range's best CostedOperatingPoint and the parent
//                     folds them in ascending shard order with strict <,
//                     preserving minimise_cost's earliest-grid-point tie
//                     rule exactly.
#pragma once

#include <vector>

#include "core/tradeoff.hpp"
#include "exec/shard.hpp"

namespace hmdiv::exec {
class ClusterRunner;
}  // namespace hmdiv::exec

namespace hmdiv::core {

/// Shard-workload names the trade-off analyses register under.
inline constexpr std::string_view kSweepShardWorkload = "core.sweep";
inline constexpr std::string_view kMinimiseShardWorkload = "core.minimise";

/// TradeoffAnalyzer::sweep across worker processes (options.shards; 1 runs
/// in-process without spawning). Output is bit-identical to
/// analyzer.sweep(thresholds) at any shard × thread composition. Throws
/// exec::ShardError on worker failure.
[[nodiscard]] std::vector<SystemOperatingPoint> sweep_sharded(
    const TradeoffAnalyzer& analyzer, const std::vector<double>& thresholds,
    const exec::ShardOptions& options = {});

/// TradeoffAnalyzer::minimise_cost across worker processes, merging the
/// per-shard partial minima with the earliest-grid-point tie rule. Output
/// is bit-identical to the in-process scan.
[[nodiscard]] SystemOperatingPoint minimise_cost_sharded(
    const TradeoffAnalyzer& analyzer, double cost_fn, double cost_fp,
    double lo, double hi, std::size_t steps,
    const exec::ShardOptions& options = {});

/// sweep across remote hmdiv_serve workers via `cluster` (DESIGN.md §15).
/// Identical blob, shard_range partition and ascending-shard merge as
/// sweep_sharded, so the points are bit-identical to analyzer.sweep at any
/// worker × shard composition. Throws exec::ClusterError when no healthy
/// worker can finish a shard.
[[nodiscard]] std::vector<SystemOperatingPoint> sweep_clustered(
    const TradeoffAnalyzer& analyzer, const std::vector<double>& thresholds,
    exec::ClusterRunner& cluster);

/// minimise_cost across remote workers with the same earliest-grid-point
/// tie fold as minimise_cost_sharded. Bit-identical to the in-process scan.
[[nodiscard]] SystemOperatingPoint minimise_cost_clustered(
    const TradeoffAnalyzer& analyzer, double cost_fn, double cost_fp,
    double lo, double hi, std::size_t steps, exec::ClusterRunner& cluster);

/// No-op anchor: calling it from an executable forces this translation
/// unit (and its static ShardWorkloadRegistrations) to link in, so daemons
/// built against the static libraries can serve "core.sweep" and
/// "core.minimise" shard tasks.
void ensure_tradeoff_shard_registered();

}  // namespace hmdiv::core
