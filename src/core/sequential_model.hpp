// The paper's "sequential operation" model (Section 4, Fig. 3) — its main
// modelling contribution.
//
// The machine (CADT) pre-processes every case; the human reader sees the
// case *plus* the machine's output and makes the system's decision. No
// independence between human and machine behaviour is assumed; instead, for
// every class of cases x three parameters are estimated:
//
//   PMf(x)      — probability the machine fails (no prompt on a cancer),
//   PHf|Mf(x)   — probability the human (thus the system) fails, given the
//                 machine failed on this case,
//   PHf|Ms(x)   — ditto, given the machine succeeded.
//
// System failure probability under demand profile p(x) is Eq. (8):
//
//   PHf = sum_x p(x) · [ PHf|Ms(x)·PMs(x) + PHf|Mf(x)·PMf(x) ]
//
// The importance ("coherence") index t(x) = PHf|Mf(x) − PHf|Ms(x) recasts
// this as Eq. (9):  PHf = sum_x p(x) · [ PHf|Ms(x) + PMf(x)·t(x) ]
//
// and Eq. (10) decomposes it into mean-field and covariance parts:
//
//   PHf = E[PHf|Ms(x)] + E[PMf(x)]·E[t(x)] + cov_x(PMf(x), t(x)).
//
// This file implements all three forms (they agree identically; the tests
// assert it) plus the what-if transforms used by Sections 5 and 6.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/demand_profile.hpp"

namespace hmdiv::core {

/// Conditional failure parameters for one class of cases.
///
/// All values are probabilities in [0,1]; validated on model construction.
struct ClassConditional {
  /// P(machine false-negative | case in this class) — PMf(x).
  double p_machine_fails = 0.0;
  /// P(human/system false-negative | machine failed, case in class).
  double p_human_fails_given_machine_fails = 0.0;
  /// P(human/system false-negative | machine succeeded, case in class).
  double p_human_fails_given_machine_succeeds = 0.0;

  /// PMs(x) = 1 − PMf(x).
  [[nodiscard]] double p_machine_succeeds() const {
    return 1.0 - p_machine_fails;
  }

  /// The importance / coherence index t(x) = PHf|Mf(x) − PHf|Ms(x).
  /// Positive: machine failures hurt the human; t(x)=1 means the human is
  /// right iff the machine is; negative values model "contrarian" readers
  /// who do better when the machine fails (e.g. prompts distract).
  [[nodiscard]] double importance_index() const {
    return p_human_fails_given_machine_fails -
           p_human_fails_given_machine_succeeds;
  }

  /// System failure probability on this class — Eq. (4) restricted to x.
  [[nodiscard]] double system_failure() const {
    return p_human_fails_given_machine_succeeds * p_machine_succeeds() +
           p_human_fails_given_machine_fails * p_machine_fails;
  }
};

/// The Eq. (10) decomposition of system failure probability.
struct FailureDecomposition {
  /// E_x[PHf|Ms(x)] — the floor no machine improvement can beat (§6.1).
  double floor = 0.0;
  /// E_x[PMf(x)] · E_x[t(x)] — the mean-field ("averages only") term.
  double mean_field = 0.0;
  /// cov_x(PMf(x), t(x)) — positive when machine-difficult cases are also
  /// the cases where the reader leans on the machine: correlated weakness.
  double covariance = 0.0;

  /// floor + mean_field + covariance == system failure probability.
  [[nodiscard]] double total() const { return floor + mean_field + covariance; }
};

/// The straight line of Fig. 4 for one class: PHf(x) as a function of a
/// hypothetical machine failure probability, at fixed human response.
struct ImportanceLine {
  double intercept = 0.0;  ///< PHf|Ms(x): system failure at PMf = 0.
  double slope = 0.0;      ///< t(x).
  [[nodiscard]] double at(double p_machine_fails) const {
    return intercept + slope * p_machine_fails;
  }
};

/// Immutable sequential-operation model over named classes of cases.
class SequentialModel {
 public:
  /// One ClassConditional per class name; all probabilities validated.
  SequentialModel(std::vector<std::string> class_names,
                  std::vector<ClassConditional> parameters);

  [[nodiscard]] std::size_t class_count() const { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& class_names() const {
    return names_;
  }
  [[nodiscard]] const ClassConditional& parameters(std::size_t x) const;
  [[nodiscard]] std::size_t index_of(const std::string& class_name) const;

  /// Checks a profile is defined over exactly this model's classes.
  [[nodiscard]] bool compatible_with(const DemandProfile& profile) const;

  // --- Per-class quantities -------------------------------------------

  /// PHf(x) — Eq. (4) for class x.
  [[nodiscard]] double system_failure_given_class(std::size_t x) const;
  /// t(x).
  [[nodiscard]] double importance_index(std::size_t x) const;
  /// Fig. 4 line for class x.
  [[nodiscard]] ImportanceLine importance_line(std::size_t x) const;

  // --- Profile-weighted quantities (Eqs. 8–10) -------------------------

  /// Eq. (8): system (false-negative) failure probability under `profile`.
  [[nodiscard]] double system_failure_probability(
      const DemandProfile& profile) const;

  /// Same value computed via Eq. (9) — sum_x p(x)[PHf|Ms(x) + PMf(x)t(x)].
  /// Exposed separately so tests can assert the algebraic identity.
  [[nodiscard]] double system_failure_probability_eq9(
      const DemandProfile& profile) const;

  /// Eq. (10) decomposition; .total() equals system_failure_probability().
  [[nodiscard]] FailureDecomposition decompose(
      const DemandProfile& profile) const;

  /// Marginal machine failure probability E_x[PMf(x)].
  [[nodiscard]] double machine_failure_probability(
      const DemandProfile& profile) const;

  /// E_x[PHf|Ms(x)]: the §6.1 lower bound on system failure achievable by
  /// machine improvement alone (human response held fixed).
  [[nodiscard]] double failure_floor(const DemandProfile& profile) const;

  /// E_x[t(x)].
  [[nodiscard]] double mean_importance_index(const DemandProfile& profile) const;

  // --- What-if transforms (Sections 5–6) --------------------------------

  /// A copy with PMf(x) multiplied by `factor` (clamped to [0,1]) for the
  /// single class `x` — the paper's "reduction by 10" is factor = 0.1.
  /// Human response parameters are left unchanged, i.e. no indirect effects.
  [[nodiscard]] SequentialModel with_machine_improvement(std::size_t x,
                                                         double factor) const;

  /// A copy with PMf scaled by `factor` uniformly across all classes.
  [[nodiscard]] SequentialModel with_uniform_machine_improvement(
      double factor) const;

  /// A copy with both human conditional failure probabilities scaled by
  /// `factor` for every class (e.g. reader training: factor < 1).
  [[nodiscard]] SequentialModel with_reader_improvement(double factor) const;

  /// A copy in which the reader ignores the machine: both conditionals of
  /// every class are set to their weighted average under the class's own
  /// machine behaviour, so t(x) = 0 but PHf(x) is unchanged. Models the
  /// "readers come to mistrust the CADT" limit of §6.1.
  [[nodiscard]] SequentialModel with_machine_ignored() const;

 private:
  void check_class(std::size_t x) const;

  std::vector<std::string> names_;
  std::vector<ClassConditional> parameters_;
};

}  // namespace hmdiv::core
