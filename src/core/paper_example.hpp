// The numerical example of Section 5 of the paper, as a canonical fixture.
//
// Two classes of cases ("easy", "difficult"), trial profile 0.8/0.2, field
// profile 0.9/0.1, and the parameter table:
//
//   class      PMf   PMs   PHf|Mf  PHf|Ms
//   easy       0.07  0.93  0.18    0.14
//   difficult  0.41  0.59  0.9     0.4
//
// The paper reports (its second and third tables):
//   PHf(easy) = 0.143, PHf(difficult) = 0.605,
//   PHf(trial) = 0.235, PHf(field) = 0.189;
//   improving the CADT 10x on easy cases:      trial 0.233, field 0.187;
//   improving the CADT 10x on difficult cases: trial 0.198, field 0.171.
//
// Benches and tests reproduce those numbers from this fixture.
#pragma once

#include "core/demand_profile.hpp"
#include "core/sequential_model.hpp"

namespace hmdiv::core::paper {

/// Index of the "easy" class in the fixture (0) and "difficult" (1).
inline constexpr std::size_t kEasy = 0;
inline constexpr std::size_t kDifficult = 1;

/// The factor of the paper's improvement scenarios ("a reduction by 10").
inline constexpr double kImprovementFactor = 0.1;

/// The Section-5 model parameters.
[[nodiscard]] SequentialModel example_model();

/// Trial demand profile: 80% easy, 20% difficult.
[[nodiscard]] DemandProfile trial_profile();

/// Field demand profile: 90% easy, 10% difficult.
[[nodiscard]] DemandProfile field_profile();

/// The paper's reported values, for bench output and test oracles.
struct ReportedValues {
  double failure_easy = 0.143;
  double failure_difficult = 0.605;
  double failure_trial = 0.235;
  double failure_field = 0.189;
  double improved_easy_class_failure = 0.140;     // easy class, easy-improved
  double improved_easy_trial = 0.233;
  double improved_easy_field = 0.187;
  double improved_difficult_class_failure = 0.421;  // difficult class
  double improved_difficult_trial = 0.198;
  double improved_difficult_field = 0.171;
};

[[nodiscard]] ReportedValues reported_values();

}  // namespace hmdiv::core::paper
