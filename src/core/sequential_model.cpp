#include "core/sequential_model.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "stats/summary.hpp"

namespace hmdiv::core {

namespace {

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string("SequentialModel: ") + what +
                                " outside [0,1]");
  }
}

}  // namespace

SequentialModel::SequentialModel(std::vector<std::string> class_names,
                                 std::vector<ClassConditional> parameters)
    : names_(std::move(class_names)), parameters_(std::move(parameters)) {
  if (names_.empty()) {
    throw std::invalid_argument("SequentialModel: no classes");
  }
  if (names_.size() != parameters_.size()) {
    throw std::invalid_argument(
        "SequentialModel: names/parameters size mismatch");
  }
  std::unordered_set<std::string> seen;
  for (const auto& name : names_) {
    if (name.empty() || !seen.insert(name).second) {
      throw std::invalid_argument(
          "SequentialModel: class names must be non-empty and unique");
    }
  }
  for (const auto& c : parameters_) {
    check_probability(c.p_machine_fails, "PMf(x)");
    check_probability(c.p_human_fails_given_machine_fails, "PHf|Mf(x)");
    check_probability(c.p_human_fails_given_machine_succeeds, "PHf|Ms(x)");
  }
}

const ClassConditional& SequentialModel::parameters(std::size_t x) const {
  check_class(x);
  return parameters_[x];
}

std::size_t SequentialModel::index_of(const std::string& class_name) const {
  const auto it = std::find(names_.begin(), names_.end(), class_name);
  if (it == names_.end()) {
    throw std::invalid_argument("SequentialModel: unknown class '" +
                                class_name + "'");
  }
  return static_cast<std::size_t>(it - names_.begin());
}

bool SequentialModel::compatible_with(const DemandProfile& profile) const {
  return profile.class_names() == names_;
}

void SequentialModel::check_class(std::size_t x) const {
  if (x >= parameters_.size()) {
    throw std::invalid_argument("SequentialModel: class index out of range");
  }
}

double SequentialModel::system_failure_given_class(std::size_t x) const {
  check_class(x);
  return parameters_[x].system_failure();
}

double SequentialModel::importance_index(std::size_t x) const {
  check_class(x);
  return parameters_[x].importance_index();
}

ImportanceLine SequentialModel::importance_line(std::size_t x) const {
  check_class(x);
  return ImportanceLine{
      parameters_[x].p_human_fails_given_machine_succeeds,
      parameters_[x].importance_index()};
}

namespace {

void check_profile(const SequentialModel& model, const DemandProfile& profile) {
  if (!model.compatible_with(profile)) {
    throw std::invalid_argument(
        "SequentialModel: profile classes do not match model classes");
  }
}

}  // namespace

double SequentialModel::system_failure_probability(
    const DemandProfile& profile) const {
  check_profile(*this, profile);
  double total = 0.0;
  for (std::size_t x = 0; x < class_count(); ++x) {
    total += profile[x] * parameters_[x].system_failure();
  }
  return total;
}

double SequentialModel::system_failure_probability_eq9(
    const DemandProfile& profile) const {
  check_profile(*this, profile);
  double total = 0.0;
  for (std::size_t x = 0; x < class_count(); ++x) {
    const ClassConditional& c = parameters_[x];
    total += profile[x] * (c.p_human_fails_given_machine_succeeds +
                           c.p_machine_fails * c.importance_index());
  }
  return total;
}

FailureDecomposition SequentialModel::decompose(
    const DemandProfile& profile) const {
  check_profile(*this, profile);
  std::vector<double> p_mf(class_count());
  std::vector<double> t(class_count());
  std::vector<double> floor(class_count());
  for (std::size_t x = 0; x < class_count(); ++x) {
    p_mf[x] = parameters_[x].p_machine_fails;
    t[x] = parameters_[x].importance_index();
    floor[x] = parameters_[x].p_human_fails_given_machine_succeeds;
  }
  const auto weights = profile.distribution().probabilities();
  FailureDecomposition out;
  out.floor = stats::weighted_mean(floor, weights);
  out.mean_field = stats::weighted_mean(p_mf, weights) *
                   stats::weighted_mean(t, weights);
  out.covariance = stats::weighted_covariance(p_mf, t, weights);
  return out;
}

double SequentialModel::machine_failure_probability(
    const DemandProfile& profile) const {
  check_profile(*this, profile);
  double total = 0.0;
  for (std::size_t x = 0; x < class_count(); ++x) {
    total += profile[x] * parameters_[x].p_machine_fails;
  }
  return total;
}

double SequentialModel::failure_floor(const DemandProfile& profile) const {
  check_profile(*this, profile);
  double total = 0.0;
  for (std::size_t x = 0; x < class_count(); ++x) {
    total += profile[x] * parameters_[x].p_human_fails_given_machine_succeeds;
  }
  return total;
}

double SequentialModel::mean_importance_index(
    const DemandProfile& profile) const {
  check_profile(*this, profile);
  double total = 0.0;
  for (std::size_t x = 0; x < class_count(); ++x) {
    total += profile[x] * parameters_[x].importance_index();
  }
  return total;
}

SequentialModel SequentialModel::with_machine_improvement(
    std::size_t x, double factor) const {
  check_class(x);
  if (!(factor >= 0.0)) {
    throw std::invalid_argument(
        "SequentialModel::with_machine_improvement: factor must be >= 0");
  }
  std::vector<ClassConditional> modified = parameters_;
  modified[x].p_machine_fails =
      std::clamp(modified[x].p_machine_fails * factor, 0.0, 1.0);
  return SequentialModel(names_, std::move(modified));
}

SequentialModel SequentialModel::with_uniform_machine_improvement(
    double factor) const {
  if (!(factor >= 0.0)) {
    throw std::invalid_argument(
        "SequentialModel::with_uniform_machine_improvement: factor >= 0");
  }
  std::vector<ClassConditional> modified = parameters_;
  for (auto& c : modified) {
    c.p_machine_fails = std::clamp(c.p_machine_fails * factor, 0.0, 1.0);
  }
  return SequentialModel(names_, std::move(modified));
}

SequentialModel SequentialModel::with_reader_improvement(double factor) const {
  if (!(factor >= 0.0)) {
    throw std::invalid_argument(
        "SequentialModel::with_reader_improvement: factor >= 0");
  }
  std::vector<ClassConditional> modified = parameters_;
  for (auto& c : modified) {
    c.p_human_fails_given_machine_fails =
        std::clamp(c.p_human_fails_given_machine_fails * factor, 0.0, 1.0);
    c.p_human_fails_given_machine_succeeds =
        std::clamp(c.p_human_fails_given_machine_succeeds * factor, 0.0, 1.0);
  }
  return SequentialModel(names_, std::move(modified));
}

SequentialModel SequentialModel::with_machine_ignored() const {
  std::vector<ClassConditional> modified = parameters_;
  for (auto& c : modified) {
    const double marginal = c.system_failure();
    c.p_human_fails_given_machine_fails = marginal;
    c.p_human_fails_given_machine_succeeds = marginal;
  }
  return SequentialModel(names_, std::move(modified));
}

}  // namespace hmdiv::core
