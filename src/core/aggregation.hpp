// Class aggregation and its hazards (Section 6.2's caveat and footnote 1).
//
// The paper warns twice about the choice of demand classes:
//
//  * §6.2: a high importance index t(x) on a class may not mean "the
//    machine's output sways the reader on these cases". If the class is a
//    *mixture* of easier and harder subclasses, and both the machine and
//    the reader do better on the easier ones, conditioning on machine
//    success selects the easier sub-cases — producing a positive t(x) even
//    when, within every subclass, the reader is completely unaffected by
//    the machine. Hence "it would be better to regard t(x) as just a
//    'coherence index'".
//
//  * footnote 1: re-using class parameters measured in one environment to
//    predict another is sound when demands within a class are
//    "practically indistinguishable" — i.e. the within-class mixture does
//    not shift between environments. If it does, coarse-class
//    extrapolation is biased even though each environment's own
//    measurement is perfectly accurate.
//
// This module makes both effects computable: `coarsen` derives the exact
// coarse-class parameters induced by a partition (what a trial on the
// coarse classes would estimate, in the infinite-data limit), and
// `aggregation_bias` quantifies the extrapolation error caused by a
// within-class mix shift that the coarse classes cannot see.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/demand_profile.hpp"
#include "core/sequential_model.hpp"

namespace hmdiv::core {

/// A partition of fine classes into named coarse classes:
/// `group_of[fine_index]` = coarse index; coarse names indexed by group.
struct ClassPartition {
  std::vector<std::string> coarse_names;
  std::vector<std::size_t> group_of;

  /// Validates against a fine class count; throws std::invalid_argument on
  /// size mismatch, out-of-range group, or an empty coarse class.
  void validate(std::size_t fine_class_count) const;
};

/// The coarse model + profile induced by marginalising a fine model over a
/// partition. Exact: under `fine_profile`, the coarse model's Eq. (8)
/// value equals the fine model's, and the coarse parameters are what an
/// infinitely large trial on the coarse classes would measure:
///
///   p(X)        = sum_{x in X} p(x)
///   PMf(X)      = E[PMf(x)   | x in X]
///   PHf|Mf(X)   = E[PHf|Mf(x)·PMf(x) | x in X] / E[PMf(x) | x in X]
///   PHf|Ms(X)   = E[PHf|Ms(x)·PMs(x) | x in X] / E[PMs(x) | x in X]
struct CoarseView {
  SequentialModel model;
  DemandProfile profile;
};

[[nodiscard]] CoarseView coarsen(const SequentialModel& fine_model,
                                 const DemandProfile& fine_profile,
                                 const ClassPartition& partition);

/// Coarsens only the profile (for a target environment whose fine mix is
/// known): p(X) = sum_{x in X} p(x).
[[nodiscard]] DemandProfile coarsen_profile(const DemandProfile& fine_profile,
                                            const ClassPartition& partition);

/// The footnote-1 experiment in one call. The analyst measures coarse
/// parameters in the trial environment and re-weights them by the coarse
/// field profile; the truth is the fine model under the fine field profile.
struct AggregationBias {
  double fine_trial_failure = 0.0;    ///< truth in the trial environment
  double fine_field_failure = 0.0;    ///< truth in the field environment
  double coarse_field_prediction = 0.0;  ///< what coarse extrapolation says
  /// coarse_field_prediction − fine_field_failure: nonzero iff the
  /// within-class mixture shifted between the environments.
  [[nodiscard]] double bias() const {
    return coarse_field_prediction - fine_field_failure;
  }
};

[[nodiscard]] AggregationBias aggregation_bias(
    const SequentialModel& fine_model, const DemandProfile& fine_trial,
    const DemandProfile& fine_field, const ClassPartition& partition);

/// §6.2's "coherence, not importance": the spurious t a mixture produces.
/// Returns the coarse-class importance index when every fine class in the
/// group has t(x) == 0 contributed by `model` (caller's responsibility —
/// use spurious_coherence_demo() for a ready-made instance). Positive when
/// PMf(x) and PHf(x) co-vary across the group's subclasses.
[[nodiscard]] double coarse_importance_index(const SequentialModel& fine_model,
                                             const DemandProfile& fine_profile,
                                             const ClassPartition& partition,
                                             std::size_t coarse_class);

/// A ready-made demonstration: two subclasses, each with t = 0 (the reader
/// ignores the machine within each), machine and human both better on the
/// first. Aggregated into one class, the coherence index is strictly
/// positive. Returns {fine model, fine 50/50 profile, partition into one
/// coarse class}.
struct SpuriousCoherenceDemo {
  SequentialModel fine_model;
  DemandProfile fine_profile;
  ClassPartition partition;
};
[[nodiscard]] SpuriousCoherenceDemo spurious_coherence_demo();

}  // namespace hmdiv::core
