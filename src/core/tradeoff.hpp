// False-negative / false-positive trade-off analysis — the paper's stated
// next step ("Of more general interest ... will be the study of trade-offs
// between the probabilities of false positive and false negative failures",
// Conclusions).
//
// The machine is modelled with a binormal latent-score detector (the
// standard ROC model for detection systems): on a case of class x it draws
// a score ~ Normal(mu(x), 1) and prompts iff score > threshold. Cancer
// classes have higher means than normal classes, so lowering the threshold
// reduces machine false negatives but raises machine false positives —
// exactly the "often possible to reduce greatly ... the probability of
// false negative failures if one is willing to accept a corresponding
// increase in false positive failures" of Section 5.
//
// The human response is modelled with the same conditional formalism as the
// sequential model, on both sides:
//   cancer cases:  P(no-recall | machine prompted / not, class)
//   normal cases:  P(recall    | machine prompted / not, class)
// System-level FN and FP rates, recall rate, sensitivity/specificity and
// PPV then follow for any threshold; `sweep` traces the whole trade-off
// curve.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/demand_profile.hpp"
#include "core/eval_cache.hpp"
#include "exec/config.hpp"

namespace hmdiv::core {

/// Machine latent-score means per class; unit-variance binormal model.
struct BinormalMachine {
  /// Mean score on each *cancer* class (same order as the cancer profile).
  std::vector<double> cancer_class_means;
  /// Mean score on each *normal* (no-cancer) class.
  std::vector<double> normal_class_means;

  /// P(machine false negative | cancer class x) at `threshold`:
  /// P(score <= threshold) = Phi(threshold − mu).
  [[nodiscard]] double p_false_negative(std::size_t x, double threshold) const;

  /// P(machine false positive | normal class x) at `threshold`:
  /// P(score > threshold) = Phi(mu − threshold).
  [[nodiscard]] double p_false_positive(std::size_t x, double threshold) const;
};

/// Human conditional response on cancer cases (false-negative side).
struct HumanFnResponse {
  double p_fail_given_machine_prompted = 0.0;   ///< PHf|Ms(x)
  double p_fail_given_machine_silent = 0.0;     ///< PHf|Mf(x)
};

/// Human conditional response on normal cases (false-positive side):
/// probability of (wrongly) recalling a healthy patient.
struct HumanFpResponse {
  double p_recall_given_machine_prompted = 0.0;  ///< prompts bias to recall
  double p_recall_given_machine_silent = 0.0;
};

/// System-level operating point at one machine threshold.
struct SystemOperatingPoint {
  double threshold = 0.0;
  double machine_fn = 0.0;  ///< machine false-negative rate on cancers
  double machine_fp = 0.0;  ///< machine false-positive rate on normals
  double system_fn = 0.0;   ///< P(no recall | cancer)
  double system_fp = 0.0;   ///< P(recall | no cancer)
  double sensitivity = 0.0; ///< 1 − system_fn
  double specificity = 0.0; ///< 1 − system_fp
  double recall_rate = 0.0; ///< overall P(recall) at the given prevalence
  double ppv = 0.0;         ///< P(cancer | recall); 0 if nothing is recalled
};

/// An operating point together with its expected cost — the candidate type
/// minimise_cost folds over, exposed so partial scans (grid sub-ranges
/// computed by shard workers) can be merged with the same earliest-tie
/// rule: fold candidates in ascending grid order with strict <.
struct CostedOperatingPoint {
  SystemOperatingPoint point;
  double cost = 0.0;
  /// False iff the scanned range was empty.
  bool valid = false;
};

/// Analyses the two failure modes of the whole human-machine system as a
/// function of the machine's operating threshold.
class TradeoffAnalyzer {
 public:
  /// `cancer_profile` / `normal_profile`: class mixes among cancer and
  /// normal cases respectively. `prevalence` = P(cancer) in the screened
  /// population (paper: "less than 1%").
  TradeoffAnalyzer(BinormalMachine machine, DemandProfile cancer_profile,
                   std::vector<HumanFnResponse> fn_response,
                   DemandProfile normal_profile,
                   std::vector<HumanFpResponse> fp_response,
                   double prevalence);

  /// Scalar reference evaluation of one threshold. This is the documented
  /// semantics of the analyzer; evaluate_batch is required (and tested) to
  /// reproduce it bit-for-bit.
  [[nodiscard]] SystemOperatingPoint evaluate(double threshold) const;

  /// SoA batch kernel: out[i] = evaluate(thresholds[i]) bit-for-bit, but
  /// walking classes in the outer loop and thresholds in the inner loop
  /// over contiguous scratch arrays, so the Φ evaluations take the
  /// vectorised stats::normal_cdf(span) path (fastest when `thresholds`
  /// is monotone, as sweep grids are). Scratch comes from the calling
  /// thread's exec workspace: after warm-up the call does no heap
  /// allocation. Requires out.size() == thresholds.size().
  void evaluate_batch(std::span<const double> thresholds,
                      std::span<SystemOperatingPoint> out) const;

  /// Evaluates every threshold; points come back in input order. The
  /// sweep runs on the exec engine (each point is independent), so large
  /// curves scale with the thread budget.
  /// When a sweep cache is enabled (set_sweep_cache_capacity), identical
  /// repeated grids are served from the cache.
  [[nodiscard]] std::vector<SystemOperatingPoint> sweep(
      const std::vector<double>& thresholds,
      const exec::Config& config = exec::default_config()) const;

  /// Zero-allocation sweep into caller-provided storage (the engine under
  /// sweep()). Chunks of the grid are dispatched to evaluate_batch in
  /// parallel; after per-thread workspace warm-up the steady state does no
  /// heap allocation. Bypasses the sweep cache. Requires
  /// out.size() == thresholds.size().
  void sweep_into(std::span<const double> thresholds,
                  std::span<SystemOperatingPoint> out,
                  const exec::Config& config = exec::default_config()) const;

  /// Enables (capacity > 0) or disables (0, the default) the keyed sweep
  /// cache used by sweep() for repeated what-if grids. The cache keys on
  /// the full threshold vector (hash + exact contents) and evicts oldest
  /// entries first. Thread-safe.
  void set_sweep_cache_capacity(std::size_t capacity) const;

  /// Threshold minimising expected cost
  /// cost = prevalence·cost_fn·system_fn + (1−prevalence)·cost_fp·system_fp
  /// over a grid search on [lo, hi] with `steps` points. Grid chunks are
  /// scanned in parallel and merged left-to-right (earliest grid point
  /// wins ties), so the result matches the serial scan exactly.
  [[nodiscard]] SystemOperatingPoint minimise_cost(
      double cost_fn, double cost_fp, double lo, double hi, std::size_t steps,
      const exec::Config& config = exec::default_config()) const;

  /// The scan under minimise_cost, restricted to global grid indices
  /// [first, last) of the same `steps`-point grid (thresholds are derived
  /// from the global index, so a sub-range evaluates exactly the points it
  /// would in a full scan). Returns the range's best candidate under the
  /// strict-< / ascending-order rule; folding the results of a partition
  /// of [0, steps) in ascending order with strict < reproduces
  /// minimise_cost exactly — the shard merge rule.
  [[nodiscard]] CostedOperatingPoint minimise_cost_range(
      double cost_fn, double cost_fp, double lo, double hi, std::size_t steps,
      std::size_t first, std::size_t last,
      const exec::Config& config = exec::default_config()) const;

  // Construction parameters, exposed so an identical analyzer can be
  // rebuilt elsewhere (the shard workloads serialize them as IEEE-754 bit
  // patterns; rebuilding through from_normalised profiles reproduces this
  // analyzer's arithmetic bit-for-bit).
  [[nodiscard]] const BinormalMachine& machine() const { return machine_; }
  [[nodiscard]] const DemandProfile& cancer_profile() const {
    return cancer_profile_;
  }
  [[nodiscard]] const std::vector<HumanFnResponse>& fn_response() const {
    return fn_response_;
  }
  [[nodiscard]] const DemandProfile& normal_profile() const {
    return normal_profile_;
  }
  [[nodiscard]] const std::vector<HumanFpResponse>& fp_response() const {
    return fp_response_;
  }
  [[nodiscard]] double prevalence() const { return prevalence_; }

 private:
  BinormalMachine machine_;
  DemandProfile cancer_profile_;
  std::vector<HumanFnResponse> fn_response_;
  DemandProfile normal_profile_;
  std::vector<HumanFpResponse> fp_response_;
  double prevalence_;

  // Memoised class-conditional SoA tables: everything threshold-independent
  // in evaluate(), hoisted once at construction so the batch kernel streams
  // over flat arrays (class means, profile weights, human conditionals).
  std::vector<double> cancer_mean_;
  std::vector<double> cancer_weight_;
  std::vector<double> fn_prompted_;
  std::vector<double> fn_silent_;
  std::vector<double> normal_mean_;
  std::vector<double> normal_weight_;
  std::vector<double> fp_prompted_;
  std::vector<double> fp_silent_;

  // Keyed evaluation cache for repeated what-if sweeps; disabled (capacity
  // 0) by default so benches and the zero-alloc path stay honest. The
  // threshold grid is the key (hash + exact contents, see EvalCache).
  mutable EvalCache<std::vector<SystemOperatingPoint>> sweep_cache_;
};

}  // namespace hmdiv::core
