// Closed-form models of the more complex programmes named in the paper's
// Conclusions: "two readers assisted by a CADT, or less qualified readers
// assisted by CADTs", plus UK-practice double reading with and without
// arbitration.
//
// All models stay in the paper's formalism: failure probabilities are
// conditional on the class of cases (and, where a CADT is present, on the
// machine's success/failure), with conditional independence *given* those
// conditioning events. Marginal correlation between readers then arises
// from the shared difficulty of cases — no unwarranted independence
// assumption at the system level. The recall rule throughout is
// "recall if either reader recalls" (1-out-of-2), so a system false
// negative requires every reader to fail.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/demand_profile.hpp"
#include "core/sequential_model.hpp"

namespace hmdiv::core {

/// One reader's conditional false-negative probabilities for one class,
/// given the CADT's outcome on that case.
struct ReaderConditional {
  double p_fail_given_machine_fails = 0.0;
  double p_fail_given_machine_succeeds = 0.0;
};

/// Double reading without CADT: readers A and B fail independently given
/// the class; system FN iff both fail.
class DoubleReadingModel {
 public:
  /// `reader_a[x]` / `reader_b[x]`: per-class false-negative probabilities.
  DoubleReadingModel(std::vector<std::string> class_names,
                     std::vector<double> reader_a,
                     std::vector<double> reader_b);

  [[nodiscard]] std::size_t class_count() const { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& class_names() const {
    return names_;
  }

  /// P(system FN | class x) = pA(x)·pB(x).
  [[nodiscard]] double system_failure_given_class(std::size_t x) const;
  [[nodiscard]] double system_failure_probability(
      const DemandProfile& profile) const;

  /// Marginal failure probability of each reader and their Eq.(3)-style
  /// covariance over the profile — quantifies reader-reader diversity.
  [[nodiscard]] double reader_a_failure(const DemandProfile& profile) const;
  [[nodiscard]] double reader_b_failure(const DemandProfile& profile) const;
  [[nodiscard]] double failure_covariance(const DemandProfile& profile) const;

  /// With arbitration: when exactly one reader recalls, an arbiter with
  /// per-class failure probability `arbiter[x]` decides. System FN iff both
  /// fail, or they disagree and the arbiter wrongly sides with "no recall":
  /// pA·pB + [pA(1−pB) + (1−pA)pB]·pArb.
  [[nodiscard]] double system_failure_with_arbitration(
      const DemandProfile& profile, const std::vector<double>& arbiter) const;

 private:
  void check_class(std::size_t x) const;

  std::vector<std::string> names_;
  std::vector<double> reader_a_;
  std::vector<double> reader_b_;
};

/// Two readers, both seeing the same CADT output (the machine processes the
/// case once; both readers see the prompted films). Given the class and the
/// machine outcome, reader failures are conditionally independent.
class TwoReadersWithCadtModel {
 public:
  /// `p_machine_fails[x]`: CADT false-negative probability per class.
  TwoReadersWithCadtModel(std::vector<std::string> class_names,
                          std::vector<double> p_machine_fails,
                          std::vector<ReaderConditional> reader_a,
                          std::vector<ReaderConditional> reader_b);

  [[nodiscard]] std::size_t class_count() const { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& class_names() const {
    return names_;
  }

  /// P(system FN | class x)
  ///   = PMf(x)·pA|Mf(x)·pB|Mf(x) + PMs(x)·pA|Ms(x)·pB|Ms(x).
  [[nodiscard]] double system_failure_given_class(std::size_t x) const;
  [[nodiscard]] double system_failure_probability(
      const DemandProfile& profile) const;

  /// The single-reader submodel for reader A or B (drop the other reader) —
  /// lets callers compare one-reader-with-CADT against two.
  [[nodiscard]] SequentialModel reader_a_alone() const;
  [[nodiscard]] SequentialModel reader_b_alone() const;

  /// The naive estimate that multiplies the two single-reader system
  /// failure probabilities per class, ignoring that both readers share the
  /// *same* machine outcome. Underestimates failure when t(x) > 0 for both
  /// readers; exposed so benches can show the size of the error.
  [[nodiscard]] double system_failure_assuming_reader_independence(
      const DemandProfile& profile) const;

 private:
  void check_class(std::size_t x) const;

  std::vector<std::string> names_;
  std::vector<double> p_machine_fails_;
  std::vector<ReaderConditional> reader_a_;
  std::vector<ReaderConditional> reader_b_;
};

}  // namespace hmdiv::core
