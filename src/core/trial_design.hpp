// Designing the controlled trial (Section 1's enrichment problem, made
// quantitative).
//
// The paper notes that trial case sets are enriched ("a much higher
// proportion of cancers than ... the screened population. This is
// necessary to make the trial reasonably short"). Given a guessed model
// and the *field* profile to be predicted, this module answers: how should
// a fixed budget of trial cases be allocated across classes so the Eq.-(8)
// field prediction is as precise as possible?
//
// Delta method: with n_x cases of class x in the trial, the sampling
// variance of the predicted field failure probability is
//
//   Var(PHf_field) ≈ sum_x c_x / n_x,
//   c_x = p_field(x)^2 · [ t(x)^2·PMf(1−PMf)
//                          + PMf·q1(1−q1) + PMs·q2(1−q2) ](x)
//
// (the three terms: uncertainty in PMf weighted by the importance index;
// in PHf|Mf = q1, observed on the ~n_x·PMf machine-failure cases; in
// PHf|Ms = q2 on the rest). Minimising sum c_x/n_x subject to
// sum n_x = N gives the Neyman allocation n_x ∝ sqrt(c_x) — typically far
// from the field mix: rare-but-uncertain-and-influential classes (the
// "difficult" cases) get heavily over-sampled, which is exactly what real
// trials do.
#pragma once

#include <cstdint>
#include <vector>

#include "core/demand_profile.hpp"
#include "core/sequential_model.hpp"
#include "exec/config.hpp"

namespace hmdiv::core {

/// Trial cases needed so that a Wald/Wilson-style interval for a
/// proportion near `p_guess` has half-width <= `halfwidth` at the given
/// confidence: n = z^2 p(1-p) / h^2, rounded up.
[[nodiscard]] std::uint64_t required_cases_for_halfwidth(
    double p_guess, double halfwidth, double confidence = 0.95);

/// The delta-method variance coefficients c_x (see file comment).
[[nodiscard]] std::vector<double> variance_coefficients(
    const SequentialModel& model_guess, const DemandProfile& field);

/// Var(PHf_field) for a specific per-class case allocation (all entries
/// must be > 0; size must match the model's classes).
[[nodiscard]] double prediction_variance(const SequentialModel& model_guess,
                                         const DemandProfile& field,
                                         const std::vector<double>& cases);

/// A designed trial.
struct TrialDesign {
  /// Per-class case counts (sum ~ total, each >= 1).
  std::vector<double> cases;
  /// The implied trial demand profile (cases normalised).
  DemandProfile trial_profile;
  /// Predicted standard error of the Eq.-(8) field prediction.
  double predicted_standard_error = 0.0;
};

/// Neyman-optimal allocation of `total_cases` across classes for the
/// precision of the field prediction. Classes with zero coefficient get a
/// minimal share (1 case) so every parameter stays estimable.
[[nodiscard]] TrialDesign optimal_allocation(
    const SequentialModel& model_guess, const DemandProfile& field,
    double total_cases);

/// The same, for an arbitrary trial profile (e.g. sampling proportionally
/// to the field, or the paper's 80/20) — for comparison.
[[nodiscard]] TrialDesign allocation_for_profile(
    const SequentialModel& model_guess, const DemandProfile& field,
    const DemandProfile& trial_profile, double total_cases);

/// Neyman-optimal designs for a sweep of total-case budgets — the
/// planning curve "prediction precision vs trial size" behind the choice
/// of trial length. Budgets are evaluated in parallel on the exec engine
/// (each design is independent); the result aligns with `budgets`. Every
/// budget must satisfy the optimal_allocation precondition (at least one
/// case per class).
[[nodiscard]] std::vector<TrialDesign> design_curve(
    const SequentialModel& model_guess, const DemandProfile& field,
    const std::vector<double>& budgets,
    const exec::Config& config = exec::default_config());

/// Cases *of class x* needed to pin the importance index t(x) down to
/// +/- `halfwidth` at the given confidence:
///
///   Var(t_hat(x)) = [ q1(1-q1)/PMf + q2(1-q2)/PMs ](x) / n_x,
///
/// (the conditional proportions are observed on the machine-failure and
/// machine-success subsets of the class's cases). This is the design
/// question behind Section 6: deciding *where to improve the machine*
/// requires knowing t(x), and for rare machine failures that takes many
/// cases — the quantitative reason trials enrich the difficult classes.
[[nodiscard]] std::uint64_t cases_for_importance_halfwidth(
    const ClassConditional& guess, double halfwidth,
    double confidence = 0.95);

}  // namespace hmdiv::core
