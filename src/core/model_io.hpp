// Plain-text serialization of models and demand profiles.
//
// Trials and analyses are long-lived artifacts: the parameters estimated
// from one evaluation get re-used for later what-if studies. The format is
// deliberately line-based and diff-friendly:
//
//   hmdiv-sequential-model v1
//   class <name> <PMf> <PHf|Mf> <PHf|Ms>
//   ...
//
//   hmdiv-demand-profile v1
//   class <name> <probability>
//   ...
//
// Blank lines and lines starting with '#' are ignored. Class names must be
// whitespace-free. Parsers throw std::invalid_argument with the offending
// line number.
#pragma once

#include <iosfwd>
#include <string>

#include "core/demand_profile.hpp"
#include "core/sequential_model.hpp"

namespace hmdiv::core {

/// Serializes a model (17-significant-digit round-trippable numbers).
[[nodiscard]] std::string to_text(const SequentialModel& model);
/// Serializes a profile.
[[nodiscard]] std::string to_text(const DemandProfile& profile);

/// Parses a model; throws std::invalid_argument on malformed input.
[[nodiscard]] SequentialModel parse_sequential_model(const std::string& text);
/// Parses a profile; throws std::invalid_argument on malformed input.
[[nodiscard]] DemandProfile parse_demand_profile(const std::string& text);

/// Stream helpers (same formats).
void write_model(std::ostream& os, const SequentialModel& model);
void write_profile(std::ostream& os, const DemandProfile& profile);
[[nodiscard]] SequentialModel read_model(std::istream& is);
[[nodiscard]] DemandProfile read_profile(std::istream& is);

}  // namespace hmdiv::core
