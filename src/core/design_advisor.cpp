#include "core/design_advisor.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/summary.hpp"

namespace hmdiv::core {

DesignAdvisor::DesignAdvisor(SequentialModel model, DemandProfile profile)
    : model_(std::move(model)), profile_(std::move(profile)) {
  if (!model_.compatible_with(profile_)) {
    throw std::invalid_argument(
        "DesignAdvisor: profile classes do not match model classes");
  }
}

ImprovementEffect DesignAdvisor::evaluate(
    const ImprovementCandidate& candidate) const {
  ImprovementEffect out;
  out.name = candidate.name;
  out.baseline_failure = model_.system_failure_probability(profile_);

  SequentialModel improved =
      candidate.class_index == ImprovementCandidate::kAllClasses
          ? model_.with_uniform_machine_improvement(candidate.factor)
          : model_.with_machine_improvement(candidate.class_index,
                                            candidate.factor);
  out.improved_failure = improved.system_failure_probability(profile_);

  // First-order (here: exact) analytic gain, summed over affected classes.
  double analytic = 0.0;
  for (std::size_t x = 0; x < model_.class_count(); ++x) {
    const bool affected =
        candidate.class_index == ImprovementCandidate::kAllClasses ||
        candidate.class_index == x;
    if (!affected) continue;
    const double delta_pmf = model_.parameters(x).p_machine_fails -
                             improved.parameters(x).p_machine_fails;
    analytic += profile_[x] * model_.importance_index(x) * delta_pmf;
  }
  out.analytic_gain = analytic;
  return out;
}

std::vector<ImprovementEffect> DesignAdvisor::rank(
    std::vector<ImprovementCandidate> candidates) const {
  std::vector<ImprovementEffect> out;
  out.reserve(candidates.size());
  for (const auto& c : candidates) out.push_back(evaluate(c));
  std::stable_sort(out.begin(), out.end(),
                   [](const ImprovementEffect& a, const ImprovementEffect& b) {
                     return a.absolute_gain() > b.absolute_gain();
                   });
  return out;
}

std::size_t DesignAdvisor::best_target_class() const {
  std::size_t best = 0;
  double best_leverage = -1.0;
  for (std::size_t x = 0; x < model_.class_count(); ++x) {
    const double leverage = profile_[x] * model_.importance_index(x) *
                            model_.parameters(x).p_machine_fails;
    if (leverage > best_leverage) {
      best_leverage = leverage;
      best = x;
    }
  }
  return best;
}

DesignDiagnosis DesignAdvisor::diagnose() const {
  DesignDiagnosis out;
  out.system_failure = model_.system_failure_probability(profile_);
  out.floor = model_.failure_floor(profile_);
  out.machine_addressable_fraction =
      out.system_failure > 0.0 ? 1.0 - out.floor / out.system_failure : 0.0;

  const FailureDecomposition d = model_.decompose(profile_);
  out.covariance = d.covariance;

  std::vector<double> p_mf(model_.class_count());
  std::vector<double> t(model_.class_count());
  for (std::size_t x = 0; x < model_.class_count(); ++x) {
    p_mf[x] = model_.parameters(x).p_machine_fails;
    t[x] = model_.importance_index(x);
  }
  out.correlation = stats::weighted_correlation(
      p_mf, t, profile_.distribution().probabilities());

  out.class_leverage.resize(model_.class_count());
  for (std::size_t x = 0; x < model_.class_count(); ++x) {
    out.class_leverage[x] = profile_[x] * t[x] * p_mf[x];
  }
  return out;
}

}  // namespace hmdiv::core
