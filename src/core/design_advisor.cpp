#include "core/design_advisor.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/summary.hpp"

namespace hmdiv::core {

DesignAdvisor::DesignAdvisor(SequentialModel model, DemandProfile profile)
    : model_(std::move(model)), profile_(std::move(profile)) {
  if (!model_.compatible_with(profile_)) {
    throw std::invalid_argument(
        "DesignAdvisor: profile classes do not match model classes");
  }
  const std::size_t n = model_.class_count();
  weight_.resize(n);
  pmf_.resize(n);
  t_.resize(n);
  phf_mf_.resize(n);
  phf_ms_.resize(n);
  for (std::size_t x = 0; x < n; ++x) {
    const ClassConditional& c = model_.parameters(x);
    weight_[x] = profile_[x];
    pmf_[x] = c.p_machine_fails;
    t_[x] = c.importance_index();
    phf_mf_[x] = c.p_human_fails_given_machine_fails;
    phf_ms_[x] = c.p_human_fails_given_machine_succeeds;
  }
  baseline_failure_ = model_.system_failure_probability(profile_);
}

ImprovementEffect DesignAdvisor::evaluate(
    const ImprovementCandidate& candidate) const {
  const std::size_t n = model_.class_count();
  const bool all = candidate.class_index == ImprovementCandidate::kAllClasses;
  // Same validation (and messages) as the with_*_machine_improvement
  // transforms this path replaces.
  if (!all && candidate.class_index >= n) {
    throw std::invalid_argument("SequentialModel: class index out of range");
  }
  if (!(candidate.factor >= 0.0)) {
    throw std::invalid_argument(
        all ? "SequentialModel::with_uniform_machine_improvement: factor >= 0"
            : "SequentialModel::with_machine_improvement: factor must be >= "
              "0");
  }

  ImprovementEffect out;
  out.name = candidate.name;
  out.baseline_failure = baseline_failure_;

  // Re-sum Eq. (8) with the affected classes' PMf scaled exactly as
  // with_machine_improvement would scale them (same clamp, same expression,
  // same fold order), so no improved model needs to be built.
  double improved_total = 0.0;
  double analytic = 0.0;
  for (std::size_t x = 0; x < n; ++x) {
    const bool affected = all || candidate.class_index == x;
    const double pmf =
        affected ? std::clamp(pmf_[x] * candidate.factor, 0.0, 1.0) : pmf_[x];
    improved_total +=
        weight_[x] * (phf_ms_[x] * (1.0 - pmf) + phf_mf_[x] * pmf);
    if (affected) analytic += weight_[x] * t_[x] * (pmf_[x] - pmf);
  }
  out.improved_failure = improved_total;
  out.analytic_gain = analytic;
  return out;
}

std::vector<ImprovementEffect> DesignAdvisor::rank(
    std::vector<ImprovementCandidate> candidates) const {
  std::vector<ImprovementEffect> out;
  out.reserve(candidates.size());
  for (const auto& c : candidates) out.push_back(evaluate(c));
  std::stable_sort(out.begin(), out.end(),
                   [](const ImprovementEffect& a, const ImprovementEffect& b) {
                     return a.absolute_gain() > b.absolute_gain();
                   });
  return out;
}

std::size_t DesignAdvisor::best_target_class() const {
  std::size_t best = 0;
  double best_leverage = -1.0;
  for (std::size_t x = 0; x < model_.class_count(); ++x) {
    const double leverage = weight_[x] * t_[x] * pmf_[x];
    if (leverage > best_leverage) {
      best_leverage = leverage;
      best = x;
    }
  }
  return best;
}

DesignDiagnosis DesignAdvisor::diagnose() const {
  DesignDiagnosis out;
  out.system_failure = model_.system_failure_probability(profile_);
  out.floor = model_.failure_floor(profile_);
  out.machine_addressable_fraction =
      out.system_failure > 0.0 ? 1.0 - out.floor / out.system_failure : 0.0;

  const FailureDecomposition d = model_.decompose(profile_);
  out.covariance = d.covariance;

  out.correlation = stats::weighted_correlation(
      pmf_, t_, profile_.distribution().probabilities());

  out.class_leverage.resize(model_.class_count());
  for (std::size_t x = 0; x < model_.class_count(); ++x) {
    out.class_leverage[x] = weight_[x] * t_[x] * pmf_[x];
  }
  return out;
}

}  // namespace hmdiv::core
