#include "core/uncertainty.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "exec/parallel.hpp"
#include "exec/workspace.hpp"
#include "obs/obs.hpp"
#include "stats/summary.hpp"

namespace hmdiv::core {

namespace {

constexpr double kJeffreys = 0.5;

double posterior_mean(std::uint64_t k, std::uint64_t n) {
  return (static_cast<double>(k) + kJeffreys) /
         (static_cast<double>(n) + 2.0 * kJeffreys);
}

double posterior_draw(std::uint64_t k, std::uint64_t n, stats::Rng& rng) {
  return rng.beta(static_cast<double>(k) + kJeffreys,
                  static_cast<double>(n - k) + kJeffreys);
}

}  // namespace

PosteriorModelSampler::PosteriorModelSampler(
    std::vector<std::string> class_names, std::vector<ClassCounts> counts)
    : names_(std::move(class_names)), counts_(std::move(counts)) {
  if (names_.empty() || names_.size() != counts_.size()) {
    throw std::invalid_argument(
        "PosteriorModelSampler: need one ClassCounts per class name");
  }
  for (const auto& c : counts_) {
    if (c.cases == 0) {
      throw std::invalid_argument(
          "PosteriorModelSampler: every class needs at least one case");
    }
    if (c.machine_failures > c.cases) {
      throw std::invalid_argument(
          "PosteriorModelSampler: machine_failures > cases");
    }
    if (c.human_failures_given_machine_failed > c.machine_failures) {
      throw std::invalid_argument(
          "PosteriorModelSampler: human failures exceed machine-failure "
          "cases");
    }
    const std::uint64_t machine_successes = c.cases - c.machine_failures;
    if (c.human_failures_given_machine_succeeded > machine_successes) {
      throw std::invalid_argument(
          "PosteriorModelSampler: human failures exceed machine-success "
          "cases");
    }
  }
  // Hoist the per-parameter Beta(k + a, n − k + a) Marsaglia–Tsang
  // constants once; the (k, n) pairs and their order mirror sample()
  // exactly, so draws via these preps consume the stream identically.
  beta_prep_.reserve(counts_.size() * 6);
  const auto push_prep = [this](std::uint64_t k, std::uint64_t n) {
    beta_prep_.emplace_back(static_cast<double>(k) + kJeffreys);
    beta_prep_.emplace_back(static_cast<double>(n - k) + kJeffreys);
  };
  for (const auto& c : counts_) {
    push_prep(c.machine_failures, c.cases);
    push_prep(c.human_failures_given_machine_failed, c.machine_failures);
    push_prep(c.human_failures_given_machine_succeeded,
              c.cases - c.machine_failures);
  }
}

SequentialModel PosteriorModelSampler::posterior_mean_model() const {
  std::vector<ClassConditional> params;
  params.reserve(counts_.size());
  for (const auto& c : counts_) {
    ClassConditional p;
    p.p_machine_fails = posterior_mean(c.machine_failures, c.cases);
    p.p_human_fails_given_machine_fails = posterior_mean(
        c.human_failures_given_machine_failed, c.machine_failures);
    p.p_human_fails_given_machine_succeeds =
        posterior_mean(c.human_failures_given_machine_succeeded,
                       c.cases - c.machine_failures);
    params.push_back(p);
  }
  return SequentialModel(names_, std::move(params));
}

SequentialModel PosteriorModelSampler::sample(stats::Rng& rng) const {
  std::vector<ClassConditional> params;
  params.reserve(counts_.size());
  for (const auto& c : counts_) {
    ClassConditional p;
    p.p_machine_fails = posterior_draw(c.machine_failures, c.cases, rng);
    p.p_human_fails_given_machine_fails = posterior_draw(
        c.human_failures_given_machine_failed, c.machine_failures, rng);
    p.p_human_fails_given_machine_succeeds =
        posterior_draw(c.human_failures_given_machine_succeeded,
                       c.cases - c.machine_failures, rng);
    params.push_back(p);
  }
  return SequentialModel(names_, std::move(params));
}

namespace {

void check_predict_args(std::size_t draws, double credibility) {
  if (draws == 0) {
    throw std::invalid_argument("PosteriorModelSampler::predict: draws == 0");
  }
  if (!(credibility > 0.0 && credibility < 1.0)) {
    throw std::invalid_argument(
        "PosteriorModelSampler::predict: credibility outside (0,1)");
  }
}

}  // namespace

void PosteriorModelSampler::sample_failure_probabilities(
    const DemandProfile& profile, stats::Rng& rng, std::span<double> out,
    const exec::Config& config) const {
  if (out.empty()) {
    throw std::invalid_argument(
        "PosteriorModelSampler::sample_failure_probabilities: empty output");
  }
  const std::uint64_t base = rng.next_u64();
  sample_failure_probability_chunks(profile, base, out.size(), 0,
                                    draw_chunk_count(out.size()), out,
                                    config);
}

std::size_t PosteriorModelSampler::draw_chunk_count(std::size_t draws) {
  return (draws + kDrawChunk - 1) / kDrawChunk;
}

void PosteriorModelSampler::sample_failure_probability_chunks(
    const DemandProfile& profile, std::uint64_t base, std::size_t total_draws,
    std::size_t first_chunk, std::size_t last_chunk, std::span<double> out,
    const exec::Config& config) const {
  if (profile.class_names() != names_) {
    throw std::invalid_argument(
        "SequentialModel: profile classes do not match model classes");
  }
  const std::size_t chunks = draw_chunk_count(total_draws);
  if (first_chunk > last_chunk || last_chunk > chunks) {
    throw std::invalid_argument(
        "PosteriorModelSampler: chunk range out of bounds");
  }
  const std::size_t draw_begin = first_chunk * kDrawChunk;
  const std::size_t draw_end =
      std::min(last_chunk * kDrawChunk, total_draws);
  if (out.size() != draw_end - draw_begin) {
    throw std::invalid_argument(
        "PosteriorModelSampler: output size does not match chunk range");
  }
  if (out.empty()) return;
  HMDIV_OBS_SCOPED_TIMER("core.uq.sample_ns");
  HMDIV_OBS_COUNT("core.uq.sample_calls", 1);
  HMDIV_OBS_COUNT("core.uq.draws", out.size());
  const std::size_t classes = counts_.size();
  exec::parallel_for_chunks(
      out.size(), kDrawChunk,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        // Per-parameter SoA sampling: each of the three conditionals of
        // each class fills its whole chunk lane array with one fill_beta
        // call, then the Eq. (8) transform streams over the lanes. Same
        // arithmetic as the scalar reference, batched per parameter
        // instead of per draw. Local chunk c is global chunk
        // first_chunk + c (draw_begin is a multiple of kDrawChunk), so a
        // sub-range draws from the very substreams it occupies in a full
        // run.
        stats::Rng chunk_rng(base, first_chunk + chunk);
        const std::size_t lanes = end - begin;
        const std::span<double> total = out.subspan(begin, lanes);
        exec::Workspace& local = exec::thread_workspace();
        const exec::Workspace::Scope scope(local);
        const std::span<double> pmf_s = local.alloc<double>(lanes);
        const std::span<double> phf_mf_s = local.alloc<double>(lanes);
        const std::span<double> phf_ms_s = local.alloc<double>(lanes);
        for (std::size_t x = 0; x < classes; ++x) {
          const stats::Rng::GammaPrep* prep = &beta_prep_[x * 6];
          chunk_rng.fill_beta(prep[0], prep[1], pmf_s);
          chunk_rng.fill_beta(prep[2], prep[3], phf_mf_s);
          chunk_rng.fill_beta(prep[4], prep[5], phf_ms_s);
          const double* __restrict__ pmf = pmf_s.data();
          const double* __restrict__ phf_mf = phf_mf_s.data();
          const double* __restrict__ phf_ms = phf_ms_s.data();
          double* __restrict__ acc = total.data();
          const double w = profile[x];
          // First class stores, later classes accumulate — saves the
          // zero-fill pass over the chunk.
          if (x == 0) {
            for (std::size_t i = 0; i < lanes; ++i) {
              acc[i] = w * (phf_ms[i] * (1.0 - pmf[i]) + phf_mf[i] * pmf[i]);
            }
          } else {
            for (std::size_t i = 0; i < lanes; ++i) {
              acc[i] += w * (phf_ms[i] * (1.0 - pmf[i]) + phf_mf[i] * pmf[i]);
            }
          }
        }
      },
      config);
}

UncertainPrediction PosteriorModelSampler::summarise(std::span<double> draws,
                                                     double credibility) {
  check_predict_args(draws.size(), credibility);
  // Two plain passes instead of Welford: the streaming update is a serial
  // dependence chain (~4x slower over a 10k buffer we already hold), and
  // with draws in [0,1] the two-pass centred moments are at least as
  // accurate. A NaN draw propagates through both sums.
  const double n = static_cast<double>(draws.size());
  double sum = 0.0;
  for (const double failure : draws) sum += failure;
  const double mean = sum / n;
  double m2 = 0.0;
  for (const double failure : draws) {
    m2 += (failure - mean) * (failure - mean);
  }
  const double alpha = 1.0 - credibility;
  const double qs[2] = {alpha / 2.0, 1.0 - alpha / 2.0};
  double bounds[2];
  // Selection-based quantiles: no full sort, and a NaN draw yields NaN
  // bounds instead of a sorted-to-the-end artifact.
  stats::quantiles(draws, qs, bounds);
  UncertainPrediction out;
  out.mean = mean;
  out.stddev = draws.size() < 2 ? 0.0 : std::sqrt(m2 / (n - 1.0));
  out.lower = bounds[0];
  out.upper = bounds[1];
  return out;
}

UncertainPrediction PosteriorModelSampler::predict(
    const DemandProfile& profile, stats::Rng& rng, std::size_t draws,
    double credibility, const exec::Config& config) const {
  check_predict_args(draws, credibility);
  HMDIV_OBS_SCOPED_TIMER("core.uq.predict_ns");
  HMDIV_OBS_COUNT("core.uq.predict_calls", 1);
  exec::Workspace& workspace = exec::thread_workspace();
  const exec::Workspace::Scope scope(workspace);
  const std::span<double> values = workspace.alloc<double>(draws);
  sample_failure_probabilities(profile, rng, values, config);
  return summarise(values, credibility);
}

UncertainPrediction PosteriorModelSampler::predict_reference(
    const DemandProfile& profile, stats::Rng& rng, std::size_t draws,
    double credibility, const exec::Config& config) const {
  check_predict_args(draws, credibility);
  if (profile.class_names() != names_) {
    throw std::invalid_argument(
        "SequentialModel: profile classes do not match model classes");
  }
  HMDIV_OBS_SCOPED_TIMER("core.posterior.predict_ns");
  HMDIV_OBS_COUNT("core.posterior.calls", 1);
  HMDIV_OBS_COUNT("core.posterior.draws", draws);
  // Draw i samples from substream Rng(base, i); the values array is then
  // independent of the chunk-to-thread mapping. Each draw evaluates
  // Eq. (8) directly from the memoised posterior preps — the same draw
  // order and the same per-class arithmetic as
  // sample(rng).system_failure_probability(profile), without building a
  // SequentialModel (no allocation per draw); results are bit-identical
  // to the scalar loop.
  const std::uint64_t base = rng.next_u64();
  exec::Workspace& workspace = exec::thread_workspace();
  const exec::Workspace::Scope scope(workspace);
  const std::span<double> values = workspace.alloc<double>(draws);
  const std::size_t classes = counts_.size();
  exec::parallel_for_chunks(
      draws, /*grain=*/64,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
          stats::Rng draw_rng(base, i);
          double total = 0.0;
          for (std::size_t x = 0; x < classes; ++x) {
            const stats::Rng::GammaPrep* prep = &beta_prep_[x * 6];
            const double pmf = draw_rng.beta(prep[0], prep[1]);
            const double phf_mf = draw_rng.beta(prep[2], prep[3]);
            const double phf_ms = draw_rng.beta(prep[4], prep[5]);
            total += profile[x] * (phf_ms * (1.0 - pmf) + phf_mf * pmf);
          }
          values[i] = total;
        }
      },
      config);
  // Pre-PR extraction kept verbatim: OnlineStats pass + full sort +
  // sorted_quantile. The selection-based summarise() returns identical
  // values (Quantiles.SelectionMatchesFullSortReference pins this), but
  // this path is also the *cost* reference the batched-engine speedup is
  // measured against, so it must keep the O(n log n) sort it had.
  stats::OnlineStats online;
  for (const double failure : values) online.add(failure);
  std::sort(values.begin(), values.end());
  const double alpha = 1.0 - credibility;
  UncertainPrediction out;
  out.mean = online.mean();
  out.stddev = online.stddev();
  out.lower = stats::sorted_quantile(values, alpha / 2.0);
  out.upper = stats::sorted_quantile(values, 1.0 - alpha / 2.0);
  // Same NaN contract as summarise(): any undefined draw poisons every
  // field (NaNs sort to one end, so front/back catches them).
  if (std::isnan(out.mean) || std::isnan(values.front()) ||
      std::isnan(values.back())) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    out.mean = out.lower = out.upper = out.stddev = nan;
  }
  return out;
}

}  // namespace hmdiv::core
