#include "core/uncertainty.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "exec/parallel.hpp"
#include "exec/workspace.hpp"
#include "obs/obs.hpp"
#include "stats/summary.hpp"

namespace hmdiv::core {

namespace {

constexpr double kJeffreys = 0.5;

double posterior_mean(std::uint64_t k, std::uint64_t n) {
  return (static_cast<double>(k) + kJeffreys) /
         (static_cast<double>(n) + 2.0 * kJeffreys);
}

double posterior_draw(std::uint64_t k, std::uint64_t n, stats::Rng& rng) {
  return rng.beta(static_cast<double>(k) + kJeffreys,
                  static_cast<double>(n - k) + kJeffreys);
}

}  // namespace

PosteriorModelSampler::PosteriorModelSampler(
    std::vector<std::string> class_names, std::vector<ClassCounts> counts)
    : names_(std::move(class_names)), counts_(std::move(counts)) {
  if (names_.empty() || names_.size() != counts_.size()) {
    throw std::invalid_argument(
        "PosteriorModelSampler: need one ClassCounts per class name");
  }
  for (const auto& c : counts_) {
    if (c.cases == 0) {
      throw std::invalid_argument(
          "PosteriorModelSampler: every class needs at least one case");
    }
    if (c.machine_failures > c.cases) {
      throw std::invalid_argument(
          "PosteriorModelSampler: machine_failures > cases");
    }
    if (c.human_failures_given_machine_failed > c.machine_failures) {
      throw std::invalid_argument(
          "PosteriorModelSampler: human failures exceed machine-failure "
          "cases");
    }
    const std::uint64_t machine_successes = c.cases - c.machine_failures;
    if (c.human_failures_given_machine_succeeded > machine_successes) {
      throw std::invalid_argument(
          "PosteriorModelSampler: human failures exceed machine-success "
          "cases");
    }
  }
  // Hoist the per-parameter Beta(k + a, n − k + a) Marsaglia–Tsang
  // constants once; the (k, n) pairs and their order mirror sample()
  // exactly, so draws via these preps consume the stream identically.
  beta_prep_.reserve(counts_.size() * 6);
  const auto push_prep = [this](std::uint64_t k, std::uint64_t n) {
    beta_prep_.emplace_back(static_cast<double>(k) + kJeffreys);
    beta_prep_.emplace_back(static_cast<double>(n - k) + kJeffreys);
  };
  for (const auto& c : counts_) {
    push_prep(c.machine_failures, c.cases);
    push_prep(c.human_failures_given_machine_failed, c.machine_failures);
    push_prep(c.human_failures_given_machine_succeeded,
              c.cases - c.machine_failures);
  }
}

SequentialModel PosteriorModelSampler::posterior_mean_model() const {
  std::vector<ClassConditional> params;
  params.reserve(counts_.size());
  for (const auto& c : counts_) {
    ClassConditional p;
    p.p_machine_fails = posterior_mean(c.machine_failures, c.cases);
    p.p_human_fails_given_machine_fails = posterior_mean(
        c.human_failures_given_machine_failed, c.machine_failures);
    p.p_human_fails_given_machine_succeeds =
        posterior_mean(c.human_failures_given_machine_succeeded,
                       c.cases - c.machine_failures);
    params.push_back(p);
  }
  return SequentialModel(names_, std::move(params));
}

SequentialModel PosteriorModelSampler::sample(stats::Rng& rng) const {
  std::vector<ClassConditional> params;
  params.reserve(counts_.size());
  for (const auto& c : counts_) {
    ClassConditional p;
    p.p_machine_fails = posterior_draw(c.machine_failures, c.cases, rng);
    p.p_human_fails_given_machine_fails = posterior_draw(
        c.human_failures_given_machine_failed, c.machine_failures, rng);
    p.p_human_fails_given_machine_succeeds =
        posterior_draw(c.human_failures_given_machine_succeeded,
                       c.cases - c.machine_failures, rng);
    params.push_back(p);
  }
  return SequentialModel(names_, std::move(params));
}

UncertainPrediction PosteriorModelSampler::predict(
    const DemandProfile& profile, stats::Rng& rng, std::size_t draws,
    double credibility, const exec::Config& config) const {
  if (draws == 0) {
    throw std::invalid_argument("PosteriorModelSampler::predict: draws == 0");
  }
  if (!(credibility > 0.0 && credibility < 1.0)) {
    throw std::invalid_argument(
        "PosteriorModelSampler::predict: credibility outside (0,1)");
  }
  if (profile.class_names() != names_) {
    throw std::invalid_argument(
        "SequentialModel: profile classes do not match model classes");
  }
  HMDIV_OBS_SCOPED_TIMER("core.posterior.predict_ns");
  HMDIV_OBS_COUNT("core.posterior.calls", 1);
  HMDIV_OBS_COUNT("core.posterior.draws", draws);
  // Draw i samples from substream Rng(base, i); the values array is then
  // independent of the chunk-to-thread mapping. Each draw evaluates
  // Eq. (8) directly from the memoised posterior preps — the same draw
  // order and the same per-class arithmetic as
  // sample(rng).system_failure_probability(profile), without building a
  // SequentialModel (no allocation per draw); results are bit-identical.
  const std::uint64_t base = rng.next_u64();
  exec::Workspace& workspace = exec::thread_workspace();
  const exec::Workspace::Scope scope(workspace);
  const std::span<double> values = workspace.alloc<double>(draws);
  const std::size_t classes = counts_.size();
  exec::parallel_for_chunks(
      draws, /*grain=*/64,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
          stats::Rng draw_rng(base, i);
          double total = 0.0;
          for (std::size_t x = 0; x < classes; ++x) {
            const stats::Rng::GammaPrep* prep = &beta_prep_[x * 6];
            const double pmf = draw_rng.beta(prep[0], prep[1]);
            const double phf_mf = draw_rng.beta(prep[2], prep[3]);
            const double phf_ms = draw_rng.beta(prep[4], prep[5]);
            total += profile[x] * (phf_ms * (1.0 - pmf) + phf_mf * pmf);
          }
          values[i] = total;
        }
      },
      config);
  stats::OnlineStats online;
  for (const double failure : values) online.add(failure);
  std::sort(values.begin(), values.end());
  const double alpha = 1.0 - credibility;
  UncertainPrediction out;
  out.mean = online.mean();
  out.stddev = online.stddev();
  out.lower = stats::sorted_quantile(values, alpha / 2.0);
  out.upper = stats::sorted_quantile(values, 1.0 - alpha / 2.0);
  return out;
}

}  // namespace hmdiv::core
