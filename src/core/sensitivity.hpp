// Analytic sensitivity of the system failure probability (Eq. 8) to every
// model parameter.
//
// Because Eq. (8) is multilinear, the partial derivatives are exact and
// closed-form:
//
//   ∂PHf/∂PMf(x)     = p(x)·t(x)                    (Fig. 4's slope, scaled)
//   ∂PHf/∂PHf|Mf(x)  = p(x)·PMf(x)
//   ∂PHf/∂PHf|Ms(x)  = p(x)·PMs(x)
//   ∂PHf/∂p(x)       = PHf(x)        (unconstrained; for a normalised
//                                     profile the meaningful quantity is the
//                                     difference between classes)
//
// Sensitivities direct measurement effort (which parameter's uncertainty
// dominates the prediction) and design effort (what to improve). Tests
// validate each derivative against central finite differences.
#pragma once

#include <cstddef>
#include <vector>

#include "core/demand_profile.hpp"
#include "core/sequential_model.hpp"

namespace hmdiv::core {

/// All partial derivatives of PHf for one class of cases.
struct ClassSensitivity {
  double d_machine_failure = 0.0;        ///< ∂PHf/∂PMf(x)
  double d_human_given_failure = 0.0;    ///< ∂PHf/∂PHf|Mf(x)
  double d_human_given_success = 0.0;    ///< ∂PHf/∂PHf|Ms(x)
  double d_profile = 0.0;                ///< ∂PHf/∂p(x) (unconstrained)
};

/// Exact gradient of Eq. (8) in every parameter.
[[nodiscard]] std::vector<ClassSensitivity> sensitivities(
    const SequentialModel& model, const DemandProfile& profile);

/// Elasticities (relative sensitivities): (∂PHf/∂θ)·(θ/PHf). An elasticity
/// of e means a 1% relative increase in θ produces an e% relative increase
/// in PHf. Entries are 0 where the parameter or PHf is 0.
[[nodiscard]] std::vector<ClassSensitivity> elasticities(
    const SequentialModel& model, const DemandProfile& profile);

/// Central finite-difference check of ∂PHf/∂PMf(x); used by tests and by
/// sceptical users. `h` is the step in probability units. Evaluates the
/// perturbed Eq. (8) sums directly (no model copies, no allocation) with
/// the same arithmetic the previous model-copy formulation performed.
[[nodiscard]] double finite_difference_machine_failure(
    const SequentialModel& model, const DemandProfile& profile, std::size_t x,
    double h = 1e-6);

/// Full finite-difference grid: ∂PHf/∂PMf(x) for every class in one call.
/// The model parameters are staged once into flat SoA scratch from the
/// calling thread's exec workspace, so the 2·n perturbed evaluations run
/// over contiguous arrays and the call allocates nothing beyond its result
/// after workspace warm-up. Every class must have PMf interior to (0,1),
/// as in the single-class form.
[[nodiscard]] std::vector<double> finite_difference_machine_failure_gradient(
    const SequentialModel& model, const DemandProfile& profile,
    double h = 1e-6);

}  // namespace hmdiv::core
