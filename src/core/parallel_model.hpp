// The paper's "parallel detection" model (Section 3, Fig. 2).
//
// Under the *intended* procedure of use, the reader first examines the
// films unaided, then reviews the machine's prompts; detection is therefore
// 1-out-of-2 parallel between human and machine, followed in series by the
// human's classification step:
//
//   P(FN) = P(Mf AND Hmiss) + P(NOT(Mf AND Hmiss) AND Hmisclass)   (Eq. 1)
//
// With *conditional* independence given the case class (the human's and the
// machine's detection behaviour both depend on the case, but not on each
// other's output), the detection-failure probability marginally is Eq. (3):
//
//   P(detection failure) = PMf·PHmiss + cov_x(pMf(x), pHmiss(x))
//
// The naive fully-independent form (Eq. 2) drops the covariance — this
// class exposes both so benches can show the size of that error.
//
// The parallel model is strictly a special case of the sequential model:
//   PHf|Ms(x) = pHmisclass(x)                          (machine prompted →
//                                                       detection certain)
//   PHf|Mf(x) = pHmiss(x) + (1 − pHmiss(x))·pHmisclass(x)
// `to_sequential()` performs that embedding; tests assert the two models
// then agree on every probability.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/demand_profile.hpp"
#include "core/sequential_model.hpp"
#include "rbd/structure.hpp"

namespace hmdiv::core {

/// Component indices of the Fig. 2 RBD produced by
/// ParallelDetectionModel::structure().
enum class ParallelBlock : std::size_t {
  kMachineDetects = 0,
  kHumanDetects = 1,
  kHumanClassifies = 2,
};

/// Per-class parameters of the parallel-detection model.
struct ParallelClassConditional {
  /// pMf(x): machine misses every relevant feature.
  double p_machine_misses = 0.0;
  /// pHmiss(x): human misses every relevant feature unaided.
  double p_human_misses = 0.0;
  /// pHmisclass(x): human sees the features but still decides "no recall".
  double p_human_misclassifies = 0.0;

  /// P(FN | class x), Eq. (1) with conditional independence inside x.
  [[nodiscard]] double system_failure() const {
    const double detection_failure = p_machine_misses * p_human_misses;
    return detection_failure +
           (1.0 - detection_failure) * p_human_misclassifies;
  }
};

/// Immutable parallel-detection model over named classes of cases.
class ParallelDetectionModel {
 public:
  ParallelDetectionModel(std::vector<std::string> class_names,
                         std::vector<ParallelClassConditional> parameters);

  [[nodiscard]] std::size_t class_count() const { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& class_names() const {
    return names_;
  }
  [[nodiscard]] const ParallelClassConditional& parameters(
      std::size_t x) const;
  [[nodiscard]] bool compatible_with(const DemandProfile& profile) const;

  /// P(FN | class x).
  [[nodiscard]] double system_failure_given_class(std::size_t x) const;

  /// Eq. (8)-style profile-weighted system failure probability.
  [[nodiscard]] double system_failure_probability(
      const DemandProfile& profile) const;

  /// Marginal detection-failure probability, exact (Eq. 3 left side):
  /// E_x[pMf(x)·pHmiss(x)].
  [[nodiscard]] double detection_failure_probability(
      const DemandProfile& profile) const;

  /// The covariance term of Eq. (3): cov_x(pMf(x), pHmiss(x)).
  /// Positive => human and machine share difficult cases; negative =>
  /// useful diversity.
  [[nodiscard]] double detection_covariance(const DemandProfile& profile) const;

  /// The naive Eq. (2) estimate that assumes full independence between the
  /// blocks *marginally*: PMf·PHmiss + PHmisclass·(1 − PMf·PHmiss), all
  /// computed from profile-averaged parameters. Generally wrong; exposed to
  /// quantify the error of ignoring demand-dependent difficulty.
  [[nodiscard]] double system_failure_assuming_independence(
      const DemandProfile& profile) const;

  /// The Fig. 2 reliability block diagram:
  /// series(any_of(machine detects, human detects), human classifies).
  [[nodiscard]] static rbd::Structure structure();

  /// Embeds this model into the sequential formalism (see file comment).
  [[nodiscard]] SequentialModel to_sequential() const;

 private:
  void check_class(std::size_t x) const;

  std::vector<std::string> names_;
  std::vector<ParallelClassConditional> parameters_;
};

}  // namespace hmdiv::core
