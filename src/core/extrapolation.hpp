// Trial-to-field extrapolation (Section 5).
//
// Parameters {PMf, PHf|Mf, PHf|Ms} per class are estimated in a controlled
// trial whose case mix is *enriched* (many more cancers / difficult cases
// than the field). Eq. (8) re-weights the class-conditional parameters by
// the field demand profile. The Extrapolator also models the paper's list
// of *direct* effects (items 1–4 of Section 5): profile change, reader
// ability ranges, reader adaptation, machine change — each as an explicit
// scenario transform, so an analyst can combine them and read off the
// predicted range of system failure probabilities.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/demand_profile.hpp"
#include "core/eval_cache.hpp"
#include "core/sequential_model.hpp"

namespace hmdiv::core {

/// One named extrapolation scenario: optional transforms applied to the
/// trial-estimated model before evaluating under the target profile.
struct Scenario {
  std::string name;
  /// Target demand profile (item 1). If absent, the trial profile is used.
  std::optional<DemandProfile> profile;
  /// Multiplies both human conditional failure probabilities (item 2/3):
  /// <1 = better readers (training, vigilance), >1 = worse (complacency,
  /// fatigue). 1 = unchanged.
  double reader_failure_factor = 1.0;
  /// Multiplies PMf(x) uniformly (item 4): <1 = improved machine.
  double machine_failure_factor = 1.0;
  /// Per-class machine factors; overrides machine_failure_factor per entry
  /// (class index, factor).
  std::vector<std::pair<std::size_t, double>> per_class_machine_factors;
};

/// Result of evaluating a scenario.
struct ScenarioResult {
  std::string name;
  double system_failure = 0.0;
  double machine_failure = 0.0;
  double failure_floor = 0.0;
  FailureDecomposition decomposition;
};

/// One per-class machine-improvement entry. A trivial stand-in for
/// std::pair (which is not trivially copyable) so spec arrays can live in
/// an exec::Workspace arena.
struct ClassFactor {
  std::size_t class_index = 0;
  double factor = 1.0;
};

/// A non-owning Scenario for the batch path: the profile and per-class
/// factor list are views into caller-owned storage that must outlive the
/// evaluate_batch call. Trivially copyable so callers can arena-store
/// spans of specs.
struct ScenarioSpec {
  /// Target demand profile; nullptr means the trial profile.
  const DemandProfile* profile = nullptr;
  double reader_failure_factor = 1.0;
  double machine_failure_factor = 1.0;
  std::span<const ClassFactor> per_class_machine_factors;
};

/// ScenarioResult without the name label; trivially copyable.
struct ScenarioNumbers {
  double system_failure = 0.0;
  double machine_failure = 0.0;
  double failure_floor = 0.0;
  FailureDecomposition decomposition;
};

/// Extrapolates a trial-estimated model to new environments.
class Extrapolator {
 public:
  /// `trial_model` and `trial_profile` as estimated/used in the trial.
  Extrapolator(SequentialModel trial_model, DemandProfile trial_profile);

  [[nodiscard]] const SequentialModel& trial_model() const { return model_; }
  [[nodiscard]] const DemandProfile& trial_profile() const { return profile_; }

  /// System failure probability as observed in the trial environment.
  [[nodiscard]] double trial_failure_probability() const;

  /// Eq. (8) under a different profile, no other change.
  [[nodiscard]] double predict_for_profile(const DemandProfile& field) const;

  /// Applies the scenario transforms and evaluates. When the what-if cache
  /// is enabled (set_eval_cache_capacity > 0), a repeated query — identical
  /// transforms and identical profile probabilities — returns the memoised
  /// ScenarioResult (relabelled with this scenario's name) and counts
  /// core.whatif.cache_hit; misses count core.whatif.cache_miss.
  [[nodiscard]] ScenarioResult evaluate(const Scenario& scenario) const;

  /// Enables the scenario evaluation cache with room for `capacity` results
  /// (FIFO eviction); 0 (the default) disables it. The cache is keyed on
  /// the numeric transforms and profile probabilities only — the scenario
  /// name is a label and never affects the key.
  void set_eval_cache_capacity(std::size_t capacity) const;

  /// Evaluates a batch of scenarios (convenience for benches/examples).
  [[nodiscard]] std::vector<ScenarioResult> evaluate_all(
      const std::vector<Scenario>& scenarios) const;

  /// Batch counterpart of evaluate() over caller-provided spans: out[i]
  /// receives exactly the numbers evaluate() would produce for specs[i] —
  /// bit-identical, test-gated — with the per-spec SequentialModel copies
  /// replaced by thread_workspace scratch, so the steady state performs
  /// zero heap allocations. Bypasses the eval cache (serving keeps its own
  /// keyed caches in front). Throws std::invalid_argument on the same
  /// conditions evaluate() rejects: incompatible profile, negative factor,
  /// class index out of range.
  void evaluate_batch(std::span<const ScenarioSpec> specs,
                      std::span<ScenarioNumbers> out) const;

  /// Bounds the prediction when reader behaviour may drift within
  /// [worst_factor, best_factor] (e.g. from the literature on automation
  /// bias): returns {lower, upper} system failure under `field`.
  [[nodiscard]] std::pair<double, double> predict_range_for_reader_drift(
      const DemandProfile& field, double best_factor,
      double worst_factor) const;

 private:
  [[nodiscard]] SequentialModel transformed_model(
      const Scenario& scenario) const;
  /// Flat encoding of everything evaluate() depends on (factors, per-class
  /// overrides, profile probabilities). The trial profile is encoded as a
  /// marker only — it is fixed for this Extrapolator's lifetime.
  [[nodiscard]] std::vector<double> scenario_key(
      const Scenario& scenario) const;

  SequentialModel model_;
  DemandProfile profile_;
  mutable EvalCache<ScenarioResult> eval_cache_;
};

}  // namespace hmdiv::core
