#include "core/extrapolation.hpp"

#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"

namespace hmdiv::core {

Extrapolator::Extrapolator(SequentialModel trial_model,
                           DemandProfile trial_profile)
    : model_(std::move(trial_model)), profile_(std::move(trial_profile)) {
  if (!model_.compatible_with(profile_)) {
    throw std::invalid_argument(
        "Extrapolator: trial profile classes do not match model classes");
  }
}

double Extrapolator::trial_failure_probability() const {
  return model_.system_failure_probability(profile_);
}

double Extrapolator::predict_for_profile(const DemandProfile& field) const {
  if (!model_.compatible_with(field)) {
    throw std::invalid_argument(
        "Extrapolator: field profile classes do not match model classes");
  }
  return model_.system_failure_probability(field);
}

SequentialModel Extrapolator::transformed_model(
    const Scenario& scenario) const {
  SequentialModel m = model_;
  if (scenario.machine_failure_factor != 1.0) {
    m = m.with_uniform_machine_improvement(scenario.machine_failure_factor);
  }
  for (const auto& [class_index, factor] :
       scenario.per_class_machine_factors) {
    m = m.with_machine_improvement(class_index, factor);
  }
  if (scenario.reader_failure_factor != 1.0) {
    m = m.with_reader_improvement(scenario.reader_failure_factor);
  }
  return m;
}

std::vector<double> Extrapolator::scenario_key(
    const Scenario& scenario) const {
  std::vector<double> key;
  const std::size_t profile_terms =
      scenario.profile.has_value() ? scenario.profile->class_count() : 0;
  key.reserve(4 + 2 * scenario.per_class_machine_factors.size() +
              profile_terms);
  key.push_back(scenario.reader_failure_factor);
  key.push_back(scenario.machine_failure_factor);
  // Length prefixes keep variable-size sections from aliasing each other.
  key.push_back(
      static_cast<double>(scenario.per_class_machine_factors.size()));
  for (const auto& [class_index, factor] :
       scenario.per_class_machine_factors) {
    key.push_back(static_cast<double>(class_index));
    key.push_back(factor);
  }
  if (scenario.profile.has_value()) {
    key.push_back(1.0);
    for (std::size_t x = 0; x < scenario.profile->class_count(); ++x) {
      key.push_back((*scenario.profile)[x]);
    }
  } else {
    key.push_back(0.0);  // trial profile: fixed for this Extrapolator
  }
  return key;
}

void Extrapolator::set_eval_cache_capacity(std::size_t capacity) const {
  eval_cache_.set_capacity(capacity);
}

ScenarioResult Extrapolator::evaluate(const Scenario& scenario) const {
  const DemandProfile& profile =
      scenario.profile.has_value() ? *scenario.profile : profile_;
  if (!model_.compatible_with(profile)) {
    throw std::invalid_argument(
        "Extrapolator: scenario profile classes do not match model classes");
  }
  const bool cached = eval_cache_.enabled();
  std::vector<double> key;
  if (cached) {
    key = scenario_key(scenario);
    if (std::optional<ScenarioResult> hit = eval_cache_.find(key)) {
      HMDIV_OBS_COUNT("core.whatif.cache_hit", 1);
      hit->name = scenario.name;
      return *std::move(hit);
    }
    HMDIV_OBS_COUNT("core.whatif.cache_miss", 1);
  }
  const SequentialModel m = transformed_model(scenario);
  ScenarioResult out;
  out.name = scenario.name;
  out.system_failure = m.system_failure_probability(profile);
  out.machine_failure = m.machine_failure_probability(profile);
  out.failure_floor = m.failure_floor(profile);
  out.decomposition = m.decompose(profile);
  if (cached) eval_cache_.insert(std::move(key), out);
  return out;
}

std::vector<ScenarioResult> Extrapolator::evaluate_all(
    const std::vector<Scenario>& scenarios) const {
  std::vector<ScenarioResult> out;
  out.reserve(scenarios.size());
  for (const auto& s : scenarios) out.push_back(evaluate(s));
  return out;
}

std::pair<double, double> Extrapolator::predict_range_for_reader_drift(
    const DemandProfile& field, double best_factor,
    double worst_factor) const {
  if (!(best_factor >= 0.0) || !(worst_factor >= best_factor)) {
    throw std::invalid_argument(
        "Extrapolator: require 0 <= best_factor <= worst_factor");
  }
  const double lower = model_.with_reader_improvement(best_factor)
                           .system_failure_probability(field);
  const double upper = model_.with_reader_improvement(worst_factor)
                           .system_failure_probability(field);
  return {lower, upper};
}

}  // namespace hmdiv::core
