#include "core/extrapolation.hpp"

#include <stdexcept>

namespace hmdiv::core {

Extrapolator::Extrapolator(SequentialModel trial_model,
                           DemandProfile trial_profile)
    : model_(std::move(trial_model)), profile_(std::move(trial_profile)) {
  if (!model_.compatible_with(profile_)) {
    throw std::invalid_argument(
        "Extrapolator: trial profile classes do not match model classes");
  }
}

double Extrapolator::trial_failure_probability() const {
  return model_.system_failure_probability(profile_);
}

double Extrapolator::predict_for_profile(const DemandProfile& field) const {
  if (!model_.compatible_with(field)) {
    throw std::invalid_argument(
        "Extrapolator: field profile classes do not match model classes");
  }
  return model_.system_failure_probability(field);
}

SequentialModel Extrapolator::transformed_model(
    const Scenario& scenario) const {
  SequentialModel m = model_;
  if (scenario.machine_failure_factor != 1.0) {
    m = m.with_uniform_machine_improvement(scenario.machine_failure_factor);
  }
  for (const auto& [class_index, factor] :
       scenario.per_class_machine_factors) {
    m = m.with_machine_improvement(class_index, factor);
  }
  if (scenario.reader_failure_factor != 1.0) {
    m = m.with_reader_improvement(scenario.reader_failure_factor);
  }
  return m;
}

ScenarioResult Extrapolator::evaluate(const Scenario& scenario) const {
  const SequentialModel m = transformed_model(scenario);
  const DemandProfile& profile =
      scenario.profile.has_value() ? *scenario.profile : profile_;
  if (!m.compatible_with(profile)) {
    throw std::invalid_argument(
        "Extrapolator: scenario profile classes do not match model classes");
  }
  ScenarioResult out;
  out.name = scenario.name;
  out.system_failure = m.system_failure_probability(profile);
  out.machine_failure = m.machine_failure_probability(profile);
  out.failure_floor = m.failure_floor(profile);
  out.decomposition = m.decompose(profile);
  return out;
}

std::vector<ScenarioResult> Extrapolator::evaluate_all(
    const std::vector<Scenario>& scenarios) const {
  std::vector<ScenarioResult> out;
  out.reserve(scenarios.size());
  for (const auto& s : scenarios) out.push_back(evaluate(s));
  return out;
}

std::pair<double, double> Extrapolator::predict_range_for_reader_drift(
    const DemandProfile& field, double best_factor,
    double worst_factor) const {
  if (!(best_factor >= 0.0) || !(worst_factor >= best_factor)) {
    throw std::invalid_argument(
        "Extrapolator: require 0 <= best_factor <= worst_factor");
  }
  const double lower = model_.with_reader_improvement(best_factor)
                           .system_failure_probability(field);
  const double upper = model_.with_reader_improvement(worst_factor)
                           .system_failure_probability(field);
  return {lower, upper};
}

}  // namespace hmdiv::core
