#include "core/extrapolation.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "exec/workspace.hpp"
#include "obs/obs.hpp"
#include "stats/summary.hpp"

namespace hmdiv::core {

Extrapolator::Extrapolator(SequentialModel trial_model,
                           DemandProfile trial_profile)
    : model_(std::move(trial_model)), profile_(std::move(trial_profile)) {
  if (!model_.compatible_with(profile_)) {
    throw std::invalid_argument(
        "Extrapolator: trial profile classes do not match model classes");
  }
}

double Extrapolator::trial_failure_probability() const {
  return model_.system_failure_probability(profile_);
}

double Extrapolator::predict_for_profile(const DemandProfile& field) const {
  if (!model_.compatible_with(field)) {
    throw std::invalid_argument(
        "Extrapolator: field profile classes do not match model classes");
  }
  return model_.system_failure_probability(field);
}

SequentialModel Extrapolator::transformed_model(
    const Scenario& scenario) const {
  SequentialModel m = model_;
  if (scenario.machine_failure_factor != 1.0) {
    m = m.with_uniform_machine_improvement(scenario.machine_failure_factor);
  }
  for (const auto& [class_index, factor] :
       scenario.per_class_machine_factors) {
    m = m.with_machine_improvement(class_index, factor);
  }
  if (scenario.reader_failure_factor != 1.0) {
    m = m.with_reader_improvement(scenario.reader_failure_factor);
  }
  return m;
}

std::vector<double> Extrapolator::scenario_key(
    const Scenario& scenario) const {
  std::vector<double> key;
  const std::size_t profile_terms =
      scenario.profile.has_value() ? scenario.profile->class_count() : 0;
  key.reserve(4 + 2 * scenario.per_class_machine_factors.size() +
              profile_terms);
  key.push_back(scenario.reader_failure_factor);
  key.push_back(scenario.machine_failure_factor);
  // Length prefixes keep variable-size sections from aliasing each other.
  key.push_back(
      static_cast<double>(scenario.per_class_machine_factors.size()));
  for (const auto& [class_index, factor] :
       scenario.per_class_machine_factors) {
    key.push_back(static_cast<double>(class_index));
    key.push_back(factor);
  }
  if (scenario.profile.has_value()) {
    key.push_back(1.0);
    for (std::size_t x = 0; x < scenario.profile->class_count(); ++x) {
      key.push_back((*scenario.profile)[x]);
    }
  } else {
    key.push_back(0.0);  // trial profile: fixed for this Extrapolator
  }
  return key;
}

void Extrapolator::set_eval_cache_capacity(std::size_t capacity) const {
  eval_cache_.set_capacity(capacity);
}

ScenarioResult Extrapolator::evaluate(const Scenario& scenario) const {
  const DemandProfile& profile =
      scenario.profile.has_value() ? *scenario.profile : profile_;
  if (!model_.compatible_with(profile)) {
    throw std::invalid_argument(
        "Extrapolator: scenario profile classes do not match model classes");
  }
  const bool cached = eval_cache_.enabled();
  std::vector<double> key;
  if (cached) {
    key = scenario_key(scenario);
    if (std::optional<ScenarioResult> hit = eval_cache_.find(key)) {
      HMDIV_OBS_COUNT("core.whatif.cache_hit", 1);
      hit->name = scenario.name;
      return *std::move(hit);
    }
    HMDIV_OBS_COUNT("core.whatif.cache_miss", 1);
  }
  const SequentialModel m = transformed_model(scenario);
  ScenarioResult out;
  out.name = scenario.name;
  out.system_failure = m.system_failure_probability(profile);
  out.machine_failure = m.machine_failure_probability(profile);
  out.failure_floor = m.failure_floor(profile);
  out.decomposition = m.decompose(profile);
  if (cached) eval_cache_.insert(std::move(key), out);
  return out;
}

void Extrapolator::evaluate_batch(std::span<const ScenarioSpec> specs,
                                  std::span<ScenarioNumbers> out) const {
  if (specs.size() != out.size()) {
    throw std::invalid_argument(
        "Extrapolator::evaluate_batch: specs/out size mismatch");
  }
  const std::size_t classes = model_.class_count();
  exec::Workspace& workspace = exec::thread_workspace();
  const exec::Workspace::Scope scope(workspace);
  const std::span<double> pmf = workspace.alloc<double>(classes);
  const std::span<double> phmf = workspace.alloc<double>(classes);
  const std::span<double> phms = workspace.alloc<double>(classes);
  const std::span<double> t = workspace.alloc<double>(classes);

  for (std::size_t s = 0; s < specs.size(); ++s) {
    const ScenarioSpec& spec = specs[s];
    const DemandProfile& profile =
        spec.profile != nullptr ? *spec.profile : profile_;
    if (!model_.compatible_with(profile)) {
      throw std::invalid_argument(
          "Extrapolator: scenario profile classes do not match model classes");
    }
    // Transform the per-class parameters in transformed_model()'s order
    // with its exact clamp expressions. The conditionals matter for bit
    // identity: a factor of 1.0 is skipped there, not applied.
    for (std::size_t x = 0; x < classes; ++x) {
      const ClassConditional& c = model_.parameters(x);
      pmf[x] = c.p_machine_fails;
      phmf[x] = c.p_human_fails_given_machine_fails;
      phms[x] = c.p_human_fails_given_machine_succeeds;
    }
    if (spec.machine_failure_factor != 1.0) {
      if (!(spec.machine_failure_factor >= 0.0)) {
        throw std::invalid_argument(
            "SequentialModel::with_uniform_machine_improvement: factor >= 0");
      }
      for (std::size_t x = 0; x < classes; ++x) {
        pmf[x] = std::clamp(pmf[x] * spec.machine_failure_factor, 0.0, 1.0);
      }
    }
    for (const auto& [class_index, factor] : spec.per_class_machine_factors) {
      if (class_index >= classes) {
        throw std::invalid_argument("SequentialModel: class index out of range");
      }
      if (!(factor >= 0.0)) {
        throw std::invalid_argument(
            "SequentialModel::with_machine_improvement: factor must be >= 0");
      }
      pmf[class_index] = std::clamp(pmf[class_index] * factor, 0.0, 1.0);
    }
    if (spec.reader_failure_factor != 1.0) {
      if (!(spec.reader_failure_factor >= 0.0)) {
        throw std::invalid_argument(
            "SequentialModel::with_reader_improvement: factor >= 0");
      }
      for (std::size_t x = 0; x < classes; ++x) {
        phmf[x] = std::clamp(phmf[x] * spec.reader_failure_factor, 0.0, 1.0);
        phms[x] = std::clamp(phms[x] * spec.reader_failure_factor, 0.0, 1.0);
      }
    }
    // Eq. (8) sums in ascending class order — the scalar path's three
    // accumulations fused into one pass (independent accumulators, so the
    // per-accumulator addition order is unchanged).
    double system = 0.0;
    double machine = 0.0;
    double floor_total = 0.0;
    for (std::size_t x = 0; x < classes; ++x) {
      system += profile[x] * (phms[x] * (1.0 - pmf[x]) + phmf[x] * pmf[x]);
      machine += profile[x] * pmf[x];
      floor_total += profile[x] * phms[x];
      t[x] = phmf[x] - phms[x];
    }
    const auto weights = profile.distribution().probabilities();
    ScenarioNumbers numbers;
    numbers.system_failure = system;
    numbers.machine_failure = machine;
    numbers.failure_floor = floor_total;
    numbers.decomposition.floor = stats::weighted_mean(phms, weights);
    numbers.decomposition.mean_field =
        stats::weighted_mean(pmf, weights) * stats::weighted_mean(t, weights);
    numbers.decomposition.covariance =
        stats::weighted_covariance(pmf, t, weights);
    out[s] = numbers;
  }
}

std::vector<ScenarioResult> Extrapolator::evaluate_all(
    const std::vector<Scenario>& scenarios) const {
  std::vector<ScenarioResult> out;
  out.reserve(scenarios.size());
  for (const auto& s : scenarios) out.push_back(evaluate(s));
  return out;
}

std::pair<double, double> Extrapolator::predict_range_for_reader_drift(
    const DemandProfile& field, double best_factor,
    double worst_factor) const {
  if (!(best_factor >= 0.0) || !(worst_factor >= best_factor)) {
    throw std::invalid_argument(
        "Extrapolator: require 0 <= best_factor <= worst_factor");
  }
  const double lower = model_.with_reader_improvement(best_factor)
                           .system_failure_probability(field);
  const double upper = model_.with_reader_improvement(worst_factor)
                           .system_failure_probability(field);
  return {lower, upper};
}

}  // namespace hmdiv::core
