// Keyed memoisation cache for repeated what-if evaluations.
//
// Analysts iterating with the extrapolation / design-advisor tooling ask
// the same questions repeatedly (the same scenario under the same profile,
// re-issued as surrounding inputs change). EvalCache memoises those
// evaluations behind an exact key: a flat vector<double> encoding of every
// input the result depends on. Exact bitwise key equality is deliberate —
// keys are built from the exact inputs, so any bitwise difference is a
// different query and near-misses must not alias.
//
// Design mirrors TradeoffAnalyzer's sweep cache: FNV-1a hash for the fast
// reject, stored-key exact compare against collisions, FIFO eviction, and
// capacity 0 (the default) disables the cache entirely so callers that
// never opt in pay only a single predictable branch. All operations are
// mutex-guarded; the cache may sit behind a const evaluation method on a
// shared analyzer.
#pragma once

#include <cstddef>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace hmdiv::core {

/// FNV-1a over the raw bytes of the key doubles.
[[nodiscard]] inline std::size_t eval_cache_hash(
    const std::vector<double>& key) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const double v : key) {
    unsigned char bytes[sizeof(double)];
    std::memcpy(bytes, &v, sizeof(double));
    for (const unsigned char b : bytes) {
      h ^= b;
      h *= 1099511628211ULL;
    }
  }
  return static_cast<std::size_t>(h);
}

template <typename Value>
class EvalCache {
 public:
  using Key = std::vector<double>;

  /// Sets the maximum number of memoised results; 0 disables the cache and
  /// drops anything stored. Shrinking evicts oldest-first.
  void set_capacity(std::size_t capacity) {
    const std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity;
    while (entries_.size() > capacity_) entries_.pop_front();
  }

  [[nodiscard]] std::size_t capacity() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
  }

  /// True when a capacity has been set; find/insert are no-ops otherwise.
  [[nodiscard]] bool enabled() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return capacity_ > 0;
  }

  /// Returns a copy of the memoised value for `key`, if present.
  [[nodiscard]] std::optional<Value> find(const Key& key) const {
    const std::size_t hash = eval_cache_hash(key);
    const std::lock_guard<std::mutex> lock(mutex_);
    if (capacity_ == 0) return std::nullopt;
    for (const Entry& entry : entries_) {
      if (entry.hash == hash && entry.key == key) return entry.value;
    }
    return std::nullopt;
  }

  /// Stores `value` under `key`, evicting the oldest entry when full.
  /// Duplicate keys are tolerated (find returns the oldest surviving copy);
  /// both copies age out normally.
  void insert(Key key, Value value) {
    const std::size_t hash = eval_cache_hash(key);
    const std::lock_guard<std::mutex> lock(mutex_);
    if (capacity_ == 0) return;
    entries_.push_back(Entry{hash, std::move(key), std::move(value)});
    while (entries_.size() > capacity_) entries_.pop_front();
  }

 private:
  struct Entry {
    std::size_t hash;
    Key key;
    Value value;
  };

  mutable std::mutex mutex_;
  std::deque<Entry> entries_;
  std::size_t capacity_ = 0;
};

}  // namespace hmdiv::core
