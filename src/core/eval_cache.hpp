// Keyed memoisation cache for repeated what-if evaluations.
//
// Analysts iterating with the extrapolation / design-advisor tooling ask
// the same questions repeatedly (the same scenario under the same profile,
// re-issued as surrounding inputs change), and the serve layer shares one
// cache across every concurrent connection. EvalCache memoises those
// evaluations behind an exact key: a flat sequence of doubles encoding
// every input the result depends on. Exact bitwise key equality is
// deliberate — keys are built from the exact inputs, so any bitwise
// difference is a different query and near-misses must not alias.
//
// Concurrency: lookups are hash-sharded. Each segment has its own mutex
// and FIFO deque, and a key's segment is a pure function of its hash, so
// concurrent requests for different keys contend only when they land in
// the same segment (audited for the serve layer's cross-request sharing;
// the single global mutex it replaces serialised every hit). Capacity
// changes and clear() take every segment lock and may rebuild the layout;
// a find() racing a rebuild can miss spuriously (and recompute), never
// read torn data.
//
// Semantics:
//  - capacity 0 (the default) disables the cache entirely; callers that
//    never opt in pay one relaxed atomic load per call.
//  - capacity < kSegments keeps every entry in one segment, preserving
//    the exact global FIFO eviction order small caches (and their tests)
//    rely on. Larger capacities split it evenly across segments, each
//    evicting oldest-first; the global order is FIFO per segment.
//  - shrinking preserves the newest entries (a global insertion sequence
//    number decides age across segments).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace hmdiv::core {

/// FNV-1a over the raw bytes of the key doubles.
[[nodiscard]] inline std::size_t eval_cache_hash(
    std::span<const double> key) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const double v : key) {
    unsigned char bytes[sizeof(double)];
    std::memcpy(bytes, &v, sizeof(double));
    for (const unsigned char b : bytes) {
      h ^= b;
      h *= 1099511628211ULL;
    }
  }
  return static_cast<std::size_t>(h);
}

template <typename Value>
class EvalCache {
 public:
  using Key = std::vector<double>;

  /// Lock-sharding width. Fixed so a key's segment never depends on
  /// anything but its hash and the current layout mode.
  static constexpr std::size_t kSegments = 8;

  /// Sets the maximum total number of memoised results; 0 disables the
  /// cache and drops anything stored. Shrinking evicts oldest-first
  /// (globally, by insertion sequence). May redistribute surviving
  /// entries between segments when the layout mode changes.
  void set_capacity(std::size_t capacity) {
    const std::lock_guard<std::mutex> structural(structural_mutex_);
    // Collect survivors in global insertion order before re-laying out.
    std::vector<Entry> entries;
    for (Segment& segment : segments_) {
      const std::lock_guard<std::mutex> lock(segment.mutex);
      for (Entry& entry : segment.entries) entries.push_back(std::move(entry));
      segment.entries.clear();
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
    if (entries.size() > capacity) {
      entries.erase(entries.begin(),
                    entries.end() - static_cast<std::ptrdiff_t>(capacity));
    }
    for (std::size_t s = 0; s < kSegments; ++s) {
      const std::lock_guard<std::mutex> lock(segments_[s].mutex);
      segments_[s].capacity = segment_capacity(capacity, s);
    }
    capacity_.store(capacity, std::memory_order_release);
    for (Entry& entry : entries) {
      Segment& segment = segment_for(entry.hash, capacity);
      const std::lock_guard<std::mutex> lock(segment.mutex);
      if (segment.entries.size() < segment.capacity) {
        segment.entries.push_back(std::move(entry));
      }
      // A full segment drops the (older) overflow — total stays <=
      // capacity and the newest entries survive.
    }
  }

  [[nodiscard]] std::size_t capacity() const {
    return capacity_.load(std::memory_order_acquire);
  }

  /// True when a capacity has been set; find/insert are no-ops otherwise.
  [[nodiscard]] bool enabled() const { return capacity() > 0; }

  /// Drops every entry (capacity is kept). The serve layer calls this on
  /// model reload: results keyed by scenario inputs would otherwise leak
  /// stale answers computed against the previous model.
  void clear() {
    const std::lock_guard<std::mutex> structural(structural_mutex_);
    for (Segment& segment : segments_) {
      const std::lock_guard<std::mutex> lock(segment.mutex);
      segment.entries.clear();
    }
  }

  /// Total entries currently memoised.
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const Segment& segment : segments_) {
      const std::lock_guard<std::mutex> lock(segment.mutex);
      total += segment.entries.size();
    }
    return total;
  }

  /// Returns a copy of the memoised value for `key`, if present. The span
  /// overload performs no heap allocation on either hit or miss (for
  /// trivially copyable Value), so steady-state hot paths can probe with
  /// reused key storage.
  [[nodiscard]] std::optional<Value> find(std::span<const double> key) const {
    const std::size_t capacity = this->capacity();
    if (capacity == 0) return std::nullopt;
    const std::size_t hash = eval_cache_hash(key);
    const Segment& segment = segment_for(hash, capacity);
    const std::lock_guard<std::mutex> lock(segment.mutex);
    for (const Entry& entry : segment.entries) {
      if (entry.hash == hash && entry.key.size() == key.size() &&
          std::equal(entry.key.begin(), entry.key.end(), key.begin())) {
        return entry.value;
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] std::optional<Value> find(const Key& key) const {
    return find(std::span<const double>(key));
  }

  /// Stores `value` under `key`, evicting the segment's oldest entry when
  /// full. Duplicate keys are tolerated (find returns the oldest surviving
  /// copy); both copies age out normally.
  void insert(Key key, Value value) {
    const std::size_t capacity = this->capacity();
    if (capacity == 0) return;
    const std::size_t hash = eval_cache_hash(key);
    Segment& segment = segment_for(hash, capacity);
    const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(segment.mutex);
    if (segment.capacity == 0) return;
    segment.entries.push_back(
        Entry{hash, seq, std::move(key), std::move(value)});
    while (segment.entries.size() > segment.capacity) {
      segment.entries.pop_front();
    }
  }

  /// Materialising the Key copies to the heap, so a disabled cache must
  /// short-circuit here — not in the Key overload — to keep disabled-cache
  /// miss paths allocation free.
  void insert(std::span<const double> key, Value value) {
    if (capacity() == 0) return;
    insert(Key(key.begin(), key.end()), std::move(value));
  }

 private:
  struct Entry {
    std::size_t hash = 0;
    std::uint64_t seq = 0;  ///< global insertion order, for shrink/migrate
    Key key;
    Value value;
  };

  struct Segment {
    mutable std::mutex mutex;
    std::deque<Entry> entries;      // guarded by mutex
    std::size_t capacity = 0;       // guarded by mutex
  };

  /// Per-segment share of `capacity` under the layout that capacity
  /// implies: one segment takes everything while capacity < kSegments
  /// (exact global FIFO for small caches), otherwise an even split with
  /// the remainder spread over the first segments (sum == capacity).
  [[nodiscard]] static std::size_t segment_capacity(std::size_t capacity,
                                                    std::size_t s) {
    if (capacity < kSegments) return s == 0 ? capacity : 0;
    return capacity / kSegments + (s < capacity % kSegments ? 1 : 0);
  }

  [[nodiscard]] static std::size_t segment_index(std::size_t hash,
                                                 std::size_t capacity) {
    return capacity < kSegments ? 0 : hash % kSegments;
  }

  [[nodiscard]] Segment& segment_for(std::size_t hash,
                                     std::size_t capacity) const {
    return segments_[segment_index(hash, capacity)];
  }

  mutable std::array<Segment, kSegments> segments_;
  /// Serialises structural operations (set_capacity, clear) against each
  /// other; point operations take only their segment's mutex.
  std::mutex structural_mutex_;
  std::atomic<std::size_t> capacity_{0};
  std::atomic<std::uint64_t> seq_{0};
};

}  // namespace hmdiv::core
