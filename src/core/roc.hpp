// Machine-level ROC analysis.
//
// The CADT's discrimination between cancer and normal cases — prior to any
// human interaction — is what its vendors report and what operating-point
// choices (§5 item 4) are made from. This module provides the binormal
// closed form used by the tradeoff analyzer and empirical (Mann–Whitney)
// AUC / ROC curves from sampled detector scores, so a simulated CADT can
// be characterised exactly like a real one.
#pragma once

#include <span>
#include <vector>

#include "exec/config.hpp"

namespace hmdiv::core {

/// AUC of a unit-variance binormal detector whose class means differ by
/// `delta_mu` (>= 0 for a better-than-chance detector), with the noise
/// standard deviation of the second class `sigma_ratio` times the first:
/// AUC = Phi(delta_mu / sqrt(1 + sigma_ratio^2)).
[[nodiscard]] double binormal_auc(double delta_mu, double sigma_ratio = 1.0);

/// Empirical AUC: P(positive score > negative score) + 0.5 P(tie), the
/// Mann–Whitney statistic scaled to [0,1]. Throws on empty inputs. Large
/// score sets are scanned in parallel with a fixed-chunk ordered sum, so
/// the result is bit-identical at any thread count.
[[nodiscard]] double empirical_auc(
    std::span<const double> positive_scores,
    std::span<const double> negative_scores,
    const exec::Config& config = exec::default_config());

/// One point of an ROC curve.
struct RocPoint {
  double threshold = 0.0;
  double true_positive_rate = 0.0;   ///< P(score > threshold | positive)
  double false_positive_rate = 0.0;  ///< P(score > threshold | negative)
};

/// Empirical ROC curve over the pooled score thresholds (descending
/// thresholds => points ordered by increasing FPR). Includes the (0,0) and
/// (1,1) endpoints.
[[nodiscard]] std::vector<RocPoint> empirical_roc_curve(
    std::span<const double> positive_scores,
    std::span<const double> negative_scores,
    const exec::Config& config = exec::default_config());

/// Trapezoidal area under an ROC curve returned by empirical_roc_curve;
/// equals empirical_auc up to tie handling.
[[nodiscard]] double curve_auc(std::span<const RocPoint> curve);

}  // namespace hmdiv::core
