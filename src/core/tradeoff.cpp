#include "core/tradeoff.hpp"

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "exec/parallel.hpp"
#include "exec/workspace.hpp"
#include "obs/obs.hpp"
#include "stats/special.hpp"

namespace hmdiv::core {

double BinormalMachine::p_false_negative(std::size_t x,
                                         double threshold) const {
  if (x >= cancer_class_means.size()) {
    throw std::invalid_argument("BinormalMachine: cancer class out of range");
  }
  return stats::normal_cdf(threshold - cancer_class_means[x]);
}

double BinormalMachine::p_false_positive(std::size_t x,
                                         double threshold) const {
  if (x >= normal_class_means.size()) {
    throw std::invalid_argument("BinormalMachine: normal class out of range");
  }
  return stats::normal_cdf(normal_class_means[x] - threshold);
}

namespace {

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string("TradeoffAnalyzer: ") + what +
                                " outside [0,1]");
  }
}

}  // namespace

TradeoffAnalyzer::TradeoffAnalyzer(BinormalMachine machine,
                                   DemandProfile cancer_profile,
                                   std::vector<HumanFnResponse> fn_response,
                                   DemandProfile normal_profile,
                                   std::vector<HumanFpResponse> fp_response,
                                   double prevalence)
    : machine_(std::move(machine)),
      cancer_profile_(std::move(cancer_profile)),
      fn_response_(std::move(fn_response)),
      normal_profile_(std::move(normal_profile)),
      fp_response_(std::move(fp_response)),
      prevalence_(prevalence) {
  if (machine_.cancer_class_means.size() != cancer_profile_.class_count() ||
      fn_response_.size() != cancer_profile_.class_count()) {
    throw std::invalid_argument(
        "TradeoffAnalyzer: cancer-side sizes do not match profile");
  }
  if (machine_.normal_class_means.size() != normal_profile_.class_count() ||
      fp_response_.size() != normal_profile_.class_count()) {
    throw std::invalid_argument(
        "TradeoffAnalyzer: normal-side sizes do not match profile");
  }
  if (!(prevalence_ > 0.0 && prevalence_ < 1.0)) {
    throw std::invalid_argument(
        "TradeoffAnalyzer: prevalence must lie in (0,1)");
  }
  for (const auto& r : fn_response_) {
    check_probability(r.p_fail_given_machine_prompted, "PHf|Ms");
    check_probability(r.p_fail_given_machine_silent, "PHf|Mf");
  }
  for (const auto& r : fp_response_) {
    check_probability(r.p_recall_given_machine_prompted, "P(recall|prompt)");
    check_probability(r.p_recall_given_machine_silent, "P(recall|silent)");
  }

  // Hoist every threshold-independent term into flat SoA tables once, so
  // the batch kernel's inner loops touch nothing but contiguous doubles.
  const std::size_t nc = cancer_profile_.class_count();
  cancer_mean_.reserve(nc);
  cancer_weight_.reserve(nc);
  fn_prompted_.reserve(nc);
  fn_silent_.reserve(nc);
  for (std::size_t x = 0; x < nc; ++x) {
    cancer_mean_.push_back(machine_.cancer_class_means[x]);
    cancer_weight_.push_back(cancer_profile_[x]);
    fn_prompted_.push_back(fn_response_[x].p_fail_given_machine_prompted);
    fn_silent_.push_back(fn_response_[x].p_fail_given_machine_silent);
  }
  const std::size_t nn = normal_profile_.class_count();
  normal_mean_.reserve(nn);
  normal_weight_.reserve(nn);
  fp_prompted_.reserve(nn);
  fp_silent_.reserve(nn);
  for (std::size_t x = 0; x < nn; ++x) {
    normal_mean_.push_back(machine_.normal_class_means[x]);
    normal_weight_.push_back(normal_profile_[x]);
    fp_prompted_.push_back(fp_response_[x].p_recall_given_machine_prompted);
    fp_silent_.push_back(fp_response_[x].p_recall_given_machine_silent);
  }
}

SystemOperatingPoint TradeoffAnalyzer::evaluate(double threshold) const {
  SystemOperatingPoint out;
  out.threshold = threshold;

  // Cancer side: Eq. (8) with PMf(x) read off the binormal machine.
  for (std::size_t x = 0; x < cancer_profile_.class_count(); ++x) {
    const double p_mf = machine_.p_false_negative(x, threshold);
    const auto& r = fn_response_[x];
    out.machine_fn += cancer_profile_[x] * p_mf;
    out.system_fn += cancer_profile_[x] *
                     (r.p_fail_given_machine_prompted * (1.0 - p_mf) +
                      r.p_fail_given_machine_silent * p_mf);
  }

  // Normal side: mirrored — "machine fails" means a false-positive prompt.
  for (std::size_t x = 0; x < normal_profile_.class_count(); ++x) {
    const double p_fp = machine_.p_false_positive(x, threshold);
    const auto& r = fp_response_[x];
    out.machine_fp += normal_profile_[x] * p_fp;
    out.system_fp += normal_profile_[x] *
                     (r.p_recall_given_machine_prompted * p_fp +
                      r.p_recall_given_machine_silent * (1.0 - p_fp));
  }

  out.sensitivity = 1.0 - out.system_fn;
  out.specificity = 1.0 - out.system_fp;
  out.recall_rate = prevalence_ * out.sensitivity +
                    (1.0 - prevalence_) * out.system_fp;
  out.ppv = out.recall_rate > 0.0
                ? prevalence_ * out.sensitivity / out.recall_rate
                : 0.0;
  return out;
}

void TradeoffAnalyzer::evaluate_batch(
    std::span<const double> thresholds,
    std::span<SystemOperatingPoint> out) const {
  if (out.size() != thresholds.size()) {
    throw std::invalid_argument(
        "TradeoffAnalyzer: evaluate_batch out.size() != thresholds.size()");
  }
  const std::size_t n = thresholds.size();
  if (n == 0) return;
  HMDIV_OBS_SCOPED_TIMER("core.sweep.batch_ns");

  exec::Workspace& workspace = exec::thread_workspace();
  const exec::Workspace::Scope scope(workspace);
  const std::span<double> z = workspace.alloc<double>(n);
  const std::span<double> p = workspace.alloc<double>(n);
  const std::span<double> acc_mfn = workspace.alloc<double>(n);
  const std::span<double> acc_sfn = workspace.alloc<double>(n);
  const std::span<double> acc_mfp = workspace.alloc<double>(n);
  const std::span<double> acc_sfp = workspace.alloc<double>(n);
  for (std::size_t i = 0; i < n; ++i) acc_mfn[i] = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc_sfn[i] = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc_mfp[i] = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc_sfp[i] = 0.0;

  // Classes outer, thresholds inner, accumulating in ascending class order
  // — the same fold order, expression shapes and Φ implementation as the
  // scalar evaluate(), so every accumulated value rounds identically and
  // the result is bit-for-bit equal to the reference path.
  for (std::size_t x = 0; x < cancer_mean_.size(); ++x) {
    const double mu = cancer_mean_[x];
    const double w = cancer_weight_[x];
    const double prompted = fn_prompted_[x];
    const double silent = fn_silent_[x];
    for (std::size_t i = 0; i < n; ++i) z[i] = thresholds[i] - mu;
    stats::normal_cdf(z, p);
    for (std::size_t i = 0; i < n; ++i) {
      const double p_mf = p[i];
      acc_mfn[i] += w * p_mf;
      acc_sfn[i] += w * (prompted * (1.0 - p_mf) + silent * p_mf);
    }
  }
  for (std::size_t x = 0; x < normal_mean_.size(); ++x) {
    const double mu = normal_mean_[x];
    const double w = normal_weight_[x];
    const double prompted = fp_prompted_[x];
    const double silent = fp_silent_[x];
    for (std::size_t i = 0; i < n; ++i) z[i] = mu - thresholds[i];
    stats::normal_cdf(z, p);
    for (std::size_t i = 0; i < n; ++i) {
      const double p_fp = p[i];
      acc_mfp[i] += w * p_fp;
      acc_sfp[i] += w * (prompted * p_fp + silent * (1.0 - p_fp));
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    SystemOperatingPoint& point = out[i];
    point.threshold = thresholds[i];
    point.machine_fn = acc_mfn[i];
    point.machine_fp = acc_mfp[i];
    point.system_fn = acc_sfn[i];
    point.system_fp = acc_sfp[i];
    point.sensitivity = 1.0 - point.system_fn;
    point.specificity = 1.0 - point.system_fp;
    point.recall_rate = prevalence_ * point.sensitivity +
                        (1.0 - prevalence_) * point.system_fp;
    point.ppv = point.recall_rate > 0.0
                    ? prevalence_ * point.sensitivity / point.recall_rate
                    : 0.0;
  }
}

void TradeoffAnalyzer::sweep_into(std::span<const double> thresholds,
                                  std::span<SystemOperatingPoint> out,
                                  const exec::Config& config) const {
  if (out.size() != thresholds.size()) {
    throw std::invalid_argument(
        "TradeoffAnalyzer: sweep_into out.size() != thresholds.size()");
  }
  HMDIV_OBS_SCOPED_TIMER("core.tradeoff.sweep_ns");
  HMDIV_OBS_COUNT("core.tradeoff.sweeps", 1);
  HMDIV_OBS_COUNT("core.tradeoff.sweep_points", thresholds.size());
  // Chunks are large enough that one batch amortises the kernel's region
  // setup; each worker's scratch comes from its own thread workspace.
  exec::parallel_for_chunks(
      thresholds.size(), /*grain=*/512,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        evaluate_batch(thresholds.subspan(begin, end - begin),
                       out.subspan(begin, end - begin));
      },
      config);
}

void TradeoffAnalyzer::set_sweep_cache_capacity(std::size_t capacity) const {
  sweep_cache_.set_capacity(capacity);
}

std::vector<SystemOperatingPoint> TradeoffAnalyzer::sweep(
    const std::vector<double>& thresholds,
    const exec::Config& config) const {
  if (sweep_cache_.enabled()) {
    if (auto hit = sweep_cache_.find(thresholds)) {
      HMDIV_OBS_COUNT("core.sweep.cache_hit", 1);
      return *std::move(hit);
    }
    HMDIV_OBS_COUNT("core.sweep.cache_miss", 1);
  }
  std::vector<SystemOperatingPoint> out(thresholds.size());
  sweep_into(thresholds, out, config);
  if (sweep_cache_.enabled()) sweep_cache_.insert(thresholds, out);
  return out;
}

SystemOperatingPoint TradeoffAnalyzer::minimise_cost(
    double cost_fn, double cost_fp, double lo, double hi, std::size_t steps,
    const exec::Config& config) const {
  return minimise_cost_range(cost_fn, cost_fp, lo, hi, steps, 0, steps,
                             config)
      .point;
}

CostedOperatingPoint TradeoffAnalyzer::minimise_cost_range(
    double cost_fn, double cost_fp, double lo, double hi, std::size_t steps,
    std::size_t first, std::size_t last, const exec::Config& config) const {
  if (!(cost_fn >= 0.0 && cost_fp >= 0.0)) {
    throw std::invalid_argument("TradeoffAnalyzer: costs must be >= 0");
  }
  if (!(lo < hi) || steps < 2) {
    throw std::invalid_argument(
        "TradeoffAnalyzer: need lo < hi and at least two grid steps");
  }
  if (first > last || last > steps) {
    throw std::invalid_argument(
        "TradeoffAnalyzer: grid range out of bounds");
  }
  if (first == last) return CostedOperatingPoint{};
  HMDIV_OBS_SCOPED_TIMER("core.tradeoff.minimise_ns");
  HMDIV_OBS_COUNT("core.tradeoff.grid_points", last - first);
  const std::size_t grain = 512;
  const std::size_t chunks = exec::chunk_count(last - first, grain);
  // Per-chunk results live in the caller's workspace (each chunk writes
  // only its own slot), and each chunk's grid/point scratch comes from the
  // executing thread's workspace — steady state allocates nothing.
  exec::Workspace& workspace = exec::thread_workspace();
  const exec::Workspace::Scope scope(workspace);
  const std::span<CostedOperatingPoint> partial =
      workspace.alloc<CostedOperatingPoint>(chunks);
  exec::parallel_for_chunks(
      last - first, grain,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        exec::Workspace& local = exec::thread_workspace();
        const exec::Workspace::Scope chunk_scope(local);
        const std::size_t count = end - begin;
        const std::span<double> grid = local.alloc<double>(count);
        const std::span<SystemOperatingPoint> points =
            local.alloc<SystemOperatingPoint>(count);
        // Threshold i is derived from its *global* grid index, so the
        // evaluated grid — and therefore the minimiser — is independent of
        // both the chunk layout and the [first, last) sub-range.
        for (std::size_t i = first + begin; i < first + end; ++i) {
          grid[i - first - begin] = lo + (hi - lo) * static_cast<double>(i) /
                                             static_cast<double>(steps - 1);
        }
        evaluate_batch(grid, points);
        CostedOperatingPoint best;
        for (std::size_t i = 0; i < count; ++i) {
          const double cost = prevalence_ * cost_fn * points[i].system_fn +
                              (1.0 - prevalence_) * cost_fp *
                                  points[i].system_fp;
          // Strict < keeps the earliest grid point on exact cost ties.
          if (!best.valid || cost < best.cost) {
            best = CostedOperatingPoint{points[i], cost, true};
          }
        }
        partial[chunk] = best;
      },
      config);
  // Ascending-chunk fold with strict < — combined with the in-chunk scan
  // above, exact ties resolve to the earliest grid point at any thread
  // count (and any range partition), matching a serial scan.
  CostedOperatingPoint best;
  for (const CostedOperatingPoint& next : partial) {
    if (!best.valid || (next.valid && next.cost < best.cost)) {
      best = next;
    }
  }
  return best;
}

}  // namespace hmdiv::core
