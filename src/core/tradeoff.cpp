#include "core/tradeoff.hpp"

#include <stdexcept>

#include "exec/parallel.hpp"
#include "obs/obs.hpp"
#include "stats/special.hpp"

namespace hmdiv::core {

double BinormalMachine::p_false_negative(std::size_t x,
                                         double threshold) const {
  if (x >= cancer_class_means.size()) {
    throw std::invalid_argument("BinormalMachine: cancer class out of range");
  }
  return stats::normal_cdf(threshold - cancer_class_means[x]);
}

double BinormalMachine::p_false_positive(std::size_t x,
                                         double threshold) const {
  if (x >= normal_class_means.size()) {
    throw std::invalid_argument("BinormalMachine: normal class out of range");
  }
  return stats::normal_cdf(normal_class_means[x] - threshold);
}

namespace {

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string("TradeoffAnalyzer: ") + what +
                                " outside [0,1]");
  }
}

}  // namespace

TradeoffAnalyzer::TradeoffAnalyzer(BinormalMachine machine,
                                   DemandProfile cancer_profile,
                                   std::vector<HumanFnResponse> fn_response,
                                   DemandProfile normal_profile,
                                   std::vector<HumanFpResponse> fp_response,
                                   double prevalence)
    : machine_(std::move(machine)),
      cancer_profile_(std::move(cancer_profile)),
      fn_response_(std::move(fn_response)),
      normal_profile_(std::move(normal_profile)),
      fp_response_(std::move(fp_response)),
      prevalence_(prevalence) {
  if (machine_.cancer_class_means.size() != cancer_profile_.class_count() ||
      fn_response_.size() != cancer_profile_.class_count()) {
    throw std::invalid_argument(
        "TradeoffAnalyzer: cancer-side sizes do not match profile");
  }
  if (machine_.normal_class_means.size() != normal_profile_.class_count() ||
      fp_response_.size() != normal_profile_.class_count()) {
    throw std::invalid_argument(
        "TradeoffAnalyzer: normal-side sizes do not match profile");
  }
  if (!(prevalence_ > 0.0 && prevalence_ < 1.0)) {
    throw std::invalid_argument(
        "TradeoffAnalyzer: prevalence must lie in (0,1)");
  }
  for (const auto& r : fn_response_) {
    check_probability(r.p_fail_given_machine_prompted, "PHf|Ms");
    check_probability(r.p_fail_given_machine_silent, "PHf|Mf");
  }
  for (const auto& r : fp_response_) {
    check_probability(r.p_recall_given_machine_prompted, "P(recall|prompt)");
    check_probability(r.p_recall_given_machine_silent, "P(recall|silent)");
  }
}

SystemOperatingPoint TradeoffAnalyzer::evaluate(double threshold) const {
  SystemOperatingPoint out;
  out.threshold = threshold;

  // Cancer side: Eq. (8) with PMf(x) read off the binormal machine.
  for (std::size_t x = 0; x < cancer_profile_.class_count(); ++x) {
    const double p_mf = machine_.p_false_negative(x, threshold);
    const auto& r = fn_response_[x];
    out.machine_fn += cancer_profile_[x] * p_mf;
    out.system_fn += cancer_profile_[x] *
                     (r.p_fail_given_machine_prompted * (1.0 - p_mf) +
                      r.p_fail_given_machine_silent * p_mf);
  }

  // Normal side: mirrored — "machine fails" means a false-positive prompt.
  for (std::size_t x = 0; x < normal_profile_.class_count(); ++x) {
    const double p_fp = machine_.p_false_positive(x, threshold);
    const auto& r = fp_response_[x];
    out.machine_fp += normal_profile_[x] * p_fp;
    out.system_fp += normal_profile_[x] *
                     (r.p_recall_given_machine_prompted * p_fp +
                      r.p_recall_given_machine_silent * (1.0 - p_fp));
  }

  out.sensitivity = 1.0 - out.system_fn;
  out.specificity = 1.0 - out.system_fp;
  out.recall_rate = prevalence_ * out.sensitivity +
                    (1.0 - prevalence_) * out.system_fp;
  out.ppv = out.recall_rate > 0.0
                ? prevalence_ * out.sensitivity / out.recall_rate
                : 0.0;
  return out;
}

std::vector<SystemOperatingPoint> TradeoffAnalyzer::sweep(
    const std::vector<double>& thresholds,
    const exec::Config& config) const {
  HMDIV_OBS_SCOPED_TIMER("core.tradeoff.sweep_ns");
  HMDIV_OBS_COUNT("core.tradeoff.sweeps", 1);
  HMDIV_OBS_COUNT("core.tradeoff.sweep_points", thresholds.size());
  std::vector<SystemOperatingPoint> out(thresholds.size());
  exec::parallel_for(
      thresholds.size(), /*grain=*/64,
      [&](std::size_t i) { out[i] = evaluate(thresholds[i]); }, config);
  return out;
}

SystemOperatingPoint TradeoffAnalyzer::minimise_cost(
    double cost_fn, double cost_fp, double lo, double hi, std::size_t steps,
    const exec::Config& config) const {
  if (!(cost_fn >= 0.0 && cost_fp >= 0.0)) {
    throw std::invalid_argument("TradeoffAnalyzer: costs must be >= 0");
  }
  if (!(lo < hi) || steps < 2) {
    throw std::invalid_argument(
        "TradeoffAnalyzer: need lo < hi and at least two grid steps");
  }
  HMDIV_OBS_SCOPED_TIMER("core.tradeoff.minimise_ns");
  HMDIV_OBS_COUNT("core.tradeoff.grid_points", steps);
  struct Best {
    SystemOperatingPoint point;
    double cost = 0.0;
    bool valid = false;
  };
  auto scan_chunk = [&](std::size_t begin, std::size_t end,
                        std::size_t) -> Best {
    Best best;
    for (std::size_t i = begin; i < end; ++i) {
      const double threshold = lo + (hi - lo) * static_cast<double>(i) /
                                        static_cast<double>(steps - 1);
      const SystemOperatingPoint point = evaluate(threshold);
      const double cost = prevalence_ * cost_fn * point.system_fn +
                          (1.0 - prevalence_) * cost_fp * point.system_fp;
      if (!best.valid || cost < best.cost) {
        best = Best{point, cost, true};
      }
    }
    return best;
  };
  // Strict < in the combine keeps the leftmost grid point on cost ties —
  // the same answer a serial scan gives.
  const Best best = exec::parallel_reduce(
      steps, /*grain=*/64, Best{}, scan_chunk,
      [](Best acc, Best next) {
        if (!acc.valid) return next;
        if (next.valid && next.cost < acc.cost) return next;
        return acc;
      },
      config);
  return best.point;
}

}  // namespace hmdiv::core
