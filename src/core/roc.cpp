#include "core/roc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "exec/parallel.hpp"
#include "stats/special.hpp"

namespace hmdiv::core {

double binormal_auc(double delta_mu, double sigma_ratio) {
  if (!(sigma_ratio > 0.0)) {
    throw std::invalid_argument("binormal_auc: sigma_ratio must be > 0");
  }
  return stats::normal_cdf(delta_mu /
                           std::sqrt(1.0 + sigma_ratio * sigma_ratio));
}

double empirical_auc(std::span<const double> positive_scores,
                     std::span<const double> negative_scores,
                     const exec::Config& config) {
  if (positive_scores.empty() || negative_scores.empty()) {
    throw std::invalid_argument("empirical_auc: empty score set");
  }
  // O((m+n) log(m+n)) via sorted negatives + binary search; the scan over
  // positives is an ordered chunked sum (fixed fold order => the same
  // floating-point result at any thread count).
  std::vector<double> negatives(negative_scores.begin(),
                                negative_scores.end());
  std::sort(negatives.begin(), negatives.end());
  const double wins = exec::parallel_reduce(
      positive_scores.size(), /*grain=*/512, 0.0,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        double chunk_wins = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          const double p = positive_scores[i];
          const auto lower =
              std::lower_bound(negatives.begin(), negatives.end(), p);
          const auto upper =
              std::upper_bound(negatives.begin(), negatives.end(), p);
          const double below = static_cast<double>(lower - negatives.begin());
          const double ties = static_cast<double>(upper - lower);
          chunk_wins += below + 0.5 * ties;
        }
        return chunk_wins;
      },
      [](double acc, double chunk) { return acc + chunk; }, config);
  return wins / (static_cast<double>(positive_scores.size()) *
                 static_cast<double>(negatives.size()));
}

std::vector<RocPoint> empirical_roc_curve(
    std::span<const double> positive_scores,
    std::span<const double> negative_scores, const exec::Config& config) {
  if (positive_scores.empty() || negative_scores.empty()) {
    throw std::invalid_argument("empirical_roc_curve: empty score set");
  }
  std::vector<double> thresholds(positive_scores.begin(),
                                 positive_scores.end());
  thresholds.insert(thresholds.end(), negative_scores.begin(),
                    negative_scores.end());
  std::sort(thresholds.begin(), thresholds.end(), std::greater<>());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  std::vector<double> positives(positive_scores.begin(),
                                positive_scores.end());
  std::vector<double> negatives(negative_scores.begin(),
                                negative_scores.end());
  std::sort(positives.begin(), positives.end());
  std::sort(negatives.begin(), negatives.end());
  auto rate_above = [](const std::vector<double>& sorted, double threshold) {
    const auto it =
        std::upper_bound(sorted.begin(), sorted.end(), threshold);
    return static_cast<double>(sorted.end() - it) /
           static_cast<double>(sorted.size());
  };

  std::vector<RocPoint> curve(thresholds.size() + 2);
  curve.front() = RocPoint{thresholds.front() + 1.0, 0.0, 0.0};
  exec::parallel_for(
      thresholds.size(), /*grain=*/256,
      [&](std::size_t i) {
        const double threshold = thresholds[i];
        curve[i + 1] = RocPoint{threshold, rate_above(positives, threshold),
                                rate_above(negatives, threshold)};
      },
      config);
  // Everything is called positive below the lowest threshold.
  curve.back() = RocPoint{thresholds.back() - 1.0, 1.0, 1.0};
  return curve;
}

double curve_auc(std::span<const RocPoint> curve) {
  if (curve.size() < 2) {
    throw std::invalid_argument("curve_auc: need at least two points");
  }
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double width =
        curve[i].false_positive_rate - curve[i - 1].false_positive_rate;
    if (width < -1e-12) {
      throw std::invalid_argument("curve_auc: FPR must be non-decreasing");
    }
    area += width * 0.5 *
            (curve[i].true_positive_rate + curve[i - 1].true_positive_rate);
  }
  return area;
}

}  // namespace hmdiv::core
