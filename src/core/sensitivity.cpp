#include "core/sensitivity.hpp"

#include <algorithm>
#include <stdexcept>

namespace hmdiv::core {

std::vector<ClassSensitivity> sensitivities(const SequentialModel& model,
                                            const DemandProfile& profile) {
  if (!model.compatible_with(profile)) {
    throw std::invalid_argument(
        "sensitivities: profile classes do not match model classes");
  }
  std::vector<ClassSensitivity> out(model.class_count());
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    const ClassConditional& c = model.parameters(x);
    out[x].d_machine_failure = profile[x] * c.importance_index();
    out[x].d_human_given_failure = profile[x] * c.p_machine_fails;
    out[x].d_human_given_success = profile[x] * c.p_machine_succeeds();
    out[x].d_profile = c.system_failure();
  }
  return out;
}

std::vector<ClassSensitivity> elasticities(const SequentialModel& model,
                                           const DemandProfile& profile) {
  auto grads = sensitivities(model, profile);
  const double failure = model.system_failure_probability(profile);
  if (failure <= 0.0) {
    for (auto& g : grads) g = ClassSensitivity{};
    return grads;
  }
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    const ClassConditional& c = model.parameters(x);
    grads[x].d_machine_failure *= c.p_machine_fails / failure;
    grads[x].d_human_given_failure *=
        c.p_human_fails_given_machine_fails / failure;
    grads[x].d_human_given_success *=
        c.p_human_fails_given_machine_succeeds / failure;
    grads[x].d_profile *= profile[x] / failure;
  }
  return grads;
}

double finite_difference_machine_failure(const SequentialModel& model,
                                         const DemandProfile& profile,
                                         std::size_t x, double h) {
  if (!(h > 0.0)) {
    throw std::invalid_argument(
        "finite_difference_machine_failure: step must be > 0");
  }
  const double p = model.parameters(x).p_machine_fails;
  // Keep both perturbed values inside [0,1]; with_machine_improvement scales
  // multiplicatively, so perturb via factors when p > 0, otherwise use a
  // one-sided difference from an additively shifted model.
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument(
        "finite_difference_machine_failure: PMf(x) must be interior to "
        "(0,1)");
  }
  const double step = std::min({h, p / 2.0, (1.0 - p) / 2.0});
  const SequentialModel up =
      model.with_machine_improvement(x, (p + step) / p);
  const SequentialModel down =
      model.with_machine_improvement(x, (p - step) / p);
  return (up.system_failure_probability(profile) -
          down.system_failure_probability(profile)) /
         (2.0 * step);
}

}  // namespace hmdiv::core
