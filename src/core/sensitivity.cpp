#include "core/sensitivity.hpp"

#include <algorithm>
#include <stdexcept>

#include "exec/workspace.hpp"

namespace hmdiv::core {

namespace {

/// Eq. (8) with class x's PMf replaced by `pmf_x` — the same per-class
/// expression and summation order as
/// SequentialModel::system_failure_probability on a perturbed copy, so the
/// copy-free path rounds identically.
double system_failure_with_pmf(const SequentialModel& model,
                               const DemandProfile& profile, std::size_t x,
                               double pmf_x) {
  double total = 0.0;
  for (std::size_t y = 0; y < model.class_count(); ++y) {
    const ClassConditional& c = model.parameters(y);
    const double pmf = y == x ? pmf_x : c.p_machine_fails;
    total += profile[y] *
             (c.p_human_fails_given_machine_succeeds * (1.0 - pmf) +
              c.p_human_fails_given_machine_fails * pmf);
  }
  return total;
}

/// The perturbed PMf values the multiplicative with_machine_improvement
/// formulation produces: clamp(p · ((p ± step)/p)) — kept verbatim so the
/// finite difference matches the historical model-copy implementation
/// bit-for-bit.
struct PerturbedPmf {
  double up;
  double down;
  double step;
};

PerturbedPmf perturb(double p, double h) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument(
        "finite_difference_machine_failure: PMf(x) must be interior to "
        "(0,1)");
  }
  const double step = std::min({h, p / 2.0, (1.0 - p) / 2.0});
  return PerturbedPmf{std::clamp(p * ((p + step) / p), 0.0, 1.0),
                      std::clamp(p * ((p - step) / p), 0.0, 1.0), step};
}

}  // namespace

std::vector<ClassSensitivity> sensitivities(const SequentialModel& model,
                                            const DemandProfile& profile) {
  if (!model.compatible_with(profile)) {
    throw std::invalid_argument(
        "sensitivities: profile classes do not match model classes");
  }
  std::vector<ClassSensitivity> out(model.class_count());
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    const ClassConditional& c = model.parameters(x);
    out[x].d_machine_failure = profile[x] * c.importance_index();
    out[x].d_human_given_failure = profile[x] * c.p_machine_fails;
    out[x].d_human_given_success = profile[x] * c.p_machine_succeeds();
    out[x].d_profile = c.system_failure();
  }
  return out;
}

std::vector<ClassSensitivity> elasticities(const SequentialModel& model,
                                           const DemandProfile& profile) {
  auto grads = sensitivities(model, profile);
  const double failure = model.system_failure_probability(profile);
  if (failure <= 0.0) {
    for (auto& g : grads) g = ClassSensitivity{};
    return grads;
  }
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    const ClassConditional& c = model.parameters(x);
    grads[x].d_machine_failure *= c.p_machine_fails / failure;
    grads[x].d_human_given_failure *=
        c.p_human_fails_given_machine_fails / failure;
    grads[x].d_human_given_success *=
        c.p_human_fails_given_machine_succeeds / failure;
    grads[x].d_profile *= profile[x] / failure;
  }
  return grads;
}

double finite_difference_machine_failure(const SequentialModel& model,
                                         const DemandProfile& profile,
                                         std::size_t x, double h) {
  if (!(h > 0.0)) {
    throw std::invalid_argument(
        "finite_difference_machine_failure: step must be > 0");
  }
  if (!model.compatible_with(profile)) {
    throw std::invalid_argument(
        "SequentialModel: profile classes do not match model classes");
  }
  const double p = model.parameters(x).p_machine_fails;
  const PerturbedPmf d = perturb(p, h);
  return (system_failure_with_pmf(model, profile, x, d.up) -
          system_failure_with_pmf(model, profile, x, d.down)) /
         (2.0 * d.step);
}

std::vector<double> finite_difference_machine_failure_gradient(
    const SequentialModel& model, const DemandProfile& profile, double h) {
  if (!(h > 0.0)) {
    throw std::invalid_argument(
        "finite_difference_machine_failure: step must be > 0");
  }
  if (!model.compatible_with(profile)) {
    throw std::invalid_argument(
        "SequentialModel: profile classes do not match model classes");
  }
  const std::size_t n = model.class_count();
  std::vector<double> grad(n);
  // Stage the parameters into flat SoA scratch once; the 2·n perturbed
  // Eq. (8) sums then stream over contiguous doubles.
  exec::Workspace& workspace = exec::thread_workspace();
  const exec::Workspace::Scope scope(workspace);
  const std::span<double> w = workspace.alloc<double>(n);
  const std::span<double> pmf = workspace.alloc<double>(n);
  const std::span<double> phf_mf = workspace.alloc<double>(n);
  const std::span<double> phf_ms = workspace.alloc<double>(n);
  for (std::size_t y = 0; y < n; ++y) {
    const ClassConditional& c = model.parameters(y);
    w[y] = profile[y];
    pmf[y] = c.p_machine_fails;
    phf_mf[y] = c.p_human_fails_given_machine_fails;
    phf_ms[y] = c.p_human_fails_given_machine_succeeds;
  }
  const auto sum_with = [&](std::size_t x, double pmf_x) {
    double total = 0.0;
    for (std::size_t y = 0; y < n; ++y) {
      const double p = y == x ? pmf_x : pmf[y];
      total += w[y] * (phf_ms[y] * (1.0 - p) + phf_mf[y] * p);
    }
    return total;
  };
  for (std::size_t x = 0; x < n; ++x) {
    const PerturbedPmf d = perturb(pmf[x], h);
    grad[x] = (sum_with(x, d.up) - sum_with(x, d.down)) / (2.0 * d.step);
  }
  return grad;
}

}  // namespace hmdiv::core
