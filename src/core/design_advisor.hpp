// Design-space advice derived from the model (Sections 5–6).
//
// The paper's central design insight: improving the machine on the classes
// where it fails most is *not* necessarily best. The system-level gain from
// reducing PMf(x) by Δ on class x is p(x)·t(x)·Δ — so the classes worth
// targeting are those with high demand probability, high importance index
// t(x), and headroom in PMf(x). The DesignAdvisor ranks candidate
// improvements by exact recomputation of Eq. (8) and by the analytic gain,
// and reports the §6.1 floor and §6.2 covariance diagnosis.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/demand_profile.hpp"
#include "core/sequential_model.hpp"

namespace hmdiv::core {

/// A candidate machine improvement: scale PMf on one class (or all).
struct ImprovementCandidate {
  std::string name;
  /// Class to improve; npos (== size_t(-1)) means all classes uniformly.
  std::size_t class_index = kAllClasses;
  double factor = 0.1;

  static constexpr std::size_t kAllClasses = static_cast<std::size_t>(-1);
};

/// The evaluated effect of one candidate.
struct ImprovementEffect {
  std::string name;
  double baseline_failure = 0.0;
  double improved_failure = 0.0;
  /// baseline − improved (positive = the candidate helps).
  [[nodiscard]] double absolute_gain() const {
    return baseline_failure - improved_failure;
  }
  /// Gain as a fraction of the baseline.
  [[nodiscard]] double relative_gain() const {
    return baseline_failure > 0.0 ? absolute_gain() / baseline_failure : 0.0;
  }
  /// The analytic first-order gain p(x)·t(x)·ΔPMf(x) summed over affected
  /// classes; equals absolute_gain() exactly because Eq. (9) is linear in
  /// PMf(x) at fixed human response.
  double analytic_gain = 0.0;
};

/// Diagnosis of where the system's failure probability comes from and what
/// can and cannot fix it.
struct DesignDiagnosis {
  /// System failure probability under the profile.
  double system_failure = 0.0;
  /// §6.1 floor E[PHf|Ms]: unreachable by machine improvement alone.
  double floor = 0.0;
  /// Fraction of system failure that machine improvement could remove
  /// (1 − floor/system_failure).
  double machine_addressable_fraction = 0.0;
  /// §6.2 covariance cov_x(PMf, t); positive = correlated weakness.
  double covariance = 0.0;
  /// Weighted correlation of PMf(x) and t(x) in [−1,1].
  double correlation = 0.0;
  /// Per-class leverage p(x)·t(x)·PMf(x): the maximum absolute reduction in
  /// system failure obtainable by perfecting the machine on that class.
  std::vector<double> class_leverage;
};

class DesignAdvisor {
 public:
  /// Memoises the per-class terms of Eq. (8) — weight, PMf, t(x) and the two
  /// human conditionals — into flat tables, so evaluate()/rank() re-sum the
  /// perturbed equation directly instead of copying the model per candidate.
  DesignAdvisor(SequentialModel model, DemandProfile profile);

  [[nodiscard]] const SequentialModel& model() const { return model_; }
  [[nodiscard]] const DemandProfile& profile() const { return profile_; }

  /// Evaluates one candidate under this advisor's profile.
  [[nodiscard]] ImprovementEffect evaluate(
      const ImprovementCandidate& candidate) const;

  /// Evaluates and sorts candidates by descending absolute gain.
  [[nodiscard]] std::vector<ImprovementEffect> rank(
      std::vector<ImprovementCandidate> candidates) const;

  /// The class with the greatest leverage p(x)·t(x)·PMf(x) — the paper's
  /// "concentrate any improvements on cases for which readers have a high
  /// t(x) (and that are somewhat frequent)".
  [[nodiscard]] std::size_t best_target_class() const;

  [[nodiscard]] DesignDiagnosis diagnose() const;

 private:
  SequentialModel model_;
  DemandProfile profile_;
  /// Memoised class-conditional tables (SoA), filled once in the
  /// constructor. evaluate() walks these with the same expression shapes as
  /// SequentialModel::system_failure_probability, so the copy-free path is
  /// bit-identical to evaluating a transformed model.
  std::vector<double> weight_;   ///< p(x)
  std::vector<double> pmf_;      ///< PMf(x)
  std::vector<double> t_;        ///< importance index t(x)
  std::vector<double> phf_mf_;   ///< PHf|Mf(x)
  std::vector<double> phf_ms_;   ///< PHf|Ms(x)
  double baseline_failure_ = 0.0;
};

}  // namespace hmdiv::core
