#include "core/paper_example.hpp"

namespace hmdiv::core::paper {

namespace {

std::vector<std::string> class_names() { return {"easy", "difficult"}; }

}  // namespace

SequentialModel example_model() {
  ClassConditional easy;
  easy.p_machine_fails = 0.07;
  easy.p_human_fails_given_machine_fails = 0.18;
  easy.p_human_fails_given_machine_succeeds = 0.14;

  ClassConditional difficult;
  difficult.p_machine_fails = 0.41;
  difficult.p_human_fails_given_machine_fails = 0.9;
  difficult.p_human_fails_given_machine_succeeds = 0.4;

  return SequentialModel(class_names(), {easy, difficult});
}

DemandProfile trial_profile() {
  return DemandProfile(class_names(), {0.8, 0.2});
}

DemandProfile field_profile() {
  return DemandProfile(class_names(), {0.9, 0.1});
}

ReportedValues reported_values() { return ReportedValues{}; }

}  // namespace hmdiv::core::paper
