// Rendering of models and analysis results as report::Table — the exact
// layouts the benches print next to the paper's tables.
#pragma once

#include <vector>

#include "core/demand_profile.hpp"
#include "core/design_advisor.hpp"
#include "core/extrapolation.hpp"
#include "core/sequential_model.hpp"
#include "report/table.hpp"

namespace hmdiv::core {

/// The paper's first Section-5 table: demand profiles + model parameters
/// per class (PMf, PMs, PHf|Mf, PHf|Ms).
[[nodiscard]] report::Table parameter_table(const SequentialModel& model,
                                            const DemandProfile& trial,
                                            const DemandProfile& field);

/// The paper's second Section-5 table: per-class and all-cases system
/// failure probabilities under trial and field profiles.
[[nodiscard]] report::Table failure_table(const SequentialModel& model,
                                          const DemandProfile& trial,
                                          const DemandProfile& field);

/// Eq. (10) decomposition as a one-row table.
[[nodiscard]] report::Table decomposition_table(
    const FailureDecomposition& decomposition);

/// Scenario results, one row per scenario.
[[nodiscard]] report::Table scenario_table(
    const std::vector<ScenarioResult>& results);

/// Improvement candidates ranked by the DesignAdvisor.
[[nodiscard]] report::Table improvement_table(
    const std::vector<ImprovementEffect>& effects);

}  // namespace hmdiv::core
