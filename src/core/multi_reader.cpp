#include "core/multi_reader.hpp"

#include <stdexcept>
#include <unordered_set>

#include "stats/summary.hpp"

namespace hmdiv::core {

namespace {

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string(what) + " outside [0,1]");
  }
}

void check_names(const std::vector<std::string>& names, const char* who) {
  if (names.empty()) {
    throw std::invalid_argument(std::string(who) + ": no classes");
  }
  std::unordered_set<std::string> seen;
  for (const auto& name : names) {
    if (name.empty() || !seen.insert(name).second) {
      throw std::invalid_argument(
          std::string(who) + ": class names must be non-empty and unique");
    }
  }
}

void check_profile_names(const std::vector<std::string>& names,
                         const DemandProfile& profile, const char* who) {
  if (profile.class_names() != names) {
    throw std::invalid_argument(std::string(who) +
                                ": profile classes do not match model");
  }
}

}  // namespace

DoubleReadingModel::DoubleReadingModel(std::vector<std::string> class_names,
                                       std::vector<double> reader_a,
                                       std::vector<double> reader_b)
    : names_(std::move(class_names)),
      reader_a_(std::move(reader_a)),
      reader_b_(std::move(reader_b)) {
  check_names(names_, "DoubleReadingModel");
  if (reader_a_.size() != names_.size() || reader_b_.size() != names_.size()) {
    throw std::invalid_argument(
        "DoubleReadingModel: reader parameter sizes do not match classes");
  }
  for (const double p : reader_a_) check_probability(p, "DoubleReadingModel pA");
  for (const double p : reader_b_) check_probability(p, "DoubleReadingModel pB");
}

void DoubleReadingModel::check_class(std::size_t x) const {
  if (x >= names_.size()) {
    throw std::invalid_argument("DoubleReadingModel: class index out of range");
  }
}

double DoubleReadingModel::system_failure_given_class(std::size_t x) const {
  check_class(x);
  return reader_a_[x] * reader_b_[x];
}

double DoubleReadingModel::system_failure_probability(
    const DemandProfile& profile) const {
  check_profile_names(names_, profile, "DoubleReadingModel");
  double total = 0.0;
  for (std::size_t x = 0; x < names_.size(); ++x) {
    total += profile[x] * reader_a_[x] * reader_b_[x];
  }
  return total;
}

double DoubleReadingModel::reader_a_failure(
    const DemandProfile& profile) const {
  check_profile_names(names_, profile, "DoubleReadingModel");
  return profile.expectation(reader_a_);
}

double DoubleReadingModel::reader_b_failure(
    const DemandProfile& profile) const {
  check_profile_names(names_, profile, "DoubleReadingModel");
  return profile.expectation(reader_b_);
}

double DoubleReadingModel::failure_covariance(
    const DemandProfile& profile) const {
  check_profile_names(names_, profile, "DoubleReadingModel");
  return stats::weighted_covariance(reader_a_, reader_b_,
                                    profile.distribution().probabilities());
}

double DoubleReadingModel::system_failure_with_arbitration(
    const DemandProfile& profile, const std::vector<double>& arbiter) const {
  check_profile_names(names_, profile, "DoubleReadingModel");
  if (arbiter.size() != names_.size()) {
    throw std::invalid_argument(
        "DoubleReadingModel: arbiter parameter size mismatch");
  }
  for (const double p : arbiter) {
    check_probability(p, "DoubleReadingModel arbiter");
  }
  double total = 0.0;
  for (std::size_t x = 0; x < names_.size(); ++x) {
    const double pa = reader_a_[x];
    const double pb = reader_b_[x];
    const double disagree = pa * (1.0 - pb) + (1.0 - pa) * pb;
    total += profile[x] * (pa * pb + disagree * arbiter[x]);
  }
  return total;
}

TwoReadersWithCadtModel::TwoReadersWithCadtModel(
    std::vector<std::string> class_names, std::vector<double> p_machine_fails,
    std::vector<ReaderConditional> reader_a,
    std::vector<ReaderConditional> reader_b)
    : names_(std::move(class_names)),
      p_machine_fails_(std::move(p_machine_fails)),
      reader_a_(std::move(reader_a)),
      reader_b_(std::move(reader_b)) {
  check_names(names_, "TwoReadersWithCadtModel");
  if (p_machine_fails_.size() != names_.size() ||
      reader_a_.size() != names_.size() || reader_b_.size() != names_.size()) {
    throw std::invalid_argument(
        "TwoReadersWithCadtModel: parameter sizes do not match classes");
  }
  for (const double p : p_machine_fails_) {
    check_probability(p, "TwoReadersWithCadtModel PMf");
  }
  for (const auto& readers : {&reader_a_, &reader_b_}) {
    for (const auto& r : *readers) {
      check_probability(r.p_fail_given_machine_fails,
                        "TwoReadersWithCadtModel p|Mf");
      check_probability(r.p_fail_given_machine_succeeds,
                        "TwoReadersWithCadtModel p|Ms");
    }
  }
}

void TwoReadersWithCadtModel::check_class(std::size_t x) const {
  if (x >= names_.size()) {
    throw std::invalid_argument(
        "TwoReadersWithCadtModel: class index out of range");
  }
}

double TwoReadersWithCadtModel::system_failure_given_class(
    std::size_t x) const {
  check_class(x);
  const double p_mf = p_machine_fails_[x];
  return p_mf * reader_a_[x].p_fail_given_machine_fails *
             reader_b_[x].p_fail_given_machine_fails +
         (1.0 - p_mf) * reader_a_[x].p_fail_given_machine_succeeds *
             reader_b_[x].p_fail_given_machine_succeeds;
}

double TwoReadersWithCadtModel::system_failure_probability(
    const DemandProfile& profile) const {
  check_profile_names(names_, profile, "TwoReadersWithCadtModel");
  double total = 0.0;
  for (std::size_t x = 0; x < names_.size(); ++x) {
    total += profile[x] * system_failure_given_class(x);
  }
  return total;
}

namespace {

SequentialModel single_reader(const std::vector<std::string>& names,
                              const std::vector<double>& p_machine_fails,
                              const std::vector<ReaderConditional>& reader) {
  std::vector<ClassConditional> params;
  params.reserve(names.size());
  for (std::size_t x = 0; x < names.size(); ++x) {
    ClassConditional c;
    c.p_machine_fails = p_machine_fails[x];
    c.p_human_fails_given_machine_fails = reader[x].p_fail_given_machine_fails;
    c.p_human_fails_given_machine_succeeds =
        reader[x].p_fail_given_machine_succeeds;
    params.push_back(c);
  }
  return SequentialModel(names, std::move(params));
}

}  // namespace

SequentialModel TwoReadersWithCadtModel::reader_a_alone() const {
  return single_reader(names_, p_machine_fails_, reader_a_);
}

SequentialModel TwoReadersWithCadtModel::reader_b_alone() const {
  return single_reader(names_, p_machine_fails_, reader_b_);
}

double TwoReadersWithCadtModel::system_failure_assuming_reader_independence(
    const DemandProfile& profile) const {
  check_profile_names(names_, profile, "TwoReadersWithCadtModel");
  const SequentialModel a = reader_a_alone();
  const SequentialModel b = reader_b_alone();
  double total = 0.0;
  for (std::size_t x = 0; x < names_.size(); ++x) {
    total += profile[x] * a.system_failure_given_class(x) *
             b.system_failure_given_class(x);
  }
  return total;
}

}  // namespace hmdiv::core
