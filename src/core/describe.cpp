#include "core/describe.hpp"

#include <stdexcept>

#include "report/format.hpp"

namespace hmdiv::core {

using report::fixed;
using report::Table;

namespace {

void check_compat(const SequentialModel& model, const DemandProfile& trial,
                  const DemandProfile& field) {
  if (!model.compatible_with(trial) || !model.compatible_with(field)) {
    throw std::invalid_argument("describe: profile/model class mismatch");
  }
}

}  // namespace

Table parameter_table(const SequentialModel& model, const DemandProfile& trial,
                      const DemandProfile& field) {
  check_compat(model, trial, field);
  Table table({"classes of cases", "Trial p(x)", "Field p(x)", "PMf", "PMs",
               "PHf|Mf", "PHf|Ms"});
  table.caption("Demand profiles and model parameters");
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    const ClassConditional& c = model.parameters(x);
    table.row({model.class_names()[x], fixed(trial[x], 2), fixed(field[x], 2),
               fixed(c.p_machine_fails, 2), fixed(c.p_machine_succeeds(), 2),
               fixed(c.p_human_fails_given_machine_fails, 2),
               fixed(c.p_human_fails_given_machine_succeeds, 2)});
  }
  return table;
}

Table failure_table(const SequentialModel& model, const DemandProfile& trial,
                    const DemandProfile& field) {
  check_compat(model, trial, field);
  Table table({"classes of cases", "P(system failure)"});
  table.caption("Probability of system failure");
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    table.row({model.class_names()[x] + " cases",
               fixed(model.system_failure_given_class(x), 3)});
  }
  table.row({"all cases (Trial)",
             fixed(model.system_failure_probability(trial), 3)});
  table.row({"all cases (Field)",
             fixed(model.system_failure_probability(field), 3)});
  return table;
}

Table decomposition_table(const FailureDecomposition& decomposition) {
  Table table({"E[PHf|Ms] (floor)", "E[PMf]*E[t]", "cov(PMf,t)", "PHf total"});
  table.caption("Eq. (10) decomposition of system failure probability");
  table.align(0, report::Align::kRight);
  table.row({fixed(decomposition.floor, 4), fixed(decomposition.mean_field, 4),
             fixed(decomposition.covariance, 4),
             fixed(decomposition.total(), 4)});
  return table;
}

Table scenario_table(const std::vector<ScenarioResult>& results) {
  Table table({"scenario", "PHf", "PMf", "floor E[PHf|Ms]", "cov(PMf,t)"});
  table.caption("Extrapolation scenarios (Eq. 8)");
  for (const auto& r : results) {
    table.row({r.name, fixed(r.system_failure, 3), fixed(r.machine_failure, 3),
               fixed(r.failure_floor, 3),
               fixed(r.decomposition.covariance, 4)});
  }
  return table;
}

Table improvement_table(const std::vector<ImprovementEffect>& effects) {
  Table table({"candidate", "PHf before", "PHf after", "abs. gain",
               "rel. gain", "analytic gain"});
  table.caption("Machine improvement candidates, ranked");
  for (const auto& e : effects) {
    table.row({e.name, fixed(e.baseline_failure, 3),
               fixed(e.improved_failure, 3), fixed(e.absolute_gain(), 4),
               report::percent(e.relative_gain(), 1),
               fixed(e.analytic_gain, 4)});
  }
  return table;
}

}  // namespace hmdiv::core
