#include "core/model_io.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

#include "report/format.hpp"

namespace hmdiv::core {

namespace {

constexpr const char* kModelHeader = "hmdiv-sequential-model v1";
constexpr const char* kProfileHeader = "hmdiv-demand-profile v1";

[[noreturn]] void fail(std::size_t line_number, const std::string& what) {
  throw std::invalid_argument("model_io: line " +
                              std::to_string(line_number) + ": " + what);
}

/// Splits the payload lines (header first), skipping blanks and comments.
struct Line {
  std::size_t number = 0;
  std::vector<std::string> tokens;
};

std::vector<Line> tokenize(const std::string& text) {
  std::vector<Line> out;
  std::istringstream stream(text);
  std::string raw;
  std::size_t number = 0;
  while (std::getline(stream, raw)) {
    ++number;
    std::istringstream line(raw);
    std::vector<std::string> tokens;
    std::string token;
    while (line >> token) tokens.push_back(token);
    if (tokens.empty() || tokens.front().front() == '#') continue;
    out.push_back(Line{number, std::move(tokens)});
  }
  return out;
}

double parse_probability(const Line& line, const std::string& token,
                         const char* what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    fail(line.number, std::string("cannot parse ") + what + " '" + token + "'");
  }
  if (consumed != token.size()) {
    fail(line.number, std::string("trailing junk in ") + what + " '" + token +
                          "'");
  }
  if (!(value >= 0.0 && value <= 1.0)) {
    fail(line.number, std::string(what) + " outside [0,1]");
  }
  return value;
}

void check_header(const std::vector<Line>& lines, const char* expected) {
  if (lines.empty()) {
    throw std::invalid_argument("model_io: empty input");
  }
  std::string joined;
  for (std::size_t i = 0; i < lines.front().tokens.size(); ++i) {
    if (i != 0) joined += ' ';
    joined += lines.front().tokens[i];
  }
  if (joined != expected) {
    fail(lines.front().number,
         "expected header '" + std::string(expected) + "', got '" + joined +
             "'");
  }
}

}  // namespace

std::string to_text(const SequentialModel& model) {
  std::ostringstream out;
  write_model(out, model);
  return out.str();
}

std::string to_text(const DemandProfile& profile) {
  std::ostringstream out;
  write_profile(out, profile);
  return out.str();
}

void write_model(std::ostream& os, const SequentialModel& model) {
  os << kModelHeader << '\n';
  os << "# class <name> <PMf> <PHf|Mf> <PHf|Ms>\n";
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    const ClassConditional& c = model.parameters(x);
    os << "class " << model.class_names()[x] << ' '
       << report::sig(c.p_machine_fails, 17) << ' '
       << report::sig(c.p_human_fails_given_machine_fails, 17) << ' '
       << report::sig(c.p_human_fails_given_machine_succeeds, 17) << '\n';
  }
}

void write_profile(std::ostream& os, const DemandProfile& profile) {
  os << kProfileHeader << '\n';
  os << "# class <name> <probability>\n";
  for (std::size_t x = 0; x < profile.class_count(); ++x) {
    os << "class " << profile.class_names()[x] << ' '
       << report::sig(profile[x], 17) << '\n';
  }
}

SequentialModel parse_sequential_model(const std::string& text) {
  const auto lines = tokenize(text);
  check_header(lines, kModelHeader);
  std::vector<std::string> names;
  std::vector<ClassConditional> params;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const Line& line = lines[i];
    if (line.tokens.front() != "class" || line.tokens.size() != 5) {
      fail(line.number, "expected 'class <name> <PMf> <PHf|Mf> <PHf|Ms>'");
    }
    names.push_back(line.tokens[1]);
    ClassConditional c;
    c.p_machine_fails = parse_probability(line, line.tokens[2], "PMf");
    c.p_human_fails_given_machine_fails =
        parse_probability(line, line.tokens[3], "PHf|Mf");
    c.p_human_fails_given_machine_succeeds =
        parse_probability(line, line.tokens[4], "PHf|Ms");
    params.push_back(c);
  }
  if (names.empty()) {
    throw std::invalid_argument("model_io: model has no classes");
  }
  return SequentialModel(std::move(names), std::move(params));
}

DemandProfile parse_demand_profile(const std::string& text) {
  const auto lines = tokenize(text);
  check_header(lines, kProfileHeader);
  std::vector<std::string> names;
  std::vector<double> probabilities;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const Line& line = lines[i];
    if (line.tokens.front() != "class" || line.tokens.size() != 3) {
      fail(line.number, "expected 'class <name> <probability>'");
    }
    names.push_back(line.tokens[1]);
    probabilities.push_back(
        parse_probability(line, line.tokens[2], "probability"));
  }
  if (names.empty()) {
    throw std::invalid_argument("model_io: profile has no classes");
  }
  return DemandProfile(std::move(names), std::move(probabilities));
}

SequentialModel read_model(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse_sequential_model(buffer.str());
}

DemandProfile read_profile(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse_demand_profile(buffer.str());
}

}  // namespace hmdiv::core
