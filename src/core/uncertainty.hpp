// Uncertainty propagation from trial counts to the system-level prediction.
//
// The paper assumes "narrow enough confidence intervals can be obtained for
// all parameters" — this module drops that assumption. Each parameter is
// given a Beta posterior from its trial counts (Jeffreys prior by default);
// Monte-Carlo draws propagate through Eq. (8) to a distribution of the
// predicted system failure probability, reported as mean + equal-tailed
// credible interval. This shows how trial size limits the precision of
// field predictions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/demand_profile.hpp"
#include "core/sequential_model.hpp"
#include "exec/config.hpp"
#include "stats/rng.hpp"

namespace hmdiv::core {

/// Trial evidence for one class: counts from which the three conditional
/// parameters are estimated.
struct ClassCounts {
  /// Cases of this class in the trial (cancer cases; FN analysis only).
  std::uint64_t cases = 0;
  /// Cases on which the machine failed (no prompt of the relevant features).
  std::uint64_t machine_failures = 0;
  /// Human (= system) failures among the machine-failure cases.
  std::uint64_t human_failures_given_machine_failed = 0;
  /// Human failures among the machine-success cases.
  std::uint64_t human_failures_given_machine_succeeded = 0;
};

/// A propagated prediction: posterior mean and credible interval.
struct UncertainPrediction {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double stddev = 0.0;
  [[nodiscard]] double width() const { return upper - lower; }
};

/// Posterior sampler over SequentialModels given per-class trial counts.
///
/// Each parameter gets an independent Beta(k + a, n − k + a) posterior with
/// Jeffreys constant a = 0.5.
class PosteriorModelSampler {
 public:
  /// One ClassCounts per class name. Validates count consistency:
  /// machine_failures <= cases, human failure counts bounded by their
  /// denominators.
  PosteriorModelSampler(std::vector<std::string> class_names,
                        std::vector<ClassCounts> counts);

  [[nodiscard]] std::size_t class_count() const { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& class_names() const {
    return names_;
  }
  /// The trial evidence this sampler was built from — integers, so a
  /// sampler rebuilt from them (e.g. in a shard worker) has bit-identical
  /// posterior preps.
  [[nodiscard]] const std::vector<ClassCounts>& counts() const {
    return counts_;
  }

  /// Posterior-mean model (each parameter at its Beta posterior mean).
  [[nodiscard]] SequentialModel posterior_mean_model() const;

  /// Draws one model from the joint (independent-Beta) posterior.
  [[nodiscard]] SequentialModel sample(stats::Rng& rng) const;

  /// Propagates `draws` posterior samples through Eq. (8) under `profile`:
  /// sample_failure_probabilities() into workspace scratch, then
  /// summarise(). Batched engine — equivalent to predict_reference() in
  /// distribution, NOT bitwise (see that method); bit-identical across
  /// thread counts for a fixed `rng` state (the caller's rng advances by
  /// exactly one step either way).
  [[nodiscard]] UncertainPrediction predict(
      const DemandProfile& profile, stats::Rng& rng, std::size_t draws = 4000,
      double credibility = 0.95,
      const exec::Config& config = exec::default_config()) const;

  /// Scalar reference for predict(): one substream Rng(base, i) per draw,
  /// three scalar Beta draws per class per draw, full evaluation of
  /// Eq. (8) per replicate, and the pre-batched-engine extraction (full
  /// std::sort + sorted_quantile) kept verbatim. Documented ground truth
  /// AND cost baseline for the batched engine; the two are equivalent in
  /// distribution (asserted by chi-square/KS/z statistical-equivalence
  /// tests), not bitwise — the batched kernels consume the stream in a
  /// different order and use an inverse-CDF normal instead of the polar
  /// method.
  [[nodiscard]] UncertainPrediction predict_reference(
      const DemandProfile& profile, stats::Rng& rng, std::size_t draws = 4000,
      double credibility = 0.95,
      const exec::Config& config = exec::default_config()) const;

  /// Fills `out` with posterior predictive draws of the system failure
  /// probability under `profile` — the batched sampling stage of
  /// predict(). Chunk c of `out` (fixed 512-draw chunks) draws from the
  /// substream Rng(base, c) with `base` taken from `rng` (one step), so
  /// the output is bit-identical at 1 vs N threads. Per parameter, whole
  /// chunks are filled by Rng::fill_beta and streamed through the SoA
  /// Eq. (8) transform; per-chunk scratch comes from
  /// exec::thread_workspace() (zero steady-state heap allocations).
  void sample_failure_probabilities(
      const DemandProfile& profile, stats::Rng& rng, std::span<double> out,
      const exec::Config& config = exec::default_config()) const;

  /// Fixed substream grain of the batched sampler: chunk c always covers
  /// draws [512c, 512c + 512) of a run, regardless of parallelism. This is
  /// the index space the shard engine partitions.
  static constexpr std::size_t kDrawChunk = 512;

  /// Chunks a `draws`-sized run decomposes into — ceil(draws / kDrawChunk).
  [[nodiscard]] static std::size_t draw_chunk_count(std::size_t draws);

  /// Computes only chunks [first_chunk, last_chunk) of a `total_draws`-draw
  /// run whose substream base is `base` (the value sample_failure_
  /// probabilities takes from its rng). `out` receives draws
  /// [512·first_chunk, min(512·last_chunk, total_draws)) and must be sized
  /// exactly. Ranges that partition [0, draw_chunk_count(total_draws))
  /// concatenate to the bit-identical full run — the shard workers' entry
  /// point.
  void sample_failure_probability_chunks(
      const DemandProfile& profile, std::uint64_t base,
      std::size_t total_draws, std::size_t first_chunk,
      std::size_t last_chunk, std::span<double> out,
      const exec::Config& config = exec::default_config()) const;

  /// Reduces a vector of posterior predictive draws to mean, stddev and an
  /// equal-tailed credible interval. Partially reorders `draws` in place
  /// (selection-based stats::quantiles — no full sort). Any NaN draw makes
  /// every field of the result NaN: uncertainty about an undefined
  /// quantity is undefined, never silently clamped.
  [[nodiscard]] static UncertainPrediction summarise(std::span<double> draws,
                                                     double credibility);

 private:
  std::vector<std::string> names_;
  std::vector<ClassCounts> counts_;
  /// Memoised per-parameter Beta posterior normalisers: the (alpha, beta)
  /// Marsaglia–Tsang constants for each of the three conditionals of each
  /// class, in draw order (pmf, phf|mf, phf|ms) — 6 preps per class.
  /// predict() streams over these instead of re-deriving them per draw.
  std::vector<stats::Rng::GammaPrep> beta_prep_;
};

}  // namespace hmdiv::core
