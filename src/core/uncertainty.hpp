// Uncertainty propagation from trial counts to the system-level prediction.
//
// The paper assumes "narrow enough confidence intervals can be obtained for
// all parameters" — this module drops that assumption. Each parameter is
// given a Beta posterior from its trial counts (Jeffreys prior by default);
// Monte-Carlo draws propagate through Eq. (8) to a distribution of the
// predicted system failure probability, reported as mean + equal-tailed
// credible interval. This shows how trial size limits the precision of
// field predictions.
#pragma once

#include <cstdint>
#include <vector>

#include "core/demand_profile.hpp"
#include "core/sequential_model.hpp"
#include "exec/config.hpp"
#include "stats/rng.hpp"

namespace hmdiv::core {

/// Trial evidence for one class: counts from which the three conditional
/// parameters are estimated.
struct ClassCounts {
  /// Cases of this class in the trial (cancer cases; FN analysis only).
  std::uint64_t cases = 0;
  /// Cases on which the machine failed (no prompt of the relevant features).
  std::uint64_t machine_failures = 0;
  /// Human (= system) failures among the machine-failure cases.
  std::uint64_t human_failures_given_machine_failed = 0;
  /// Human failures among the machine-success cases.
  std::uint64_t human_failures_given_machine_succeeded = 0;
};

/// A propagated prediction: posterior mean and credible interval.
struct UncertainPrediction {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double stddev = 0.0;
  [[nodiscard]] double width() const { return upper - lower; }
};

/// Posterior sampler over SequentialModels given per-class trial counts.
///
/// Each parameter gets an independent Beta(k + a, n − k + a) posterior with
/// Jeffreys constant a = 0.5.
class PosteriorModelSampler {
 public:
  /// One ClassCounts per class name. Validates count consistency:
  /// machine_failures <= cases, human failure counts bounded by their
  /// denominators.
  PosteriorModelSampler(std::vector<std::string> class_names,
                        std::vector<ClassCounts> counts);

  [[nodiscard]] std::size_t class_count() const { return names_.size(); }

  /// Posterior-mean model (each parameter at its Beta posterior mean).
  [[nodiscard]] SequentialModel posterior_mean_model() const;

  /// Draws one model from the joint (independent-Beta) posterior.
  [[nodiscard]] SequentialModel sample(stats::Rng& rng) const;

  /// Propagates `draws` posterior samples through Eq. (8) under `profile`.
  /// Draws run in parallel on the exec engine; draw i uses the substream
  /// Rng(base, i) with `base` taken from `rng` (one step), so the result
  /// is bit-identical for any thread count.
  [[nodiscard]] UncertainPrediction predict(
      const DemandProfile& profile, stats::Rng& rng, std::size_t draws = 4000,
      double credibility = 0.95,
      const exec::Config& config = exec::default_config()) const;

 private:
  std::vector<std::string> names_;
  std::vector<ClassCounts> counts_;
  /// Memoised per-parameter Beta posterior normalisers: the (alpha, beta)
  /// Marsaglia–Tsang constants for each of the three conditionals of each
  /// class, in draw order (pmf, phf|mf, phf|ms) — 6 preps per class.
  /// predict() streams over these instead of re-deriving them per draw.
  std::vector<stats::Rng::GammaPrep> beta_prep_;
};

}  // namespace hmdiv::core
