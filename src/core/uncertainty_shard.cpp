#include "core/uncertainty_shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "exec/cluster.hpp"
#include "obs/obs.hpp"

namespace hmdiv::core {

namespace {

using exec::wire::Reader;
using exec::wire::Writer;

// Blob layout: u64 n_classes, n × str name, n × 4 u64 counts, doubles
// profile probabilities, u64 total_draws, u64 base. Counts are integers,
// so the worker's rebuilt sampler has bit-identical Beta posterior preps;
// the profile rebuilds through from_normalised.

struct UqShardConfig {
  PosteriorModelSampler sampler;
  DemandProfile profile;
  std::uint64_t total_draws = 0;
  std::uint64_t base = 0;
};

std::vector<std::uint8_t> encode_blob(const PosteriorModelSampler& sampler,
                                      const DemandProfile& profile,
                                      std::uint64_t total_draws,
                                      std::uint64_t base) {
  Writer w;
  const std::size_t k = sampler.class_count();
  w.u64(k);
  for (const std::string& name : sampler.class_names()) w.str(name);
  for (const ClassCounts& c : sampler.counts()) {
    w.u64(c.cases);
    w.u64(c.machine_failures);
    w.u64(c.human_failures_given_machine_failed);
    w.u64(c.human_failures_given_machine_succeeded);
  }
  std::vector<double> probabilities(k);
  for (std::size_t x = 0; x < k; ++x) {
    probabilities[x] = profile.probability(x);
  }
  w.doubles(probabilities);
  w.u64(total_draws);
  w.u64(base);
  return w.take();
}

UqShardConfig decode_blob(std::span<const std::uint8_t> blob) {
  Reader r(blob);
  const std::uint64_t k = r.u64();
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(k));
  for (std::uint64_t x = 0; x < k; ++x) names.push_back(r.str());
  std::vector<ClassCounts> counts(static_cast<std::size_t>(k));
  for (ClassCounts& c : counts) {
    c.cases = r.u64();
    c.machine_failures = r.u64();
    c.human_failures_given_machine_failed = r.u64();
    c.human_failures_given_machine_succeeded = r.u64();
  }
  std::vector<double> probabilities = r.doubles();
  UqShardConfig config{
      PosteriorModelSampler(names, std::move(counts)),
      DemandProfile::from_normalised(std::move(names),
                                     std::move(probabilities)),
      r.u64(), r.u64()};
  if (!r.exhausted()) {
    throw exec::wire::ProtocolError("core.uq.sample blob: trailing bytes");
  }
  return config;
}

/// Worker side: rebuild the sampler, fill this shard's slice of the chunk
/// index space, ship the draws back as bit patterns.
std::vector<std::uint8_t> handle_uq_shard(const exec::wire::ShardTask& task) {
  const UqShardConfig config = decode_blob(task.blob);
  const std::size_t total = static_cast<std::size_t>(config.total_draws);
  const exec::wire::ShardRange range = exec::wire::task_range(
      PosteriorModelSampler::draw_chunk_count(total), task);
  const std::size_t begin = static_cast<std::size_t>(range.begin) *
                            PosteriorModelSampler::kDrawChunk;
  const std::size_t end =
      std::min(static_cast<std::size_t>(range.end) *
                   PosteriorModelSampler::kDrawChunk,
               total);
  std::vector<double> draws(end - begin);
  config.sampler.sample_failure_probability_chunks(
      config.profile, config.base, total,
      static_cast<std::size_t>(range.begin),
      static_cast<std::size_t>(range.end), draws);
  Writer w;
  w.doubles(draws);
  return w.take();
}

const exec::ShardWorkloadRegistration kRegistration{
    kUncertaintyShardWorkload, &handle_uq_shard};

/// Ascending-shard merge shared by the process-sharded and clustered
/// paths: concatenate each shard's chunk-aligned draw slice into `out`.
void merge_uq_payloads(const std::vector<std::vector<std::uint8_t>>& payloads,
                       std::span<double> out) {
  std::size_t offset = 0;
  for (const auto& payload : payloads) {
    Reader r(payload);
    const std::vector<double> draws = r.doubles();
    if (!r.exhausted() || draws.size() > out.size() - offset) {
      throw exec::wire::ProtocolError("core.uq.sample result: bad payload");
    }
    std::copy(draws.begin(), draws.end(), out.begin() + offset);
    offset += draws.size();
  }
  if (offset != out.size()) {
    throw exec::wire::ProtocolError(
        "core.uq.sample: merged draw count mismatch");
  }
}

}  // namespace

void sample_failure_probabilities_sharded(
    const PosteriorModelSampler& sampler, const DemandProfile& profile,
    stats::Rng& rng, std::span<double> out,
    const exec::ShardOptions& options) {
  const exec::ShardRunner runner(options);
  if (runner.resolved_shards() == 1) {
    sampler.sample_failure_probabilities(
        profile, rng, out,
        options.threads ? exec::Config{options.threads}
                        : exec::default_config());
    return;
  }
  if (out.empty()) {
    throw std::invalid_argument(
        "sample_failure_probabilities_sharded: empty output");
  }
  HMDIV_OBS_SCOPED_TIMER("core.uq.shard_sample_ns");
  // One step off the caller's rng — exactly what the in-process engine
  // consumes — so caller-visible rng state stays identical.
  const std::uint64_t base = rng.next_u64();
  const std::vector<std::uint8_t> blob =
      encode_blob(sampler, profile, out.size(), base);
  merge_uq_payloads(runner.run(kUncertaintyShardWorkload, blob), out);
}

void sample_failure_probabilities_clustered(
    const PosteriorModelSampler& sampler, const DemandProfile& profile,
    stats::Rng& rng, std::span<double> out, exec::ClusterRunner& cluster) {
  if (out.empty()) {
    throw std::invalid_argument(
        "sample_failure_probabilities_clustered: empty output");
  }
  HMDIV_OBS_SCOPED_TIMER("core.uq.cluster_sample_ns");
  // One step off the caller's rng — exactly what the in-process engine
  // consumes — so caller-visible rng state stays identical.
  const std::uint64_t base = rng.next_u64();
  const std::vector<std::uint8_t> blob =
      encode_blob(sampler, profile, out.size(), base);
  merge_uq_payloads(
      cluster.run(kUncertaintyShardWorkload, blob,
                  PosteriorModelSampler::draw_chunk_count(out.size())),
      out);
}

UncertainPrediction predict_clustered(const PosteriorModelSampler& sampler,
                                      const DemandProfile& profile,
                                      stats::Rng& rng, std::size_t draws,
                                      double credibility,
                                      exec::ClusterRunner& cluster) {
  if (draws == 0) {
    throw std::invalid_argument("predict_clustered: draws == 0");
  }
  std::vector<double> values(draws);
  sample_failure_probabilities_clustered(sampler, profile, rng, values,
                                         cluster);
  return PosteriorModelSampler::summarise(values, credibility);
}

void ensure_uncertainty_shard_registered() {}

UncertainPrediction predict_sharded(const PosteriorModelSampler& sampler,
                                    const DemandProfile& profile,
                                    stats::Rng& rng, std::size_t draws,
                                    double credibility,
                                    const exec::ShardOptions& options) {
  if (draws == 0) {
    throw std::invalid_argument("predict_sharded: draws == 0");
  }
  // At one shard go through predict() itself, not just its sampling
  // stage, so the in-process path keeps its own instrumentation
  // (core.uq.predict_ns et al.) and workspace reuse.
  if (exec::ShardRunner(options).resolved_shards() == 1) {
    return sampler.predict(profile, rng, draws, credibility,
                           options.threads ? exec::Config{options.threads}
                                           : exec::default_config());
  }
  std::vector<double> values(draws);
  sample_failure_probabilities_sharded(sampler, profile, rng, values,
                                       options);
  return PosteriorModelSampler::summarise(values, credibility);
}

}  // namespace hmdiv::core
