#include "core/aggregation.hpp"

#include <stdexcept>
#include <vector>

namespace hmdiv::core {

void ClassPartition::validate(std::size_t fine_class_count) const {
  if (coarse_names.empty()) {
    throw std::invalid_argument("ClassPartition: no coarse classes");
  }
  if (group_of.size() != fine_class_count) {
    throw std::invalid_argument(
        "ClassPartition: group_of size does not match fine class count");
  }
  std::vector<bool> used(coarse_names.size(), false);
  for (const std::size_t g : group_of) {
    if (g >= coarse_names.size()) {
      throw std::invalid_argument("ClassPartition: group index out of range");
    }
    used[g] = true;
  }
  for (std::size_t g = 0; g < used.size(); ++g) {
    if (!used[g]) {
      throw std::invalid_argument("ClassPartition: empty coarse class '" +
                                  coarse_names[g] + "'");
    }
  }
}

CoarseView coarsen(const SequentialModel& fine_model,
                   const DemandProfile& fine_profile,
                   const ClassPartition& partition) {
  if (!fine_model.compatible_with(fine_profile)) {
    throw std::invalid_argument("coarsen: profile/model class mismatch");
  }
  partition.validate(fine_model.class_count());
  const std::size_t coarse_count = partition.coarse_names.size();

  // Accumulate the exact mixture moments per coarse class.
  std::vector<double> mass(coarse_count, 0.0);          // p(X)
  std::vector<double> mf_mass(coarse_count, 0.0);       // E[p·PMf]
  std::vector<double> mf_hf_mass(coarse_count, 0.0);    // E[p·PMf·PHf|Mf]
  std::vector<double> ms_hf_mass(coarse_count, 0.0);    // E[p·PMs·PHf|Ms]
  for (std::size_t x = 0; x < fine_model.class_count(); ++x) {
    const std::size_t g = partition.group_of[x];
    const ClassConditional& c = fine_model.parameters(x);
    const double p = fine_profile[x];
    mass[g] += p;
    mf_mass[g] += p * c.p_machine_fails;
    mf_hf_mass[g] +=
        p * c.p_machine_fails * c.p_human_fails_given_machine_fails;
    ms_hf_mass[g] +=
        p * c.p_machine_succeeds() * c.p_human_fails_given_machine_succeeds;
  }

  std::vector<ClassConditional> coarse_params(coarse_count);
  std::vector<double> coarse_probs(coarse_count);
  for (std::size_t g = 0; g < coarse_count; ++g) {
    if (mass[g] <= 0.0) {
      throw std::invalid_argument(
          "coarsen: coarse class '" + partition.coarse_names[g] +
          "' has zero probability under the fine profile");
    }
    coarse_probs[g] = mass[g];
    ClassConditional& c = coarse_params[g];
    c.p_machine_fails = mf_mass[g] / mass[g];
    const double ms_mass = mass[g] - mf_mass[g];
    c.p_human_fails_given_machine_fails =
        mf_mass[g] > 0.0 ? mf_hf_mass[g] / mf_mass[g] : 0.0;
    c.p_human_fails_given_machine_succeeds =
        ms_mass > 0.0 ? ms_hf_mass[g] / ms_mass : 0.0;
  }
  return CoarseView{
      SequentialModel(partition.coarse_names, std::move(coarse_params)),
      DemandProfile(partition.coarse_names, std::move(coarse_probs))};
}

DemandProfile coarsen_profile(const DemandProfile& fine_profile,
                              const ClassPartition& partition) {
  partition.validate(fine_profile.class_count());
  std::vector<double> coarse_probs(partition.coarse_names.size(), 0.0);
  for (std::size_t x = 0; x < fine_profile.class_count(); ++x) {
    coarse_probs[partition.group_of[x]] += fine_profile[x];
  }
  return DemandProfile(partition.coarse_names, std::move(coarse_probs));
}

AggregationBias aggregation_bias(const SequentialModel& fine_model,
                                 const DemandProfile& fine_trial,
                                 const DemandProfile& fine_field,
                                 const ClassPartition& partition) {
  if (!fine_trial.same_classes(fine_field)) {
    throw std::invalid_argument(
        "aggregation_bias: trial/field fine profiles differ in classes");
  }
  AggregationBias out;
  out.fine_trial_failure = fine_model.system_failure_probability(fine_trial);
  out.fine_field_failure = fine_model.system_failure_probability(fine_field);
  // The analyst's coarse parameters come from the *trial* environment...
  const CoarseView trial_view = coarsen(fine_model, fine_trial, partition);
  // ...and are re-weighted by the *field* coarse mix (all they can see).
  const DemandProfile coarse_field = coarsen_profile(fine_field, partition);
  out.coarse_field_prediction =
      trial_view.model.system_failure_probability(coarse_field);
  return out;
}

double coarse_importance_index(const SequentialModel& fine_model,
                               const DemandProfile& fine_profile,
                               const ClassPartition& partition,
                               std::size_t coarse_class) {
  const CoarseView view = coarsen(fine_model, fine_profile, partition);
  return view.model.importance_index(coarse_class);
}

SpuriousCoherenceDemo spurious_coherence_demo() {
  // Within each subclass the reader is machine-blind: PHf|Mf == PHf|Ms.
  ClassConditional easier;
  easier.p_machine_fails = 0.05;
  easier.p_human_fails_given_machine_fails = 0.1;
  easier.p_human_fails_given_machine_succeeds = 0.1;  // t = 0
  ClassConditional harder;
  harder.p_machine_fails = 0.6;
  harder.p_human_fails_given_machine_fails = 0.7;
  harder.p_human_fails_given_machine_succeeds = 0.7;  // t = 0
  SequentialModel fine({"subtle-easier", "subtle-harder"}, {easier, harder});
  DemandProfile profile({"subtle-easier", "subtle-harder"}, {0.5, 0.5});
  ClassPartition partition;
  partition.coarse_names = {"subtle"};
  partition.group_of = {0, 0};
  return SpuriousCoherenceDemo{std::move(fine), std::move(profile),
                               std::move(partition)};
}

}  // namespace hmdiv::core
