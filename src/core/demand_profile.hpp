// Demand profiles: named probability distributions over classes of cases.
//
// The paper (Sections 4–5) partitions demands (patients' film sets) into
// classes x chosen so that all demands within a class are "practically
// indistinguishable from the viewpoint of the failure probabilities they
// produce". A `DemandProfile` is the p(x) of Eqs. (7)–(8): it says how
// likely each class is in a given environment (controlled trial, clinical
// field use, ...). Extrapolation between environments = swapping profiles
// over the same classes.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "stats/distributions.hpp"

namespace hmdiv::core {

/// An immutable, validated distribution over named case classes.
class DemandProfile {
 public:
  /// Class names must be non-empty, unique; probabilities must match names
  /// in count and form a distribution (see stats::DiscreteDistribution).
  DemandProfile(std::vector<std::string> class_names,
                std::vector<double> probabilities);

  /// Builds from non-negative weights, normalising to 1.
  [[nodiscard]] static DemandProfile from_weights(
      std::vector<std::string> class_names, std::vector<double> weights);

  /// Builds from already-normalised probabilities without renormalising
  /// (stats::DiscreteDistribution::from_normalised): the bit-exact wire
  /// round-trip path used by the shard protocol, where a rebuilt profile
  /// must sample identically to the one the parent serialized.
  [[nodiscard]] static DemandProfile from_normalised(
      std::vector<std::string> class_names,
      std::vector<double> probabilities);

  [[nodiscard]] std::size_t class_count() const { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& class_names() const {
    return names_;
  }
  [[nodiscard]] const std::string& class_name(std::size_t x) const;

  /// Index of the class named `name`; throws std::invalid_argument if
  /// absent.
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

  /// p(x).
  [[nodiscard]] double probability(std::size_t x) const;
  [[nodiscard]] double operator[](std::size_t x) const {
    return probability(x);
  }

  [[nodiscard]] const stats::DiscreteDistribution& distribution() const {
    return distribution_;
  }

  /// E_x[values[x]] — the profile-weighted average used throughout Eq. (8).
  [[nodiscard]] double expectation(std::span<const double> values) const;

  /// Samples a class index in O(1) via the distribution's precomputed
  /// Walker alias table (one uniform per draw, no CDF scan).
  [[nodiscard]] std::size_t sample(stats::Rng& rng) const {
    return distribution_.sample(rng);
  }

  /// The precomputed alias table, for batched kernels that map bulk-filled
  /// uniforms to class indices without touching the generator per case.
  [[nodiscard]] const stats::AliasTable& alias() const {
    return distribution_.alias();
  }

  /// True if `other` is defined over the same classes in the same order —
  /// the precondition for trial-to-field extrapolation.
  [[nodiscard]] bool same_classes(const DemandProfile& other) const;

  /// Pointwise convex combination: (1-w)·this + w·other. Profiles must have
  /// the same classes; w in [0,1]. Models an environment drifting from one
  /// case mix towards another.
  [[nodiscard]] DemandProfile blend(const DemandProfile& other,
                                    double w) const;

 private:
  DemandProfile(std::vector<std::string> class_names,
                stats::DiscreteDistribution distribution);

  std::vector<std::string> names_;
  stats::DiscreteDistribution distribution_;
};

}  // namespace hmdiv::core
