// One-call analysis reports: everything the paper's method produces for a
// model, rendered as markdown (for humans and docs) or plain text (for
// terminals). Used by the hmdiv_analyze CLI tool and handy in notebooks.
#pragma once

#include <optional>
#include <string>

#include "core/demand_profile.hpp"
#include "core/dual_model.hpp"
#include "core/sequential_model.hpp"

namespace hmdiv::core {

/// What to include in the report.
struct ReportOptions {
  bool include_parameters = true;
  bool include_failure_probabilities = true;
  bool include_decomposition = true;      ///< Eq. (10), both profiles
  bool include_sensitivities = true;
  bool include_design_advice = true;      ///< floor, leverage, best target
  /// Improvement factor used for the per-class what-if rows (paper: 0.1).
  double improvement_factor = 0.1;
  bool markdown = true;                   ///< false = plain text tables
};

/// Full single-failure-mode analysis of `model` measured under `trial` and
/// deployed under `field` (the Section-5 situation). Throws on class
/// mismatches.
[[nodiscard]] std::string analysis_report(const SequentialModel& model,
                                          const DemandProfile& trial,
                                          const DemandProfile& field,
                                          const ReportOptions& options = {});

/// Two-sided (FN + FP) screening report for a DualModel.
[[nodiscard]] std::string dual_analysis_report(
    const DualModel& model, const OutcomeCosts& costs = {},
    bool markdown = true);

}  // namespace hmdiv::core
