#include "core/trial_design.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "exec/parallel.hpp"
#include "stats/special.hpp"

namespace hmdiv::core {

std::uint64_t required_cases_for_halfwidth(double p_guess, double halfwidth,
                                           double confidence) {
  if (!(p_guess >= 0.0 && p_guess <= 1.0)) {
    throw std::invalid_argument(
        "required_cases_for_halfwidth: p_guess outside [0,1]");
  }
  if (!(halfwidth > 0.0 && halfwidth < 0.5)) {
    throw std::invalid_argument(
        "required_cases_for_halfwidth: halfwidth outside (0, 0.5)");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument(
        "required_cases_for_halfwidth: confidence outside (0,1)");
  }
  const double z = stats::normal_quantile(0.5 + confidence / 2.0);
  // Guard p(1-p): at the extremes use the conservative planning value that
  // a small observed proportion would still produce.
  const double spread = std::max(p_guess * (1.0 - p_guess), 1e-4);
  return static_cast<std::uint64_t>(
      std::ceil(z * z * spread / (halfwidth * halfwidth)));
}

std::vector<double> variance_coefficients(const SequentialModel& model_guess,
                                          const DemandProfile& field) {
  if (!model_guess.compatible_with(field)) {
    throw std::invalid_argument(
        "variance_coefficients: field classes do not match model");
  }
  std::vector<double> out(model_guess.class_count());
  for (std::size_t x = 0; x < model_guess.class_count(); ++x) {
    const ClassConditional& c = model_guess.parameters(x);
    const double p_mf = c.p_machine_fails;
    const double p_ms = c.p_machine_succeeds();
    const double q1 = c.p_human_fails_given_machine_fails;
    const double q2 = c.p_human_fails_given_machine_succeeds;
    const double t = c.importance_index();
    const double pf = field[x];
    // Conditional-parameter terms vanish when the conditioning event never
    // happens (their expected observation counts scale the same way).
    const double q1_term = p_mf > 0.0 ? p_mf * q1 * (1.0 - q1) : 0.0;
    const double q2_term = p_ms > 0.0 ? p_ms * q2 * (1.0 - q2) : 0.0;
    out[x] = pf * pf *
             (t * t * p_mf * (1.0 - p_mf) + q1_term + q2_term);
  }
  return out;
}

double prediction_variance(const SequentialModel& model_guess,
                           const DemandProfile& field,
                           const std::vector<double>& cases) {
  const auto coefficients = variance_coefficients(model_guess, field);
  if (cases.size() != coefficients.size()) {
    throw std::invalid_argument("prediction_variance: allocation size");
  }
  double total = 0.0;
  for (std::size_t x = 0; x < cases.size(); ++x) {
    if (!(cases[x] > 0.0)) {
      throw std::invalid_argument(
          "prediction_variance: every class needs > 0 cases");
    }
    total += coefficients[x] / cases[x];
  }
  return total;
}

namespace {

TrialDesign design_from_cases(const SequentialModel& model_guess,
                              const DemandProfile& field,
                              std::vector<double> cases) {
  const double variance = prediction_variance(model_guess, field, cases);
  DemandProfile trial_profile =
      DemandProfile::from_weights(model_guess.class_names(), cases);
  return TrialDesign{std::move(cases), std::move(trial_profile),
                     std::sqrt(variance)};
}

}  // namespace

TrialDesign optimal_allocation(const SequentialModel& model_guess,
                               const DemandProfile& field,
                               double total_cases) {
  if (!(total_cases >= static_cast<double>(model_guess.class_count()))) {
    throw std::invalid_argument(
        "optimal_allocation: need at least one case per class");
  }
  const auto coefficients = variance_coefficients(model_guess, field);
  double sqrt_sum = 0.0;
  for (const double c : coefficients) sqrt_sum += std::sqrt(c);
  std::vector<double> cases(coefficients.size());
  if (sqrt_sum <= 0.0) {
    // Degenerate: nothing is uncertain; spread evenly.
    for (double& n : cases) {
      n = total_cases / static_cast<double>(cases.size());
    }
    return design_from_cases(model_guess, field, std::move(cases));
  }
  // Neyman allocation with a one-case floor per class.
  const double floor_total = static_cast<double>(cases.size());
  const double allocatable = total_cases - floor_total;
  for (std::size_t x = 0; x < cases.size(); ++x) {
    cases[x] = 1.0 + allocatable * std::sqrt(coefficients[x]) / sqrt_sum;
  }
  return design_from_cases(model_guess, field, std::move(cases));
}

std::uint64_t cases_for_importance_halfwidth(const ClassConditional& guess,
                                             double halfwidth,
                                             double confidence) {
  if (!(halfwidth > 0.0 && halfwidth < 1.0)) {
    throw std::invalid_argument(
        "cases_for_importance_halfwidth: halfwidth outside (0,1)");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument(
        "cases_for_importance_halfwidth: confidence outside (0,1)");
  }
  const double p_mf = guess.p_machine_fails;
  const double p_ms = guess.p_machine_succeeds();
  if (!(p_mf > 0.0 && p_ms > 0.0)) {
    throw std::invalid_argument(
        "cases_for_importance_halfwidth: t(x) is unidentifiable when the "
        "machine always fails or always succeeds");
  }
  const double q1 = guess.p_human_fails_given_machine_fails;
  const double q2 = guess.p_human_fails_given_machine_succeeds;
  // Conservative planning floor on the Bernoulli spreads.
  const double s1 = std::max(q1 * (1.0 - q1), 1e-4);
  const double s2 = std::max(q2 * (1.0 - q2), 1e-4);
  const double z = stats::normal_quantile(0.5 + confidence / 2.0);
  const double per_case_variance = s1 / p_mf + s2 / p_ms;
  return static_cast<std::uint64_t>(
      std::ceil(z * z * per_case_variance / (halfwidth * halfwidth)));
}

std::vector<TrialDesign> design_curve(const SequentialModel& model_guess,
                                      const DemandProfile& field,
                                      const std::vector<double>& budgets,
                                      const exec::Config& config) {
  // TrialDesign is not default-constructible (DemandProfile has no empty
  // state), so fill optional slots and unwrap in order.
  std::vector<std::optional<TrialDesign>> slots(budgets.size());
  exec::parallel_for(
      budgets.size(), /*grain=*/16,
      [&](std::size_t i) {
        slots[i] = optimal_allocation(model_guess, field, budgets[i]);
      },
      config);
  std::vector<TrialDesign> out;
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

TrialDesign allocation_for_profile(const SequentialModel& model_guess,
                                   const DemandProfile& field,
                                   const DemandProfile& trial_profile,
                                   double total_cases) {
  if (!model_guess.compatible_with(trial_profile)) {
    throw std::invalid_argument(
        "allocation_for_profile: trial profile classes do not match model");
  }
  if (!(total_cases > 0.0)) {
    throw std::invalid_argument("allocation_for_profile: total_cases <= 0");
  }
  std::vector<double> cases(model_guess.class_count());
  for (std::size_t x = 0; x < cases.size(); ++x) {
    cases[x] = std::max(1.0, total_cases * trial_profile[x]);
  }
  return design_from_cases(model_guess, field, std::move(cases));
}

}  // namespace hmdiv::core
