#include "core/analysis_report.hpp"

#include <sstream>
#include <stdexcept>

#include "core/describe.hpp"
#include "core/design_advisor.hpp"
#include "core/sensitivity.hpp"
#include "report/format.hpp"
#include "report/table.hpp"

namespace hmdiv::core {

namespace {

using report::fixed;
using report::Table;

std::string render(const Table& table, bool markdown) {
  return markdown ? table.to_markdown() + "\n" : table.to_text() + "\n";
}

void heading(std::ostringstream& out, bool markdown, const std::string& text) {
  if (markdown) {
    out << "## " << text << "\n\n";
  } else {
    out << "== " << text << " ==\n\n";
  }
}

}  // namespace

std::string analysis_report(const SequentialModel& model,
                            const DemandProfile& trial,
                            const DemandProfile& field,
                            const ReportOptions& options) {
  if (!model.compatible_with(trial) || !model.compatible_with(field)) {
    throw std::invalid_argument("analysis_report: profile/model mismatch");
  }
  std::ostringstream out;
  if (options.markdown) {
    out << "# Human-machine system analysis\n\n";
  } else {
    out << "HUMAN-MACHINE SYSTEM ANALYSIS\n\n";
  }

  if (options.include_parameters) {
    heading(out, options.markdown, "Model parameters");
    out << render(parameter_table(model, trial, field), options.markdown);
  }

  if (options.include_failure_probabilities) {
    heading(out, options.markdown, "System failure probabilities (Eq. 8)");
    out << render(failure_table(model, trial, field), options.markdown);
  }

  if (options.include_decomposition) {
    heading(out, options.markdown, "Eq. (10) decomposition");
    Table table({"profile", "floor E[PHf|Ms]", "E[PMf]*E[t]", "cov(PMf,t)",
                 "total"});
    for (const auto& [name, profile] :
         {std::pair<const char*, const DemandProfile&>{"Trial", trial},
          std::pair<const char*, const DemandProfile&>{"Field", field}}) {
      const auto d = model.decompose(profile);
      table.row({name, fixed(d.floor, 4), fixed(d.mean_field, 4),
                 fixed(d.covariance, 4), fixed(d.total(), 4)});
    }
    out << render(table, options.markdown);
  }

  if (options.include_sensitivities) {
    heading(out, options.markdown, "Sensitivities (Field profile)");
    const auto grads = sensitivities(model, field);
    Table table({"class", "dPHf/dPMf", "dPHf/dPHf|Mf", "dPHf/dPHf|Ms"});
    for (std::size_t x = 0; x < model.class_count(); ++x) {
      table.row({model.class_names()[x], fixed(grads[x].d_machine_failure, 4),
                 fixed(grads[x].d_human_given_failure, 4),
                 fixed(grads[x].d_human_given_success, 4)});
    }
    out << render(table, options.markdown);
  }

  if (options.include_design_advice) {
    heading(out, options.markdown, "Design advice (Field profile)");
    DesignAdvisor advisor(model, field);
    const auto diagnosis = advisor.diagnose();
    std::vector<ImprovementCandidate> candidates;
    for (std::size_t x = 0; x < model.class_count(); ++x) {
      candidates.push_back(ImprovementCandidate{
          "improve " + model.class_names()[x], x, options.improvement_factor});
    }
    out << render(improvement_table(advisor.rank(std::move(candidates))),
                  options.markdown);
    std::ostringstream advice;
    advice << "Failure floor E[PHf|Ms] = " << fixed(diagnosis.floor, 3)
           << "; machine-addressable fraction = "
           << report::percent(diagnosis.machine_addressable_fraction, 1)
           << "; cov(PMf, t) = " << fixed(diagnosis.covariance, 4)
           << "; best machine-improvement target: "
           << model.class_names()[advisor.best_target_class()] << ".";
    out << advice.str() << "\n";
  }
  return out.str();
}

std::string dual_analysis_report(const DualModel& model,
                                 const OutcomeCosts& costs, bool markdown) {
  std::ostringstream out;
  if (markdown) {
    out << "# Screening performance (both failure modes)\n\n";
  } else {
    out << "SCREENING PERFORMANCE (BOTH FAILURE MODES)\n\n";
  }
  const ScreeningPerformance p = model.performance();
  Table table({"metric", "value"});
  table.row({"prevalence", report::percent(model.prevalence(), 2)});
  table.row({"sensitivity", fixed(p.sensitivity, 3)});
  table.row({"specificity", fixed(p.specificity, 3)});
  table.row({"recall rate", report::percent(p.recall_rate, 2)});
  table.row({"PPV", fixed(p.ppv, 3)});
  table.row({"NPV", fixed(p.npv, 4)});
  table.row({"cancer detection rate /1000",
             fixed(p.cancer_detection_rate_per_1000, 2)});
  table.row({"expected cost per case",
             fixed(model.expected_cost_per_case(costs), 3)});
  out << render(table, markdown);

  heading(out, markdown, "Machine re-tuning trade-off");
  Table sweep({"tuning", "sensitivity", "specificity", "recall rate",
               "cost/case"});
  struct Tuning {
    const char* label;
    double fn_factor, fp_factor;
  };
  for (const Tuning& t :
       {Tuning{"much stricter (FNx2, FPx0.5)", 2.0, 0.5},
        Tuning{"as configured", 1.0, 1.0},
        Tuning{"more eager (FNx0.5, FPx2)", 0.5, 2.0}}) {
    const DualModel tuned = model.with_machine_retuned(t.fn_factor,
                                                       t.fp_factor);
    const ScreeningPerformance tp = tuned.performance();
    sweep.row({t.label, fixed(tp.sensitivity, 3), fixed(tp.specificity, 3),
               report::percent(tp.recall_rate, 2),
               fixed(tuned.expected_cost_per_case(costs), 3)});
  }
  out << render(sweep, markdown);
  return out.str();
}

}  // namespace hmdiv::core
