#include "core/demand_profile.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace hmdiv::core {

namespace {

std::vector<std::string> validate_names(std::vector<std::string> names) {
  if (names.empty()) {
    throw std::invalid_argument("DemandProfile: no classes");
  }
  std::unordered_set<std::string> seen;
  for (const auto& name : names) {
    if (name.empty()) {
      throw std::invalid_argument("DemandProfile: empty class name");
    }
    if (!seen.insert(name).second) {
      throw std::invalid_argument("DemandProfile: duplicate class name '" +
                                  name + "'");
    }
  }
  return names;
}

}  // namespace

DemandProfile::DemandProfile(std::vector<std::string> class_names,
                             std::vector<double> probabilities)
    : names_(validate_names(std::move(class_names))),
      distribution_(std::move(probabilities)) {
  if (names_.size() != distribution_.size()) {
    throw std::invalid_argument(
        "DemandProfile: names/probabilities size mismatch");
  }
}

DemandProfile DemandProfile::from_weights(std::vector<std::string> class_names,
                                          std::vector<double> weights) {
  auto distribution =
      stats::DiscreteDistribution::from_weights(std::move(weights));
  std::vector<double> probabilities(distribution.probabilities().begin(),
                                    distribution.probabilities().end());
  return DemandProfile(std::move(class_names), std::move(probabilities));
}

DemandProfile::DemandProfile(std::vector<std::string> class_names,
                             stats::DiscreteDistribution distribution)
    : names_(validate_names(std::move(class_names))),
      distribution_(std::move(distribution)) {
  if (names_.size() != distribution_.size()) {
    throw std::invalid_argument(
        "DemandProfile: names/probabilities size mismatch");
  }
}

DemandProfile DemandProfile::from_normalised(
    std::vector<std::string> class_names, std::vector<double> probabilities) {
  return DemandProfile(
      std::move(class_names),
      stats::DiscreteDistribution::from_normalised(std::move(probabilities)));
}

const std::string& DemandProfile::class_name(std::size_t x) const {
  if (x >= names_.size()) {
    throw std::invalid_argument("DemandProfile: class index out of range");
  }
  return names_[x];
}

std::size_t DemandProfile::index_of(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) {
    throw std::invalid_argument("DemandProfile: unknown class '" + name + "'");
  }
  return static_cast<std::size_t>(it - names_.begin());
}

double DemandProfile::probability(std::size_t x) const {
  if (x >= distribution_.size()) {
    throw std::invalid_argument("DemandProfile: class index out of range");
  }
  return distribution_[x];
}

double DemandProfile::expectation(std::span<const double> values) const {
  return distribution_.expectation(values);
}

bool DemandProfile::same_classes(const DemandProfile& other) const {
  return names_ == other.names_;
}

DemandProfile DemandProfile::blend(const DemandProfile& other,
                                   double w) const {
  if (!same_classes(other)) {
    throw std::invalid_argument("DemandProfile::blend: class mismatch");
  }
  if (!(w >= 0.0 && w <= 1.0)) {
    throw std::invalid_argument("DemandProfile::blend: w outside [0,1]");
  }
  std::vector<double> mixed(names_.size());
  for (std::size_t x = 0; x < names_.size(); ++x) {
    mixed[x] = (1.0 - w) * probability(x) + w * other.probability(x);
  }
  return DemandProfile(names_, std::move(mixed));
}

}  // namespace hmdiv::core
