#include "core/tradeoff_shard.hpp"

#include <utility>

#include "exec/cluster.hpp"
#include "obs/obs.hpp"

namespace hmdiv::core {

namespace {

using exec::wire::Reader;
using exec::wire::Writer;

// --- DemandProfile wire helpers -------------------------------------------

void encode_profile(Writer& w, const DemandProfile& profile) {
  w.u64(profile.class_count());
  for (const std::string& name : profile.class_names()) w.str(name);
  std::vector<double> probabilities(profile.class_count());
  for (std::size_t x = 0; x < probabilities.size(); ++x) {
    probabilities[x] = profile.probability(x);
  }
  w.doubles(probabilities);
}

DemandProfile decode_profile(Reader& r) {
  const std::uint64_t k = r.u64();
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(k));
  for (std::uint64_t x = 0; x < k; ++x) names.push_back(r.str());
  return DemandProfile::from_normalised(std::move(names), r.doubles());
}

// --- Analyzer round trip --------------------------------------------------
// Every double crosses as its bit pattern and the profiles rebuild through
// from_normalised, so the worker's analyzer — SoA tables included — is
// bit-identical to the parent's.

void encode_analyzer(Writer& w, const TradeoffAnalyzer& analyzer) {
  w.doubles(analyzer.machine().cancer_class_means);
  w.doubles(analyzer.machine().normal_class_means);
  encode_profile(w, analyzer.cancer_profile());
  w.u64(analyzer.fn_response().size());
  for (const HumanFnResponse& r : analyzer.fn_response()) {
    w.f64(r.p_fail_given_machine_prompted);
    w.f64(r.p_fail_given_machine_silent);
  }
  encode_profile(w, analyzer.normal_profile());
  w.u64(analyzer.fp_response().size());
  for (const HumanFpResponse& r : analyzer.fp_response()) {
    w.f64(r.p_recall_given_machine_prompted);
    w.f64(r.p_recall_given_machine_silent);
  }
  w.f64(analyzer.prevalence());
}

TradeoffAnalyzer decode_analyzer(Reader& r) {
  BinormalMachine machine;
  machine.cancer_class_means = r.doubles();
  machine.normal_class_means = r.doubles();
  DemandProfile cancer_profile = decode_profile(r);
  std::vector<HumanFnResponse> fn_response(
      static_cast<std::size_t>(r.u64()));
  for (HumanFnResponse& response : fn_response) {
    response.p_fail_given_machine_prompted = r.f64();
    response.p_fail_given_machine_silent = r.f64();
  }
  DemandProfile normal_profile = decode_profile(r);
  std::vector<HumanFpResponse> fp_response(
      static_cast<std::size_t>(r.u64()));
  for (HumanFpResponse& response : fp_response) {
    response.p_recall_given_machine_prompted = r.f64();
    response.p_recall_given_machine_silent = r.f64();
  }
  const double prevalence = r.f64();
  return TradeoffAnalyzer(std::move(machine), std::move(cancer_profile),
                          std::move(fn_response), std::move(normal_profile),
                          std::move(fp_response), prevalence);
}

// --- Operating-point wire helpers -----------------------------------------

void encode_point(Writer& w, const SystemOperatingPoint& p) {
  w.f64(p.threshold);
  w.f64(p.machine_fn);
  w.f64(p.machine_fp);
  w.f64(p.system_fn);
  w.f64(p.system_fp);
  w.f64(p.sensitivity);
  w.f64(p.specificity);
  w.f64(p.recall_rate);
  w.f64(p.ppv);
}

SystemOperatingPoint decode_point(Reader& r) {
  SystemOperatingPoint p;
  p.threshold = r.f64();
  p.machine_fn = r.f64();
  p.machine_fp = r.f64();
  p.system_fn = r.f64();
  p.system_fp = r.f64();
  p.sensitivity = r.f64();
  p.specificity = r.f64();
  p.recall_rate = r.f64();
  p.ppv = r.f64();
  return p;
}

// --- "core.sweep" ---------------------------------------------------------
// Blob: analyzer, doubles thresholds. Result: u64 n, n × operating point.

std::vector<std::uint8_t> handle_sweep_shard(
    const exec::wire::ShardTask& task) {
  Reader r(task.blob);
  const TradeoffAnalyzer analyzer = decode_analyzer(r);
  const std::vector<double> thresholds = r.doubles();
  if (!r.exhausted()) {
    throw exec::wire::ProtocolError("core.sweep blob: trailing bytes");
  }
  const exec::wire::ShardRange range =
      exec::wire::task_range(thresholds.size(), task);
  std::vector<SystemOperatingPoint> points(
      static_cast<std::size_t>(range.size()));
  analyzer.sweep_into(
      std::span<const double>(thresholds)
          .subspan(static_cast<std::size_t>(range.begin),
                   static_cast<std::size_t>(range.size())),
      points);
  Writer w;
  w.u64(points.size());
  for (const SystemOperatingPoint& p : points) encode_point(w, p);
  return w.take();
}

// --- "core.minimise" ------------------------------------------------------
// Blob: analyzer, f64 cost_fn, f64 cost_fp, f64 lo, f64 hi, u64 steps.
// Result: u8 valid, f64 cost, operating point.

std::vector<std::uint8_t> handle_minimise_shard(
    const exec::wire::ShardTask& task) {
  Reader r(task.blob);
  const TradeoffAnalyzer analyzer = decode_analyzer(r);
  const double cost_fn = r.f64();
  const double cost_fp = r.f64();
  const double lo = r.f64();
  const double hi = r.f64();
  const std::uint64_t steps = r.u64();
  if (!r.exhausted()) {
    throw exec::wire::ProtocolError("core.minimise blob: trailing bytes");
  }
  const exec::wire::ShardRange range = exec::wire::task_range(steps, task);
  const CostedOperatingPoint best = analyzer.minimise_cost_range(
      cost_fn, cost_fp, lo, hi, static_cast<std::size_t>(steps),
      static_cast<std::size_t>(range.begin),
      static_cast<std::size_t>(range.end));
  Writer w;
  w.u8(best.valid ? 1 : 0);
  w.f64(best.cost);
  encode_point(w, best.point);
  return w.take();
}

const exec::ShardWorkloadRegistration kSweepRegistration{
    kSweepShardWorkload, &handle_sweep_shard};
const exec::ShardWorkloadRegistration kMinimiseRegistration{
    kMinimiseShardWorkload, &handle_minimise_shard};

// --- Transport-independent blob builders and merges -----------------------
// Shared by the process-sharded and clustered paths; both transports
// return payloads in ascending shard order, so the merges below make the
// result independent of how the shards ran.

std::vector<std::uint8_t> encode_sweep_blob(
    const TradeoffAnalyzer& analyzer, const std::vector<double>& thresholds) {
  Writer blob;
  encode_analyzer(blob, analyzer);
  blob.doubles(thresholds);
  return blob.take();
}

std::vector<SystemOperatingPoint> merge_sweep_payloads(
    std::size_t expected, const std::vector<std::vector<std::uint8_t>>& payloads) {
  std::vector<SystemOperatingPoint> points;
  points.reserve(expected);
  for (const auto& payload : payloads) {
    Reader r(payload);
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) points.push_back(decode_point(r));
    if (!r.exhausted()) {
      throw exec::wire::ProtocolError("core.sweep result: trailing bytes");
    }
  }
  if (points.size() != expected) {
    throw exec::wire::ProtocolError(
        "core.sweep: merged point count mismatch");
  }
  return points;
}

std::vector<std::uint8_t> encode_minimise_blob(const TradeoffAnalyzer& analyzer,
                                               double cost_fn, double cost_fp,
                                               double lo, double hi,
                                               std::size_t steps) {
  Writer blob;
  encode_analyzer(blob, analyzer);
  blob.f64(cost_fn);
  blob.f64(cost_fp);
  blob.f64(lo);
  blob.f64(hi);
  blob.u64(steps);
  return blob.take();
}

SystemOperatingPoint merge_minimise_payloads(
    const std::vector<std::vector<std::uint8_t>>& payloads) {
  // Ascending shard order = ascending grid order, so the strict-< fold
  // resolves exact cost ties to the earliest grid point — the same rule
  // minimise_cost applies across its chunks.
  CostedOperatingPoint best;
  for (const auto& payload : payloads) {
    Reader r(payload);
    CostedOperatingPoint next;
    next.valid = r.u8() != 0;
    next.cost = r.f64();
    next.point = decode_point(r);
    if (!r.exhausted()) {
      throw exec::wire::ProtocolError(
          "core.minimise result: trailing bytes");
    }
    if (!best.valid || (next.valid && next.cost < best.cost)) {
      best = next;
    }
  }
  return best.point;
}

}  // namespace

std::vector<SystemOperatingPoint> sweep_sharded(
    const TradeoffAnalyzer& analyzer, const std::vector<double>& thresholds,
    const exec::ShardOptions& options) {
  const exec::ShardRunner runner(options);
  if (runner.resolved_shards() == 1 || thresholds.empty()) {
    return analyzer.sweep(thresholds,
                          options.threads ? exec::Config{options.threads}
                                          : exec::default_config());
  }
  HMDIV_OBS_SCOPED_TIMER("core.tradeoff.shard_sweep_ns");
  const std::vector<std::uint8_t> blob = encode_sweep_blob(analyzer, thresholds);
  return merge_sweep_payloads(thresholds.size(),
                              runner.run(kSweepShardWorkload, blob));
}

SystemOperatingPoint minimise_cost_sharded(const TradeoffAnalyzer& analyzer,
                                           double cost_fn, double cost_fp,
                                           double lo, double hi,
                                           std::size_t steps,
                                           const exec::ShardOptions& options) {
  const exec::ShardRunner runner(options);
  if (runner.resolved_shards() == 1) {
    return analyzer.minimise_cost(cost_fn, cost_fp, lo, hi, steps,
                                  options.threads
                                      ? exec::Config{options.threads}
                                      : exec::default_config());
  }
  HMDIV_OBS_SCOPED_TIMER("core.tradeoff.shard_minimise_ns");
  const std::vector<std::uint8_t> blob =
      encode_minimise_blob(analyzer, cost_fn, cost_fp, lo, hi, steps);
  return merge_minimise_payloads(runner.run(kMinimiseShardWorkload, blob));
}

std::vector<SystemOperatingPoint> sweep_clustered(
    const TradeoffAnalyzer& analyzer, const std::vector<double>& thresholds,
    exec::ClusterRunner& cluster) {
  if (thresholds.empty()) return {};
  HMDIV_OBS_SCOPED_TIMER("core.tradeoff.cluster_sweep_ns");
  const std::vector<std::uint8_t> blob = encode_sweep_blob(analyzer, thresholds);
  return merge_sweep_payloads(
      thresholds.size(),
      cluster.run(kSweepShardWorkload, blob, thresholds.size()));
}

SystemOperatingPoint minimise_cost_clustered(const TradeoffAnalyzer& analyzer,
                                             double cost_fn, double cost_fp,
                                             double lo, double hi,
                                             std::size_t steps,
                                             exec::ClusterRunner& cluster) {
  HMDIV_OBS_SCOPED_TIMER("core.tradeoff.cluster_minimise_ns");
  const std::vector<std::uint8_t> blob =
      encode_minimise_blob(analyzer, cost_fn, cost_fp, lo, hi, steps);
  return merge_minimise_payloads(
      cluster.run(kMinimiseShardWorkload, blob, steps));
}

void ensure_tradeoff_shard_registered() {}

}  // namespace hmdiv::core
