#include "core/parallel_model.hpp"

#include <stdexcept>
#include <unordered_set>

#include "stats/summary.hpp"

namespace hmdiv::core {

namespace {

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string("ParallelDetectionModel: ") +
                                what + " outside [0,1]");
  }
}

}  // namespace

ParallelDetectionModel::ParallelDetectionModel(
    std::vector<std::string> class_names,
    std::vector<ParallelClassConditional> parameters)
    : names_(std::move(class_names)), parameters_(std::move(parameters)) {
  if (names_.empty()) {
    throw std::invalid_argument("ParallelDetectionModel: no classes");
  }
  if (names_.size() != parameters_.size()) {
    throw std::invalid_argument(
        "ParallelDetectionModel: names/parameters size mismatch");
  }
  std::unordered_set<std::string> seen;
  for (const auto& name : names_) {
    if (name.empty() || !seen.insert(name).second) {
      throw std::invalid_argument(
          "ParallelDetectionModel: class names must be non-empty and unique");
    }
  }
  for (const auto& c : parameters_) {
    check_probability(c.p_machine_misses, "pMf(x)");
    check_probability(c.p_human_misses, "pHmiss(x)");
    check_probability(c.p_human_misclassifies, "pHmisclass(x)");
  }
}

const ParallelClassConditional& ParallelDetectionModel::parameters(
    std::size_t x) const {
  check_class(x);
  return parameters_[x];
}

void ParallelDetectionModel::check_class(std::size_t x) const {
  if (x >= parameters_.size()) {
    throw std::invalid_argument(
        "ParallelDetectionModel: class index out of range");
  }
}

bool ParallelDetectionModel::compatible_with(
    const DemandProfile& profile) const {
  return profile.class_names() == names_;
}

namespace {

void check_profile(const ParallelDetectionModel& model,
                   const DemandProfile& profile) {
  if (!model.compatible_with(profile)) {
    throw std::invalid_argument(
        "ParallelDetectionModel: profile classes do not match model classes");
  }
}

}  // namespace

double ParallelDetectionModel::system_failure_given_class(
    std::size_t x) const {
  check_class(x);
  return parameters_[x].system_failure();
}

double ParallelDetectionModel::system_failure_probability(
    const DemandProfile& profile) const {
  check_profile(*this, profile);
  double total = 0.0;
  for (std::size_t x = 0; x < class_count(); ++x) {
    total += profile[x] * parameters_[x].system_failure();
  }
  return total;
}

double ParallelDetectionModel::detection_failure_probability(
    const DemandProfile& profile) const {
  check_profile(*this, profile);
  double total = 0.0;
  for (std::size_t x = 0; x < class_count(); ++x) {
    total += profile[x] * parameters_[x].p_machine_misses *
             parameters_[x].p_human_misses;
  }
  return total;
}

double ParallelDetectionModel::detection_covariance(
    const DemandProfile& profile) const {
  check_profile(*this, profile);
  std::vector<double> machine(class_count());
  std::vector<double> human(class_count());
  for (std::size_t x = 0; x < class_count(); ++x) {
    machine[x] = parameters_[x].p_machine_misses;
    human[x] = parameters_[x].p_human_misses;
  }
  return stats::weighted_covariance(machine, human,
                                    profile.distribution().probabilities());
}

double ParallelDetectionModel::system_failure_assuming_independence(
    const DemandProfile& profile) const {
  check_profile(*this, profile);
  double p_mf = 0.0, p_hmiss = 0.0, p_hmisclass = 0.0;
  for (std::size_t x = 0; x < class_count(); ++x) {
    p_mf += profile[x] * parameters_[x].p_machine_misses;
    p_hmiss += profile[x] * parameters_[x].p_human_misses;
    p_hmisclass += profile[x] * parameters_[x].p_human_misclassifies;
  }
  const double detection_failure = p_mf * p_hmiss;
  return detection_failure + p_hmisclass * (1.0 - detection_failure);
}

rbd::Structure ParallelDetectionModel::structure() {
  using rbd::Structure;
  return Structure::series(
      {Structure::any_of(
           {Structure::component(
                static_cast<std::size_t>(ParallelBlock::kMachineDetects)),
            Structure::component(
                static_cast<std::size_t>(ParallelBlock::kHumanDetects))}),
       Structure::component(
           static_cast<std::size_t>(ParallelBlock::kHumanClassifies))});
}

SequentialModel ParallelDetectionModel::to_sequential() const {
  std::vector<ClassConditional> sequential;
  sequential.reserve(parameters_.size());
  for (const auto& c : parameters_) {
    ClassConditional s;
    s.p_machine_fails = c.p_machine_misses;
    // Machine succeeded => features are prompted => detection is certain;
    // only classification can fail.
    s.p_human_fails_given_machine_succeeds = c.p_human_misclassifies;
    // Machine failed => the human must detect unaided, then classify.
    s.p_human_fails_given_machine_fails =
        c.p_human_misses + (1.0 - c.p_human_misses) * c.p_human_misclassifies;
    sequential.push_back(s);
  }
  return SequentialModel(names_, std::move(sequential));
}

}  // namespace hmdiv::core
