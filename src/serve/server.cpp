#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "exec/cluster_protocol.hpp"
#include "exec/shard.hpp"
#include "obs/obs.hpp"

namespace hmdiv::serve {

namespace {

/// poll() with EINTR retry (signals — SIGCHLD from shard workers, the
/// daemon's own SIGTERM — must not surface as transport errors; the
/// shutdown signal is observed via the wake pipe, not via EINTR).
int poll_retry(pollfd* fds, nfds_t count, int timeout_ms) {
  for (;;) {
    const int rc = ::poll(fds, count, timeout_ms);
    if (rc >= 0 || errno != EINTR) return rc;
  }
}

void close_quietly(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

Server::Server(Service& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

Server::~Server() {
  if (running()) shutdown();
}

void Server::start() {
  if (running()) throw std::runtime_error("server already running");
  stopping_.store(false, std::memory_order_release);

  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    close_quietly(wake_pipe_[0]);
    close_quietly(wake_pipe_[1]);
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    const std::string bad = options_.bind_address;
    close_quietly(listen_fd_);
    close_quietly(wake_pipe_[0]);
    close_quietly(wake_pipe_[1]);
    throw std::runtime_error("invalid bind address '" + bad + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, options_.listen_backlog) != 0) {
    const std::string reason = std::strerror(errno);
    close_quietly(listen_fd_);
    close_quietly(wake_pipe_[0]);
    close_quietly(wake_pipe_[1]);
    throw std::runtime_error("bind/listen: " + reason);
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&Server::accept_loop, this);
}

void Server::request_shutdown() noexcept {
  // Only async-signal-safe operations: atomic stores and one write().
  service_.set_draining(true);
  stopping_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t rc = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::shutdown() {
  request_shutdown();
  wait();
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop is gone; no new connections can appear.
  for (;;) {
    std::unique_ptr<Connection> connection;
    {
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      if (connections_.empty()) break;
      connection = std::move(connections_.back());
      connections_.pop_back();
    }
    if (connection->thread.joinable()) connection->thread.join();
  }
  close_quietly(listen_fd_);
  close_quietly(wake_pipe_[0]);
  close_quietly(wake_pipe_[1]);
  running_.store(false, std::memory_order_release);
}

std::size_t Server::reap_connections_locked() {
  std::size_t live = 0;
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++live;
      ++it;
    }
  }
  return live;
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    if (poll_retry(fds, 2, -1) < 0) break;
    if (stopping_.load(std::memory_order_acquire)) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int conn_fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn_fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) {
        continue;
      }
      break;
    }
    const int enable = 1;
    ::setsockopt(conn_fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable);
    timeval send_timeout{};
    send_timeout.tv_sec = options_.send_timeout_seconds;
    ::setsockopt(conn_fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof send_timeout);
    if (options_.send_buffer_bytes > 0) {
      ::setsockopt(conn_fd, SOL_SOCKET, SO_SNDBUF,
                   &options_.send_buffer_bytes,
                   sizeof options_.send_buffer_bytes);
    }

    const std::lock_guard<std::mutex> lock(connections_mutex_);
    if (reap_connections_locked() >= options_.max_connections) {
      HMDIV_OBS_COUNT("serve.conn.busy_rejected", 1);
      static constexpr char kBusy[] =
          "{\"id\":null,\"ok\":false,\"error\":{\"code\":\"busy\","
          "\"message\":\"connection limit reached\"}}\n";
      static_cast<void>(send_all(conn_fd, kBusy, sizeof kBusy - 1));
      int fd = conn_fd;
      close_quietly(fd);
      continue;
    }
    HMDIV_OBS_COUNT("serve.conn.accepted", 1);
    auto connection = std::make_unique<Connection>();
    connection->fd = conn_fd;
    Connection& ref = *connection;
    connections_.push_back(std::move(connection));
    ref.thread = std::thread(&Server::connection_loop, this, std::ref(ref));
  }
}

bool Server::send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t rc =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    // EAGAIN here means the send timeout elapsed with zero progress for a
    // full window: the peer stopped reading. The remainder of the burst
    // cannot be delivered, so the connection closes — but never silently:
    // the counter names the cause. (Partial progress is not a timeout;
    // each short send above restarts the SO_SNDTIMEO window.)
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      HMDIV_OBS_COUNT("serve.conn.send_timeout", 1);
    } else {
      HMDIV_OBS_COUNT("serve.conn.send_error", 1);
    }
    return false;
  }
  return true;
}

bool Server::send_all_vec(int fd, std::vector<iovec>& iov) {
  // sendmsg rather than writev: writev raises SIGPIPE on a dead peer,
  // and MSG_NOSIGNAL is a per-call flag only sendmsg/send accept.
  constexpr std::size_t kIovChunk = 64;  // safely under any IOV_MAX
  std::size_t first = 0;
  while (first < iov.size()) {
    msghdr msg{};
    msg.msg_iov = iov.data() + first;
    msg.msg_iovlen = std::min(iov.size() - first, kIovChunk);
    const ssize_t rc = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (rc <= 0) {
      if (rc < 0 && errno == EINTR) continue;
      // Same contract as send_all: a timed-out sendmsg mid-iovec used to
      // drop the rest of the burst with no trace; the close is now
      // attributed. iov still holds exactly the unsent tail (partial
      // sends advanced it), so a resume-from-offset policy could retry —
      // a peer making zero progress for a full window is dead, though,
      // so closing is the right call.
      if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        HMDIV_OBS_COUNT("serve.conn.send_timeout", 1);
      } else {
        HMDIV_OBS_COUNT("serve.conn.send_error", 1);
      }
      return false;
    }
    // Advance past fully-sent entries; trim a partially-sent one.
    std::size_t advanced = static_cast<std::size_t>(rc);
    while (advanced > 0) {
      iovec& entry = iov[first];
      if (advanced >= entry.iov_len) {
        advanced -= entry.iov_len;
        ++first;
      } else {
        entry.iov_base = static_cast<char*>(entry.iov_base) + advanced;
        entry.iov_len -= advanced;
        advanced = 0;
      }
    }
  }
  return true;
}

void Server::connection_loop(Connection& connection) {
  RequestScratch scratch;
  std::string in;
  std::string out;
  std::size_t consumed = 0;
  bool peer_ok = true;
  bool oversized = false;
  char buffer[64 * 1024];

  // Batched mode: every complete line in a read burst is handed to the
  // Service as one group so compute can coalesce across connections, and
  // the group's responses flush with one vectored send. These vectors are
  // reused across bursts so the steady state allocates nothing.
  const bool batching = service_.batching();
  std::vector<std::string_view> lines;
  std::vector<std::string> responses;
  std::vector<iovec> iov;

  // Answers every complete line currently buffered. Returns false when
  // the connection must close (oversized unfinished line).
  const auto process_buffered = [&]() -> bool {
    if (batching) {
      lines.clear();
      std::size_t scan = consumed;
      for (;;) {
        const std::size_t newline = in.find('\n', scan);
        if (newline == std::string::npos) break;
        std::string_view line(in.data() + scan, newline - scan);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        if (!line.empty()) lines.push_back(line);
        scan = newline + 1;
      }
      if (!lines.empty()) {
        service_.handle_lines(lines, scratch, responses);
        iov.clear();
        for (std::size_t i = 0; i < lines.size(); ++i) {
          if (responses[i].empty()) continue;
          iovec entry{};
          entry.iov_base = responses[i].data();
          entry.iov_len = responses[i].size();
          iov.push_back(entry);
        }
        if (!iov.empty()) peer_ok = send_all_vec(connection.fd, iov);
      }
      consumed = scan;
    } else {
      for (;;) {
        const std::size_t newline = in.find('\n', consumed);
        if (newline == std::string::npos) break;
        std::string_view line(in.data() + consumed, newline - consumed);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        if (!line.empty()) service_.handle_line(line, scratch, out);
        consumed = newline + 1;
      }
    }
    if (consumed == in.size()) {
      in.clear();
      consumed = 0;
    } else if (consumed > 4096) {
      // In-place shift; keeps the buffer from growing without bound
      // while a partial line straddles reads.
      in.erase(0, consumed);
      consumed = 0;
    }
    if (in.size() - consumed > options_.max_line_bytes) {
      oversized = true;
      HMDIV_OBS_COUNT("serve.protocol.oversized", 1);
      static constexpr char kOversized[] =
          "{\"id\":null,\"ok\":false,\"error\":{\"code\":\"oversized\","
          "\"message\":\"request line exceeds the size limit\"}}\n";
      if (batching) {
        if (peer_ok) {
          peer_ok = send_all(connection.fd, kOversized, sizeof kOversized - 1);
        }
      } else {
        out += kOversized;
      }
      return false;
    }
    return true;
  };

  for (;;) {
    pollfd fds[2] = {{connection.fd, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    if (poll_retry(fds, 2, -1) < 0) break;
    if (stopping_.load(std::memory_order_acquire)) break;
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;

    const ssize_t got = ::read(connection.fd, buffer, sizeof buffer);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;  // peer closed or hard error
    in.append(buffer, static_cast<std::size_t>(got));
    const bool resyncable = process_buffered();
    if (!out.empty()) {
      peer_ok = send_all(connection.fd, out.data(), out.size());
      out.clear();
    }
    if (!peer_ok) break;
    if (!resyncable) break;
    if (scratch.shard_upgrade) {
      // The upgrade response is flushed; everything still buffered (and
      // every byte hereafter) is HMDF frames. The shard loop owns the
      // connection until the stream ends, then the socket closes —
      // NDJSON never resumes on an upgraded connection.
      shard_loop(connection,
                 std::string_view(in.data() + consumed, in.size() - consumed));
      break;
    }
  }

  // Drain: requests sent before shutdown still get answers. Bytes the
  // peer wrote before the stop signal may still be in flight or queued in
  // the kernel, so keep reading until the socket goes quiet for one grace
  // interval (bounded by kDrainMaxPolls so a chatty peer cannot stall
  // shutdown indefinitely).
  if (peer_ok && !oversized && stopping_.load(std::memory_order_acquire)) {
    constexpr int kDrainGraceMs = 25;
    constexpr int kDrainMaxPolls = 10;
    for (int polls = 0; polls < kDrainMaxPolls; ++polls) {
      pollfd pfd{connection.fd, POLLIN, 0};
      if (poll_retry(&pfd, 1, kDrainGraceMs) <= 0) break;
      if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) break;
      const ssize_t got = ::read(connection.fd, buffer, sizeof buffer);
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) break;
      in.append(buffer, static_cast<std::size_t>(got));
      if (!process_buffered()) break;
    }
    if (!oversized) process_buffered();
    if (!out.empty()) {
      static_cast<void>(send_all(connection.fd, out.data(), out.size()));
    }
  }
  ::shutdown(connection.fd, SHUT_RDWR);
  close_quietly(connection.fd);
  connection.done.store(true, std::memory_order_release);
}

void Server::shard_loop(Connection& connection, std::string_view initial) {
  HMDIV_OBS_COUNT("serve.shard.upgrades", 1);
  exec::ShardSession session;
  char buffer[64 * 1024];

  // Injected WAN latency (HMDIV_SHARD_FAULT=delay:<shard|*>:<ms>): matching
  // replies route through a delayed-sender thread that ships each one at
  // its due time (enqueue + delay). Delays overlap — reply N+1's clock
  // starts when it is produced, not when reply N finishes its sleep — so a
  // pipelined coordinator sees per-reply RTT, exactly like a long wire,
  // not a serialised stall. Once the fault is configured every reply goes
  // through the queue (unmatched ones with zero delay) so wire order stays
  // FIFO. Due times are monotone, so the front of the deque is always the
  // next reply due.
  const unsigned delay_ms = exec::shard_fault_delay_ms();
  struct DelayedReply {
    std::vector<std::uint8_t> bytes;
    std::chrono::steady_clock::time_point due;
    bool close = false;
  };
  std::mutex delay_mutex;
  std::condition_variable delay_cv;
  std::deque<DelayedReply> delay_queue;
  bool delay_stop = false;   // no more enqueues: drain, then exit
  bool delay_abort = false;  // shutdown: drop the queue and exit now
  std::atomic<bool> delay_dead{false};  // sender hit a send failure / close
  std::thread delay_sender;

  const auto delayed_send_loop = [&] {
    std::unique_lock<std::mutex> lock(delay_mutex);
    for (;;) {
      delay_cv.wait(lock, [&] {
        return delay_abort || delay_stop || !delay_queue.empty();
      });
      if (delay_abort || delay_queue.empty()) return;  // empty ⇒ stop+drained
      const auto due = delay_queue.front().due;
      if (delay_cv.wait_until(lock, due, [&] { return delay_abort; })) {
        return;
      }
      DelayedReply item = std::move(delay_queue.front());
      delay_queue.pop_front();
      lock.unlock();
      const bool sent =
          item.bytes.empty() ||
          send_all(connection.fd,
                   reinterpret_cast<const char*>(item.bytes.data()),
                   item.bytes.size());
      if (!sent || item.close) {
        delay_dead.store(true, std::memory_order_release);
        return;
      }
      lock.lock();
    }
  };

  const auto enqueue_delayed = [&](const exec::ShardSession::Reply& reply) {
    const bool matched = exec::shard_fault_mode(reply.shard_index) ==
                         exec::ShardFaultMode::delay;
    if (matched) HMDIV_OBS_COUNT("serve.shard.fault_delay", 1);
    DelayedReply item;
    item.bytes = reply.bytes;
    item.due = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(matched ? delay_ms : 0);
    item.close = reply.close;
    {
      const std::lock_guard<std::mutex> lock(delay_mutex);
      delay_queue.push_back(std::move(item));
    }
    delay_cv.notify_all();
    if (!delay_sender.joinable()) {
      delay_sender = std::thread(delayed_send_loop);
    }
  };

  // Ships one task's reply frames; false ends the stream. The injectable
  // faults live here — at the transport, where the coordinator's
  // retry-reassign path must absorb them — not in the compute.
  const auto ship = [&](const exec::ShardSession::Reply& reply) -> bool {
    if (delay_ms > 0) {
      enqueue_delayed(reply);
      return !reply.close && !delay_dead.load(std::memory_order_acquire);
    }
    switch (exec::shard_fault_mode(reply.shard_index)) {
      case exec::ShardFaultMode::connreset: {
        // SO_LINGER{on, 0} turns close() into a RST — what a crashed
        // worker host looks like from the coordinator's side.
        HMDIV_OBS_COUNT("serve.shard.fault_connreset", 1);
        linger hard{};
        hard.l_onoff = 1;
        hard.l_linger = 0;
        ::setsockopt(connection.fd, SOL_SOCKET, SO_LINGER, &hard,
                     sizeof hard);
        return false;
      }
      case exec::ShardFaultMode::slowdrain: {
        // Half the reply, then a stall past any sane per-task deadline
        // (sliced so shutdown is not held hostage), then the rest. The
        // coordinator must give up mid-drain and reassign.
        HMDIV_OBS_COUNT("serve.shard.fault_slowdrain", 1);
        const std::size_t half = reply.bytes.size() / 2;
        if (!send_all(connection.fd,
                      reinterpret_cast<const char*>(reply.bytes.data()),
                      half)) {
          return false;
        }
        for (int slice = 0; slice < 30; ++slice) {
          if (stopping_.load(std::memory_order_acquire)) return false;
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        return send_all(connection.fd,
                        reinterpret_cast<const char*>(reply.bytes.data()) +
                            half,
                        reply.bytes.size() - half) &&
               !reply.close;
      }
      default:
        break;
    }
    if (!reply.bytes.empty() &&
        !send_all(connection.fd,
                  reinterpret_cast<const char*>(reply.bytes.data()),
                  reply.bytes.size())) {
      return false;
    }
    return !reply.close;
  };

  const auto consume = [&](const std::uint8_t* data,
                           std::size_t size) -> bool {
    for (const exec::ShardSession::Reply& reply :
         session.consume({data, size})) {
      if (!ship(reply)) return false;
    }
    return true;
  };

  const auto pump = [&] {
    if (!initial.empty() &&
        !consume(reinterpret_cast<const std::uint8_t*>(initial.data()),
                 initial.size())) {
      return;
    }
    for (;;) {
      if (delay_dead.load(std::memory_order_acquire)) return;
      pollfd fds[2] = {{connection.fd, POLLIN, 0},
                       {wake_pipe_[0], POLLIN, 0}};
      if (poll_retry(fds, 2, -1) < 0) return;
      if (stopping_.load(std::memory_order_acquire)) return;
      if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const ssize_t got = ::read(connection.fd, buffer, sizeof buffer);
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) return;  // coordinator closed (normal end of a run)
      if (!consume(reinterpret_cast<const std::uint8_t*>(buffer),
                   static_cast<std::size_t>(got))) {
        return;
      }
    }
  };
  pump();

  // Drain the delayed sender before the socket closes: replies already
  // produced must still reach the wire at their due times (shutdown
  // aborts instead — the queue is dropped and the thread exits at once).
  if (delay_sender.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(delay_mutex);
      delay_stop = true;
      if (stopping_.load(std::memory_order_acquire)) delay_abort = true;
    }
    delay_cv.notify_all();
    delay_sender.join();
  }
}

}  // namespace hmdiv::serve
