// Admission control for the serve daemon: a bounded concurrency gate that
// sheds load instead of queueing it unboundedly.
//
// Tail latency in a saturated server is set by queue length, not by
// compute speed — an unbounded queue turns a burst into minutes of
// stale-deadline work. The gate therefore admits up to `max_concurrent`
// requests at once, lets at most `max_queue` more wait, and refuses
// everything beyond that *immediately* with a structured "shed" outcome
// the protocol layer turns into a 429-style error. Waiters are bounded by
// their request deadline: a request whose deadline passes while queued is
// failed as deadline_exceeded without ever running.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace hmdiv::serve {

class AdmissionGate {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    /// Requests allowed to execute simultaneously (>= 1).
    std::size_t max_concurrent = 1;
    /// Requests allowed to wait for a slot; one more is shed.
    std::size_t max_queue = 64;
  };

  enum class Outcome {
    kAdmitted,          ///< slot acquired; caller must release()
    kShedQueueFull,     ///< refused immediately: queue at capacity
    kDeadlineExceeded,  ///< queued, but the deadline passed before a slot
  };

  explicit AdmissionGate(Options options);

  /// Tries to acquire an execution slot, waiting (bounded by `deadline`)
  /// in FIFO-ish order behind up to max_queue other waiters. Only
  /// kAdmitted transfers ownership of a slot.
  [[nodiscard]] Outcome acquire(Clock::time_point deadline);

  /// Returns a slot acquired by a successful acquire().
  void release() noexcept;

  [[nodiscard]] std::size_t in_flight() const;
  [[nodiscard]] std::size_t queued() const;
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable slot_freed_;
  std::size_t in_flight_ = 0;
  std::size_t queued_ = 0;
};

/// RAII slot: releases on destruction iff the gate admitted the request.
class AdmissionTicket {
 public:
  AdmissionTicket(AdmissionGate& gate, AdmissionGate::Clock::time_point deadline)
      : gate_(&gate), outcome_(gate.acquire(deadline)) {}
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;
  ~AdmissionTicket() {
    if (outcome_ == AdmissionGate::Outcome::kAdmitted) gate_->release();
  }

  [[nodiscard]] AdmissionGate::Outcome outcome() const { return outcome_; }
  [[nodiscard]] bool admitted() const {
    return outcome_ == AdmissionGate::Outcome::kAdmitted;
  }

 private:
  AdmissionGate* gate_;
  AdmissionGate::Outcome outcome_;
};

}  // namespace hmdiv::serve
