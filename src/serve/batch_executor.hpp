// Cross-request micro-batching for the serve layer (DESIGN.md §14).
//
// Connection threads parse and validate, then stop: submit() enqueues one
// Job per request into a per-kind coalescing queue, and a small worker
// pool drains each queue in batches of up to `batch_max` jobs. A worker
// whose queue holds fewer than batch_max jobs waits up to `batch_wait_us`
// for more requests to coalesce — but never past the earliest deadline
// among that kind's queued jobs, so deadline_exceeded stays a per-request
// property rather than a batching casualty. The submitting thread parks
// on a Group until every job it submitted has completed, which preserves
// per-connection response order for pipelined clients.
//
// The executor knows nothing about endpoints: the owner supplies the
// compute callback and interprets `kind` (the Service uses its endpoint
// index). Jobs carry pointers into the submitting thread's workspace (the
// parsed JSON nodes); that storage stays valid because the submitter
// blocks in Group::wait() with its Workspace::Scope open until the worker
// is done, and the queue mutex orders the handoff (see the cross-thread
// note in exec/workspace.hpp).
//
// Obs (runtime-gated): serve.batch.size / serve.batch.wait_ns /
// serve.batch.occupancy histograms and the serve.batch.batches counter.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "serve/json.hpp"

namespace hmdiv::serve {

class BatchExecutor {
 public:
  using Clock = std::chrono::steady_clock;

  /// Completion latch for one submitter's group of jobs. A connection
  /// thread submits every parsed line of a read burst against one Group,
  /// then wait()s; non-batchable requests use wait() mid-group as an
  /// in-order barrier. Reusable: add/complete cycles may repeat.
  class Group {
   public:
    Group() = default;
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;
    /// A Group destroyed with jobs pending would leave workers writing
    /// through dangling out-pointers; the destructor waits.
    ~Group() { wait(); }

    /// Blocks until every job added so far has completed.
    void wait() {
      std::unique_lock<std::mutex> lock(mutex_);
      done_.wait(lock, [&] { return pending_ == 0; });
    }

   private:
    friend class BatchExecutor;
    void add_one() {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++pending_;
    }
    /// Notifies while holding the mutex: the submitter destroys the Group
    /// as soon as wait() observes pending_ == 0, so an unlocked notify
    /// could broadcast on an already-destroyed condition variable.
    void complete_one() {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_.notify_all();
    }

    std::mutex mutex_;
    std::condition_variable done_;
    std::size_t pending_ = 0;
  };

  /// One enqueued request. All pointers are borrowed from the submitter,
  /// which must keep them alive until its Group completes the job.
  struct Job {
    std::size_t kind = 0;
    /// Parsed request id / params nodes (may be null), workspace-owned by
    /// the submitting thread.
    const JsonValue* id = nullptr;
    const JsonValue* params = nullptr;
    Clock::time_point t0{};
    Clock::time_point deadline{};
    /// Set by submit(); measures coalescing wait for serve.batch.wait_ns.
    Clock::time_point enqueued{};
    /// Response sink; the compute callback appends exactly one NDJSON
    /// line (result or error) here.
    std::string* out = nullptr;
    /// Completion latch; may be null for fire-and-forget tests.
    Group* group = nullptr;
  };

  struct Options {
    /// Number of distinct job kinds (queues).
    std::size_t kinds = 1;
    /// Largest batch handed to the compute callback.
    std::size_t batch_max = 8;
    /// How long a worker lets a partial batch coalesce before computing
    /// it anyway. Bounded by the earliest deadline in the queue.
    std::uint64_t batch_wait_us = 100;
    /// Worker threads draining the queues.
    unsigned workers = 1;
    /// Upper bound on jobs queued across all kinds; submit() refuses
    /// beyond it (the caller sheds). Replaces the AdmissionGate bound for
    /// batched endpoints.
    std::size_t max_queued = 64;
  };

  /// Called on a worker thread with every job of one drained batch (all
  /// of the same kind). Must write each job's response and must not
  /// throw; per-job errors are rendered as error lines by the callback.
  using BatchFn = std::function<void(std::size_t kind, std::span<Job> jobs)>;

  BatchExecutor(Options options, BatchFn compute);
  ~BatchExecutor();
  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Enqueues one job. Returns false (without touching job.group) when
  /// the executor is stopping or max_queued is reached.
  bool submit(const Job& job);

  /// Stops accepting work, drains everything already queued (without
  /// further coalescing waits), and joins the workers. Idempotent.
  void stop();

  [[nodiscard]] const Options& options() const { return options_; }
  /// Jobs currently queued (not yet handed to a compute callback).
  [[nodiscard]] std::size_t queued() const;

 private:
  /// Per-kind FIFO with an explicit head index: pops advance `head`, and
  /// the vector compacts only when the dead prefix grows past a bound, so
  /// steady state never allocates once capacity is warm.
  struct KindQueue {
    std::vector<Job> jobs;
    std::size_t head = 0;
    [[nodiscard]] std::size_t size() const { return jobs.size() - head; }
  };

  void worker_loop();

  const Options options_;
  const BatchFn compute_;
  obs::Histogram* batch_size_ = nullptr;
  obs::Histogram* batch_wait_ns_ = nullptr;
  obs::Histogram* batch_occupancy_ = nullptr;
  obs::Counter* batches_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::vector<KindQueue> queues_;
  std::size_t total_queued_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hmdiv::serve
