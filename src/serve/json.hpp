// Workspace-backed JSON for the serve layer's newline-delimited protocol.
//
// Every request is one JSON line; the daemon parses thousands per second,
// so the parser is built for the arena discipline of DESIGN.md §10 rather
// than for generality: all nodes, member tables and decoded strings are
// bump-allocated from the caller's exec::Workspace and become invalid when
// the enclosing Workspace::Scope closes. JsonValue is trivially copyable
// (string payloads are views into the input line or into the arena), so
// after the first request at a given shape the parse performs zero heap
// allocations — the property the serve hot path is tested for.
//
// Supported: RFC 8259 minus surrogate-pair decoding (\uXXXX escapes decode
// basic-plane code points to UTF-8; lone surrogates are rejected). Numbers
// are doubles via std::from_chars. Depth is capped (kMaxDepth) so hostile
// nesting cannot blow the recursion stack.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "exec/workspace.hpp"

namespace hmdiv::serve {

enum class JsonType : unsigned char {
  kNull,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject,
};

struct JsonMember;

/// One parsed JSON node. Trivially copyable; every pointer refers to
/// workspace storage (or to the input text for escape-free strings) owned
/// by the caller's scope.
struct JsonValue {
  JsonType type = JsonType::kNull;
  bool boolean = false;
  double number = 0.0;
  const char* text = nullptr;
  std::size_t text_size = 0;
  const JsonValue* items = nullptr;
  std::size_t item_count = 0;
  const JsonMember* members = nullptr;
  std::size_t member_count = 0;

  [[nodiscard]] bool is_null() const { return type == JsonType::kNull; }
  [[nodiscard]] bool is_bool() const { return type == JsonType::kBool; }
  [[nodiscard]] bool is_number() const { return type == JsonType::kNumber; }
  [[nodiscard]] bool is_string() const { return type == JsonType::kString; }
  [[nodiscard]] bool is_array() const { return type == JsonType::kArray; }
  [[nodiscard]] bool is_object() const { return type == JsonType::kObject; }

  [[nodiscard]] std::string_view string() const { return {text, text_size}; }

  /// Member lookup by key; nullptr when absent or not an object. First
  /// match wins on (malformed) duplicate keys.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// One object member; key is a workspace/input view like string payloads.
struct JsonMember {
  const char* key = nullptr;
  std::size_t key_size = 0;
  JsonValue value;

  [[nodiscard]] std::string_view name() const { return {key, key_size}; }
};

/// Reusable parser: the per-container build stacks are members so their
/// capacity survives across requests on the same connection.
class JsonParser {
 public:
  /// Nesting cap for arrays/objects; deeper input is a parse error.
  static constexpr std::size_t kMaxDepth = 64;

  struct Result {
    /// Root node, or nullptr on error. Lives in `workspace`.
    const JsonValue* value = nullptr;
    /// Static description of the failure; nullptr on success.
    const char* error = nullptr;
    /// Byte offset of the failure in the input.
    std::size_t error_at = 0;
  };

  /// Parses `text` (one complete JSON document; trailing whitespace is
  /// allowed, trailing garbage is not). All output storage comes from
  /// `workspace` and is only valid until the caller's scope closes.
  [[nodiscard]] Result parse(std::string_view text,
                             exec::Workspace& workspace);

 private:
  // Scratch for collecting container children before the sizes are known;
  // finished containers are copied into right-sized workspace spans.
  std::vector<JsonValue> values_;
  std::vector<JsonMember> members_;
};

// --- Writer helpers ----------------------------------------------------
// Responses are appended to a reused std::string whose capacity survives
// across requests, so these never allocate in steady state.

/// Appends `s` JSON-escaped, without surrounding quotes.
void append_json_escaped(std::string& out, std::string_view s);

/// Appends a double in round-trippable shortest form (std::to_chars).
/// NaN / infinities — unrepresentable in JSON — are appended as null.
void append_json_number(std::string& out, double value);

/// Appends an unsigned integer in decimal.
void append_json_uint(std::string& out, unsigned long long value);

}  // namespace hmdiv::serve
