// TCP transport for the serve daemon: accept loop, one thread per
// connection, newline-delimited request framing, and a drain-on-shutdown
// contract.
//
// Shutdown discipline (tested in tests/test_serve.cpp):
//  * request_shutdown() is async-signal-safe (an atomic store plus one
//    write() to a self-pipe) so SIGTERM/SIGINT handlers can call it.
//  * Every connection thread polls {conn_fd, wake_pipe}; on wake-up it
//    stops reading, but first answers every complete request line already
//    buffered — no request that reached the server is dropped silently —
//    flushes, and closes its socket.
//  * wait() joins the accept thread and every connection thread and closes
//    every descriptor the server opened; an fd-count assertion in the
//    tests pins the no-leak property.
//
// Framing limits: a line longer than max_line_bytes cannot be resynced
// (the frame boundary is lost), so the connection gets one structured
// error response and is closed. Writes use send(MSG_NOSIGNAL) with a send
// timeout so a stuck peer cannot wedge shutdown.
//
// Batched mode: when the Service runs a BatchExecutor
// (service.batching()), each read burst's complete lines go through
// Service::handle_lines — compute coalesces across connections — and the
// burst's responses flush with one vectored sendmsg per group instead of
// one send per response. Per-connection response order is unchanged.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/service.hpp"

struct iovec;

namespace hmdiv::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; the bound port is readable via port() after start().
  std::uint16_t port = 0;
  /// Connections beyond this are answered with one "busy" error line and
  /// closed (connection-level shedding, ahead of request admission).
  std::size_t max_connections = 64;
  std::size_t max_line_bytes = 1 << 20;
  int listen_backlog = 128;
  /// Bound on one blocking send; a peer that stops reading for longer is
  /// treated as gone (counted as serve.conn.send_timeout and closed).
  int send_timeout_seconds = 10;
  /// SO_SNDBUF for accepted connections; 0 leaves the kernel default.
  /// Tests shrink it so the send-timeout path triggers with small bursts.
  int send_buffer_bytes = 0;
};

class Server {
 public:
  Server(Service& service, ServerOptions options = {});
  ~Server();

  /// Binds, listens and starts the accept thread. Throws
  /// std::runtime_error on socket errors (address in use, ...).
  void start();

  /// The bound TCP port (resolves ephemeral binds).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Begins shutdown; safe to call from a signal handler.
  void request_shutdown() noexcept;

  /// Blocks until the accept loop and every connection have drained and
  /// every server-owned descriptor is closed.
  void wait();

  /// request_shutdown() + wait().
  void shutdown();

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void connection_loop(Connection& connection);
  /// Binary shard mode (DESIGN.md §15): entered when a burst's dispatch
  /// set RequestScratch::shard_upgrade. `initial` is whatever the peer
  /// pipelined behind the upgrade line — already frame bytes. Returns
  /// when the stream ends (EOF, send failure, protocol error, shutdown);
  /// the caller closes the socket.
  void shard_loop(Connection& connection, std::string_view initial);
  /// Joins finished connection threads; returns the number still live.
  std::size_t reap_connections_locked();
  [[nodiscard]] bool send_all(int fd, const char* data, std::size_t size);
  /// One-syscall group flush for batched mode: sendmsg with MSG_NOSIGNAL
  /// over the iovec array (chunked under IOV_MAX), advancing through
  /// partial sends. Consumes/modifies `iov`.
  [[nodiscard]] static bool send_all_vec(int fd, std::vector<struct iovec>& iov);

  Service& service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace hmdiv::serve
