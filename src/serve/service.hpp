// The serve layer's request dispatcher: protocol parsing, model state,
// shared result caches and per-endpoint observability, independent of any
// transport. server.hpp moves bytes; Service turns one request line into
// one response line.
//
// Protocol (newline-delimited JSON, one object per line):
//   {"op":"whatif","id":7,"deadline_ms":250,"params":{...}}
// ->
//   {"id":7,"ok":true,"result":{...}}
//   {"id":7,"ok":false,"error":{"code":"shed","message":"..."}}
//
// Error codes: bad_request, unknown_op, shed, deadline_exceeded, internal.
//
// Request lifecycle (DESIGN.md §13):
//  * Each handle_line() opens a Workspace::Scope on the calling thread's
//    exec workspace; JSON nodes and all per-request scratch live there and
//    are rewound on return. Together with the reused RequestScratch
//    buffers, hot endpoints (whatif/compare on cache hits) perform zero
//    steady-state heap allocations.
//  * Compute endpoints pass through the AdmissionGate (bounded queue +
//    deadline wait); health/metrics/reload bypass it so the daemon stays
//    observable under overload.
//  * Model state (model, profiles, derived engines) lives behind a
//    shared_mutex with an epoch counter. `reload` swaps in a new bundle
//    under the exclusive lock, bumps the epoch and clears every result
//    cache — cached values are keyed by request inputs only and would
//    otherwise leak answers computed against the previous model.
//
// Metrics: serve.<ep>.requests / .errors / .shed counters and a
// serve.<ep>.ns histogram per endpoint, plus serve.<ep>.cache_hit/_miss
// for the cached endpoints; all registered once at construction and
// gated on obs::enabled().
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/demand_profile.hpp"
#include "core/eval_cache.hpp"
#include "core/extrapolation.hpp"
#include "core/sequential_model.hpp"
#include "core/tradeoff.hpp"
#include "core/uncertainty.hpp"
#include "obs/obs.hpp"
#include "serve/admission.hpp"
#include "serve/json.hpp"

namespace hmdiv::serve {

struct ServiceOptions {
  /// Shared result-cache capacities (entries; 0 disables a cache).
  std::size_t whatif_cache_capacity = 4096;
  std::size_t sweep_cache_capacity = 64;
  std::size_t minimise_cache_capacity = 128;
  std::size_t uq_cache_capacity = 128;
  /// Deadline applied when a request carries none, and the cap on the
  /// deadline a request may ask for.
  std::uint64_t default_deadline_ms = 1000;
  std::uint64_t max_deadline_ms = 60'000;
  /// Thread budget for one request's compute (requests are already
  /// parallel across connections; 1 = serial per request).
  unsigned compute_threads = 1;
  /// Admission control; max_concurrent 0 = hardware concurrency.
  std::size_t max_concurrent = 0;
  std::size_t max_queue = 64;
  /// Input bounds on expensive endpoints.
  std::size_t max_sweep_steps = 100'000;
  std::size_t max_uq_draws = 100'000;
  std::size_t max_compare_scenarios = 32;
  /// Synthetic per-class trial size used to derive posterior counts for
  /// the uq endpoint when the request supplies none.
  std::uint64_t uq_cases_per_class = 2000;
};

/// Per-connection reusable parse/compute scratch. Buffer capacities
/// survive across requests, which is what keeps the hot path allocation
/// free after the first request of each shape.
struct RequestScratch {
  JsonParser parser;
  std::vector<double> key;
  std::vector<std::pair<std::size_t, double>> class_factors;
};

class Service {
 public:
  using Clock = std::chrono::steady_clock;

  /// Builds the daemon state from a trial-estimated model and the trial /
  /// field demand profiles (the Section-5 inputs). Throws
  /// std::invalid_argument when the profiles do not match the model.
  Service(core::SequentialModel model, core::DemandProfile trial,
          core::DemandProfile field, ServiceOptions options = {});
  ~Service();

  /// Handles one request line (no trailing newline required) and appends
  /// exactly one newline-terminated response line to `out`.
  void handle_line(std::string_view line, RequestScratch& scratch,
                   std::string& out);

  /// Atomically replaces the model bundle, clears every result cache and
  /// bumps the epoch. Throws std::invalid_argument on incompatible inputs
  /// (the current state is untouched).
  void reload(core::SequentialModel model, core::DemandProfile trial,
              core::DemandProfile field);

  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Flagged by the server during shutdown; `health` reports it so load
  /// balancers can drain before the listener disappears.
  void set_draining(bool draining) noexcept {
    draining_.store(draining, std::memory_order_release);
  }
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  [[nodiscard]] AdmissionGate& gate() { return gate_; }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  enum Endpoint : std::size_t {
    kAnalyze = 0,
    kWhatif,
    kSweep,
    kMinimise,
    kUq,
    kCompare,
    kHealth,
    kMetrics,
    kReload,
    kEndpointCount,
  };

  /// Everything derived from one (model, trial, field) triple; rebuilt
  /// whole on reload so readers under the shared lock never see a
  /// half-updated bundle.
  struct Loaded;

  struct EndpointMetrics {
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* shed = nullptr;
    obs::Histogram* ns = nullptr;
    obs::Counter* cache_hit = nullptr;   // cached endpoints only
    obs::Counter* cache_miss = nullptr;  // cached endpoints only
  };

  /// Fixed-size memoised values — EvalCache copies them by value, so they
  /// must stay trivially copyable (no per-hit allocation).
  struct WhatifNumbers {
    double system_failure = 0.0;
    double machine_failure = 0.0;
    double failure_floor = 0.0;
    double floor = 0.0;
    double mean_field = 0.0;
    double covariance = 0.0;
  };
  static constexpr std::size_t kMaxSweepPoints = 33;
  struct SweepSummary {
    std::uint32_t point_count = 0;
    std::array<core::SystemOperatingPoint, kMaxSweepPoints> points{};
  };
  struct MinimiseNumbers {
    core::SystemOperatingPoint best;
    double cost = 0.0;
  };
  struct UqNumbers {
    double mean = 0.0;
    double lower = 0.0;
    double upper = 0.0;
    double stddev = 0.0;
  };

  [[nodiscard]] static std::unique_ptr<Loaded> build_loaded(
      core::SequentialModel model, core::DemandProfile trial,
      core::DemandProfile field, const ServiceOptions& options);

  void clear_caches();

  // Endpoint handlers append the `"result":{...}` payload body.
  void handle_analyze(const Loaded& state, const JsonValue* params,
                      std::string& out) const;
  void handle_whatif(const Loaded& state, const JsonValue* params,
                     RequestScratch& scratch, std::string& out) const;
  void handle_sweep(const Loaded& state, const JsonValue* params,
                    RequestScratch& scratch, Clock::time_point deadline,
                    std::string& out) const;
  void handle_minimise(const Loaded& state, const JsonValue* params,
                       RequestScratch& scratch, Clock::time_point deadline,
                       std::string& out) const;
  void handle_uq(const Loaded& state, const JsonValue* params,
                 RequestScratch& scratch, Clock::time_point deadline,
                 std::string& out) const;
  void handle_compare(const Loaded& state, const JsonValue* params,
                      RequestScratch& scratch, std::string& out) const;
  void handle_health(const Loaded& state, std::string& out) const;
  void handle_metrics(std::string& out) const;
  void handle_reload(const JsonValue* params, std::string& out);

  /// Shared whatif machinery (whatif + compare): resolves a scenario spec,
  /// probes the cache, computes on miss. `cached` reports the hit/miss.
  [[nodiscard]] WhatifNumbers compute_whatif(const Loaded& state,
                                             const JsonValue& spec,
                                             RequestScratch& scratch,
                                             bool& cached) const;

  ServiceOptions options_;
  AdmissionGate gate_;
  Clock::time_point started_;

  mutable std::shared_mutex state_mutex_;
  std::unique_ptr<Loaded> state_;  // guarded by state_mutex_
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<bool> draining_{false};

  mutable core::EvalCache<WhatifNumbers> whatif_cache_;
  mutable core::EvalCache<SweepSummary> sweep_cache_;
  mutable core::EvalCache<MinimiseNumbers> minimise_cache_;
  mutable core::EvalCache<UqNumbers> uq_cache_;

  std::array<EndpointMetrics, kEndpointCount> metrics_{};
};

}  // namespace hmdiv::serve
