// The serve layer's request dispatcher: protocol parsing, model state,
// shared result caches and per-endpoint observability, independent of any
// transport. server.hpp moves bytes; Service turns one request line into
// one response line.
//
// Protocol (newline-delimited JSON, one object per line):
//   {"op":"whatif","id":7,"deadline_ms":250,"params":{...}}
// ->
//   {"id":7,"ok":true,"result":{...}}
//   {"id":7,"ok":false,"error":{"code":"shed","message":"..."}}
//
// Error codes: bad_request, unknown_op, shed, deadline_exceeded, internal.
//
// Request lifecycle (DESIGN.md §13):
//  * Each handle_line() opens a Workspace::Scope on the calling thread's
//    exec workspace; JSON nodes and all per-request scratch live there and
//    are rewound on return. Together with the reused RequestScratch
//    buffers, hot endpoints (whatif/compare on cache hits) perform zero
//    steady-state heap allocations.
//  * Compute endpoints pass through the AdmissionGate (bounded queue +
//    deadline wait); health/metrics/reload bypass it so the daemon stays
//    observable under overload.
//  * Model state (model, profiles, derived engines) lives behind a
//    shared_mutex with an epoch counter. `reload` swaps in a new bundle
//    under the exclusive lock, bumps the epoch and clears every result
//    cache — cached values are keyed by request inputs only and would
//    otherwise leak answers computed against the previous model.
//
// Metrics: serve.<ep>.requests / .errors / .shed counters and a
// serve.<ep>.ns histogram per endpoint, plus serve.<ep>.cache_hit/_miss
// for the cached endpoints; all registered once at construction and
// gated on obs::enabled().
//
// Batched mode (DESIGN.md §14): with batch_max > 1 a BatchExecutor owns
// the compute — handle_lines() parses and validates on the connection
// thread, enqueues batchable requests per endpoint, and a worker pool
// coalesces them onto the batched kernels. batch_max <= 1 keeps the
// PR 7 inline path; every coalesced response is byte-identical to its
// uncoalesced form (test-gated).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/demand_profile.hpp"
#include "core/eval_cache.hpp"
#include "core/extrapolation.hpp"
#include "core/sequential_model.hpp"
#include "core/tradeoff.hpp"
#include "core/uncertainty.hpp"
#include "obs/obs.hpp"
#include "serve/admission.hpp"
#include "serve/batch_executor.hpp"
#include "serve/json.hpp"

namespace hmdiv::serve {

struct ServiceOptions {
  /// Shared result-cache capacities (entries; 0 disables a cache).
  std::size_t whatif_cache_capacity = 4096;
  std::size_t sweep_cache_capacity = 64;
  std::size_t minimise_cache_capacity = 128;
  std::size_t uq_cache_capacity = 128;
  /// Deadline applied when a request carries none, and the cap on the
  /// deadline a request may ask for.
  std::uint64_t default_deadline_ms = 1000;
  std::uint64_t max_deadline_ms = 60'000;
  /// Thread budget for one request's compute (requests are already
  /// parallel across connections; 1 = serial per request).
  unsigned compute_threads = 1;
  /// Admission control; max_concurrent 0 = hardware concurrency.
  std::size_t max_concurrent = 0;
  std::size_t max_queue = 64;
  /// Input bounds on expensive endpoints.
  std::size_t max_sweep_steps = 100'000;
  std::size_t max_uq_draws = 100'000;
  std::size_t max_compare_scenarios = 32;
  /// Synthetic per-class trial size used to derive posterior counts for
  /// the uq endpoint when the request supplies none.
  std::uint64_t uq_cases_per_class = 2000;
  /// Cross-request coalescing (DESIGN.md §14). batch_max <= 1 disables
  /// the BatchExecutor entirely — the exact PR 7 inline path. With
  /// batch_max > 1, up to batch_max same-endpoint requests are computed
  /// as one batch; a partial batch waits at most batch_wait_us (bounded
  /// by the earliest queued deadline) before computing anyway.
  std::size_t batch_max = 1;
  std::uint64_t batch_wait_us = 100;
  /// Compute worker threads draining the batch queues.
  unsigned batch_workers = 1;
};

/// Per-connection reusable parse/compute scratch. Buffer capacities
/// survive across requests, which is what keeps the hot path allocation
/// free after the first request of each shape.
struct RequestScratch {
  JsonParser parser;
  std::vector<double> key;
  std::vector<std::pair<std::size_t, double>> class_factors;
  /// Set by the `shard` endpoint: after this burst's responses flush, the
  /// connection leaves NDJSON and becomes a binary HMDF frame stream
  /// (DESIGN.md §15). Only the socket server acts on it; direct
  /// handle_line callers can ignore it.
  bool shard_upgrade = false;
};

class Service {
 public:
  using Clock = std::chrono::steady_clock;

  /// Builds the daemon state from a trial-estimated model and the trial /
  /// field demand profiles (the Section-5 inputs). Throws
  /// std::invalid_argument when the profiles do not match the model.
  Service(core::SequentialModel model, core::DemandProfile trial,
          core::DemandProfile field, ServiceOptions options = {});
  ~Service();

  /// Handles one request line (no trailing newline required) and appends
  /// exactly one newline-terminated response line to `out`.
  void handle_line(std::string_view line, RequestScratch& scratch,
                   std::string& out);

  /// Handles a burst of pipelined request lines. responses is resized to
  /// at least lines.size(); responses[i] is overwritten with exactly one
  /// newline-terminated response line for lines[i] — request order is
  /// preserved regardless of how compute is scheduled. In batched mode
  /// batchable requests are enqueued on the BatchExecutor and coalesced
  /// across connections; non-batchable requests (health/metrics/reload)
  /// act as in-order barriers. With batching off this is exactly a
  /// handle_line loop.
  void handle_lines(std::span<const std::string_view> lines,
                    RequestScratch& scratch,
                    std::vector<std::string>& responses);

  /// True when a BatchExecutor is running (options.batch_max > 1).
  [[nodiscard]] bool batching() const { return executor_ != nullptr; }

  /// Atomically replaces the model bundle, clears every result cache and
  /// bumps the epoch. Throws std::invalid_argument on incompatible inputs
  /// (the current state is untouched).
  void reload(core::SequentialModel model, core::DemandProfile trial,
              core::DemandProfile field);

  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Flagged by the server during shutdown; `health` reports it so load
  /// balancers can drain before the listener disappears.
  void set_draining(bool draining) noexcept {
    draining_.store(draining, std::memory_order_release);
  }
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  [[nodiscard]] AdmissionGate& gate() { return gate_; }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  enum Endpoint : std::size_t {
    kAnalyze = 0,
    kWhatif,
    kSweep,
    kMinimise,
    kUq,
    kCompare,
    kHealth,
    kMetrics,
    kReload,
    kShard,
    kEndpointCount,
  };

  /// Everything derived from one (model, trial, field) triple; rebuilt
  /// whole on reload so readers under the shared lock never see a
  /// half-updated bundle.
  struct Loaded;

  struct EndpointMetrics {
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* shed = nullptr;
    obs::Histogram* ns = nullptr;
    obs::Counter* cache_hit = nullptr;   // cached endpoints only
    obs::Counter* cache_miss = nullptr;  // cached endpoints only
  };

  /// Fixed-size memoised values — EvalCache copies them by value, so they
  /// must stay trivially copyable (no per-hit allocation).
  struct WhatifNumbers {
    double system_failure = 0.0;
    double machine_failure = 0.0;
    double failure_floor = 0.0;
    double floor = 0.0;
    double mean_field = 0.0;
    double covariance = 0.0;
  };
  static constexpr std::size_t kMaxSweepPoints = 33;
  struct SweepSummary {
    std::uint32_t point_count = 0;
    std::array<core::SystemOperatingPoint, kMaxSweepPoints> points{};
  };
  struct MinimiseNumbers {
    core::SystemOperatingPoint best;
    double cost = 0.0;
  };
  struct UqNumbers {
    double mean = 0.0;
    double lower = 0.0;
    double upper = 0.0;
    double stddev = 0.0;
  };

  /// One parsed and routed request frame. root/id/params point into the
  /// calling thread's workspace and stay valid for the enclosing
  /// Workspace::Scope's lifetime (batched jobs rely on the submitter
  /// keeping that scope open until its Group completes).
  struct Parsed {
    const JsonValue* root = nullptr;
    const JsonValue* id = nullptr;
    const JsonValue* params = nullptr;
    std::size_t ep = kEndpointCount;
    Clock::time_point t0{};
    Clock::time_point deadline{};
  };

  /// Uniform handler shape: append the `"result":{...}` payload body for
  /// one request. `state` is null only for endpoints with needs_state
  /// false (metrics/reload manage their own locking).
  using Handler = void (Service::*)(const Loaded* state,
                                    const Parsed& request,
                                    RequestScratch& scratch, std::string& out);

  /// One row of the endpoint registry: the single source of truth shared
  /// by handle_line, handle_lines, the BatchExecutor callback, unknown_op
  /// checks and metrics registration.
  struct EndpointEntry {
    std::string_view name;
    Handler handler = nullptr;
    /// Admission-controlled compute (vs health/metrics/reload).
    bool compute = false;
    /// May be coalesced by the BatchExecutor.
    bool batchable = false;
    /// Runs under the shared state lock with the Loaded bundle.
    bool needs_state = false;
    /// Registers serve.<ep>.cache_hit/_miss counters.
    bool cached = false;
  };
  [[nodiscard]] static const std::array<EndpointEntry, kEndpointCount>&
  endpoint_table();

  /// Scenario transforms resolved from a whatif params object (the
  /// per-class factors land in scratch.class_factors, the cache key in
  /// scratch.key).
  struct WhatifRequest {
    double reader_factor = 1.0;
    double machine_factor = 1.0;
    bool use_field = false;
  };

  [[nodiscard]] static std::unique_ptr<Loaded> build_loaded(
      core::SequentialModel model, core::DemandProfile trial,
      core::DemandProfile field, const ServiceOptions& options);

  void clear_caches();

  /// Parses one line into `request` (t0, root, id, endpoint). Returns
  /// false after writing a protocol error line (bad JSON / missing op /
  /// unknown_op) — those never reach validation or metrics beyond the
  /// requests counter.
  bool parse_frame(std::string_view line, RequestScratch& scratch,
                   std::string& out, Parsed& request);
  /// deadline_ms / params shape checks; fills request.deadline / .params.
  /// Throws RequestError on violations.
  void validate_request(Parsed& request) const;
  /// The PR 7 execution order for one validated request: admission for
  /// compute endpoints, then the handler under the shared state lock.
  void execute_inline(const Parsed& request, RequestScratch& scratch,
                      std::string& out);
  /// validate + execute_inline wrapped in the uniform error rendering and
  /// the per-endpoint latency record.
  void dispatch_parsed(Parsed& request, RequestScratch& scratch,
                       std::string& out);

  /// BatchExecutor callback: computes one drained batch of same-endpoint
  /// jobs on a worker thread.
  void execute_batch(std::size_t kind, std::span<BatchExecutor::Job> jobs);
  /// The coalesced whatif path: dedupes against the cache and within the
  /// batch, evaluates every unique miss through one
  /// Extrapolator::evaluate_batch call, then renders per job in request
  /// order.
  void execute_whatif_batch(const Loaded& state,
                            std::span<BatchExecutor::Job> jobs,
                            RequestScratch& scratch);

  // Endpoint handlers (uniform Handler signature; rows of the table).
  void handle_analyze(const Loaded* state, const Parsed& request,
                      RequestScratch& scratch, std::string& out);
  void handle_whatif(const Loaded* state, const Parsed& request,
                     RequestScratch& scratch, std::string& out);
  void handle_sweep(const Loaded* state, const Parsed& request,
                    RequestScratch& scratch, std::string& out);
  void handle_minimise(const Loaded* state, const Parsed& request,
                       RequestScratch& scratch, std::string& out);
  void handle_uq(const Loaded* state, const Parsed& request,
                 RequestScratch& scratch, std::string& out);
  void handle_compare(const Loaded* state, const Parsed& request,
                      RequestScratch& scratch, std::string& out);
  void handle_health(const Loaded* state, const Parsed& request,
                     RequestScratch& scratch, std::string& out);
  void handle_metrics(const Loaded* state, const Parsed& request,
                      RequestScratch& scratch, std::string& out);
  void handle_reload(const Loaded* state, const Parsed& request,
                     RequestScratch& scratch, std::string& out);
  void handle_shard(const Loaded* state, const Parsed& request,
                    RequestScratch& scratch, std::string& out);

  /// Shared whatif machinery (whatif + compare): resolves a scenario spec,
  /// probes the cache, computes on miss. `cached` reports the hit/miss.
  [[nodiscard]] WhatifNumbers compute_whatif(const Loaded& state,
                                             const JsonValue& spec,
                                             RequestScratch& scratch,
                                             bool& cached) const;
  /// Parses factors/profile selection out of a whatif spec and builds the
  /// canonical cache key in scratch.key.
  [[nodiscard]] WhatifRequest resolve_whatif(const Loaded& state,
                                             const JsonValue& spec,
                                             RequestScratch& scratch) const;
  static void append_whatif_body(std::string& out,
                                 const WhatifNumbers& numbers, bool cached);

  ServiceOptions options_;
  AdmissionGate gate_;
  Clock::time_point started_;

  mutable std::shared_mutex state_mutex_;
  std::unique_ptr<Loaded> state_;  // guarded by state_mutex_
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<bool> draining_{false};

  mutable core::EvalCache<WhatifNumbers> whatif_cache_;
  mutable core::EvalCache<SweepSummary> sweep_cache_;
  mutable core::EvalCache<MinimiseNumbers> minimise_cache_;
  mutable core::EvalCache<UqNumbers> uq_cache_;

  std::array<EndpointMetrics, kEndpointCount> metrics_{};

  /// Present only in batched mode (options.batch_max > 1). Declared last
  /// so destruction stops the workers before anything they touch dies.
  std::unique_ptr<BatchExecutor> executor_;
};

}  // namespace hmdiv::serve
