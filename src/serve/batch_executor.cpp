#include "serve/batch_executor.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace hmdiv::serve {

namespace {
constexpr std::size_t kNoKind = ~std::size_t{0};
/// Dead-prefix bound before a queue vector compacts (erases) its popped
/// jobs. Compaction is a move of the live tail, never an allocation.
constexpr std::size_t kCompactHead = 64;
}  // namespace

BatchExecutor::BatchExecutor(Options options, BatchFn compute)
    : options_(std::move(options)), compute_(std::move(compute)) {
  if (options_.kinds == 0) {
    throw std::invalid_argument("BatchExecutor: kinds must be >= 1");
  }
  if (options_.batch_max == 0) {
    throw std::invalid_argument("BatchExecutor: batch_max must be >= 1");
  }
  if (!compute_) {
    throw std::invalid_argument("BatchExecutor: compute callback required");
  }
  queues_.resize(options_.kinds);
  // Pre-size every queue and pre-register the metrics so the steady state
  // (submit → drain → compute) never allocates or takes the registry lock.
  for (KindQueue& queue : queues_) {
    queue.jobs.reserve(options_.max_queued + kCompactHead);
  }
  obs::Registry& registry = obs::Registry::global();
  batch_size_ = &registry.histogram("serve.batch.size");
  batch_wait_ns_ = &registry.histogram("serve.batch.wait_ns");
  batch_occupancy_ = &registry.histogram("serve.batch.occupancy");
  batches_ = &registry.counter("serve.batch.batches");
  const unsigned workers = std::max(1u, options_.workers);
  workers_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    workers_.emplace_back(&BatchExecutor::worker_loop, this);
  }
}

BatchExecutor::~BatchExecutor() { stop(); }

bool BatchExecutor::submit(const Job& job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || total_queued_ >= options_.max_queued ||
        job.kind >= queues_.size()) {
      return false;
    }
    KindQueue& queue = queues_[job.kind];
    queue.jobs.push_back(job);
    queue.jobs.back().enqueued = Clock::now();
    ++total_queued_;
    if (job.group != nullptr) job.group->add_one();
  }
  // notify_all, not notify_one: a coalescing worker parked in its
  // formation wait must re-check batch fullness, and an idle worker must
  // wake for a different kind — one notify cannot target both.
  work_ready_.notify_all();
  return true;
}

void BatchExecutor::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t BatchExecutor::queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_queued_;
}

void BatchExecutor::worker_loop() {
  // Per-worker batch scratch; capacity warms once, then drains reuse it.
  std::vector<Job> batch;
  batch.reserve(options_.batch_max);

  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [&] { return stopping_ || total_queued_ > 0; });
    if (total_queued_ == 0) {
      if (stopping_) return;
      continue;
    }

    // Serve the kind whose head job has waited longest.
    std::size_t kind = kNoKind;
    Clock::time_point oldest{};
    for (std::size_t k = 0; k < queues_.size(); ++k) {
      const KindQueue& queue = queues_[k];
      if (queue.size() == 0) continue;
      const Clock::time_point head = queue.jobs[queue.head].enqueued;
      if (kind == kNoKind || head < oldest) {
        kind = k;
        oldest = head;
      }
    }
    if (kind == kNoKind) continue;
    KindQueue& queue = queues_[kind];

    // Batch formation: let a partial batch coalesce, bounded by the
    // formation window *and* by the earliest deadline among this kind's
    // queued jobs — a request never waits past its own deadline just to
    // keep a batch company. Recomputed every wakeup because submits can
    // add a job with a nearer deadline.
    if (options_.batch_max > 1 && options_.batch_wait_us > 0) {
      const Clock::time_point window_end =
          queue.jobs[queue.head].enqueued +
          std::chrono::microseconds(options_.batch_wait_us);
      while (!stopping_ && queue.size() != 0 &&
             queue.size() < options_.batch_max) {
        Clock::time_point cap = window_end;
        for (std::size_t j = queue.head; j < queue.jobs.size(); ++j) {
          cap = std::min(cap, queue.jobs[j].deadline);
        }
        if (cap <= Clock::now()) break;
        work_ready_.wait_until(lock, cap);
      }
      if (queue.size() == 0) continue;  // another worker drained it
    }

    const std::size_t n = std::min(options_.batch_max, queue.size());
    const Clock::time_point drained_at = Clock::now();
    batch.assign(queue.jobs.begin() + static_cast<std::ptrdiff_t>(queue.head),
                 queue.jobs.begin() +
                     static_cast<std::ptrdiff_t>(queue.head + n));
    queue.head += n;
    total_queued_ -= n;
    if (queue.head == queue.jobs.size()) {
      queue.jobs.clear();
      queue.head = 0;
    } else if (queue.head >= kCompactHead) {
      queue.jobs.erase(queue.jobs.begin(),
                       queue.jobs.begin() +
                           static_cast<std::ptrdiff_t>(queue.head));
      queue.head = 0;
    }
    const std::size_t still_queued = total_queued_;
    lock.unlock();

    if (obs::enabled()) {
      batch_size_->record(n);
      batch_occupancy_->record(still_queued);
      batches_->add(1);
      for (const Job& job : batch) {
        const auto waited = drained_at - job.enqueued;
        batch_wait_ns_->record(static_cast<std::uint64_t>(std::max<long long>(
            0, std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
                   .count())));
      }
    }

    compute_(kind, std::span<Job>(batch));
    for (const Job& job : batch) {
      if (job.group != nullptr) job.group->complete_one();
    }
    batch.clear();
    lock.lock();
  }
}

}  // namespace hmdiv::serve
