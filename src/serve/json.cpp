#include "serve/json.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <system_error>

namespace hmdiv::serve {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != JsonType::kObject) return nullptr;
  for (std::size_t i = 0; i < member_count; ++i) {
    if (members[i].name() == key) return &members[i].value;
  }
  return nullptr;
}

namespace {

struct ParseState {
  const char* cursor;
  const char* begin;
  const char* end;
  exec::Workspace* workspace;
  std::vector<JsonValue>* values;
  std::vector<JsonMember>* members;
  const char* error = nullptr;
  const char* error_cursor = nullptr;

  bool fail(const char* message) {
    if (error == nullptr) {
      error = message;
      error_cursor = cursor;
    }
    return false;
  }

  void skip_whitespace() {
    while (cursor != end && (*cursor == ' ' || *cursor == '\t' ||
                             *cursor == '\n' || *cursor == '\r')) {
      ++cursor;
    }
  }

  [[nodiscard]] bool at_end() const { return cursor == end; }
  [[nodiscard]] char peek() const { return *cursor; }

  bool consume_literal(std::string_view literal) {
    if (end - cursor < static_cast<std::ptrdiff_t>(literal.size()) ||
        std::memcmp(cursor, literal.data(), literal.size()) != 0) {
      return fail("invalid literal");
    }
    cursor += literal.size();
    return true;
  }
};

bool parse_value(ParseState& s, JsonValue& out, std::size_t depth);

/// Writes `code_point` (basic plane) as UTF-8 into `out`; returns the
/// number of bytes written.
std::size_t encode_utf8(std::uint32_t code_point, char* out) {
  if (code_point < 0x80) {
    out[0] = static_cast<char>(code_point);
    return 1;
  }
  if (code_point < 0x800) {
    out[0] = static_cast<char>(0xC0 | (code_point >> 6));
    out[1] = static_cast<char>(0x80 | (code_point & 0x3F));
    return 2;
  }
  out[0] = static_cast<char>(0xE0 | (code_point >> 12));
  out[1] = static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
  out[2] = static_cast<char>(0x80 | (code_point & 0x3F));
  return 3;
}

bool parse_hex4(ParseState& s, std::uint32_t& out) {
  if (s.end - s.cursor < 4) return s.fail("truncated \\u escape");
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    const char c = s.cursor[i];
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      return s.fail("invalid \\u escape");
    }
    value = (value << 4) | digit;
  }
  s.cursor += 4;
  out = value;
  return true;
}

/// Parses a string token (cursor on the opening quote). Escape-free
/// strings come back as a view into the input; escaped ones are decoded
/// into the workspace.
bool parse_string(ParseState& s, const char*& text, std::size_t& size) {
  ++s.cursor;  // opening quote
  const char* const raw_begin = s.cursor;
  bool has_escape = false;
  for (;;) {
    if (s.at_end()) return s.fail("unterminated string");
    const char c = s.peek();
    if (c == '"') break;
    if (static_cast<unsigned char>(c) < 0x20) {
      return s.fail("unescaped control character in string");
    }
    if (c == '\\') {
      has_escape = true;
      ++s.cursor;
      if (s.at_end()) return s.fail("unterminated string");
    }
    ++s.cursor;
  }
  const char* const raw_end = s.cursor;
  ++s.cursor;  // closing quote
  if (!has_escape) {
    text = raw_begin;
    size = static_cast<std::size_t>(raw_end - raw_begin);
    return true;
  }
  // Decoded text never exceeds the raw span (every escape shrinks).
  const std::span<char> buffer = s.workspace->alloc<char>(
      static_cast<std::size_t>(raw_end - raw_begin));
  char* write = buffer.data();
  const char* read = raw_begin;
  while (read != raw_end) {
    if (*read != '\\') {
      *write++ = *read++;
      continue;
    }
    ++read;  // backslash; the scan above guarantees one more byte
    const char esc = *read++;
    switch (esc) {
      case '"': *write++ = '"'; break;
      case '\\': *write++ = '\\'; break;
      case '/': *write++ = '/'; break;
      case 'b': *write++ = '\b'; break;
      case 'f': *write++ = '\f'; break;
      case 'n': *write++ = '\n'; break;
      case 'r': *write++ = '\r'; break;
      case 't': *write++ = '\t'; break;
      case 'u': {
        ParseState hex = s;
        hex.cursor = read;
        std::uint32_t code_point = 0;
        if (!parse_hex4(hex, code_point)) {
          s.cursor = read;
          return s.fail("invalid \\u escape");
        }
        read = hex.cursor;
        if (code_point >= 0xD800 && code_point <= 0xDFFF) {
          s.cursor = read;
          return s.fail("surrogate \\u escapes are not supported");
        }
        write += encode_utf8(code_point, write);
        break;
      }
      default:
        s.cursor = read - 1;
        return s.fail("invalid escape");
    }
  }
  text = buffer.data();
  size = static_cast<std::size_t>(write - buffer.data());
  return true;
}

bool parse_number(ParseState& s, JsonValue& out) {
  // Validate the JSON number grammar first: from_chars is laxer (it
  // accepts "inf"/"nan" and leading '+').
  const char* p = s.cursor;
  if (p != s.end && *p == '-') ++p;
  if (p == s.end || *p < '0' || *p > '9') return s.fail("invalid number");
  if (*p == '0') {
    ++p;
  } else {
    while (p != s.end && *p >= '0' && *p <= '9') ++p;
  }
  if (p != s.end && *p == '.') {
    ++p;
    if (p == s.end || *p < '0' || *p > '9') return s.fail("invalid number");
    while (p != s.end && *p >= '0' && *p <= '9') ++p;
  }
  if (p != s.end && (*p == 'e' || *p == 'E')) {
    ++p;
    if (p != s.end && (*p == '+' || *p == '-')) ++p;
    if (p == s.end || *p < '0' || *p > '9') return s.fail("invalid number");
    while (p != s.end && *p >= '0' && *p <= '9') ++p;
  }
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.cursor, p, value);
  if (ec != std::errc{} || ptr != p) return s.fail("number out of range");
  s.cursor = p;
  out.type = JsonType::kNumber;
  out.number = value;
  return true;
}

bool parse_array(ParseState& s, JsonValue& out, std::size_t depth) {
  ++s.cursor;  // '['
  const std::size_t stack_base = s.values->size();
  s.skip_whitespace();
  if (!s.at_end() && s.peek() == ']') {
    ++s.cursor;
  } else {
    for (;;) {
      JsonValue item;
      if (!parse_value(s, item, depth + 1)) return false;
      s.values->push_back(item);
      s.skip_whitespace();
      if (s.at_end()) return s.fail("unterminated array");
      const char c = s.peek();
      ++s.cursor;
      if (c == ']') break;
      if (c != ',') {
        --s.cursor;
        return s.fail("expected ',' or ']' in array");
      }
      s.skip_whitespace();
    }
  }
  const std::size_t count = s.values->size() - stack_base;
  const std::span<JsonValue> storage = s.workspace->alloc<JsonValue>(count);
  std::memcpy(storage.data(), s.values->data() + stack_base,
              count * sizeof(JsonValue));
  s.values->resize(stack_base);
  out.type = JsonType::kArray;
  out.items = storage.data();
  out.item_count = count;
  return true;
}

bool parse_object(ParseState& s, JsonValue& out, std::size_t depth) {
  ++s.cursor;  // '{'
  const std::size_t stack_base = s.members->size();
  s.skip_whitespace();
  if (!s.at_end() && s.peek() == '}') {
    ++s.cursor;
  } else {
    for (;;) {
      s.skip_whitespace();
      if (s.at_end() || s.peek() != '"') {
        return s.fail("expected string key in object");
      }
      JsonMember member;
      if (!parse_string(s, member.key, member.key_size)) return false;
      s.skip_whitespace();
      if (s.at_end() || s.peek() != ':') {
        return s.fail("expected ':' in object");
      }
      ++s.cursor;
      if (!parse_value(s, member.value, depth + 1)) return false;
      s.members->push_back(member);
      s.skip_whitespace();
      if (s.at_end()) return s.fail("unterminated object");
      const char c = s.peek();
      ++s.cursor;
      if (c == '}') break;
      if (c != ',') {
        --s.cursor;
        return s.fail("expected ',' or '}' in object");
      }
    }
  }
  const std::size_t count = s.members->size() - stack_base;
  const std::span<JsonMember> storage = s.workspace->alloc<JsonMember>(count);
  std::memcpy(storage.data(), s.members->data() + stack_base,
              count * sizeof(JsonMember));
  s.members->resize(stack_base);
  out.type = JsonType::kObject;
  out.members = storage.data();
  out.member_count = count;
  return true;
}

bool parse_value(ParseState& s, JsonValue& out, std::size_t depth) {
  if (depth > JsonParser::kMaxDepth) return s.fail("nesting too deep");
  s.skip_whitespace();
  if (s.at_end()) return s.fail("unexpected end of input");
  switch (s.peek()) {
    case '{':
      return parse_object(s, out, depth);
    case '[':
      return parse_array(s, out, depth);
    case '"': {
      out.type = JsonType::kString;
      return parse_string(s, out.text, out.text_size);
    }
    case 't':
      out.type = JsonType::kBool;
      out.boolean = true;
      return s.consume_literal("true");
    case 'f':
      out.type = JsonType::kBool;
      out.boolean = false;
      return s.consume_literal("false");
    case 'n':
      out.type = JsonType::kNull;
      return s.consume_literal("null");
    default:
      return parse_number(s, out);
  }
}

}  // namespace

JsonParser::Result JsonParser::parse(std::string_view text,
                                     exec::Workspace& workspace) {
  values_.clear();
  members_.clear();
  ParseState state{text.data(), text.data(), text.data() + text.size(),
                   &workspace, &values_, &members_};
  JsonValue root;
  Result result;
  if (!parse_value(state, root, 0)) {
    result.error = state.error;
    result.error_at =
        static_cast<std::size_t>(state.error_cursor - state.begin);
    return result;
  }
  state.skip_whitespace();
  if (!state.at_end()) {
    result.error = "trailing garbage after document";
    result.error_at = static_cast<std::size_t>(state.cursor - state.begin);
    return result;
  }
  const std::span<JsonValue> storage = workspace.alloc<JsonValue>(1);
  storage[0] = root;
  result.value = storage.data();
  return result;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
}

void append_json_number(std::string& out, double value) {
  // JSON has no spelling for nan/inf; null is the conventional stand-in.
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  std::array<char, 32> buffer;
  const auto [ptr, ec] = std::to_chars(buffer.data(),
                                       buffer.data() + buffer.size(), value);
  if (ec != std::errc{}) {
    out += "null";
    return;
  }
  out.append(buffer.data(), static_cast<std::size_t>(ptr - buffer.data()));
}

void append_json_uint(std::string& out, unsigned long long value) {
  std::array<char, 24> buffer;
  const auto [ptr, ec] = std::to_chars(buffer.data(),
                                       buffer.data() + buffer.size(), value);
  static_cast<void>(ec);
  out.append(buffer.data(), static_cast<std::size_t>(ptr - buffer.data()));
}

}  // namespace hmdiv::serve
