#include "serve/admission.hpp"

#include <algorithm>

namespace hmdiv::serve {

AdmissionGate::AdmissionGate(Options options) : options_(options) {
  options_.max_concurrent = std::max<std::size_t>(1, options_.max_concurrent);
}

AdmissionGate::Outcome AdmissionGate::acquire(Clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (in_flight_ < options_.max_concurrent && queued_ == 0) {
    ++in_flight_;
    return Outcome::kAdmitted;
  }
  if (queued_ >= options_.max_queue) return Outcome::kShedQueueFull;
  ++queued_;
  const bool got_slot = slot_freed_.wait_until(lock, deadline, [&] {
    return in_flight_ < options_.max_concurrent;
  });
  --queued_;
  if (!got_slot) return Outcome::kDeadlineExceeded;
  ++in_flight_;
  return Outcome::kAdmitted;
}

void AdmissionGate::release() noexcept {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
  }
  slot_freed_.notify_one();
}

std::size_t AdmissionGate::in_flight() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

std::size_t AdmissionGate::queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

}  // namespace hmdiv::serve
