#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/model_io.hpp"
#include "exec/cluster.hpp"
#include "exec/config.hpp"
#include "exec/workspace.hpp"
#include "stats/rng.hpp"
#include "stats/special.hpp"

namespace hmdiv::serve {

namespace {

constexpr const char* kBadRequest = "bad_request";
constexpr const char* kDeadlineExceeded = "deadline_exceeded";

/// Thrown by handlers; handle_line maps it to one error response line.
/// The message string allocates — error paths only, never on a cache hit.
struct RequestError {
  const char* code;
  std::string message;
};

/// Grid chunk sizes between deadline checks: big enough to amortise the
/// clock read, small enough that an expired request dies within ~ms.
constexpr std::size_t kSweepChunk = 2048;
constexpr std::size_t kMinimiseChunk = 8192;

void check_deadline(Service::Clock::time_point deadline) {
  if (Service::Clock::now() >= deadline) {
    throw RequestError{kDeadlineExceeded, "deadline expired mid-compute"};
  }
}

/// `params` with no members — stand-in when a request omits "params".
constexpr JsonValue kEmptyParams{JsonType::kObject};

void append_id(std::string& out, const JsonValue* id) {
  if (id == nullptr) {
    out += "null";
    return;
  }
  switch (id->type) {
    case JsonType::kNumber:
      append_json_number(out, id->number);
      break;
    case JsonType::kString:
      out += '"';
      append_json_escaped(out, id->string());
      out += '"';
      break;
    case JsonType::kBool:
      out += id->boolean ? "true" : "false";
      break;
    default:
      out += "null";
  }
}

void begin_result(std::string& out, const JsonValue* id) {
  out += "{\"id\":";
  append_id(out, id);
  out += ",\"ok\":true,\"result\":{";
}

void end_result(std::string& out) { out += "}}\n"; }

void write_error_line(std::string& out, const JsonValue* id,
                      std::string_view code, std::string_view message) {
  out += "{\"id\":";
  append_id(out, id);
  out += ",\"ok\":false,\"error\":{\"code\":\"";
  append_json_escaped(out, code);
  out += "\",\"message\":\"";
  append_json_escaped(out, message);
  out += "\"}}\n";
}

// --- Parameter extraction ----------------------------------------------

[[nodiscard]] double number_param(const JsonValue& params,
                                  std::string_view name, double fallback) {
  const JsonValue* v = params.find(name);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_number() || !std::isfinite(v->number)) {
    throw RequestError{kBadRequest,
                       std::string(name) + " must be a finite number"};
  }
  return v->number;
}

[[nodiscard]] std::uint64_t uint_param(const JsonValue& params,
                                       std::string_view name,
                                       std::uint64_t fallback,
                                       std::uint64_t lo, std::uint64_t hi) {
  const JsonValue* v = params.find(name);
  if (v == nullptr || v->is_null()) return fallback;
  const bool integral = v->is_number() && std::isfinite(v->number) &&
                        v->number >= 0.0 &&
                        v->number == std::floor(v->number) &&
                        v->number <= 9007199254740992.0;  // 2^53
  if (!integral || static_cast<std::uint64_t>(v->number) < lo ||
      static_cast<std::uint64_t>(v->number) > hi) {
    throw RequestError{kBadRequest, std::string(name) +
                                        " must be an integer in [" +
                                        std::to_string(lo) + ", " +
                                        std::to_string(hi) + "]"};
  }
  return static_cast<std::uint64_t>(v->number);
}

/// True for "field" (the default), false for "trial".
[[nodiscard]] bool field_profile_param(const JsonValue& params) {
  const JsonValue* v = params.find("profile");
  if (v == nullptr || v->is_null()) return true;
  if (v->is_string()) {
    if (v->string() == "field") return true;
    if (v->string() == "trial") return false;
  }
  throw RequestError{kBadRequest, "profile must be \"trial\" or \"field\""};
}

void append_operating_point(std::string& out,
                            const core::SystemOperatingPoint& p) {
  out += "{\"threshold\":";
  append_json_number(out, p.threshold);
  out += ",\"machine_fn\":";
  append_json_number(out, p.machine_fn);
  out += ",\"machine_fp\":";
  append_json_number(out, p.machine_fp);
  out += ",\"system_fn\":";
  append_json_number(out, p.system_fn);
  out += ",\"system_fp\":";
  append_json_number(out, p.system_fp);
  out += ",\"sensitivity\":";
  append_json_number(out, p.sensitivity);
  out += ",\"specificity\":";
  append_json_number(out, p.specificity);
  out += ",\"recall_rate\":";
  append_json_number(out, p.recall_rate);
  out += ",\"ppv\":";
  append_json_number(out, p.ppv);
  out += '}';
}

}  // namespace

// --- Endpoint registry ---------------------------------------------------

// The single source of truth for dispatch: row i describes Endpoint i.
// handle_line / handle_lines route by it, the BatchExecutor callback
// interprets its `kind` through it, unknown_op checks scan its names, and
// the constructor registers metrics from it — so a new endpoint is one
// row plus one handler, and the paths can never disagree about the list.
const std::array<Service::EndpointEntry, Service::kEndpointCount>&
Service::endpoint_table() {
  static const std::array<EndpointEntry, kEndpointCount> kTable = {{
      // name, handler, compute, batchable, needs_state, cached
      {"analyze", &Service::handle_analyze, true, true, true, false},
      {"whatif", &Service::handle_whatif, true, true, true, true},
      {"sweep", &Service::handle_sweep, true, true, true, true},
      {"minimise", &Service::handle_minimise, true, true, true, true},
      {"uq", &Service::handle_uq, true, true, true, true},
      {"compare", &Service::handle_compare, true, true, true, false},
      {"health", &Service::handle_health, false, false, true, false},
      {"metrics", &Service::handle_metrics, false, false, false, false},
      {"reload", &Service::handle_reload, false, false, false, false},
      {"shard", &Service::handle_shard, false, false, false, false},
  }};
  return kTable;
}

// --- Model state --------------------------------------------------------

namespace {

/// The trade-off machine implied by each class's PMf at threshold 0
/// (mu = -probit(PMf)) — mirrors the hmdiv_analyze profiling workload so
/// serve answers match the CLI's.
[[nodiscard]] core::BinormalMachine machine_for(
    const core::SequentialModel& model) {
  core::BinormalMachine machine;
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    const double p_mf = std::min(
        std::max(model.parameters(x).p_machine_fails, 1e-9), 1.0 - 1e-9);
    machine.cancer_class_means.push_back(-stats::normal_quantile(p_mf));
    machine.normal_class_means.push_back(-2.0);
  }
  return machine;
}

[[nodiscard]] std::vector<core::HumanFnResponse> fn_response_for(
    const core::SequentialModel& model) {
  std::vector<core::HumanFnResponse> response;
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    const auto& p = model.parameters(x);
    response.push_back({p.p_human_fails_given_machine_succeeds,
                        p.p_human_fails_given_machine_fails});
  }
  return response;
}

[[nodiscard]] std::vector<core::HumanFpResponse> fp_response_for(
    const core::SequentialModel& model) {
  return std::vector<core::HumanFpResponse>(model.class_count(),
                                            {0.1, 0.02});
}

/// Synthetic per-class trial counts at the configured trial size, so the
/// uq endpoint has a posterior even when no real counts were supplied.
[[nodiscard]] std::vector<core::ClassCounts> synthetic_counts_for(
    const core::SequentialModel& model, const ServiceOptions& options) {
  std::vector<core::ClassCounts> counts;
  const std::uint64_t cases =
      std::max<std::uint64_t>(1, options.uq_cases_per_class);
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    const auto& p = model.parameters(x);
    core::ClassCounts c;
    c.cases = cases;
    c.machine_failures = std::min(
        cases, static_cast<std::uint64_t>(std::llround(
                   p.p_machine_fails * static_cast<double>(cases))));
    const std::uint64_t machine_successes = cases - c.machine_failures;
    c.human_failures_given_machine_failed = std::min(
        c.machine_failures,
        static_cast<std::uint64_t>(std::llround(
            p.p_human_fails_given_machine_fails *
            static_cast<double>(c.machine_failures))));
    c.human_failures_given_machine_succeeded = std::min(
        machine_successes,
        static_cast<std::uint64_t>(std::llround(
            p.p_human_fails_given_machine_succeeds *
            static_cast<double>(machine_successes))));
    counts.push_back(c);
  }
  return counts;
}

}  // namespace

// The derived engines are constructed in place (Extrapolator and
// TradeoffAnalyzer carry mutex-bearing caches, so they are deliberately
// immovable); the ctor copies from the already-moved-in model/profiles.
struct Service::Loaded {
  core::SequentialModel model;
  core::DemandProfile trial;
  core::DemandProfile field;
  core::Extrapolator extrapolator;
  core::TradeoffAnalyzer analyzer;
  core::PosteriorModelSampler sampler;

  Loaded(core::SequentialModel model_in, core::DemandProfile trial_in,
         core::DemandProfile field_in, const ServiceOptions& options)
      : model(std::move(model_in)),
        trial(std::move(trial_in)),
        field(std::move(field_in)),
        extrapolator(model, trial),
        analyzer(machine_for(model), field, fn_response_for(model), field,
                 fp_response_for(model), /*prevalence=*/0.007),
        sampler(model.class_names(), synthetic_counts_for(model, options)) {}
};

std::unique_ptr<Service::Loaded> Service::build_loaded(
    core::SequentialModel model, core::DemandProfile trial,
    core::DemandProfile field, const ServiceOptions& options) {
  if (!model.compatible_with(trial)) {
    throw std::invalid_argument(
        "trial profile is not defined over the model's classes");
  }
  if (!model.compatible_with(field)) {
    throw std::invalid_argument(
        "field profile is not defined over the model's classes");
  }
  return std::make_unique<Loaded>(std::move(model), std::move(trial),
                                  std::move(field), options);
}

Service::Service(core::SequentialModel model, core::DemandProfile trial,
                 core::DemandProfile field, ServiceOptions options)
    : options_(options),
      gate_({options.max_concurrent != 0
                 ? options.max_concurrent
                 : std::max(1u, std::thread::hardware_concurrency()),
             options.max_queue}),
      started_(Clock::now()),
      state_(build_loaded(std::move(model), std::move(trial),
                          std::move(field), options)) {
  whatif_cache_.set_capacity(options_.whatif_cache_capacity);
  sweep_cache_.set_capacity(options_.sweep_cache_capacity);
  minimise_cache_.set_capacity(options_.minimise_cache_capacity);
  uq_cache_.set_capacity(options_.uq_cache_capacity);

  // Pre-register every endpoint metric so the hot path bumps cached
  // pointers instead of hitting the registry's name lookup per request.
  obs::Registry& registry = obs::Registry::global();
  const auto& table = endpoint_table();
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    std::string base = "serve.";
    base += table[i].name;
    metrics_[i].requests = &registry.counter(base + ".requests");
    metrics_[i].errors = &registry.counter(base + ".errors");
    metrics_[i].shed = &registry.counter(base + ".shed");
    metrics_[i].ns = &registry.histogram(base + ".ns");
    if (table[i].cached) {
      metrics_[i].cache_hit = &registry.counter(base + ".cache_hit");
      metrics_[i].cache_miss = &registry.counter(base + ".cache_miss");
    }
  }

  if (options_.batch_max > 1) {
    BatchExecutor::Options executor_options;
    executor_options.kinds = kEndpointCount;
    executor_options.batch_max = options_.batch_max;
    executor_options.batch_wait_us = options_.batch_wait_us;
    executor_options.workers = std::max(1u, options_.batch_workers);
    // The queue bound replaces the AdmissionGate for batched endpoints.
    executor_options.max_queued = std::max<std::size_t>(1, options_.max_queue);
    executor_ = std::make_unique<BatchExecutor>(
        executor_options,
        [this](std::size_t kind, std::span<BatchExecutor::Job> jobs) {
          execute_batch(kind, jobs);
        });
  }
}

Service::~Service() {
  // Stop the compute workers before any state they touch goes away.
  if (executor_ != nullptr) executor_->stop();
}

void Service::clear_caches() {
  whatif_cache_.clear();
  sweep_cache_.clear();
  minimise_cache_.clear();
  uq_cache_.clear();
}

void Service::reload(core::SequentialModel model, core::DemandProfile trial,
                     core::DemandProfile field) {
  // Build outside the lock (may throw; current state stays untouched).
  std::unique_ptr<Loaded> next = build_loaded(
      std::move(model), std::move(trial), std::move(field), options_);
  const std::unique_lock<std::shared_mutex> lock(state_mutex_);
  state_ = std::move(next);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  // Under the exclusive lock no request can be mid-insert (all cache
  // traffic happens under the shared lock), so no stale value survives.
  clear_caches();
}

// --- Request dispatch ---------------------------------------------------

bool Service::parse_frame(std::string_view line, RequestScratch& scratch,
                          std::string& out, Parsed& request) {
  request.t0 = Clock::now();
  const JsonParser::Result parsed =
      scratch.parser.parse(line, exec::thread_workspace());
  if (parsed.value == nullptr || !parsed.value->is_object()) {
    HMDIV_OBS_COUNT("serve.protocol.errors", 1);
    std::string message = "invalid request: ";
    if (parsed.value == nullptr) {
      message += parsed.error;
      message += " at byte ";
      message += std::to_string(parsed.error_at);
    } else {
      message += "request must be a JSON object";
    }
    write_error_line(out, nullptr, kBadRequest, message);
    return false;
  }
  request.root = parsed.value;
  request.id = parsed.value->find("id");
  const JsonValue* op = parsed.value->find("op");
  if (op == nullptr || !op->is_string()) {
    HMDIV_OBS_COUNT("serve.protocol.errors", 1);
    write_error_line(out, request.id, kBadRequest, "missing \"op\" string");
    return false;
  }
  const auto& table = endpoint_table();
  request.ep = kEndpointCount;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table[i].name == op->string()) {
      request.ep = i;
      break;
    }
  }
  if (request.ep == kEndpointCount) {
    HMDIV_OBS_COUNT("serve.protocol.errors", 1);
    write_error_line(out, request.id, "unknown_op",
                     "unknown op '" + std::string(op->string()) + "'");
    return false;
  }
  if (obs::enabled()) metrics_[request.ep].requests->add(1);
  return true;
}

void Service::validate_request(Parsed& request) const {
  const JsonValue& root = *request.root;
  // Per-request deadline: requested (capped) or the configured default.
  std::uint64_t deadline_ms = options_.default_deadline_ms;
  if (const JsonValue* dl = root.find("deadline_ms");
      dl != nullptr && !dl->is_null()) {
    if (!dl->is_number() || !std::isfinite(dl->number) || dl->number < 1.0 ||
        dl->number != std::floor(dl->number)) {
      throw RequestError{kBadRequest,
                         "deadline_ms must be a positive integer"};
    }
    deadline_ms = dl->number >= static_cast<double>(options_.max_deadline_ms)
                      ? options_.max_deadline_ms
                      : static_cast<std::uint64_t>(dl->number);
  }
  request.deadline = request.t0 + std::chrono::milliseconds(deadline_ms);

  const JsonValue* params = root.find("params");
  if (params != nullptr && params->is_null()) params = nullptr;
  if (params != nullptr && !params->is_object()) {
    throw RequestError{kBadRequest, "params must be an object"};
  }
  request.params = params;
}

void Service::execute_inline(const Parsed& request, RequestScratch& scratch,
                             std::string& out) {
  const EndpointEntry& entry = endpoint_table()[request.ep];
  if (!entry.compute) {
    if (entry.needs_state) {
      const std::shared_lock<std::shared_mutex> lock(state_mutex_);
      begin_result(out, request.id);
      (this->*entry.handler)(state_.get(), request, scratch, out);
      end_result(out);
    } else {
      begin_result(out, request.id);
      (this->*entry.handler)(nullptr, request, scratch, out);
      end_result(out);
    }
    return;
  }
  // Compute endpoints go through admission control.
  const AdmissionTicket ticket(gate_, request.deadline);
  if (ticket.outcome() == AdmissionGate::Outcome::kShedQueueFull) {
    if (obs::enabled()) metrics_[request.ep].shed->add(1);
    write_error_line(out, request.id, "shed",
                     "admission queue full; retry later");
    return;
  }
  if (ticket.outcome() == AdmissionGate::Outcome::kDeadlineExceeded) {
    throw RequestError{kDeadlineExceeded, "deadline expired while queued"};
  }
  check_deadline(request.deadline);
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  begin_result(out, request.id);
  (this->*entry.handler)(state_.get(), request, scratch, out);
  end_result(out);
}

void Service::dispatch_parsed(Parsed& request, RequestScratch& scratch,
                              std::string& out) {
  const bool obs_on = obs::enabled();
  EndpointMetrics& metrics = metrics_[request.ep];
  const std::size_t out_mark = out.size();
  try {
    validate_request(request);
    execute_inline(request, scratch, out);
  } catch (const RequestError& e) {
    out.resize(out_mark);
    if (obs_on) metrics.errors->add(1);
    write_error_line(out, request.id, e.code, e.message);
  } catch (const std::invalid_argument& e) {
    out.resize(out_mark);
    if (obs_on) metrics.errors->add(1);
    write_error_line(out, request.id, kBadRequest, e.what());
  } catch (const std::exception& e) {
    out.resize(out_mark);
    if (obs_on) metrics.errors->add(1);
    write_error_line(out, request.id, "internal", e.what());
  }
  if (obs_on) {
    metrics.ns->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             request.t0)
            .count()));
  }
}

void Service::handle_line(std::string_view line, RequestScratch& scratch,
                          std::string& out) {
  exec::Workspace& workspace = exec::thread_workspace();
  const exec::Workspace::Scope scope(workspace);
  Parsed request;
  if (!parse_frame(line, scratch, out, request)) return;
  dispatch_parsed(request, scratch, out);
}

void Service::handle_lines(std::span<const std::string_view> lines,
                           RequestScratch& scratch,
                           std::vector<std::string>& responses) {
  if (responses.size() < lines.size()) responses.resize(lines.size());
  if (executor_ == nullptr) {
    // Batching off: exactly the PR 7 path, one line at a time.
    for (std::size_t i = 0; i < lines.size(); ++i) {
      responses[i].clear();
      handle_line(lines[i], scratch, responses[i]);
    }
    return;
  }

  // One workspace scope spans the whole burst: every parsed request's
  // JSON nodes must stay alive until the Group completes, because worker
  // threads read them (blocks never relocate, and the executor's queue
  // mutex publishes them — see exec/workspace.hpp).
  exec::Workspace& workspace = exec::thread_workspace();
  const exec::Workspace::Scope scope(workspace);
  BatchExecutor::Group group;
  const bool obs_on = obs::enabled();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string& out = responses[i];
    out.clear();
    Parsed request;
    if (!parse_frame(lines[i], scratch, out, request)) continue;
    const EndpointEntry& entry = endpoint_table()[request.ep];
    EndpointMetrics& metrics = metrics_[request.ep];
    const std::size_t out_mark = out.size();
    bool submitted = false;
    try {
      validate_request(request);
      if (entry.batchable) {
        BatchExecutor::Job job;
        job.kind = request.ep;
        job.id = request.id;
        job.params = request.params;
        job.t0 = request.t0;
        job.deadline = request.deadline;
        job.out = &out;
        job.group = &group;
        if (executor_->submit(job)) {
          submitted = true;
        } else {
          if (obs_on) metrics.shed->add(1);
          write_error_line(out, request.id, "shed",
                           "admission queue full; retry later");
        }
      } else {
        // Non-batchable requests (health/metrics/reload) are in-order
        // barriers: effects observable through them — epoch bumps,
        // counter totals — must reflect every earlier request of this
        // burst, exactly as the serial loop guarantees.
        group.wait();
        execute_inline(request, scratch, out);
      }
    } catch (const RequestError& e) {
      out.resize(out_mark);
      if (obs_on) metrics.errors->add(1);
      write_error_line(out, request.id, e.code, e.message);
    } catch (const std::invalid_argument& e) {
      out.resize(out_mark);
      if (obs_on) metrics.errors->add(1);
      write_error_line(out, request.id, kBadRequest, e.what());
    } catch (const std::exception& e) {
      out.resize(out_mark);
      if (obs_on) metrics.errors->add(1);
      write_error_line(out, request.id, "internal", e.what());
    }
    // Submitted jobs record their latency when the worker finishes them.
    if (!submitted && obs_on) {
      metrics.ns->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               request.t0)
              .count()));
    }
  }
  group.wait();
}

// --- Batched compute (BatchExecutor worker side) -------------------------

void Service::execute_batch(std::size_t kind,
                            std::span<BatchExecutor::Job> jobs) {
  // Worker-thread mirror of the per-connection scratch; capacities warm
  // once per thread, keeping the steady state allocation free.
  thread_local RequestScratch scratch;
  exec::Workspace& workspace = exec::thread_workspace();
  const exec::Workspace::Scope scope(workspace);
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  const Loaded& state = *state_;
  if (kind == kWhatif) {
    execute_whatif_batch(state, jobs, scratch);
    return;
  }
  const EndpointEntry& entry = endpoint_table()[kind];
  EndpointMetrics& metrics = metrics_[kind];
  const bool obs_on = obs::enabled();
  for (BatchExecutor::Job& job : jobs) {
    Parsed request;
    request.id = job.id;
    request.params = job.params;
    request.ep = kind;
    request.t0 = job.t0;
    request.deadline = job.deadline;
    std::string& out = *job.out;
    const std::size_t out_mark = out.size();
    try {
      check_deadline(request.deadline);
      begin_result(out, request.id);
      (this->*entry.handler)(&state, request, scratch, out);
      end_result(out);
    } catch (const RequestError& e) {
      out.resize(out_mark);
      if (obs_on) metrics.errors->add(1);
      write_error_line(out, request.id, e.code, e.message);
    } catch (const std::invalid_argument& e) {
      out.resize(out_mark);
      if (obs_on) metrics.errors->add(1);
      write_error_line(out, request.id, kBadRequest, e.what());
    } catch (const std::exception& e) {
      out.resize(out_mark);
      if (obs_on) metrics.errors->add(1);
      write_error_line(out, request.id, "internal", e.what());
    }
    if (obs_on) {
      metrics.ns->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               job.t0)
              .count()));
    }
  }
}

void Service::execute_whatif_batch(const Loaded& state,
                                   std::span<BatchExecutor::Job> jobs,
                                   RequestScratch& scratch) {
  constexpr std::size_t kNone = ~std::size_t{0};
  const bool obs_on = obs::enabled();
  EndpointMetrics& metrics = metrics_[kWhatif];
  exec::Workspace& workspace = exec::thread_workspace();

  // Per-job routing state. Keys and per-class factor lists are copied
  // into the workspace because scratch.key / scratch.class_factors are
  // reused by the next job's resolve.
  struct Slot {
    std::span<const double> key;
    WhatifNumbers numbers;
    std::size_t miss = kNone;    // index into the unique-miss spec array
    std::size_t dup_of = kNone;  // earlier slot with the same key
    bool ok = false;
    bool cached = false;
  };
  const std::span<Slot> slots = workspace.alloc<Slot>(jobs.size());
  const std::span<core::ScenarioSpec> specs =
      workspace.alloc<core::ScenarioSpec>(jobs.size());
  const std::span<core::ScenarioNumbers> computed =
      workspace.alloc<core::ScenarioNumbers>(jobs.size());

  const bool cache_on = whatif_cache_.enabled();
  std::size_t miss_count = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    BatchExecutor::Job& job = jobs[i];
    Slot& slot = slots[i];
    slot = Slot{};
    std::string& out = *job.out;
    const std::size_t out_mark = out.size();
    try {
      check_deadline(job.deadline);
      const JsonValue& spec_json =
          job.params != nullptr ? *job.params : kEmptyParams;
      const WhatifRequest parsed = resolve_whatif(state, spec_json, scratch);
      const std::span<double> key =
          workspace.alloc<double>(scratch.key.size());
      std::copy(scratch.key.begin(), scratch.key.end(), key.begin());
      slot.key = key;
      if (const std::optional<WhatifNumbers> hit = whatif_cache_.find(
              std::span<const double>(slot.key))) {
        slot.numbers = *hit;
        slot.cached = true;
        if (obs_on) metrics.cache_hit->add(1);
      } else {
        // Within-batch dedupe — but only when the cache is enabled. With
        // the cache off the serial path recomputes and answers
        // "cached":false for every request, and byte identity requires
        // the coalesced path to do the same.
        std::size_t dup = kNone;
        if (cache_on) {
          for (std::size_t j = 0; j < i && dup == kNone; ++j) {
            if (slots[j].ok && slots[j].miss != kNone &&
                slots[j].key.size() == slot.key.size() &&
                std::equal(slot.key.begin(), slot.key.end(),
                           slots[j].key.begin())) {
              dup = j;
            }
          }
        }
        if (dup != kNone) {
          slot.dup_of = dup;
          slot.cached = true;
          if (obs_on) metrics.cache_hit->add(1);
        } else {
          slot.miss = miss_count;
          core::ScenarioSpec& spec = specs[miss_count];
          spec = core::ScenarioSpec{};
          spec.profile = parsed.use_field ? &state.field : nullptr;
          spec.reader_failure_factor = parsed.reader_factor;
          spec.machine_failure_factor = parsed.machine_factor;
          if (!scratch.class_factors.empty()) {
            const std::span<core::ClassFactor> factors =
                workspace.alloc<core::ClassFactor>(
                    scratch.class_factors.size());
            for (std::size_t f = 0; f < factors.size(); ++f) {
              factors[f] = {scratch.class_factors[f].first,
                            scratch.class_factors[f].second};
            }
            spec.per_class_machine_factors = factors;
          }
          ++miss_count;
          if (obs_on) metrics.cache_miss->add(1);
        }
      }
      slot.ok = true;
    } catch (const RequestError& e) {
      out.resize(out_mark);
      if (obs_on) metrics.errors->add(1);
      write_error_line(out, job.id, e.code, e.message);
    } catch (const std::invalid_argument& e) {
      out.resize(out_mark);
      if (obs_on) metrics.errors->add(1);
      write_error_line(out, job.id, kBadRequest, e.what());
    } catch (const std::exception& e) {
      out.resize(out_mark);
      if (obs_on) metrics.errors->add(1);
      write_error_line(out, job.id, "internal", e.what());
    }
    if (!slot.ok && obs_on) {
      metrics.ns->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               job.t0)
              .count()));
    }
  }

  // One SoA evaluation over every unique miss in the batch. Specs were
  // validated during resolve, so a throw here is defensive: fail the
  // whole miss set rather than publish half-written numbers.
  if (miss_count > 0) {
    try {
      state.extrapolator.evaluate_batch(specs.first(miss_count),
                                        computed.first(miss_count));
    } catch (const std::exception& e) {
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        Slot& slot = slots[i];
        if (!slot.ok || (slot.miss == kNone && slot.dup_of == kNone)) {
          continue;
        }
        slot.ok = false;
        if (obs_on) metrics.errors->add(1);
        write_error_line(*jobs[i].out, jobs[i].id, "internal", e.what());
      }
      miss_count = 0;
    }
  }

  // Publish in request order: a miss renders then inserts, a duplicate
  // reads the earlier slot (already published — dup_of < i).
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    Slot& slot = slots[i];
    if (!slot.ok) continue;
    if (slot.miss != kNone) {
      const core::ScenarioNumbers& numbers = computed[slot.miss];
      slot.numbers = WhatifNumbers{numbers.system_failure,
                                   numbers.machine_failure,
                                   numbers.failure_floor,
                                   numbers.decomposition.floor,
                                   numbers.decomposition.mean_field,
                                   numbers.decomposition.covariance};
      whatif_cache_.insert(std::span<const double>(slot.key), slot.numbers);
    } else if (slot.dup_of != kNone) {
      slot.numbers = slots[slot.dup_of].numbers;
    }
    std::string& out = *jobs[i].out;
    begin_result(out, jobs[i].id);
    append_whatif_body(out, slot.numbers, slot.cached);
    end_result(out);
    if (obs_on) {
      metrics.ns->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               jobs[i].t0)
              .count()));
    }
  }
}

// --- Endpoint handlers --------------------------------------------------

void Service::handle_analyze(const Loaded* state_ptr, const Parsed&,
                             RequestScratch&, std::string& out) {
  const Loaded& state = *state_ptr;
  const core::FailureDecomposition decomposition =
      state.model.decompose(state.field);
  out += "\"classes\":";
  append_json_uint(out, state.model.class_count());
  out += ",\"trial\":{\"system_failure\":";
  append_json_number(out, state.model.system_failure_probability(state.trial));
  out += ",\"machine_failure\":";
  append_json_number(out,
                     state.model.machine_failure_probability(state.trial));
  out += "},\"field\":{\"system_failure\":";
  append_json_number(out, state.model.system_failure_probability(state.field));
  out += ",\"machine_failure\":";
  append_json_number(out,
                     state.model.machine_failure_probability(state.field));
  out += ",\"failure_floor\":";
  append_json_number(out, state.model.failure_floor(state.field));
  out += ",\"decomposition\":{\"floor\":";
  append_json_number(out, decomposition.floor);
  out += ",\"mean_field\":";
  append_json_number(out, decomposition.mean_field);
  out += ",\"covariance\":";
  append_json_number(out, decomposition.covariance);
  out += "}}";
}

Service::WhatifRequest Service::resolve_whatif(const Loaded& state,
                                               const JsonValue& spec,
                                               RequestScratch& scratch) const {
  const double reader_factor = number_param(spec, "reader_factor", 1.0);
  const double machine_factor = number_param(spec, "machine_factor", 1.0);
  if (reader_factor < 0.0 || machine_factor < 0.0) {
    throw RequestError{kBadRequest, "factors must be non-negative"};
  }
  const bool use_field = field_profile_param(spec);

  scratch.class_factors.clear();
  if (const JsonValue* per_class = spec.find("per_class");
      per_class != nullptr && !per_class->is_null()) {
    if (!per_class->is_object()) {
      throw RequestError{kBadRequest, "per_class must be an object"};
    }
    for (std::size_t i = 0; i < per_class->member_count; ++i) {
      const JsonMember& member = per_class->members[i];
      if (!member.value.is_number() || !std::isfinite(member.value.number) ||
          member.value.number < 0.0) {
        throw RequestError{kBadRequest,
                           "per_class factors must be non-negative numbers"};
      }
      std::size_t index = 0;
      try {
        index = state.model.index_of(std::string(member.name()));
      } catch (const std::invalid_argument&) {
        throw RequestError{kBadRequest, "unknown class '" +
                                            std::string(member.name()) + "'"};
      }
      scratch.class_factors.emplace_back(index, member.value.number);
    }
    // Canonical key order: the transforms commute across classes, so two
    // spellings of the same map must share one cache entry.
    std::sort(scratch.class_factors.begin(), scratch.class_factors.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  scratch.key.clear();
  scratch.key.push_back(use_field ? 1.0 : 0.0);
  scratch.key.push_back(reader_factor);
  scratch.key.push_back(machine_factor);
  scratch.key.push_back(static_cast<double>(scratch.class_factors.size()));
  for (const auto& [index, factor] : scratch.class_factors) {
    scratch.key.push_back(static_cast<double>(index));
    scratch.key.push_back(factor);
  }
  return WhatifRequest{reader_factor, machine_factor, use_field};
}

Service::WhatifNumbers Service::compute_whatif(const Loaded& state,
                                               const JsonValue& spec,
                                               RequestScratch& scratch,
                                               bool& cached) const {
  const bool obs_on = obs::enabled();
  const WhatifRequest request = resolve_whatif(state, spec, scratch);

  if (const std::optional<WhatifNumbers> hit =
          whatif_cache_.find(std::span<const double>(scratch.key))) {
    cached = true;
    if (obs_on) metrics_[kWhatif].cache_hit->add(1);
    return *hit;
  }
  cached = false;
  if (obs_on) metrics_[kWhatif].cache_miss->add(1);

  core::Scenario scenario;
  scenario.reader_failure_factor = request.reader_factor;
  scenario.machine_failure_factor = request.machine_factor;
  scenario.per_class_machine_factors.assign(scratch.class_factors.begin(),
                                            scratch.class_factors.end());
  if (request.use_field) scenario.profile = state.field;
  const core::ScenarioResult result = state.extrapolator.evaluate(scenario);
  const WhatifNumbers numbers{result.system_failure,
                              result.machine_failure,
                              result.failure_floor,
                              result.decomposition.floor,
                              result.decomposition.mean_field,
                              result.decomposition.covariance};
  whatif_cache_.insert(std::span<const double>(scratch.key), numbers);
  return numbers;
}

void Service::append_whatif_body(std::string& out,
                                 const WhatifNumbers& numbers, bool cached) {
  out += "\"system_failure\":";
  append_json_number(out, numbers.system_failure);
  out += ",\"machine_failure\":";
  append_json_number(out, numbers.machine_failure);
  out += ",\"failure_floor\":";
  append_json_number(out, numbers.failure_floor);
  out += ",\"decomposition\":{\"floor\":";
  append_json_number(out, numbers.floor);
  out += ",\"mean_field\":";
  append_json_number(out, numbers.mean_field);
  out += ",\"covariance\":";
  append_json_number(out, numbers.covariance);
  out += "},\"cached\":";
  out += cached ? "true" : "false";
}

void Service::handle_whatif(const Loaded* state, const Parsed& request,
                            RequestScratch& scratch, std::string& out) {
  bool cached = false;
  const WhatifNumbers numbers = compute_whatif(
      *state, request.params != nullptr ? *request.params : kEmptyParams,
      scratch, cached);
  append_whatif_body(out, numbers, cached);
}

void Service::handle_sweep(const Loaded* state_ptr, const Parsed& request,
                           RequestScratch& scratch, std::string& out) {
  const Loaded& state = *state_ptr;
  const Clock::time_point deadline = request.deadline;
  const bool obs_on = obs::enabled();
  const JsonValue& p =
      request.params != nullptr ? *request.params : kEmptyParams;
  const std::size_t steps = static_cast<std::size_t>(
      uint_param(p, "steps", 256, 2, options_.max_sweep_steps));
  const std::size_t points = static_cast<std::size_t>(
      uint_param(p, "points", 17, 2, kMaxSweepPoints));
  const double lo = number_param(p, "lo", -4.0);
  const double hi = number_param(p, "hi", 4.0);
  if (!(lo < hi)) throw RequestError{kBadRequest, "lo must be below hi"};

  scratch.key.clear();
  scratch.key.push_back(lo);
  scratch.key.push_back(hi);
  scratch.key.push_back(static_cast<double>(steps));
  scratch.key.push_back(static_cast<double>(points));

  bool cached = true;
  std::optional<SweepSummary> summary =
      sweep_cache_.find(std::span<const double>(scratch.key));
  if (obs_on) {
    (summary ? metrics_[kSweep].cache_hit : metrics_[kSweep].cache_miss)
        ->add(1);
  }
  if (!summary) {
    cached = false;
    exec::Workspace& workspace = exec::thread_workspace();
    const std::span<double> thresholds = workspace.alloc<double>(steps);
    for (std::size_t i = 0; i < steps; ++i) {
      thresholds[i] = lo + (hi - lo) * static_cast<double>(i) /
                               static_cast<double>(steps - 1);
    }
    const std::span<core::SystemOperatingPoint> curve =
        workspace.alloc<core::SystemOperatingPoint>(steps);
    const exec::Config config{options_.compute_threads};
    for (std::size_t first = 0; first < steps; first += kSweepChunk) {
      check_deadline(deadline);
      const std::size_t count = std::min(kSweepChunk, steps - first);
      state.analyzer.sweep_into(thresholds.subspan(first, count),
                                curve.subspan(first, count), config);
    }
    SweepSummary built;
    built.point_count = static_cast<std::uint32_t>(points);
    for (std::size_t j = 0; j < points; ++j) {
      const std::size_t index = j * (steps - 1) / (points - 1);
      built.points[j] = curve[index];
    }
    sweep_cache_.insert(std::span<const double>(scratch.key), built);
    summary = built;
  }

  out += "\"steps\":";
  append_json_uint(out, steps);
  out += ",\"lo\":";
  append_json_number(out, lo);
  out += ",\"hi\":";
  append_json_number(out, hi);
  out += ",\"points\":[";
  for (std::uint32_t j = 0; j < summary->point_count; ++j) {
    if (j != 0) out += ',';
    append_operating_point(out, summary->points[j]);
  }
  out += "],\"cached\":";
  out += cached ? "true" : "false";
}

void Service::handle_minimise(const Loaded* state_ptr, const Parsed& request,
                              RequestScratch& scratch, std::string& out) {
  const Loaded& state = *state_ptr;
  const Clock::time_point deadline = request.deadline;
  const bool obs_on = obs::enabled();
  const JsonValue& p =
      request.params != nullptr ? *request.params : kEmptyParams;
  const double cost_fn = number_param(p, "cost_fn", 500.0);
  const double cost_fp = number_param(p, "cost_fp", 20.0);
  if (cost_fn < 0.0 || cost_fp < 0.0) {
    throw RequestError{kBadRequest, "costs must be non-negative"};
  }
  const std::size_t steps = static_cast<std::size_t>(
      uint_param(p, "steps", 2048, 2, options_.max_sweep_steps));
  const double lo = number_param(p, "lo", -4.0);
  const double hi = number_param(p, "hi", 4.0);
  if (!(lo < hi)) throw RequestError{kBadRequest, "lo must be below hi"};

  scratch.key.clear();
  scratch.key.push_back(cost_fn);
  scratch.key.push_back(cost_fp);
  scratch.key.push_back(lo);
  scratch.key.push_back(hi);
  scratch.key.push_back(static_cast<double>(steps));

  bool cached = true;
  std::optional<MinimiseNumbers> best =
      minimise_cache_.find(std::span<const double>(scratch.key));
  if (obs_on) {
    (best ? metrics_[kMinimise].cache_hit : metrics_[kMinimise].cache_miss)
        ->add(1);
  }
  if (!best) {
    cached = false;
    const exec::Config config{options_.compute_threads};
    core::CostedOperatingPoint folded;
    // Fold sub-ranges in ascending grid order with strict < — the shard
    // merge rule — so the chunked scan matches minimise_cost exactly.
    for (std::size_t first = 0; first < steps; first += kMinimiseChunk) {
      check_deadline(deadline);
      const std::size_t last = std::min(first + kMinimiseChunk, steps);
      const core::CostedOperatingPoint candidate =
          state.analyzer.minimise_cost_range(cost_fn, cost_fp, lo, hi, steps,
                                             first, last, config);
      if (candidate.valid && (!folded.valid || candidate.cost < folded.cost)) {
        folded = candidate;
      }
    }
    best = MinimiseNumbers{folded.point, folded.cost};
    minimise_cache_.insert(std::span<const double>(scratch.key), *best);
  }

  out += "\"best\":";
  append_operating_point(out, best->best);
  out += ",\"cost\":";
  append_json_number(out, best->cost);
  out += ",\"steps\":";
  append_json_uint(out, steps);
  out += ",\"cached\":";
  out += cached ? "true" : "false";
}

void Service::handle_uq(const Loaded* state_ptr, const Parsed& request,
                        RequestScratch& scratch, std::string& out) {
  const Loaded& state = *state_ptr;
  const Clock::time_point deadline = request.deadline;
  const bool obs_on = obs::enabled();
  const JsonValue& p =
      request.params != nullptr ? *request.params : kEmptyParams;
  const std::size_t draws = static_cast<std::size_t>(
      uint_param(p, "draws", 2000, 16, options_.max_uq_draws));
  const double credibility = number_param(p, "credibility", 0.95);
  if (!(credibility > 0.0 && credibility < 1.0)) {
    throw RequestError{kBadRequest, "credibility must be in (0, 1)"};
  }
  const std::uint64_t seed =
      uint_param(p, "seed", 20030625, 0, 9007199254740992ULL);
  const bool use_field = field_profile_param(p);

  scratch.key.clear();
  scratch.key.push_back(static_cast<double>(draws));
  scratch.key.push_back(credibility);
  scratch.key.push_back(static_cast<double>(seed));
  scratch.key.push_back(use_field ? 1.0 : 0.0);

  bool cached = true;
  std::optional<UqNumbers> numbers =
      uq_cache_.find(std::span<const double>(scratch.key));
  if (obs_on) {
    (numbers ? metrics_[kUq].cache_hit : metrics_[kUq].cache_miss)->add(1);
  }
  if (!numbers) {
    cached = false;
    check_deadline(deadline);
    stats::Rng rng(seed);
    const core::UncertainPrediction prediction = state.sampler.predict(
        use_field ? state.field : state.trial, rng, draws, credibility,
        exec::Config{options_.compute_threads});
    numbers = UqNumbers{prediction.mean, prediction.lower, prediction.upper,
                        prediction.stddev};
    uq_cache_.insert(std::span<const double>(scratch.key), *numbers);
  }

  out += "\"mean\":";
  append_json_number(out, numbers->mean);
  out += ",\"lower\":";
  append_json_number(out, numbers->lower);
  out += ",\"upper\":";
  append_json_number(out, numbers->upper);
  out += ",\"stddev\":";
  append_json_number(out, numbers->stddev);
  out += ",\"draws\":";
  append_json_uint(out, draws);
  out += ",\"credibility\":";
  append_json_number(out, credibility);
  out += ",\"cached\":";
  out += cached ? "true" : "false";
}

void Service::handle_compare(const Loaded* state_ptr, const Parsed& request,
                             RequestScratch& scratch, std::string& out) {
  const Loaded& state = *state_ptr;
  const JsonValue* params = request.params;
  if (params == nullptr) {
    throw RequestError{kBadRequest, "params.scenarios is required"};
  }
  const JsonValue* scenarios = params->find("scenarios");
  if (scenarios == nullptr || !scenarios->is_array() ||
      scenarios->item_count == 0) {
    throw RequestError{kBadRequest,
                       "params.scenarios must be a non-empty array"};
  }
  if (scenarios->item_count > options_.max_compare_scenarios) {
    throw RequestError{
        kBadRequest,
        "too many scenarios (max " +
            std::to_string(options_.max_compare_scenarios) + ")"};
  }

  struct Ranked {
    const char* name;
    std::size_t name_size;
    std::size_t index;
    WhatifNumbers numbers;
  };
  exec::Workspace& workspace = exec::thread_workspace();
  const std::span<Ranked> ranked =
      workspace.alloc<Ranked>(scenarios->item_count);
  for (std::size_t i = 0; i < scenarios->item_count; ++i) {
    const JsonValue& spec = scenarios->items[i];
    if (!spec.is_object()) {
      throw RequestError{kBadRequest, "each scenario must be an object"};
    }
    const JsonValue* name = spec.find("name");
    Ranked entry{nullptr, 0, i, {}};
    if (name != nullptr && name->is_string()) {
      entry.name = name->text;
      entry.name_size = name->text_size;
    }
    bool cached = false;
    entry.numbers = compute_whatif(state, spec, scratch, cached);
    ranked[i] = entry;
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a,
                                             const Ranked& b) {
    if (a.numbers.system_failure != b.numbers.system_failure) {
      return a.numbers.system_failure < b.numbers.system_failure;
    }
    return a.index < b.index;  // deterministic tie order: request order
  });

  out += "\"ranking\":[";
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    if (r != 0) out += ',';
    out += "{\"rank\":";
    append_json_uint(out, r + 1);
    out += ",\"name\":\"";
    if (ranked[r].name != nullptr) {
      append_json_escaped(
          out, std::string_view(ranked[r].name, ranked[r].name_size));
    } else {
      out += "scenario-";
      append_json_uint(out, ranked[r].index);
    }
    out += "\",\"system_failure\":";
    append_json_number(out, ranked[r].numbers.system_failure);
    out += ",\"machine_failure\":";
    append_json_number(out, ranked[r].numbers.machine_failure);
    out += ",\"failure_floor\":";
    append_json_number(out, ranked[r].numbers.failure_floor);
    out += '}';
  }
  out += ']';
}

void Service::handle_health(const Loaded* state, const Parsed&,
                            RequestScratch&, std::string& out) {
  out += "\"status\":\"";
  out += draining() ? "draining" : "ok";
  out += "\",\"epoch\":";
  append_json_uint(out, epoch());
  out += ",\"classes\":";
  append_json_uint(out, state->model.class_count());
  out += ",\"uptime_ms\":";
  append_json_uint(out, static_cast<std::uint64_t>(
                            std::chrono::duration_cast<std::chrono::milliseconds>(
                                Clock::now() - started_)
                                .count()));
  out += ",\"in_flight\":";
  append_json_uint(out, gate_.in_flight());
  out += ",\"queued\":";
  append_json_uint(out, gate_.queued());
}

void Service::handle_metrics(const Loaded*, const Parsed&, RequestScratch&,
                             std::string& out) {
  const obs::Snapshot snapshot = obs::registry_snapshot();
  out += "\"enabled\":";
  out += obs::enabled() ? "true" : "false";
  out += ",\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    append_json_escaped(out, snapshot.counters[i].name);
    out += "\":";
    append_json_uint(out, snapshot.counters[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const obs::HistogramSnapshot& h = snapshot.histograms[i];
    if (i != 0) out += ',';
    out += '"';
    append_json_escaped(out, h.name);
    out += "\":{\"count\":";
    append_json_uint(out, h.count);
    out += ",\"sum\":";
    append_json_uint(out, h.sum);
    out += ",\"min\":";
    append_json_uint(out, h.min);
    out += ",\"max\":";
    append_json_uint(out, h.max);
    out += ",\"p50\":";
    append_json_uint(out, h.p50);
    out += ",\"p90\":";
    append_json_uint(out, h.p90);
    out += ",\"p99\":";
    append_json_uint(out, h.p99);
    // Derived report-side from the raw buckets the snapshot carries; the
    // histogram itself never stores a p99.9.
    out += ",\"p999\":";
    append_json_uint(out, obs::snapshot_quantile(h, 0.999));
    out += '}';
  }
  out += '}';
  // Per-worker cluster stats (DESIGN.md §15): empty until this process
  // has coordinated a cluster run. Addresses are operator-supplied
  // strings, so they go through the escaper like any other input.
  const std::vector<exec::ClusterWorkerStats> workers =
      exec::cluster_worker_stats();
  out += ",\"workers\":[";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const exec::ClusterWorkerStats& w = workers[i];
    if (i != 0) out += ',';
    out += "{\"address\":\"";
    append_json_escaped(out, w.address);
    out += "\",\"tasks\":";
    append_json_uint(out, w.tasks);
    out += ",\"bytes_out\":";
    append_json_uint(out, w.bytes_out);
    out += ",\"bytes_in\":";
    append_json_uint(out, w.bytes_in);
    out += ",\"retries\":";
    append_json_uint(out, w.retries);
    out += ",\"readmitted\":";
    append_json_uint(out, w.readmitted);
    out += ",\"inflight\":";
    append_json_uint(out, w.inflight);
    out += ",\"window\":";
    append_json_uint(out, w.window);
    out += ",\"task_size\":";
    append_json_uint(out, w.task_size);
    out += ",\"last_error\":\"";
    append_json_escaped(out, w.last_error);
    out += "\"}";
  }
  out += ']';
}

void Service::handle_reload(const Loaded*, const Parsed& request,
                            RequestScratch&, std::string& out) {
  const JsonValue* params = request.params;
  if (params == nullptr) {
    throw RequestError{kBadRequest,
                       "params.model/.trial/.field are required"};
  }
  const JsonValue* model_text = params->find("model");
  const JsonValue* trial_text = params->find("trial");
  const JsonValue* field_text = params->find("field");
  if (model_text == nullptr || !model_text->is_string() ||
      trial_text == nullptr || !trial_text->is_string() ||
      field_text == nullptr || !field_text->is_string()) {
    throw RequestError{kBadRequest,
                       "params.model/.trial/.field must be strings"};
  }
  // parse_* throw std::invalid_argument -> bad_request with line info.
  core::SequentialModel model =
      core::parse_sequential_model(std::string(model_text->string()));
  core::DemandProfile trial =
      core::parse_demand_profile(std::string(trial_text->string()));
  core::DemandProfile field =
      core::parse_demand_profile(std::string(field_text->string()));
  reload(std::move(model), std::move(trial), std::move(field));
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  out += "\"epoch\":";
  append_json_uint(out, epoch());
  out += ",\"classes\":";
  append_json_uint(out, state_->model.class_count());
}

void Service::handle_shard(const Loaded*, const Parsed&,
                           RequestScratch& scratch, std::string& out) {
  // The upgrade handshake (DESIGN.md §15): acknowledge, then flag the
  // connection so the socket server flips it into binary shard mode once
  // this burst's responses have flushed. Everything after this response
  // line is HMDF frames, handled by exec::ShardSession — not by this
  // dispatcher.
  scratch.shard_upgrade = true;
  out += "\"shard\":\"ready\",\"protocol\":\"hmdf1\"";
}

}  // namespace hmdiv::serve
