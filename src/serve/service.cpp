#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/model_io.hpp"
#include "exec/config.hpp"
#include "exec/workspace.hpp"
#include "stats/rng.hpp"
#include "stats/special.hpp"

namespace hmdiv::serve {

namespace {

constexpr const char* kBadRequest = "bad_request";
constexpr const char* kDeadlineExceeded = "deadline_exceeded";

/// Thrown by handlers; handle_line maps it to one error response line.
/// The message string allocates — error paths only, never on a cache hit.
struct RequestError {
  const char* code;
  std::string message;
};

/// Must match the Service::Endpoint enumerator order exactly.
constexpr std::array<std::string_view, 9> kEndpointNames = {
    "analyze", "whatif",  "sweep",   "minimise", "uq",
    "compare", "health",  "metrics", "reload"};

[[nodiscard]] std::size_t endpoint_index(std::string_view op) {
  for (std::size_t i = 0; i < kEndpointNames.size(); ++i) {
    if (kEndpointNames[i] == op) return i;
  }
  return kEndpointNames.size();
}

/// Grid chunk sizes between deadline checks: big enough to amortise the
/// clock read, small enough that an expired request dies within ~ms.
constexpr std::size_t kSweepChunk = 2048;
constexpr std::size_t kMinimiseChunk = 8192;

void check_deadline(Service::Clock::time_point deadline) {
  if (Service::Clock::now() >= deadline) {
    throw RequestError{kDeadlineExceeded, "deadline expired mid-compute"};
  }
}

/// `params` with no members — stand-in when a request omits "params".
constexpr JsonValue kEmptyParams{JsonType::kObject};

void append_id(std::string& out, const JsonValue* id) {
  if (id == nullptr) {
    out += "null";
    return;
  }
  switch (id->type) {
    case JsonType::kNumber:
      append_json_number(out, id->number);
      break;
    case JsonType::kString:
      out += '"';
      append_json_escaped(out, id->string());
      out += '"';
      break;
    case JsonType::kBool:
      out += id->boolean ? "true" : "false";
      break;
    default:
      out += "null";
  }
}

void begin_result(std::string& out, const JsonValue* id) {
  out += "{\"id\":";
  append_id(out, id);
  out += ",\"ok\":true,\"result\":{";
}

void end_result(std::string& out) { out += "}}\n"; }

void write_error_line(std::string& out, const JsonValue* id,
                      std::string_view code, std::string_view message) {
  out += "{\"id\":";
  append_id(out, id);
  out += ",\"ok\":false,\"error\":{\"code\":\"";
  append_json_escaped(out, code);
  out += "\",\"message\":\"";
  append_json_escaped(out, message);
  out += "\"}}\n";
}

// --- Parameter extraction ----------------------------------------------

[[nodiscard]] double number_param(const JsonValue& params,
                                  std::string_view name, double fallback) {
  const JsonValue* v = params.find(name);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_number() || !std::isfinite(v->number)) {
    throw RequestError{kBadRequest,
                       std::string(name) + " must be a finite number"};
  }
  return v->number;
}

[[nodiscard]] std::uint64_t uint_param(const JsonValue& params,
                                       std::string_view name,
                                       std::uint64_t fallback,
                                       std::uint64_t lo, std::uint64_t hi) {
  const JsonValue* v = params.find(name);
  if (v == nullptr || v->is_null()) return fallback;
  const bool integral = v->is_number() && std::isfinite(v->number) &&
                        v->number >= 0.0 &&
                        v->number == std::floor(v->number) &&
                        v->number <= 9007199254740992.0;  // 2^53
  if (!integral || static_cast<std::uint64_t>(v->number) < lo ||
      static_cast<std::uint64_t>(v->number) > hi) {
    throw RequestError{kBadRequest, std::string(name) +
                                        " must be an integer in [" +
                                        std::to_string(lo) + ", " +
                                        std::to_string(hi) + "]"};
  }
  return static_cast<std::uint64_t>(v->number);
}

/// True for "field" (the default), false for "trial".
[[nodiscard]] bool field_profile_param(const JsonValue& params) {
  const JsonValue* v = params.find("profile");
  if (v == nullptr || v->is_null()) return true;
  if (v->is_string()) {
    if (v->string() == "field") return true;
    if (v->string() == "trial") return false;
  }
  throw RequestError{kBadRequest, "profile must be \"trial\" or \"field\""};
}

void append_operating_point(std::string& out,
                            const core::SystemOperatingPoint& p) {
  out += "{\"threshold\":";
  append_json_number(out, p.threshold);
  out += ",\"machine_fn\":";
  append_json_number(out, p.machine_fn);
  out += ",\"machine_fp\":";
  append_json_number(out, p.machine_fp);
  out += ",\"system_fn\":";
  append_json_number(out, p.system_fn);
  out += ",\"system_fp\":";
  append_json_number(out, p.system_fp);
  out += ",\"sensitivity\":";
  append_json_number(out, p.sensitivity);
  out += ",\"specificity\":";
  append_json_number(out, p.specificity);
  out += ",\"recall_rate\":";
  append_json_number(out, p.recall_rate);
  out += ",\"ppv\":";
  append_json_number(out, p.ppv);
  out += '}';
}

}  // namespace

// --- Model state --------------------------------------------------------

namespace {

/// The trade-off machine implied by each class's PMf at threshold 0
/// (mu = -probit(PMf)) — mirrors the hmdiv_analyze profiling workload so
/// serve answers match the CLI's.
[[nodiscard]] core::BinormalMachine machine_for(
    const core::SequentialModel& model) {
  core::BinormalMachine machine;
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    const double p_mf = std::min(
        std::max(model.parameters(x).p_machine_fails, 1e-9), 1.0 - 1e-9);
    machine.cancer_class_means.push_back(-stats::normal_quantile(p_mf));
    machine.normal_class_means.push_back(-2.0);
  }
  return machine;
}

[[nodiscard]] std::vector<core::HumanFnResponse> fn_response_for(
    const core::SequentialModel& model) {
  std::vector<core::HumanFnResponse> response;
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    const auto& p = model.parameters(x);
    response.push_back({p.p_human_fails_given_machine_succeeds,
                        p.p_human_fails_given_machine_fails});
  }
  return response;
}

[[nodiscard]] std::vector<core::HumanFpResponse> fp_response_for(
    const core::SequentialModel& model) {
  return std::vector<core::HumanFpResponse>(model.class_count(),
                                            {0.1, 0.02});
}

/// Synthetic per-class trial counts at the configured trial size, so the
/// uq endpoint has a posterior even when no real counts were supplied.
[[nodiscard]] std::vector<core::ClassCounts> synthetic_counts_for(
    const core::SequentialModel& model, const ServiceOptions& options) {
  std::vector<core::ClassCounts> counts;
  const std::uint64_t cases =
      std::max<std::uint64_t>(1, options.uq_cases_per_class);
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    const auto& p = model.parameters(x);
    core::ClassCounts c;
    c.cases = cases;
    c.machine_failures = std::min(
        cases, static_cast<std::uint64_t>(std::llround(
                   p.p_machine_fails * static_cast<double>(cases))));
    const std::uint64_t machine_successes = cases - c.machine_failures;
    c.human_failures_given_machine_failed = std::min(
        c.machine_failures,
        static_cast<std::uint64_t>(std::llround(
            p.p_human_fails_given_machine_fails *
            static_cast<double>(c.machine_failures))));
    c.human_failures_given_machine_succeeded = std::min(
        machine_successes,
        static_cast<std::uint64_t>(std::llround(
            p.p_human_fails_given_machine_succeeds *
            static_cast<double>(machine_successes))));
    counts.push_back(c);
  }
  return counts;
}

}  // namespace

// The derived engines are constructed in place (Extrapolator and
// TradeoffAnalyzer carry mutex-bearing caches, so they are deliberately
// immovable); the ctor copies from the already-moved-in model/profiles.
struct Service::Loaded {
  core::SequentialModel model;
  core::DemandProfile trial;
  core::DemandProfile field;
  core::Extrapolator extrapolator;
  core::TradeoffAnalyzer analyzer;
  core::PosteriorModelSampler sampler;

  Loaded(core::SequentialModel model_in, core::DemandProfile trial_in,
         core::DemandProfile field_in, const ServiceOptions& options)
      : model(std::move(model_in)),
        trial(std::move(trial_in)),
        field(std::move(field_in)),
        extrapolator(model, trial),
        analyzer(machine_for(model), field, fn_response_for(model), field,
                 fp_response_for(model), /*prevalence=*/0.007),
        sampler(model.class_names(), synthetic_counts_for(model, options)) {}
};

std::unique_ptr<Service::Loaded> Service::build_loaded(
    core::SequentialModel model, core::DemandProfile trial,
    core::DemandProfile field, const ServiceOptions& options) {
  if (!model.compatible_with(trial)) {
    throw std::invalid_argument(
        "trial profile is not defined over the model's classes");
  }
  if (!model.compatible_with(field)) {
    throw std::invalid_argument(
        "field profile is not defined over the model's classes");
  }
  return std::make_unique<Loaded>(std::move(model), std::move(trial),
                                  std::move(field), options);
}

Service::Service(core::SequentialModel model, core::DemandProfile trial,
                 core::DemandProfile field, ServiceOptions options)
    : options_(options),
      gate_({options.max_concurrent != 0
                 ? options.max_concurrent
                 : std::max(1u, std::thread::hardware_concurrency()),
             options.max_queue}),
      started_(Clock::now()),
      state_(build_loaded(std::move(model), std::move(trial),
                          std::move(field), options)) {
  whatif_cache_.set_capacity(options_.whatif_cache_capacity);
  sweep_cache_.set_capacity(options_.sweep_cache_capacity);
  minimise_cache_.set_capacity(options_.minimise_cache_capacity);
  uq_cache_.set_capacity(options_.uq_cache_capacity);

  // Pre-register every endpoint metric so the hot path bumps cached
  // pointers instead of hitting the registry's name lookup per request.
  obs::Registry& registry = obs::Registry::global();
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    std::string base = "serve.";
    base += kEndpointNames[i];
    metrics_[i].requests = &registry.counter(base + ".requests");
    metrics_[i].errors = &registry.counter(base + ".errors");
    metrics_[i].shed = &registry.counter(base + ".shed");
    metrics_[i].ns = &registry.histogram(base + ".ns");
  }
  for (const std::size_t cached : {static_cast<std::size_t>(kWhatif),
                                   static_cast<std::size_t>(kSweep),
                                   static_cast<std::size_t>(kMinimise),
                                   static_cast<std::size_t>(kUq)}) {
    std::string base = "serve.";
    base += kEndpointNames[cached];
    metrics_[cached].cache_hit = &registry.counter(base + ".cache_hit");
    metrics_[cached].cache_miss = &registry.counter(base + ".cache_miss");
  }
}

Service::~Service() = default;

void Service::clear_caches() {
  whatif_cache_.clear();
  sweep_cache_.clear();
  minimise_cache_.clear();
  uq_cache_.clear();
}

void Service::reload(core::SequentialModel model, core::DemandProfile trial,
                     core::DemandProfile field) {
  // Build outside the lock (may throw; current state stays untouched).
  std::unique_ptr<Loaded> next = build_loaded(
      std::move(model), std::move(trial), std::move(field), options_);
  const std::unique_lock<std::shared_mutex> lock(state_mutex_);
  state_ = std::move(next);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  // Under the exclusive lock no request can be mid-insert (all cache
  // traffic happens under the shared lock), so no stale value survives.
  clear_caches();
}

// --- Request dispatch ---------------------------------------------------

void Service::handle_line(std::string_view line, RequestScratch& scratch,
                          std::string& out) {
  const Clock::time_point t0 = Clock::now();
  const bool obs_on = obs::enabled();
  const std::size_t out_mark = out.size();

  exec::Workspace& workspace = exec::thread_workspace();
  const exec::Workspace::Scope scope(workspace);

  const JsonParser::Result parsed = scratch.parser.parse(line, workspace);
  if (parsed.value == nullptr || !parsed.value->is_object()) {
    HMDIV_OBS_COUNT("serve.protocol.errors", 1);
    std::string message = "invalid request: ";
    if (parsed.value == nullptr) {
      message += parsed.error;
      message += " at byte ";
      message += std::to_string(parsed.error_at);
    } else {
      message += "request must be a JSON object";
    }
    write_error_line(out, nullptr, kBadRequest, message);
    return;
  }
  const JsonValue& root = *parsed.value;
  const JsonValue* id = root.find("id");
  const JsonValue* op = root.find("op");
  if (op == nullptr || !op->is_string()) {
    HMDIV_OBS_COUNT("serve.protocol.errors", 1);
    write_error_line(out, id, kBadRequest, "missing \"op\" string");
    return;
  }
  const std::size_t ep_index = endpoint_index(op->string());
  if (ep_index == kEndpointNames.size()) {
    HMDIV_OBS_COUNT("serve.protocol.errors", 1);
    write_error_line(out, id, "unknown_op",
                     "unknown op '" + std::string(op->string()) + "'");
    return;
  }
  const auto ep = static_cast<Endpoint>(ep_index);
  EndpointMetrics& metrics = metrics_[ep];
  if (obs_on) metrics.requests->add(1);

  try {
    // Per-request deadline: requested (capped) or the configured default.
    std::uint64_t deadline_ms = options_.default_deadline_ms;
    if (const JsonValue* dl = root.find("deadline_ms");
        dl != nullptr && !dl->is_null()) {
      if (!dl->is_number() || !std::isfinite(dl->number) ||
          dl->number < 1.0 || dl->number != std::floor(dl->number)) {
        throw RequestError{kBadRequest,
                           "deadline_ms must be a positive integer"};
      }
      deadline_ms =
          dl->number >= static_cast<double>(options_.max_deadline_ms)
              ? options_.max_deadline_ms
              : static_cast<std::uint64_t>(dl->number);
    }
    const Clock::time_point deadline =
        t0 + std::chrono::milliseconds(deadline_ms);

    const JsonValue* params = root.find("params");
    if (params != nullptr && params->is_null()) params = nullptr;
    if (params != nullptr && !params->is_object()) {
      throw RequestError{kBadRequest, "params must be an object"};
    }

    switch (ep) {
      case kHealth: {
        const std::shared_lock<std::shared_mutex> lock(state_mutex_);
        begin_result(out, id);
        handle_health(*state_, out);
        end_result(out);
        break;
      }
      case kMetrics: {
        begin_result(out, id);
        handle_metrics(out);
        end_result(out);
        break;
      }
      case kReload: {
        begin_result(out, id);
        handle_reload(params, out);
        end_result(out);
        break;
      }
      default: {
        // Compute endpoints go through admission control.
        const AdmissionTicket ticket(gate_, deadline);
        if (ticket.outcome() == AdmissionGate::Outcome::kShedQueueFull) {
          if (obs_on) metrics.shed->add(1);
          write_error_line(out, id, "shed",
                           "admission queue full; retry later");
          break;
        }
        if (ticket.outcome() ==
            AdmissionGate::Outcome::kDeadlineExceeded) {
          throw RequestError{kDeadlineExceeded,
                             "deadline expired while queued"};
        }
        check_deadline(deadline);
        const std::shared_lock<std::shared_mutex> lock(state_mutex_);
        const Loaded& state = *state_;
        begin_result(out, id);
        switch (ep) {
          case kAnalyze:
            handle_analyze(state, params, out);
            break;
          case kWhatif:
            handle_whatif(state, params, scratch, out);
            break;
          case kSweep:
            handle_sweep(state, params, scratch, deadline, out);
            break;
          case kMinimise:
            handle_minimise(state, params, scratch, deadline, out);
            break;
          case kUq:
            handle_uq(state, params, scratch, deadline, out);
            break;
          case kCompare:
            handle_compare(state, params, scratch, out);
            break;
          default:
            throw RequestError{"internal", "unroutable endpoint"};
        }
        end_result(out);
        break;
      }
    }
  } catch (const RequestError& e) {
    out.resize(out_mark);
    if (obs_on) metrics.errors->add(1);
    write_error_line(out, id, e.code, e.message);
  } catch (const std::invalid_argument& e) {
    out.resize(out_mark);
    if (obs_on) metrics.errors->add(1);
    write_error_line(out, id, kBadRequest, e.what());
  } catch (const std::exception& e) {
    out.resize(out_mark);
    if (obs_on) metrics.errors->add(1);
    write_error_line(out, id, "internal", e.what());
  }

  if (obs_on) {
    metrics.ns->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count()));
  }
}

// --- Endpoint handlers --------------------------------------------------

void Service::handle_analyze(const Loaded& state, const JsonValue*,
                             std::string& out) const {
  const core::FailureDecomposition decomposition =
      state.model.decompose(state.field);
  out += "\"classes\":";
  append_json_uint(out, state.model.class_count());
  out += ",\"trial\":{\"system_failure\":";
  append_json_number(out, state.model.system_failure_probability(state.trial));
  out += ",\"machine_failure\":";
  append_json_number(out,
                     state.model.machine_failure_probability(state.trial));
  out += "},\"field\":{\"system_failure\":";
  append_json_number(out, state.model.system_failure_probability(state.field));
  out += ",\"machine_failure\":";
  append_json_number(out,
                     state.model.machine_failure_probability(state.field));
  out += ",\"failure_floor\":";
  append_json_number(out, state.model.failure_floor(state.field));
  out += ",\"decomposition\":{\"floor\":";
  append_json_number(out, decomposition.floor);
  out += ",\"mean_field\":";
  append_json_number(out, decomposition.mean_field);
  out += ",\"covariance\":";
  append_json_number(out, decomposition.covariance);
  out += "}}";
}

Service::WhatifNumbers Service::compute_whatif(const Loaded& state,
                                               const JsonValue& spec,
                                               RequestScratch& scratch,
                                               bool& cached) const {
  const bool obs_on = obs::enabled();
  const double reader_factor = number_param(spec, "reader_factor", 1.0);
  const double machine_factor = number_param(spec, "machine_factor", 1.0);
  if (reader_factor < 0.0 || machine_factor < 0.0) {
    throw RequestError{kBadRequest, "factors must be non-negative"};
  }
  const bool use_field = field_profile_param(spec);

  scratch.class_factors.clear();
  if (const JsonValue* per_class = spec.find("per_class");
      per_class != nullptr && !per_class->is_null()) {
    if (!per_class->is_object()) {
      throw RequestError{kBadRequest, "per_class must be an object"};
    }
    for (std::size_t i = 0; i < per_class->member_count; ++i) {
      const JsonMember& member = per_class->members[i];
      if (!member.value.is_number() || !std::isfinite(member.value.number) ||
          member.value.number < 0.0) {
        throw RequestError{kBadRequest,
                           "per_class factors must be non-negative numbers"};
      }
      std::size_t index = 0;
      try {
        index = state.model.index_of(std::string(member.name()));
      } catch (const std::invalid_argument&) {
        throw RequestError{kBadRequest, "unknown class '" +
                                            std::string(member.name()) + "'"};
      }
      scratch.class_factors.emplace_back(index, member.value.number);
    }
    // Canonical key order: the transforms commute across classes, so two
    // spellings of the same map must share one cache entry.
    std::sort(scratch.class_factors.begin(), scratch.class_factors.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  scratch.key.clear();
  scratch.key.push_back(use_field ? 1.0 : 0.0);
  scratch.key.push_back(reader_factor);
  scratch.key.push_back(machine_factor);
  scratch.key.push_back(static_cast<double>(scratch.class_factors.size()));
  for (const auto& [index, factor] : scratch.class_factors) {
    scratch.key.push_back(static_cast<double>(index));
    scratch.key.push_back(factor);
  }

  if (const std::optional<WhatifNumbers> hit =
          whatif_cache_.find(std::span<const double>(scratch.key))) {
    cached = true;
    if (obs_on) metrics_[kWhatif].cache_hit->add(1);
    return *hit;
  }
  cached = false;
  if (obs_on) metrics_[kWhatif].cache_miss->add(1);

  core::Scenario scenario;
  scenario.reader_failure_factor = reader_factor;
  scenario.machine_failure_factor = machine_factor;
  scenario.per_class_machine_factors.assign(scratch.class_factors.begin(),
                                            scratch.class_factors.end());
  if (use_field) scenario.profile = state.field;
  const core::ScenarioResult result = state.extrapolator.evaluate(scenario);
  const WhatifNumbers numbers{result.system_failure,
                              result.machine_failure,
                              result.failure_floor,
                              result.decomposition.floor,
                              result.decomposition.mean_field,
                              result.decomposition.covariance};
  whatif_cache_.insert(std::span<const double>(scratch.key), numbers);
  return numbers;
}

void Service::handle_whatif(const Loaded& state, const JsonValue* params,
                            RequestScratch& scratch, std::string& out) const {
  bool cached = false;
  const WhatifNumbers numbers = compute_whatif(
      state, params != nullptr ? *params : kEmptyParams, scratch, cached);
  out += "\"system_failure\":";
  append_json_number(out, numbers.system_failure);
  out += ",\"machine_failure\":";
  append_json_number(out, numbers.machine_failure);
  out += ",\"failure_floor\":";
  append_json_number(out, numbers.failure_floor);
  out += ",\"decomposition\":{\"floor\":";
  append_json_number(out, numbers.floor);
  out += ",\"mean_field\":";
  append_json_number(out, numbers.mean_field);
  out += ",\"covariance\":";
  append_json_number(out, numbers.covariance);
  out += "},\"cached\":";
  out += cached ? "true" : "false";
}

void Service::handle_sweep(const Loaded& state, const JsonValue* params,
                           RequestScratch& scratch,
                           Clock::time_point deadline,
                           std::string& out) const {
  const bool obs_on = obs::enabled();
  const JsonValue& p = params != nullptr ? *params : kEmptyParams;
  const std::size_t steps = static_cast<std::size_t>(
      uint_param(p, "steps", 256, 2, options_.max_sweep_steps));
  const std::size_t points = static_cast<std::size_t>(
      uint_param(p, "points", 17, 2, kMaxSweepPoints));
  const double lo = number_param(p, "lo", -4.0);
  const double hi = number_param(p, "hi", 4.0);
  if (!(lo < hi)) throw RequestError{kBadRequest, "lo must be below hi"};

  scratch.key.clear();
  scratch.key.push_back(lo);
  scratch.key.push_back(hi);
  scratch.key.push_back(static_cast<double>(steps));
  scratch.key.push_back(static_cast<double>(points));

  bool cached = true;
  std::optional<SweepSummary> summary =
      sweep_cache_.find(std::span<const double>(scratch.key));
  if (obs_on) {
    (summary ? metrics_[kSweep].cache_hit : metrics_[kSweep].cache_miss)
        ->add(1);
  }
  if (!summary) {
    cached = false;
    exec::Workspace& workspace = exec::thread_workspace();
    const std::span<double> thresholds = workspace.alloc<double>(steps);
    for (std::size_t i = 0; i < steps; ++i) {
      thresholds[i] = lo + (hi - lo) * static_cast<double>(i) /
                               static_cast<double>(steps - 1);
    }
    const std::span<core::SystemOperatingPoint> curve =
        workspace.alloc<core::SystemOperatingPoint>(steps);
    const exec::Config config{options_.compute_threads};
    for (std::size_t first = 0; first < steps; first += kSweepChunk) {
      check_deadline(deadline);
      const std::size_t count = std::min(kSweepChunk, steps - first);
      state.analyzer.sweep_into(thresholds.subspan(first, count),
                                curve.subspan(first, count), config);
    }
    SweepSummary built;
    built.point_count = static_cast<std::uint32_t>(points);
    for (std::size_t j = 0; j < points; ++j) {
      const std::size_t index = j * (steps - 1) / (points - 1);
      built.points[j] = curve[index];
    }
    sweep_cache_.insert(std::span<const double>(scratch.key), built);
    summary = built;
  }

  out += "\"steps\":";
  append_json_uint(out, steps);
  out += ",\"lo\":";
  append_json_number(out, lo);
  out += ",\"hi\":";
  append_json_number(out, hi);
  out += ",\"points\":[";
  for (std::uint32_t j = 0; j < summary->point_count; ++j) {
    if (j != 0) out += ',';
    append_operating_point(out, summary->points[j]);
  }
  out += "],\"cached\":";
  out += cached ? "true" : "false";
}

void Service::handle_minimise(const Loaded& state, const JsonValue* params,
                              RequestScratch& scratch,
                              Clock::time_point deadline,
                              std::string& out) const {
  const bool obs_on = obs::enabled();
  const JsonValue& p = params != nullptr ? *params : kEmptyParams;
  const double cost_fn = number_param(p, "cost_fn", 500.0);
  const double cost_fp = number_param(p, "cost_fp", 20.0);
  if (cost_fn < 0.0 || cost_fp < 0.0) {
    throw RequestError{kBadRequest, "costs must be non-negative"};
  }
  const std::size_t steps = static_cast<std::size_t>(
      uint_param(p, "steps", 2048, 2, options_.max_sweep_steps));
  const double lo = number_param(p, "lo", -4.0);
  const double hi = number_param(p, "hi", 4.0);
  if (!(lo < hi)) throw RequestError{kBadRequest, "lo must be below hi"};

  scratch.key.clear();
  scratch.key.push_back(cost_fn);
  scratch.key.push_back(cost_fp);
  scratch.key.push_back(lo);
  scratch.key.push_back(hi);
  scratch.key.push_back(static_cast<double>(steps));

  bool cached = true;
  std::optional<MinimiseNumbers> best =
      minimise_cache_.find(std::span<const double>(scratch.key));
  if (obs_on) {
    (best ? metrics_[kMinimise].cache_hit : metrics_[kMinimise].cache_miss)
        ->add(1);
  }
  if (!best) {
    cached = false;
    const exec::Config config{options_.compute_threads};
    core::CostedOperatingPoint folded;
    // Fold sub-ranges in ascending grid order with strict < — the shard
    // merge rule — so the chunked scan matches minimise_cost exactly.
    for (std::size_t first = 0; first < steps; first += kMinimiseChunk) {
      check_deadline(deadline);
      const std::size_t last = std::min(first + kMinimiseChunk, steps);
      const core::CostedOperatingPoint candidate =
          state.analyzer.minimise_cost_range(cost_fn, cost_fp, lo, hi, steps,
                                             first, last, config);
      if (candidate.valid && (!folded.valid || candidate.cost < folded.cost)) {
        folded = candidate;
      }
    }
    best = MinimiseNumbers{folded.point, folded.cost};
    minimise_cache_.insert(std::span<const double>(scratch.key), *best);
  }

  out += "\"best\":";
  append_operating_point(out, best->best);
  out += ",\"cost\":";
  append_json_number(out, best->cost);
  out += ",\"steps\":";
  append_json_uint(out, steps);
  out += ",\"cached\":";
  out += cached ? "true" : "false";
}

void Service::handle_uq(const Loaded& state, const JsonValue* params,
                        RequestScratch& scratch, Clock::time_point deadline,
                        std::string& out) const {
  const bool obs_on = obs::enabled();
  const JsonValue& p = params != nullptr ? *params : kEmptyParams;
  const std::size_t draws = static_cast<std::size_t>(
      uint_param(p, "draws", 2000, 16, options_.max_uq_draws));
  const double credibility = number_param(p, "credibility", 0.95);
  if (!(credibility > 0.0 && credibility < 1.0)) {
    throw RequestError{kBadRequest, "credibility must be in (0, 1)"};
  }
  const std::uint64_t seed =
      uint_param(p, "seed", 20030625, 0, 9007199254740992ULL);
  const bool use_field = field_profile_param(p);

  scratch.key.clear();
  scratch.key.push_back(static_cast<double>(draws));
  scratch.key.push_back(credibility);
  scratch.key.push_back(static_cast<double>(seed));
  scratch.key.push_back(use_field ? 1.0 : 0.0);

  bool cached = true;
  std::optional<UqNumbers> numbers =
      uq_cache_.find(std::span<const double>(scratch.key));
  if (obs_on) {
    (numbers ? metrics_[kUq].cache_hit : metrics_[kUq].cache_miss)->add(1);
  }
  if (!numbers) {
    cached = false;
    check_deadline(deadline);
    stats::Rng rng(seed);
    const core::UncertainPrediction prediction = state.sampler.predict(
        use_field ? state.field : state.trial, rng, draws, credibility,
        exec::Config{options_.compute_threads});
    numbers = UqNumbers{prediction.mean, prediction.lower, prediction.upper,
                        prediction.stddev};
    uq_cache_.insert(std::span<const double>(scratch.key), *numbers);
  }

  out += "\"mean\":";
  append_json_number(out, numbers->mean);
  out += ",\"lower\":";
  append_json_number(out, numbers->lower);
  out += ",\"upper\":";
  append_json_number(out, numbers->upper);
  out += ",\"stddev\":";
  append_json_number(out, numbers->stddev);
  out += ",\"draws\":";
  append_json_uint(out, draws);
  out += ",\"credibility\":";
  append_json_number(out, credibility);
  out += ",\"cached\":";
  out += cached ? "true" : "false";
}

void Service::handle_compare(const Loaded& state, const JsonValue* params,
                             RequestScratch& scratch, std::string& out) const {
  if (params == nullptr) {
    throw RequestError{kBadRequest, "params.scenarios is required"};
  }
  const JsonValue* scenarios = params->find("scenarios");
  if (scenarios == nullptr || !scenarios->is_array() ||
      scenarios->item_count == 0) {
    throw RequestError{kBadRequest,
                       "params.scenarios must be a non-empty array"};
  }
  if (scenarios->item_count > options_.max_compare_scenarios) {
    throw RequestError{
        kBadRequest,
        "too many scenarios (max " +
            std::to_string(options_.max_compare_scenarios) + ")"};
  }

  struct Ranked {
    const char* name;
    std::size_t name_size;
    std::size_t index;
    WhatifNumbers numbers;
  };
  exec::Workspace& workspace = exec::thread_workspace();
  const std::span<Ranked> ranked =
      workspace.alloc<Ranked>(scenarios->item_count);
  for (std::size_t i = 0; i < scenarios->item_count; ++i) {
    const JsonValue& spec = scenarios->items[i];
    if (!spec.is_object()) {
      throw RequestError{kBadRequest, "each scenario must be an object"};
    }
    const JsonValue* name = spec.find("name");
    Ranked entry{nullptr, 0, i, {}};
    if (name != nullptr && name->is_string()) {
      entry.name = name->text;
      entry.name_size = name->text_size;
    }
    bool cached = false;
    entry.numbers = compute_whatif(state, spec, scratch, cached);
    ranked[i] = entry;
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a,
                                             const Ranked& b) {
    if (a.numbers.system_failure != b.numbers.system_failure) {
      return a.numbers.system_failure < b.numbers.system_failure;
    }
    return a.index < b.index;  // deterministic tie order: request order
  });

  out += "\"ranking\":[";
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    if (r != 0) out += ',';
    out += "{\"rank\":";
    append_json_uint(out, r + 1);
    out += ",\"name\":\"";
    if (ranked[r].name != nullptr) {
      append_json_escaped(
          out, std::string_view(ranked[r].name, ranked[r].name_size));
    } else {
      out += "scenario-";
      append_json_uint(out, ranked[r].index);
    }
    out += "\",\"system_failure\":";
    append_json_number(out, ranked[r].numbers.system_failure);
    out += ",\"machine_failure\":";
    append_json_number(out, ranked[r].numbers.machine_failure);
    out += ",\"failure_floor\":";
    append_json_number(out, ranked[r].numbers.failure_floor);
    out += '}';
  }
  out += ']';
}

void Service::handle_health(const Loaded& state, std::string& out) const {
  out += "\"status\":\"";
  out += draining() ? "draining" : "ok";
  out += "\",\"epoch\":";
  append_json_uint(out, epoch());
  out += ",\"classes\":";
  append_json_uint(out, state.model.class_count());
  out += ",\"uptime_ms\":";
  append_json_uint(out, static_cast<std::uint64_t>(
                            std::chrono::duration_cast<std::chrono::milliseconds>(
                                Clock::now() - started_)
                                .count()));
  out += ",\"in_flight\":";
  append_json_uint(out, gate_.in_flight());
  out += ",\"queued\":";
  append_json_uint(out, gate_.queued());
}

void Service::handle_metrics(std::string& out) const {
  const obs::Snapshot snapshot = obs::registry_snapshot();
  out += "\"enabled\":";
  out += obs::enabled() ? "true" : "false";
  out += ",\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    append_json_escaped(out, snapshot.counters[i].name);
    out += "\":";
    append_json_uint(out, snapshot.counters[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const obs::HistogramSnapshot& h = snapshot.histograms[i];
    if (i != 0) out += ',';
    out += '"';
    append_json_escaped(out, h.name);
    out += "\":{\"count\":";
    append_json_uint(out, h.count);
    out += ",\"sum\":";
    append_json_uint(out, h.sum);
    out += ",\"min\":";
    append_json_uint(out, h.min);
    out += ",\"max\":";
    append_json_uint(out, h.max);
    out += ",\"p50\":";
    append_json_uint(out, h.p50);
    out += ",\"p90\":";
    append_json_uint(out, h.p90);
    out += ",\"p99\":";
    append_json_uint(out, h.p99);
    out += '}';
  }
  out += '}';
}

void Service::handle_reload(const JsonValue* params, std::string& out) {
  if (params == nullptr) {
    throw RequestError{kBadRequest,
                       "params.model/.trial/.field are required"};
  }
  const JsonValue* model_text = params->find("model");
  const JsonValue* trial_text = params->find("trial");
  const JsonValue* field_text = params->find("field");
  if (model_text == nullptr || !model_text->is_string() ||
      trial_text == nullptr || !trial_text->is_string() ||
      field_text == nullptr || !field_text->is_string()) {
    throw RequestError{kBadRequest,
                       "params.model/.trial/.field must be strings"};
  }
  // parse_* throw std::invalid_argument -> bad_request with line info.
  core::SequentialModel model =
      core::parse_sequential_model(std::string(model_text->string()));
  core::DemandProfile trial =
      core::parse_demand_profile(std::string(trial_text->string()));
  core::DemandProfile field =
      core::parse_demand_profile(std::string(field_text->string()));
  reload(std::move(model), std::move(trial), std::move(field));
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  out += "\"epoch\":";
  append_json_uint(out, epoch());
  out += ",\"classes\":";
  append_json_uint(out, state_->model.class_count());
}

}  // namespace hmdiv::serve
