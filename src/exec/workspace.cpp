#include "exec/workspace.hpp"

#include <algorithm>
#include <cassert>

#include "obs/obs.hpp"

namespace hmdiv::exec {

namespace {

/// Round `value` up to a multiple of `alignment` (a power of two).
constexpr std::size_t align_up(std::size_t value,
                               std::size_t alignment) noexcept {
  return (value + alignment - 1) & ~(alignment - 1);
}

}  // namespace

void* Workspace::alloc_bytes(std::size_t bytes, std::size_t alignment) {
  assert(alignment != 0 && (alignment & (alignment - 1)) == 0);
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (!blocks_.empty()) {
      Block& block = blocks_[active_];
      // Align the actual address, not just the offset: block bases are
      // only guaranteed operator-new alignment.
      const auto base = reinterpret_cast<std::uintptr_t>(block.data.get());
      const std::size_t start =
          align_up(base + block.used, alignment) - base;
      if (start + bytes <= block.size) {
        block.used = start + bytes;
        return block.data.get() + start;
      }
      // Later blocks may have been reserved by a deeper high-water mark;
      // advance through them before growing.
      if (active_ + 1 < blocks_.size()) {
        ++active_;
        blocks_[active_].used = 0;
        continue;
      }
    }
    grow(bytes + alignment);
  }
}

Workspace::Block& Workspace::grow(std::size_t need) {
  // Double the total footprint each time so a steady-state workload ends
  // up touching a single block (the last one) after warm-up.
  const std::size_t size =
      std::max({kMinBlockBytes, need, capacity_});
  Block block;
  block.data = std::make_unique<std::byte[]>(size);
  block.size = size;
  block.used = 0;
  blocks_.push_back(std::move(block));
  active_ = blocks_.size() - 1;
  capacity_ += size;
  HMDIV_OBS_COUNT("exec.arena.blocks", 1);
  HMDIV_OBS_COUNT("exec.arena.bytes", size);
  return blocks_.back();
}

void Workspace::rewind(Mark mark) noexcept {
  if (blocks_.empty()) return;
  assert(mark.block <= active_);
  for (std::size_t b = mark.block + 1; b <= active_; ++b) {
    blocks_[b].used = 0;
  }
  active_ = mark.block;
  blocks_[active_].used = mark.used;
}

std::size_t Workspace::bytes_in_use() const noexcept {
  std::size_t total = 0;
  for (std::size_t b = 0; b <= active_ && b < blocks_.size(); ++b) {
    total += blocks_[b].used;
  }
  return total;
}

Workspace& thread_workspace() {
  thread_local Workspace workspace;
  return workspace;
}

}  // namespace hmdiv::exec
