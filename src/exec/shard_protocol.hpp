// Wire protocol of the multi-process shard engine (exec/shard.hpp).
//
// Parent and workers talk over pipes using length-prefixed binary frames:
//
//   +-------+-------+----------------+-----------------+
//   | magic | type  | payload length | payload bytes   |
//   | u32   | u32   | u64            | ...             |
//   +-------+-------+----------------+-----------------+
//
// All integers are little-endian; doubles travel as their IEEE-754 bit
// patterns, so a value that crosses the pipe and comes back is the *same
// double*, bit for bit — the foundation of the engine's "N shards ==
// 1 process" determinism guarantee. A frame is either complete or absent:
// the incremental FrameParser never yields a frame until every payload
// byte has arrived, so a worker killed mid-write surfaces as a truncated
// stream (EOF with parser not idle), never as a short garbage frame.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hmdiv::exec::wire {

/// Thrown by Reader / FrameParser on malformed bytes (bad magic, truncated
/// payload, over-long length). The shard runner converts it into a
/// structured per-shard failure.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// "HMDF" little-endian: first sanity check on every frame.
inline constexpr std::uint32_t kFrameMagic = 0x46444D48u;

/// Upper bound on a single frame payload (64 MiB). Anything larger is a
/// corrupted length field, not a workload — fail fast instead of trying to
/// buffer it.
inline constexpr std::uint64_t kMaxFramePayload = 64ull << 20;

enum class FrameType : std::uint32_t {
  /// Parent -> worker: shard descriptor + workload config blob.
  task = 1,
  /// Worker -> parent: workload result payload.
  result = 2,
  /// Worker -> parent: serialized obs::Snapshot of the worker registry.
  obs = 3,
  /// Worker -> parent: structured failure description (string).
  error = 4,
  /// Worker -> parent: end-of-task marker carrying the task's id (its
  /// span-start shard index, u32). With several tasks pipelined on one
  /// connection the coordinator matches replies FIFO; the done frame is
  /// the sequencing point that says "every frame before me belonged to
  /// task <id>" — and doubles as an ordering check, since the id must
  /// equal the head of the coordinator's in-flight queue.
  done = 5,
};

/// Append-only byte sink for payload construction.
class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int b = 0; b < 4; ++b) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    }
  }
  void u64(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    }
  }
  /// IEEE-754 bit pattern — exact round trip.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void doubles(std::span<const double> values) {
    u64(values.size());
    for (const double v : values) f64(v);
  }
  void bytes(std::span<const std::uint8_t> raw) {
    bytes_.insert(bytes_.end(), raw.begin(), raw.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked cursor over a payload; throws ProtocolError on underrun.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() { return take(1)[0]; }
  [[nodiscard]] std::uint32_t u32() {
    const auto raw = take(4);
    std::uint32_t v = 0;
    for (int b = 0; b < 4; ++b) v |= std::uint32_t{raw[b]} << (8 * b);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    const auto raw = take(8);
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v |= std::uint64_t{raw[b]} << (8 * b);
    return v;
  }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  [[nodiscard]] std::string str() {
    const std::uint64_t n = u64();
    const auto raw = take(n);
    return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
  }
  [[nodiscard]] std::vector<double> doubles() {
    const std::uint64_t n = u64();
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(f64());
    return out;
  }
  [[nodiscard]] std::span<const std::uint8_t> take(std::uint64_t n) {
    if (n > bytes_.size() - pos_) {
      throw ProtocolError("shard frame payload truncated");
    }
    const auto out = bytes_.subspan(pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return out;
  }
  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::task;
  std::vector<std::uint8_t> payload;
};

/// Serializes a frame (header + payload) onto `out`.
void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::span<const std::uint8_t> payload);

/// Incremental frame decoder over a growing byte stream. feed() appends raw
/// bytes (as read from the pipe); next() pops the earliest complete frame,
/// or nullopt while one is still partial. idle() distinguishes a clean EOF
/// (stream ended on a frame boundary) from a truncated one.
class FrameParser {
 public:
  void feed(std::span<const std::uint8_t> bytes);
  /// Throws ProtocolError on bad magic, unknown type, or an over-long
  /// declared payload length.
  [[nodiscard]] std::optional<Frame> next();
  /// True iff no partial frame is pending.
  [[nodiscard]] bool idle() const { return buffer_.empty(); }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// The shard descriptor the parent hands each worker in its task frame.
struct ShardTask {
  /// Name the workload handler was registered under (exec/shard.hpp).
  std::string workload;
  /// First micro-shard this task covers, in [0, shard_count).
  std::uint32_t shard_index = 0;
  /// Total shards the work is partitioned into.
  std::uint32_t shard_count = 1;
  /// Consecutive micro-shards this task covers, starting at shard_index;
  /// shard_index + span <= shard_count. Because shard_range cuts nest
  /// (cut(k) is a pure function of k), the union of shards
  /// [shard_index, shard_index + span) is the contiguous item range
  /// [cut(shard_index), cut(shard_index + span)) — see task_range() — so
  /// any span partition of the same shard_count yields bit-identical
  /// per-item results. span == 1 is the classic one-task-per-shard shape.
  std::uint32_t span = 1;
  /// Worker thread budget (0 = all hardware threads).
  std::uint32_t threads = 1;
  /// Whether the worker should enable obs and ship its registry back.
  bool obs_enabled = false;
  /// When true `blob` is empty and the worker must reuse the blob it
  /// cached from the most recent non-cached task on the same connection
  /// (for the same workload). Lets a coordinator ship a large config once
  /// per connection instead of once per micro-task.
  bool blob_cached = false;
  /// Opaque workload configuration — identical for every shard; handlers
  /// derive their slice from (shard_index, span, shard_count).
  std::vector<std::uint8_t> blob;
};

[[nodiscard]] std::vector<std::uint8_t> serialize_task(const ShardTask& task);
[[nodiscard]] ShardTask parse_task(std::span<const std::uint8_t> payload);

/// Payload of a done frame: the id (span-start shard index) of the task
/// whose reply frames precede it on the stream.
[[nodiscard]] std::vector<std::uint8_t> serialize_done(std::uint32_t task_id);
[[nodiscard]] std::uint32_t parse_done(std::span<const std::uint8_t> payload);

/// Fixed partition of `items` work units over `shards` workers: shard s
/// covers [begin, end) = [s·m/N, (s+1)·m/N). Depends only on (items,
/// shards), covers the range exactly, and is balanced to within one unit —
/// the substream-partitioning contract every sharded workload uses.
struct ShardRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  [[nodiscard]] std::uint64_t size() const { return end - begin; }
};
[[nodiscard]] ShardRange shard_range(std::uint64_t items, std::uint32_t shard,
                                     std::uint32_t shards) noexcept;

/// Item range a (possibly multi-shard) task covers: the union of
/// shard_range(items, s, task.shard_count) for s in
/// [task.shard_index, task.shard_index + task.span). Contiguous because
/// the shard_range cuts nest; handlers use this instead of shard_range so
/// the same code serves span == 1 and micro-task spans.
[[nodiscard]] ShardRange task_range(std::uint64_t items,
                                    const ShardTask& task) noexcept;

}  // namespace hmdiv::exec::wire
