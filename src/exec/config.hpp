// Execution configuration for the parallel engine (exec/parallel.hpp).
//
// A `Config` says how many threads a parallel region may use; it never
// affects *what* is computed. Every parallel algorithm in this repository
// decomposes its work into fixed-size chunks whose layout depends only on
// the problem size, and every stochastic chunk draws from its own
// substream RNG — so results are bit-identical for any thread count.
//
// The process-wide default is resolved once, on first use, from the
// HMDIV_THREADS environment variable (a positive integer; unset, 0 or
// unparsable means "use all hardware threads"). The CLI's --threads flag
// and tests override it with set_default_config().
#pragma once

namespace hmdiv::exec {

/// Thread-count policy for a parallel region.
struct Config {
  /// Maximum threads a parallel call may use, including the calling
  /// thread. 0 means "auto": std::thread::hardware_concurrency().
  unsigned threads = 0;

  /// The actual thread budget: `threads`, or hardware concurrency (at
  /// least 1) when `threads` is 0.
  [[nodiscard]] unsigned resolved_threads() const noexcept;

  /// A config pinned to a single thread (serial execution).
  [[nodiscard]] static Config serial() noexcept { return Config{1}; }
};

/// Parses HMDIV_THREADS. Unset or empty yields auto; a malformed value
/// (non-numeric, trailing garbage, 0, or > 4096) also yields auto but
/// prints a one-time warning to stderr naming the bad value.
[[nodiscard]] Config config_from_env() noexcept;

namespace detail {
/// Testing hook: re-arms the one-time malformed-HMDIV_THREADS warning.
void reset_env_warning() noexcept;
}  // namespace detail

/// The process-wide default used by parallel calls that are not handed an
/// explicit Config. First call resolves it from the environment.
[[nodiscard]] Config default_config() noexcept;

/// Replaces the process-wide default (e.g. from the --threads CLI flag).
void set_default_config(Config config) noexcept;

}  // namespace hmdiv::exec
