// A lazily-started, process-wide pool of worker threads.
//
// The pool executes *indexed jobs*: run_indexed(count, workers, fn) calls
// fn(0) … fn(count-1) exactly once each, distributing indices over at most
// `workers` threads (calling thread included) and blocking until all have
// finished. Index order across threads is unspecified — determinism is the
// responsibility of the chunked algorithms in exec/parallel.hpp, which
// make each index's work self-contained and merge results by index.
//
// Guarantees:
//  - The first exception thrown by `fn` is captured and rethrown on the
//    calling thread; remaining indices are abandoned.
//  - Re-entrant use is safe: a nested run_indexed from inside a pool
//    worker executes inline on that thread instead of deadlocking.
//  - Concurrent top-level callers are safe: if the pool is busy with
//    another job, the late caller simply runs its job inline.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/function_ref.hpp"

namespace hmdiv::exec {

class ThreadPool {
 public:
  /// Starts `helpers` persistent worker threads (0 is valid: every job
  /// then runs inline on the calling thread).
  explicit ThreadPool(unsigned helpers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of persistent helper threads (calling thread not counted).
  [[nodiscard]] unsigned helper_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Executes fn(0) … fn(count-1), using at most `max_threads` threads
  /// including the caller. Blocks until every index has run (or the job
  /// failed), so the callable behind `fn` only needs to live for the call.
  /// Rethrows the first exception thrown by fn.
  void run_indexed(std::size_t count, unsigned max_threads,
                   FunctionRef<void(std::size_t)> fn);

  /// True while the current thread is a pool helper executing a job.
  [[nodiscard]] static bool on_worker_thread() noexcept;

  /// The process-wide shared pool, sized to hardware_concurrency() − 1
  /// helpers. Started on first use.
  [[nodiscard]] static ThreadPool& global();

 private:
  /// One run_indexed invocation. Helpers pull indices from `next` until
  /// the range is exhausted or a failure is flagged.
  struct Job {
    explicit Job(FunctionRef<void(std::size_t)> f) : fn(f) {}
    FunctionRef<void(std::size_t)> fn;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;     // guarded by error_mutex
    std::mutex error_mutex;
    unsigned active_helpers = 0;  // guarded by the pool mutex
    /// Submission timestamp for queue-wait profiling; only read when
    /// `timed` (set iff obs profiling was enabled at submit time).
    std::chrono::steady_clock::time_point submitted{};
    bool timed = false;
  };

  void worker_loop();
  static void execute(Job& job);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;      // current job accepting helpers; guarded by mutex_
  unsigned job_slots_ = 0;  // helpers the current job still wants
  bool stopping_ = false;
  std::mutex submit_mutex_;  // serialises top-level jobs
};

}  // namespace hmdiv::exec
