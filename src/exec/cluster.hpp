// Multi-host distributed execution: a TCP shard coordinator (DESIGN.md
// §15).
//
// ClusterRunner is the third rung of the execution ladder: threads
// (exec/parallel.hpp) → processes (exec/shard.hpp) → hosts. It fans the
// same substream-partitioned shard tasks the fork/exec engine runs —
// sim.trial batch ranges, core.sweep / core.minimise grid subspans,
// core.uq.sample draw chunks — across remote `hmdiv_serve` workers over
// TCP, reusing the HMDF frame format and the wire::shard_range partition
// unchanged. Because a shard's payload is a pure function of (blob,
// shard_index, shard_count), and the merge is in ascending shard order,
// output over N hosts is bit-identical to N local shards and to the
// in-process run — the same determinism contract, lifted to the network.
//
// Transport: one warm TCP connection per worker (kept across run() calls,
// so a profiling pipeline pays the connect + NDJSON upgrade handshake
// once), one outstanding task per connection, a single poll() loop
// overlapping task dispatch with result drain across the fleet. A worker
// that fails — connect refusal, reset, EOF, malformed frames, or a blown
// per-task deadline — is dropped for the rest of the run and its task is
// re-issued to a healthy worker (safe by the purity argument above);
// structured error frames, by contrast, are deterministic workload
// failures and abort the run. Worker obs snapshots (per-task deltas) fold
// into this process's registry exactly as the pipe engine's do.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hmdiv::exec {

/// Fan-out policy for a cluster of remote workers.
struct ClusterOptions {
  /// Worker endpoints ("host:port" or "[v6]:port"), e.g. from --workers.
  std::vector<std::string> workers;
  /// Shards to partition each run into; 0 resolves to the --shards /
  /// HMDIV_SHARDS default when that is set (> 1), else one shard per
  /// worker. More shards than workers is fine (tasks queue).
  unsigned shards = 0;
  /// Thread budget per task on the worker; 0 means this process's default
  /// thread count (mirrors ShardOptions::threads).
  unsigned threads = 0;
  /// Per-task wall-clock budget. On expiry the worker is dropped and the
  /// task re-issued elsewhere.
  std::chrono::milliseconds task_deadline{120'000};
  /// Budget for connect + upgrade handshake per worker.
  std::chrono::milliseconds connect_timeout{5'000};
};

/// Per-worker tallies, cumulative across a runner's lifetime. The serve
/// `metrics` endpoint renders the most recent runner's array (see
/// cluster_worker_stats()).
struct ClusterWorkerStats {
  std::string address;        ///< endpoint as configured
  std::uint64_t tasks = 0;    ///< tasks completed here
  std::uint64_t bytes_out = 0;  ///< task bytes shipped to it
  std::uint64_t bytes_in = 0;   ///< reply bytes drained from it
  std::uint64_t retries = 0;  ///< tasks abandoned here and re-issued
  std::string last_error;     ///< most recent transport failure, if any
};

/// A cluster run that could not complete: every worker failed, a task ran
/// out of workers to retry on, or a worker shipped a structured error
/// frame (a deterministic workload failure no reassignment can fix).
class ClusterError : public std::runtime_error {
 public:
  explicit ClusterError(std::string message)
      : std::runtime_error(std::move(message)) {}
};

/// Coordinator. Not thread-safe; one runner per pipeline.
class ClusterRunner {
 public:
  explicit ClusterRunner(ClusterOptions options);
  ~ClusterRunner();
  ClusterRunner(const ClusterRunner&) = delete;
  ClusterRunner& operator=(const ClusterRunner&) = delete;

  /// Shard count per run (options.shards resolved as documented there).
  [[nodiscard]] unsigned resolved_shards() const noexcept;

  /// Runs `workload` across the fleet and returns the raw per-shard
  /// result payloads in ascending shard order — the same contract as
  /// ShardRunner::run, so workload wrappers merge both identically.
  /// Throws ClusterError when the run cannot complete.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> run(
      std::string_view workload, std::span<const std::uint8_t> blob);

  /// Per-worker tallies so far (index-aligned with options.workers).
  [[nodiscard]] std::vector<ClusterWorkerStats> worker_stats() const;

 private:
  struct Conn;

  ClusterOptions options_;
  std::vector<Conn> conns_;
};

/// Latest per-worker stats published by any ClusterRunner in this process
/// (updated after every run). The serve `metrics` endpoint renders these
/// as its `workers` array; empty when no cluster run has happened.
[[nodiscard]] std::vector<ClusterWorkerStats> cluster_worker_stats();

namespace detail {
/// Publishes `stats` as the process-global cluster worker array (runner
/// epilogue and tests).
void set_cluster_worker_stats(std::vector<ClusterWorkerStats> stats);
}  // namespace detail

}  // namespace hmdiv::exec
