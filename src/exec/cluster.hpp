// Multi-host distributed execution: a TCP shard coordinator (DESIGN.md
// §15–16).
//
// ClusterRunner is the third rung of the execution ladder: threads
// (exec/parallel.hpp) → processes (exec/shard.hpp) → hosts. It fans the
// same substream-partitioned shard tasks the fork/exec engine runs —
// sim.trial batch ranges, core.sweep / core.minimise grid subspans,
// core.uq.sample draw chunks — across remote `hmdiv_serve` workers over
// TCP, reusing the HMDF frame format and the wire::shard_range partition
// unchanged. Because a task's payload is a pure function of (blob,
// shard_index, span, shard_count), and the merge is in ascending
// span-start order, output over N hosts is bit-identical to N local
// shards and to the in-process run — the same determinism contract,
// lifted to the network.
//
// Scheduling (the latency-hiding part): instead of `shards == tasks` with
// one outstanding task per worker, the coordinator cuts the substream
// index space into many micro-shards and keeps up to
// ClusterOptions::window tasks in flight per connection, matching replies
// FIFO via per-task done frames — the next task's bytes are on the wire
// while the worker computes the current one, so network RTT hides behind
// compute. Task sizes adapt per worker from an EWMA of observed service
// time, so fast workers pull bigger spans and stragglers stop gating the
// tail. The workload config blob ships once per connection (the session
// caches it; follow-up tasks set blob_cached).
//
// Transport: one warm TCP connection per worker (kept across run() calls,
// so a profiling pipeline pays the connect + NDJSON upgrade handshake
// once). All connects start concurrently as non-blocking sockets polled
// together, bounding startup by the slowest worker. A worker that fails —
// connect refusal, reset, EOF, malformed frames, a done frame out of
// order, or a blown head-of-line deadline — is sidelined, all of its
// in-flight spans requeue at the front of the queue (safe by the purity
// argument above), and after ClusterOptions::readmit_after it gets one
// re-probe per run so a transient outage does not cost the whole fleet
// member; structured error frames, by contrast, are deterministic
// workload failures and abort the run. Worker obs snapshots (per-task
// deltas) fold into this process's registry exactly as the pipe engine's
// do.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hmdiv::exec {

/// Fan-out policy for a cluster of remote workers.
struct ClusterOptions {
  /// Worker endpoints ("host:port" or "[v6]:port"), e.g. from --workers.
  std::vector<std::string> workers;
  /// Shards to partition each run into; 0 resolves to the --shards /
  /// HMDIV_SHARDS default when that is set (> 1), else the run picks an
  /// adaptive micro-shard count from the workload's item hint (many small
  /// tasks per worker — see ClusterRunner::run), falling back to one
  /// shard per worker. More shards than workers is fine (tasks queue).
  unsigned shards = 0;
  /// Thread budget per task on the worker; 0 means this process's default
  /// thread count (mirrors ShardOptions::threads).
  unsigned threads = 0;
  /// Tasks kept in flight per connection (pipelining depth). 1 restores
  /// the strict request/reply lockstep of PR 9.
  unsigned window = 4;
  /// Per-task wall-clock budget, measured at the head of each
  /// connection's in-flight queue. On expiry the worker is dropped and
  /// its in-flight tasks re-issued elsewhere.
  std::chrono::milliseconds task_deadline{120'000};
  /// Budget for connect + upgrade handshake per worker.
  std::chrono::milliseconds connect_timeout{5'000};
  /// Backoff before a transport-sidelined worker gets its one re-probe
  /// per run; 0 disables re-admission.
  std::chrono::milliseconds readmit_after{1'000};
};

/// Per-worker tallies, cumulative across a runner's lifetime except where
/// noted. The serve `metrics` endpoint renders the most recent runner's
/// array (see cluster_worker_stats()).
struct ClusterWorkerStats {
  std::string address;        ///< endpoint as configured
  std::uint64_t tasks = 0;    ///< tasks completed here
  std::uint64_t bytes_out = 0;  ///< task bytes shipped to it
  std::uint64_t bytes_in = 0;   ///< reply bytes drained from it
  std::uint64_t retries = 0;  ///< tasks abandoned here and re-issued
  std::uint64_t readmitted = 0;  ///< times sidelined then re-admitted
  std::uint32_t inflight = 0;   ///< tasks in flight right now
  std::uint32_t window = 0;     ///< configured pipelining depth
  std::uint32_t task_size = 0;  ///< micro-shards in the latest task
  std::string last_error;     ///< most recent transport failure, if any
};

/// A cluster run that could not complete: every worker failed, a task ran
/// out of workers to retry on, or a worker shipped a structured error
/// frame (a deterministic workload failure no reassignment can fix).
class ClusterError : public std::runtime_error {
 public:
  explicit ClusterError(std::string message)
      : std::runtime_error(std::move(message)) {}
};

/// Coordinator. Not thread-safe; one runner per pipeline.
class ClusterRunner {
 public:
  explicit ClusterRunner(ClusterOptions options);
  ~ClusterRunner();
  ClusterRunner(const ClusterRunner&) = delete;
  ClusterRunner& operator=(const ClusterRunner&) = delete;

  /// Shard count per run when explicitly configured (options.shards
  /// resolved as documented there); runs with an items hint and no
  /// explicit count pick their own micro-shard count.
  [[nodiscard]] unsigned resolved_shards() const noexcept;

  /// Runs `workload` across the fleet and returns the raw result
  /// payloads in ascending span-start order — each payload covers the
  /// contiguous micro-shard span of one task, so workload wrappers
  /// concatenate/fold them exactly as they do ShardRunner::run output.
  /// `items_hint` is the workload's natural-grain item count (trial
  /// batches, grid points, draw chunks); when the shard count is not
  /// pinned by options/env it sizes the micro-shard partition (0 keeps
  /// the one-shard-per-worker fallback). Throws ClusterError when the
  /// run cannot complete.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> run(
      std::string_view workload, std::span<const std::uint8_t> blob,
      std::uint64_t items_hint = 0);

  /// Per-worker tallies so far (index-aligned with options.workers).
  [[nodiscard]] std::vector<ClusterWorkerStats> worker_stats() const;

 private:
  struct Conn;

  ClusterOptions options_;
  std::vector<Conn> conns_;
};

/// Latest per-worker stats published by any ClusterRunner in this process
/// (updated after every run). The serve `metrics` endpoint renders these
/// as its `workers` array; empty when no cluster run has happened.
[[nodiscard]] std::vector<ClusterWorkerStats> cluster_worker_stats();

namespace detail {
/// Publishes `stats` as the process-global cluster worker array (runner
/// epilogue and tests).
void set_cluster_worker_stats(std::vector<ClusterWorkerStats> stats);
}  // namespace detail

}  // namespace hmdiv::exec
