// Scratch arenas for the analytical sweep engine: a monotonic bump
// allocator with stack-scoped rewind, one instance per thread (pool
// helpers and callers alike, via thread_workspace()).
//
// Why: the analytical hot paths (threshold sweeps, grid minimisation,
// posterior prediction, bootstrap resampling) need per-chunk scratch
// arrays whose sizes repeat from call to call. A Workspace hands out
// pointers by bumping a cursor through preallocated blocks; a Scope
// rewinds the cursor on destruction. After the first call at a given
// problem size (the "warm-up"), every later call reuses the same memory
// and performs zero heap allocations — asserted by an instrumented
// allocator test in tests/test_sweep_engine.cpp.
//
// Rules (see DESIGN.md §10):
//  - Allocation is LIFO by Scope: open a Scope, alloc, let the Scope
//    close. Nested Scopes (e.g. a bootstrap chunk running inside a sweep
//    chunk on the same thread via inline execution) compose naturally.
//  - alloc<T>() returns *uninitialised* storage for trivially copyable,
//    trivially destructible T — callers must write before reading.
//  - A Workspace is single-threaded. thread_workspace() gives each thread
//    its own; never share one across threads. One carve-out: because
//    blocks never relocate once handed out, storage allocated under an
//    open Scope may be *read* by another thread, provided the owning
//    thread keeps that Scope open until the reader is done and the
//    handoff is synchronised (e.g. through a mutex, as in the serve
//    batching path where connection threads park parsed requests for a
//    compute worker).
//  - Memory is never returned to the OS until the Workspace dies; the
//    high-water mark is the steady-state footprint.
//
// Growth is observable: every fresh block reservation counts its bytes
// into the `exec.arena.bytes` / `exec.arena.blocks` obs metrics, so a
// profile showing those counters still moving after warm-up is a leak of
// scope discipline somewhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace hmdiv::exec {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Cursor state; captured by Scope, restored on Scope exit.
  struct Mark {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  /// RAII rewind point. All allocations made while a Scope is open are
  /// released (cursor-wise; memory is retained) when it closes.
  class Scope {
   public:
    explicit Scope(Workspace& workspace)
        : workspace_(&workspace), mark_(workspace.mark()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { workspace_->rewind(mark_); }

   private:
    Workspace* workspace_;
    Mark mark_;
  };

  /// Uninitialised scratch for `count` elements of trivial T, aligned to
  /// alignof(T) (at least). Valid until the enclosing Scope closes.
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Workspace hands out raw storage: T must be trivial");
    void* p = alloc_bytes(count * sizeof(T), alignof(T));
    return {static_cast<T*>(p), count};
  }

  /// Raw aligned storage; prefer alloc<T>().
  [[nodiscard]] void* alloc_bytes(std::size_t bytes, std::size_t alignment);

  [[nodiscard]] Mark mark() const noexcept {
    return Mark{active_, blocks_.empty() ? 0 : blocks_[active_].used};
  }
  void rewind(Mark mark) noexcept;

  /// Total bytes reserved from the heap over the Workspace's lifetime.
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Bytes currently handed out (sum over blocks up to the cursor).
  [[nodiscard]] std::size_t bytes_in_use() const noexcept;

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  /// First block big enough for a fresh region; doubles the footprint so
  /// steady state settles on one block per thread.
  static constexpr std::size_t kMinBlockBytes = 1u << 16;

  Block& grow(std::size_t need);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;
  std::size_t capacity_ = 0;
};

/// The calling thread's own Workspace (thread-local, created on first
/// use). Pool helpers and the submitting caller each get one, so chunked
/// parallel bodies can scratch freely without synchronisation.
[[nodiscard]] Workspace& thread_workspace();

}  // namespace hmdiv::exec
