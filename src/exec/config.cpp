#include "exec/config.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "exec/shard.hpp"

namespace hmdiv::exec {

namespace {

constexpr unsigned kUnresolved = ~0U;

/// 0 = auto, kUnresolved = not yet read from the environment.
std::atomic<unsigned> g_default_threads{kUnresolved};

/// Set once the malformed-HMDIV_THREADS warning has been printed, so a
/// misconfigured deployment logs exactly one line however often the
/// environment is re-read.
std::atomic<bool> g_env_warned{false};

void warn_bad_env_value(const char* raw) noexcept {
  if (g_env_warned.exchange(true, std::memory_order_relaxed)) return;
  std::fprintf(stderr,
               "hmdiv: ignoring malformed HMDIV_THREADS='%s' (expected an "
               "integer in [1, 4096]); using all hardware threads\n",
               raw);
}

unsigned hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace

namespace detail {

void reset_env_warning() noexcept {
  g_env_warned.store(false, std::memory_order_relaxed);
  reset_shard_env_warning();  // one hook re-arms both env warnings
}

}  // namespace detail

unsigned Config::resolved_threads() const noexcept {
  return threads == 0 ? hardware_threads() : threads;
}

Config config_from_env() noexcept {
  const char* raw = std::getenv("HMDIV_THREADS");
  if (raw == nullptr || *raw == '\0') return Config{};
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0' || value == 0 || value > 4096) {
    // Falling back silently would hide a deployment misconfiguration
    // (e.g. HMDIV_THREADS=8x pinning a fleet to the auto default).
    warn_bad_env_value(raw);
    return Config{};
  }
  return Config{static_cast<unsigned>(value)};
}

Config default_config() noexcept {
  unsigned threads = g_default_threads.load(std::memory_order_relaxed);
  if (threads == kUnresolved) {
    threads = config_from_env().threads;
    unsigned expected = kUnresolved;
    // First resolver wins; a concurrent set_default_config is respected.
    if (!g_default_threads.compare_exchange_strong(
            expected, threads, std::memory_order_relaxed)) {
      threads = expected;
    }
  }
  return Config{threads};
}

void set_default_config(Config config) noexcept {
  g_default_threads.store(config.threads, std::memory_order_relaxed);
}

}  // namespace hmdiv::exec
