// A non-owning reference to a callable — the zero-allocation counterpart
// of std::function for call sites where the callable outlives the call.
//
// std::function's type erasure heap-allocates once the callable exceeds
// the small-object buffer, which every chunked parallel region used to pay
// per invocation (the chunk lambda captures several references). The
// engine's hot paths hand ThreadPool::run_indexed a FunctionRef instead:
// two words, trivially copyable, no allocation, no virtual dispatch.
//
// Lifetime contract: the referenced callable must stay alive for as long
// as the FunctionRef is invoked. run_indexed blocks until the job is done,
// so stack lambdas at the call site are always safe.
#pragma once

#include <type_traits>
#include <utility>

namespace hmdiv::exec {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): mirror std::function.
  FunctionRef(F&& callable) noexcept
      : object_(const_cast<void*>(
            static_cast<const void*>(std::addressof(callable)))),
        invoke_([](void* object, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(object_, std::forward<Args>(args)...);
  }

 private:
  void* object_;
  R (*invoke_)(void*, Args...);
};

}  // namespace hmdiv::exec
